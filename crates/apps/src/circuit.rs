//! The circuit simulation benchmark (§8, \[22\]) — the application Fig 1's
//! skeleton is derived from.
//!
//! An irregular graph: voltage nodes partitioned into `pieces` (the
//! disjoint **private** partition `P`), and wires (circuit elements)
//! connecting random nodes, a fraction of them crossing into neighboring
//! pieces. Each piece's **ghost** subregion `G[i]` names exactly the
//! external nodes its wires touch — an aliased, incomplete, *sparse*
//! partition (two pieces sharing a neighbor both name it), which is the
//! case name-based systems cannot express (§2).
//!
//! Each iteration runs three phases per piece:
//!
//! 1. `calc_new_currents` — read voltages through `P[i]` *and* `G[i]`,
//!    write wire currents;
//! 2. `distribute_charge` — read currents, `reduce+` charge into `P[i]`
//!    and `G[i]` (parallel updates to shared voltage nodes);
//! 3. `update_voltage` — read-write voltage and charge of `P[i]`.
//!
//! All arithmetic is dyadic (×1/4, ×1/2, ×1/8), so value mode verifies
//! bit-exactly against the serial reference.

use crate::workload::{Workload, WorkloadRun};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use viz_geometry::{IndexSpace, Point};
use viz_runtime::{LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, TaskBody};

const CCN_NS_PER_WIRE: f64 = 150.0;
const DC_NS_PER_WIRE: f64 = 50.0;
const UV_NS_PER_NODE: f64 = 200.0;
const INIT_TASK_NS: u64 = 25_000_000;

#[derive(Clone, Debug)]
pub struct CircuitConfig {
    pub pieces: usize,
    pub nodes_per_piece: usize,
    pub wires_per_piece: usize,
    /// Fraction (percent) of wires crossing to a neighboring piece.
    pub pct_external: u32,
    pub iterations: usize,
    pub nodes: usize,
    pub with_bodies: bool,
    /// Wrap each iteration in a runtime trace (\[15\]).
    pub traced: bool,
    pub seed: u64,
}

impl CircuitConfig {
    pub fn small(pieces: usize, iterations: usize) -> Self {
        CircuitConfig {
            pieces,
            nodes_per_piece: 12,
            wires_per_piece: 20,
            pct_external: 20,
            iterations,
            nodes: 1,
            with_bodies: true,
            traced: false,
            seed: 0xC1BC117,
        }
    }

    /// The weak-scaling configuration of Figs 13/16: one piece per node,
    /// ≈ 4.4 ms of modeled GPU work per piece per iteration (≈ 4.5·10⁶
    /// wires/s/node single-node throughput).
    pub fn paper(nodes: usize) -> Self {
        CircuitConfig {
            pieces: nodes,
            nodes_per_piece: 2_000,
            wires_per_piece: 20_000,
            pct_external: 5,
            iterations: 10,
            nodes,
            with_bodies: false,
            traced: false,
            seed: 0xC1BC117,
        }
    }
}

/// The generated circuit topology: wire endpoints as global node ids.
pub struct Circuit {
    pub cfg: CircuitConfig,
    wires: Arc<Vec<(i64, i64)>>,
    /// External node ids referenced per piece (the ghost subregions).
    ghosts: Vec<Vec<i64>>,
}

impl Circuit {
    pub fn new(cfg: CircuitConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let npp = cfg.nodes_per_piece as i64;
        let mut wires = Vec::with_capacity(cfg.pieces * cfg.wires_per_piece);
        let mut ghosts: Vec<Vec<i64>> = vec![Vec::new(); cfg.pieces];
        for piece in 0..cfg.pieces as i64 {
            for _ in 0..cfg.wires_per_piece {
                let src = piece * npp + rng.random_range(0..npp);
                let external = cfg.pieces > 1 && rng.random_range(0..100u32) < cfg.pct_external;
                let dst = if external {
                    // A neighbor piece (clamped at the chain ends, keeping
                    // each piece's ghost set spatially local).
                    let dir: i64 = if rng.random_range(0..2u32) == 0 {
                        1
                    } else {
                        -1
                    };
                    let nb = (piece + dir).clamp(0, cfg.pieces as i64 - 1);
                    if nb == piece {
                        piece * npp + rng.random_range(0..npp)
                    } else {
                        let node = nb * npp + rng.random_range(0..npp);
                        ghosts[piece as usize].push(node);
                        node
                    }
                } else {
                    piece * npp + rng.random_range(0..npp)
                };
                wires.push((src, dst));
            }
        }
        for g in &mut ghosts {
            g.sort_unstable();
            g.dedup();
        }
        Circuit {
            cfg,
            wires: Arc::new(wires),
            ghosts,
        }
    }

    pub fn total_nodes(&self) -> i64 {
        (self.cfg.pieces * self.cfg.nodes_per_piece) as i64
    }

    pub fn total_wires(&self) -> i64 {
        (self.cfg.pieces * self.cfg.wires_per_piece) as i64
    }

    fn initial_voltage(node: i64) -> f64 {
        (node % 32) as f64
    }
}

impl Workload for Circuit {
    fn name(&self) -> &'static str {
        "circuit"
    }

    fn unit(&self) -> &'static str {
        "wires"
    }

    fn execute(&self, rt: &mut Runtime) -> WorkloadRun {
        let cfg = &self.cfg;
        let nodes_root = rt.forest_mut().create_root_1d("nodes", self.total_nodes());
        let f_v = rt.forest_mut().add_field(nodes_root, "voltage");
        let f_c = rt.forest_mut().add_field(nodes_root, "charge");
        let wires_root = rt.forest_mut().create_root_1d("wires", self.total_wires());
        let f_i = rt.forest_mut().add_field(wires_root, "current");

        let p = rt
            .forest_mut()
            .create_equal_partition_1d(nodes_root, "P", cfg.pieces);
        let ghost_spaces: Vec<IndexSpace> = self
            .ghosts
            .iter()
            .map(|g| IndexSpace::from_points(g.iter().map(|n| Point::p1(*n))))
            .collect();
        let g = rt.forest_mut().create_partition_with_flags(
            nodes_root,
            "G",
            ghost_spaces,
            false,
            false,
        );
        let w = rt
            .forest_mut()
            .create_equal_partition_1d(wires_root, "W", cfg.pieces);

        let wpp = cfg.wires_per_piece;
        let ccn_ns = (wpp as f64 * CCN_NS_PER_WIRE) as u64;
        let dc_ns = (wpp as f64 * DC_NS_PER_WIRE) as u64;
        let uv_ns = (cfg.nodes_per_piece as f64 * UV_NS_PER_NODE) as u64;
        let mut run = WorkloadRun {
            elements_per_iter: self.total_wires() as u64,
            ..Default::default()
        };

        // Setup: initialize voltages/charges and currents per piece. Each
        // wave goes through the batched driver; with one analysis thread it
        // degenerates to serial launches.
        let mut wave: Vec<LaunchSpec> = Vec::new();
        for i in 0..cfg.pieces {
            let piece = rt.forest().subregion(p, i);
            let wpiece = rt.forest().subregion(w, i);
            let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|pt, _| Circuit::initial_voltage(pt.x));
                    rs[1].update_all(|_, _| 0.0);
                }) as TaskBody
            });
            wave.push(LaunchSpec::new(
                "init_nodes",
                i % cfg.nodes,
                vec![
                    RegionRequirement::read_write(piece, f_v),
                    RegionRequirement::read_write(piece, f_c),
                ],
                INIT_TASK_NS,
                body,
            ));
            let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, _| 0.0);
                }) as TaskBody
            });
            wave.push(LaunchSpec::new(
                "init_wires",
                i % cfg.nodes,
                vec![RegionRequirement::read_write(wpiece, f_i)],
                INIT_TASK_NS / 4,
                body,
            ));
        }
        rt.submit_batch(wave).expect("valid wave");

        let sum = viz_region::RedOpRegistry::SUM;
        for iter in 0..cfg.iterations {
            if cfg.traced {
                rt.try_begin_trace(0).expect("no trace is open");
            }
            // Phase 1: calc_new_currents.
            let mut wave: Vec<LaunchSpec> = Vec::new();
            for i in 0..cfg.pieces {
                let piece = rt.forest().subregion(p, i);
                let gpiece = rt.forest().subregion(g, i);
                let wpiece = rt.forest().subregion(w, i);
                let wires = Arc::clone(&self.wires);
                let range = (i * wpp) as i64..((i + 1) * wpp) as i64;
                let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                    let range = range.clone();
                    Arc::new(move |rs: &mut [PhysicalRegion]| {
                        // rs[0] = current (rw), rs[1] = voltage P, rs[2] = voltage G.
                        let mut out = Vec::with_capacity(wires.len());
                        {
                            let volt = |n: i64| {
                                let pt = Point::p1(n);
                                if rs[1].contains(pt) {
                                    rs[1].get(pt)
                                } else {
                                    rs[2].get(pt)
                                }
                            };
                            for wid in range.clone() {
                                let (s, d) = wires[wid as usize];
                                out.push((Point::p1(wid), (volt(s) - volt(d)) * 0.25));
                            }
                        }
                        for (pt, v) in out {
                            rs[0].set(pt, v);
                        }
                    }) as TaskBody
                });
                wave.push(LaunchSpec::new(
                    format!("ccn[{iter}]"),
                    i % cfg.nodes,
                    vec![
                        RegionRequirement::read_write(wpiece, f_i),
                        RegionRequirement::read(piece, f_v),
                        RegionRequirement::read(gpiece, f_v),
                    ],
                    ccn_ns,
                    body,
                ));
            }
            rt.submit_batch(wave).expect("valid wave");
            // Phase 2: distribute_charge.
            let mut wave: Vec<LaunchSpec> = Vec::new();
            for i in 0..cfg.pieces {
                let piece = rt.forest().subregion(p, i);
                let gpiece = rt.forest().subregion(g, i);
                let wpiece = rt.forest().subregion(w, i);
                let wires = Arc::clone(&self.wires);
                let range = (i * wpp) as i64..((i + 1) * wpp) as i64;
                let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                    let range = range.clone();
                    Arc::new(move |rs: &mut [PhysicalRegion]| {
                        // rs[0] = current (read), rs[1] = charge P (reduce+),
                        // rs[2] = charge G (reduce+).
                        for wid in range.clone() {
                            let (s, d) = wires[wid as usize];
                            let cur = rs[0].get(Point::p1(wid));
                            for (node, contrib) in [(s, -cur * 0.5), (d, cur * 0.5)] {
                                let pt = Point::p1(node);
                                if rs[1].contains(pt) {
                                    rs[1].reduce(pt, contrib);
                                } else {
                                    rs[2].reduce(pt, contrib);
                                }
                            }
                        }
                    }) as TaskBody
                });
                wave.push(LaunchSpec::new(
                    format!("dc[{iter}]"),
                    i % cfg.nodes,
                    vec![
                        RegionRequirement::read(wpiece, f_i),
                        RegionRequirement::reduce(piece, f_c, sum),
                        RegionRequirement::reduce(gpiece, f_c, sum),
                    ],
                    dc_ns,
                    body,
                ));
            }
            rt.submit_batch(wave).expect("valid wave");
            // Phase 3: update_voltage.
            let mut wave: Vec<LaunchSpec> = Vec::new();
            for i in 0..cfg.pieces {
                let piece = rt.forest().subregion(p, i);
                let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                    Arc::new(move |rs: &mut [PhysicalRegion]| {
                        // rs[0] = voltage (rw), rs[1] = charge (rw).
                        let dom = rs[0].domain().clone();
                        for pt in dom.points() {
                            let v = rs[0].get(pt) + rs[1].get(pt) * 0.125;
                            rs[0].set(pt, v);
                            rs[1].set(pt, 0.0);
                        }
                    }) as TaskBody
                });
                wave.push(LaunchSpec::new(
                    format!("uv[{iter}]"),
                    i % cfg.nodes,
                    vec![
                        RegionRequirement::read_write(piece, f_v),
                        RegionRequirement::read_write(piece, f_c),
                    ],
                    uv_ns,
                    body,
                ));
            }
            let handles = rt.submit_batch(wave).expect("valid wave");
            if cfg.traced {
                rt.try_end_trace(0).expect("trace 0 is open");
            }
            run.iter_end.push(handles.last().unwrap().id());
        }

        if cfg.with_bodies {
            run.probes.push(rt.inline_read(nodes_root, f_v).unwrap());
            run.probes.push(rt.inline_read(nodes_root, f_c).unwrap());
            run.probes.push(rt.inline_read(wires_root, f_i).unwrap());
        }
        run
    }

    fn reference(&self) -> Vec<Vec<f64>> {
        let cfg = &self.cfg;
        let n = self.total_nodes() as usize;
        let wtot = self.total_wires() as usize;
        let wpp = cfg.wires_per_piece;
        let mut voltage: Vec<f64> = (0..n as i64).map(Circuit::initial_voltage).collect();
        let mut charge = vec![0.0f64; n];
        let mut current = vec![0.0f64; wtot];
        for _ in 0..cfg.iterations {
            for (wid, cur) in current.iter_mut().enumerate() {
                let (s, d) = self.wires[wid];
                *cur = (voltage[s as usize] - voltage[d as usize]) * 0.25;
            }
            // Mirror the lazy-reduction semantics exactly: each dc task
            // accumulates its contributions locally, and the accumulators
            // fold into the charge in task (piece) order.
            for piece in 0..cfg.pieces {
                let mut acc: std::collections::BTreeMap<usize, f64> =
                    std::collections::BTreeMap::new();
                for (wid, cur) in current
                    .iter()
                    .enumerate()
                    .take((piece + 1) * wpp)
                    .skip(piece * wpp)
                {
                    let (s, d) = self.wires[wid];
                    *acc.entry(s as usize).or_insert(0.0) += -cur * 0.5;
                    *acc.entry(d as usize).or_insert(0.0) += cur * 0.5;
                }
                for (node, a) in acc {
                    charge[node] += a;
                }
            }
            for node in 0..n {
                voltage[node] += charge[node] * 0.125;
                charge[node] = 0.0;
            }
        }
        vec![voltage, charge, current]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_runtime::{EngineKind, Runtime, RuntimeConfig};

    fn run_and_verify(engine: EngineKind, cfg: CircuitConfig, nodes: usize, dcr: bool) {
        let app = Circuit::new(CircuitConfig { nodes, ..cfg });
        let mut rt = Runtime::new(RuntimeConfig::new(engine).nodes(nodes).dcr(dcr));
        let run = app.execute(&mut rt);
        let violations =
            viz_runtime::validate::check_sufficiency(rt.forest(), rt.launches(), rt.dag());
        assert!(violations.is_empty(), "{engine:?}: {violations:?}");
        let store = rt.execute_values();
        let expect = app.reference();
        for (k, (probe, exp)) in run.probes.iter().zip(&expect).enumerate() {
            let got: Vec<f64> = store.inline(*probe).iter().map(|(_, v)| v).collect();
            assert_eq!(&got, exp, "{engine:?} probe {k} diverged");
        }
    }

    #[test]
    fn all_engines_match_reference() {
        for engine in EngineKind::all() {
            run_and_verify(engine, CircuitConfig::small(4, 3), 1, false);
        }
    }

    #[test]
    fn multi_node_dcr_matches_reference() {
        for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
            run_and_verify(engine, CircuitConfig::small(4, 2), 4, true);
        }
    }

    #[test]
    fn single_piece_has_no_ghosts() {
        let app = Circuit::new(CircuitConfig::small(1, 2));
        assert!(app.ghosts[0].is_empty());
        run_and_verify(EngineKind::RayCast, CircuitConfig::small(1, 2), 1, false);
    }

    #[test]
    fn ghost_nodes_are_external() {
        let app = Circuit::new(CircuitConfig::small(6, 1));
        let npp = app.cfg.nodes_per_piece as i64;
        for (i, g) in app.ghosts.iter().enumerate() {
            for node in g {
                let owner = node / npp;
                assert_ne!(owner, i as i64, "ghost node inside its own piece");
            }
        }
    }

    #[test]
    fn iterations_serialize_through_ghost_exchanges() {
        let app = Circuit::new(CircuitConfig::small(3, 2));
        let mut rt = Runtime::single_node(EngineKind::RayCast);
        app.execute(&mut rt);
        // ccn of iteration 2 depends on uv of iteration 1 (ghost voltages):
        // at least 3 dependence levels per iteration plus setup.
        assert!(rt.dag().critical_path_len() > 3 * 2);
    }

    /// The ghost partition must equal the dependent-partitioning
    /// construction of Fig 2: ghosts = image(wires, endpoints) \ owned.
    #[test]
    fn ghosts_match_dependent_partitioning() {
        let app = Circuit::new(CircuitConfig::small(5, 1));
        let mut f = viz_region::RegionForest::new();
        let nodes = f.create_root_1d("nodes", app.total_nodes());
        let wires_root = f.create_root_1d("wires", app.total_wires());
        let p = f.create_equal_partition_1d(nodes, "P", app.cfg.pieces);
        let w = f.create_equal_partition_1d(wires_root, "W", app.cfg.pieces);
        let topo = Arc::clone(&app.wires);
        let touched = viz_region::deppart::image(&mut f, w, nodes, "touched", move |pt| {
            let (s, d) = topo[pt.x as usize];
            vec![Point::p1(s), Point::p1(d)]
        });
        let g = viz_region::deppart::difference(&mut f, touched, p, "G");
        for (i, ghost) in app.ghosts.iter().enumerate() {
            let expect = IndexSpace::from_points(ghost.iter().map(|n| Point::p1(*n)));
            let got = f.domain(f.subregion(g, i));
            assert!(
                got.same_points(&expect),
                "piece {i}: deppart {got:?} vs generator {expect:?}"
            );
        }
    }

    #[test]
    fn deterministic_topology() {
        let a = Circuit::new(CircuitConfig::small(4, 1));
        let b = Circuit::new(CircuitConfig::small(4, 1));
        assert_eq!(a.wires, b.wires);
    }
}
