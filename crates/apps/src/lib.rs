//! # viz-apps
//!
//! The three benchmark applications of the paper's evaluation (§8), built
//! against the `viz-runtime` public API:
//!
//! * [`stencil`] — a 2-D 9-point star stencil on a structured grid,
//!   intermixed with data-parallel computations (the Parallel Research
//!   Kernels stencil \[26\]).
//! * [`circuit`] — an irregular graph-based circuit simulation with
//!   `reduce+` updates to shared voltage nodes \[22\]; the Fig 1 skeleton is
//!   derived from this benchmark.
//! * [`pennant`] — a simplified 2-D Lagrangian hydrodynamics
//!   mini-application on an unstructured-style mesh with several distinct
//!   reduction operators \[12\].
//!
//! Every application comes in two modes:
//!
//! * **value mode** (`with_bodies == true`) — tasks carry real bodies with
//!   exactly-representable (dyadic) arithmetic; results are verified
//!   bit-for-bit against a serial reference implementation;
//! * **timed mode** — bodies are omitted and tasks carry modeled GPU
//!   durations calibrated to the paper's single-node throughputs; this mode
//!   drives the machine-scale figures.

pub mod circuit;
pub mod pennant;
pub mod stencil;
pub mod workload;

pub use circuit::{Circuit, CircuitConfig};
pub use pennant::{Pennant, PennantConfig};
pub use stencil::{Stencil, StencilConfig};
pub use workload::{Workload, WorkloadRun};
