//! The Pennant benchmark (§8, \[12\]), simplified.
//!
//! Pennant is a 2-D Lagrangian hydrodynamics code on an unstructured mesh.
//! This reproduction keeps the *data-movement structure* that stresses the
//! coherence analysis while simplifying the physics to dyadic arithmetic:
//!
//! * a mesh of quad **zones** partitioned into vertical strips (disjoint,
//!   complete), and mesh **points** with two partitions: the disjoint
//!   *master* partition `MP` (each boundary point column owned by the piece
//!   to its left) and the aliased *needed* partition `NP` (each piece names
//!   both of its boundary columns — shared with its neighbors);
//! * **gather** phases reading point positions through `NP` (cross-piece
//!   reads of neighbor-written columns);
//! * **scatter** phases applying `reduce+` point forces through `NP`
//!   (shared corner points accumulate from two pieces);
//! * a global `reduce min` time-step reduction into a one-element control
//!   region — Pennant's "several distinct reduction operators used in
//!   different parts of the code".
//!
//! Each iteration, per piece: `calc_zones` (point positions → zone
//! pressure), `calc_dt` (`reduce min` into a per-piece partial), and
//! `gather_forces` (`reduce+`); then one global `reduce_dt` task folds the
//! partials into the control region (Pennant's `dtH`), and `move_points`
//! advances the owned points reading it back — one global synchronization
//! per iteration, discovered by the dependence analysis.

use crate::workload::{Workload, WorkloadRun};
use std::sync::Arc;
use viz_geometry::{IndexSpace, Point, Rect};
use viz_region::RedOpRegistry;
use viz_runtime::{LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, TaskBody};

const CZ_NS_PER_ZONE: f64 = 4.0;
const DT_NS_PER_ZONE: f64 = 1.0;
const GF_NS_PER_ZONE: f64 = 4.0;
const MV_NS_PER_ZONE: f64 = 2.0;
const REDUCE_DT_NS_PER_PIECE: u64 = 50;
const INIT_TASK_NS: u64 = 30_000_000;

/// Exact dyadic step factors.
const DT0: f64 = 64.0;
const VEL_K: f64 = 0.0009765625; // 2^-10
const POS_K: f64 = 0.0009765625; // 2^-10

#[derive(Clone, Debug)]
pub struct PennantConfig {
    pub pieces: usize,
    /// Zone columns per piece.
    pub zones_x_per_piece: i64,
    /// Zone rows (global).
    pub zones_y: i64,
    pub iterations: usize,
    pub nodes: usize,
    pub with_bodies: bool,
    /// Wrap each iteration in a runtime trace (\[15\]).
    pub traced: bool,
}

impl PennantConfig {
    pub fn small(pieces: usize, iterations: usize) -> Self {
        PennantConfig {
            pieces,
            zones_x_per_piece: 4,
            zones_y: 3,
            iterations,
            nodes: 1,
            with_bodies: true,
            traced: false,
        }
    }

    /// The weak-scaling configuration of Figs 14/17: one piece per node,
    /// ≈ 4·10⁵ zones per piece (≈ 90·10⁶ zones/s/node single-node
    /// throughput at ≈ 4.4 ms per iteration).
    pub fn paper(nodes: usize) -> Self {
        PennantConfig {
            pieces: nodes,
            zones_x_per_piece: 800,
            zones_y: 500,
            iterations: 10,
            nodes,
            with_bodies: false,
            traced: false,
        }
    }

    pub fn zones_x(&self) -> i64 {
        self.pieces as i64 * self.zones_x_per_piece
    }

    pub fn zones_per_piece(&self) -> i64 {
        self.zones_x_per_piece * self.zones_y
    }
}

pub struct Pennant {
    pub cfg: PennantConfig,
}

/// Zone "pressure" from its corner coordinates (dyadic).
#[inline]
fn zone_pressure(px_sw: f64, px_se: f64, py_sw: f64, py_nw: f64) -> f64 {
    ((px_se - px_sw) + (py_nw - py_sw)) * 0.25
}

/// Per-zone dt contribution (dyadic).
#[inline]
fn zone_dt(zp: f64) -> f64 {
    DT0 - zp * 0.0625
}

/// Corner force contributions of a zone with pressure `zp`:
/// `(dx, dy, fx, fy)` for the four corners relative to the zone's SW point.
#[inline]
fn corner_forces(zp: f64) -> [(i64, i64, f64, f64); 4] {
    let f = zp * 0.25;
    [
        (0, 0, -f, -f), // SW
        (1, 0, f, -f),  // SE
        (0, 1, -f, f),  // NW
        (1, 1, f, f),   // NE
    ]
}

impl Pennant {
    pub fn new(cfg: PennantConfig) -> Self {
        Pennant { cfg }
    }

    fn initial_px(p: Point) -> f64 {
        p.x as f64 + ((p.y % 4) as f64) * 0.125
    }

    fn initial_py(p: Point) -> f64 {
        p.y as f64 + ((p.x % 8) as f64) * 0.0625
    }

    /// Zone strip for a piece.
    fn zone_strip(&self, i: usize) -> Rect {
        let zxpp = self.cfg.zones_x_per_piece;
        Rect::xy(
            i as i64 * zxpp,
            (i as i64 + 1) * zxpp - 1,
            0,
            self.cfg.zones_y - 1,
        )
    }

    /// Master (owned) point columns for a piece: boundary columns belong to
    /// the left piece.
    fn master_points(&self, i: usize) -> Rect {
        let zxpp = self.cfg.zones_x_per_piece;
        let lo = if i == 0 { 0 } else { i as i64 * zxpp + 1 };
        Rect::xy(lo, (i as i64 + 1) * zxpp, 0, self.cfg.zones_y)
    }

    /// Needed point columns for a piece (both boundaries — aliased).
    fn needed_points(&self, i: usize) -> Rect {
        let zxpp = self.cfg.zones_x_per_piece;
        Rect::xy(i as i64 * zxpp, (i as i64 + 1) * zxpp, 0, self.cfg.zones_y)
    }
}

impl Workload for Pennant {
    fn name(&self) -> &'static str {
        "pennant"
    }

    fn unit(&self) -> &'static str {
        "zones"
    }

    fn execute(&self, rt: &mut Runtime) -> WorkloadRun {
        let cfg = &self.cfg;
        let zx = self.cfg.zones_x();
        let zy = cfg.zones_y;
        let zones_root = rt.forest_mut().create_root(
            "zones",
            IndexSpace::from_rect(Rect::xy(0, zx - 1, 0, zy - 1)),
        );
        let f_zp = rt.forest_mut().add_field(zones_root, "zp");
        let points_root = rt
            .forest_mut()
            .create_root("points", IndexSpace::from_rect(Rect::xy(0, zx, 0, zy)));
        let f_px = rt.forest_mut().add_field(points_root, "px");
        let f_py = rt.forest_mut().add_field(points_root, "py");
        let f_pu = rt.forest_mut().add_field(points_root, "pu");
        let f_pv = rt.forest_mut().add_field(points_root, "pv");
        let f_fx = rt.forest_mut().add_field(points_root, "pfx");
        let f_fy = rt.forest_mut().add_field(points_root, "pfy");
        let ctrl_root = rt.forest_mut().create_root_1d("ctrl", 1);
        let f_dt = rt.forest_mut().add_field(ctrl_root, "dt");
        // Per-piece dt partials: `reduce min` lands in disjoint elements, a
        // single gather task folds them (the scalable reduction pattern
        // real Pennant uses for dtH).
        let partials_root = rt
            .forest_mut()
            .create_root_1d("partials", cfg.pieces as i64);
        let f_pm = rt.forest_mut().add_field(partials_root, "pmin");
        rt.try_set_initial(partials_root, f_pm, |_| f64::INFINITY)
            .expect("partials field exists");
        let partials = rt
            .forest_mut()
            .create_equal_partition_1d(partials_root, "PART", cfg.pieces);

        let z = rt.forest_mut().create_partition_with_flags(
            zones_root,
            "Z",
            (0..cfg.pieces)
                .map(|i| IndexSpace::from_rect(self.zone_strip(i)))
                .collect(),
            true,
            true,
        );
        let mp = rt.forest_mut().create_partition_with_flags(
            points_root,
            "MP",
            (0..cfg.pieces)
                .map(|i| IndexSpace::from_rect(self.master_points(i)))
                .collect(),
            true,
            true,
        );
        let np = rt.forest_mut().create_partition_with_flags(
            points_root,
            "NP",
            (0..cfg.pieces)
                .map(|i| IndexSpace::from_rect(self.needed_points(i)))
                .collect(),
            cfg.pieces == 1,
            true,
        );

        let zpp = cfg.zones_per_piece() as f64;
        let cz_ns = (zpp * CZ_NS_PER_ZONE) as u64;
        let dt_ns = (zpp * DT_NS_PER_ZONE) as u64;
        let gf_ns = (zpp * GF_NS_PER_ZONE) as u64;
        let mv_ns = (zpp * MV_NS_PER_ZONE) as u64;
        let mut run = WorkloadRun {
            elements_per_iter: (zx * zy) as u64,
            ..Default::default()
        };

        // Setup: positions, velocities, forces per piece (master points),
        // and the control region. Each wave goes through the batched
        // driver; with one analysis thread it degenerates to serial
        // launches.
        let mut wave: Vec<LaunchSpec> = Vec::new();
        for i in 0..cfg.pieces {
            let mpiece = rt.forest().subregion(mp, i);
            let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|p, _| Pennant::initial_px(p));
                    rs[1].update_all(|p, _| Pennant::initial_py(p));
                    for r in rs[2..6].iter_mut() {
                        r.update_all(|_, _| 0.0);
                    }
                }) as TaskBody
            });
            wave.push(LaunchSpec::new(
                "init_points",
                i % cfg.nodes,
                vec![
                    RegionRequirement::read_write(mpiece, f_px),
                    RegionRequirement::read_write(mpiece, f_py),
                    RegionRequirement::read_write(mpiece, f_pu),
                    RegionRequirement::read_write(mpiece, f_pv),
                    RegionRequirement::read_write(mpiece, f_fx),
                    RegionRequirement::read_write(mpiece, f_fy),
                ],
                INIT_TASK_NS,
                body,
            ));
        }
        rt.submit_batch(wave).expect("valid wave");

        let min_op = RedOpRegistry::MIN;
        let sum = RedOpRegistry::SUM;
        for iter in 0..cfg.iterations {
            if cfg.traced {
                rt.try_begin_trace(0).expect("no trace is open");
            }
            // Phase 1: calc_zones — point positions → zone pressure.
            let mut wave: Vec<LaunchSpec> = Vec::new();
            for i in 0..cfg.pieces {
                let zpiece = rt.forest().subregion(z, i);
                let npiece = rt.forest().subregion(np, i);
                let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                    Arc::new(move |rs: &mut [PhysicalRegion]| {
                        // rs[0] = zp (rw), rs[1] = px (NP), rs[2] = py (NP).
                        let (zp, pos) = rs.split_at_mut(1);
                        zp[0].update_all(|zpt, _| {
                            let sw = zpt;
                            let se = zpt.offset(1, 0);
                            let nw = zpt.offset(0, 1);
                            zone_pressure(
                                pos[0].get(sw),
                                pos[0].get(se),
                                pos[1].get(sw),
                                pos[1].get(nw),
                            )
                        });
                    }) as TaskBody
                });
                wave.push(LaunchSpec::new(
                    format!("calc_zones[{iter}]"),
                    i % cfg.nodes,
                    vec![
                        RegionRequirement::read_write(zpiece, f_zp),
                        RegionRequirement::read(npiece, f_px),
                        RegionRequirement::read(npiece, f_py),
                    ],
                    cz_ns,
                    body,
                ));
            }
            rt.submit_batch(wave).expect("valid wave");
            // Phase 2: calc_dt — reduce min into the piece's partial.
            let mut wave: Vec<LaunchSpec> = Vec::new();
            for i in 0..cfg.pieces {
                let zpiece = rt.forest().subregion(z, i);
                let ppiece = rt.forest().subregion(partials, i);
                let slot = Point::p1(i as i64);
                let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                    Arc::new(move |rs: &mut [PhysicalRegion]| {
                        // rs[0] = zp (read), rs[1] = partial (reduce min).
                        let mut m = f64::INFINITY;
                        for (_, zp) in rs[0].iter() {
                            m = m.min(zone_dt(zp));
                        }
                        rs[1].reduce(slot, m);
                    }) as TaskBody
                });
                wave.push(LaunchSpec::new(
                    format!("calc_dt[{iter}]"),
                    i % cfg.nodes,
                    vec![
                        RegionRequirement::read(zpiece, f_zp),
                        RegionRequirement::reduce(ppiece, f_pm, min_op),
                    ],
                    dt_ns,
                    body,
                ));
            }
            rt.submit_batch(wave).expect("valid wave");
            // reduce_dt: fold the partials, reset them, publish dt — the
            // per-iteration global synchronization (Pennant's dtH).
            let pieces = cfg.pieces;
            let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                Arc::new(move |rs: &mut [PhysicalRegion]| {
                    // rs[0] = partials (rw root), rs[1] = dt (rw ctrl).
                    let mut m = DT0;
                    for i in 0..pieces as i64 {
                        m = m.min(rs[0].get(Point::p1(i)));
                        rs[0].set(Point::p1(i), f64::INFINITY);
                    }
                    rs[1].set(Point::p1(0), m);
                }) as TaskBody
            });
            rt.submit(LaunchSpec::new(
                format!("reduce_dt[{iter}]"),
                0,
                vec![
                    RegionRequirement::read_write(partials_root, f_pm),
                    RegionRequirement::read_write(ctrl_root, f_dt),
                ],
                20_000 + REDUCE_DT_NS_PER_PIECE * cfg.pieces as u64,
                body,
            ))
            .expect("valid reduce_dt launch");
            // Phase 3: gather_forces — zones scatter to their corners.
            let mut wave: Vec<LaunchSpec> = Vec::new();
            for i in 0..cfg.pieces {
                let zpiece = rt.forest().subregion(z, i);
                let npiece = rt.forest().subregion(np, i);
                let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                    Arc::new(move |rs: &mut [PhysicalRegion]| {
                        // rs[0] = zp (read), rs[1] = pfx (+), rs[2] = pfy (+).
                        let contributions: Vec<(Point, f64, f64)> = rs[0]
                            .iter()
                            .flat_map(|(zpt, zp)| {
                                corner_forces(zp)
                                    .map(|(dx, dy, fx, fy)| (zpt.offset(dx, dy), fx, fy))
                            })
                            .collect();
                        for (pt, fx, fy) in contributions {
                            rs[1].reduce(pt, fx);
                            rs[2].reduce(pt, fy);
                        }
                    }) as TaskBody
                });
                wave.push(LaunchSpec::new(
                    format!("gather_forces[{iter}]"),
                    i % cfg.nodes,
                    vec![
                        RegionRequirement::read(zpiece, f_zp),
                        RegionRequirement::reduce(npiece, f_fx, sum),
                        RegionRequirement::reduce(npiece, f_fy, sum),
                    ],
                    gf_ns,
                    body,
                ));
            }
            rt.submit_batch(wave).expect("valid wave");
            // Phase 4: move_points — advance owned points, clear forces.
            let mut wave: Vec<LaunchSpec> = Vec::new();
            for i in 0..cfg.pieces {
                let mpiece = rt.forest().subregion(mp, i);
                let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                    Arc::new(move |rs: &mut [PhysicalRegion]| {
                        // rs[0..6] = px, py, pu, pv, pfx, pfy (rw on MP),
                        // rs[6] = dt (read).
                        let dt = rs[6].get(Point::p1(0));
                        let dom = rs[0].domain().clone();
                        for pt in dom.points() {
                            let fx = rs[4].get(pt);
                            let fy = rs[5].get(pt);
                            let u = rs[2].get(pt) + fx * dt * VEL_K;
                            let v = rs[3].get(pt) + fy * dt * VEL_K;
                            rs[2].set(pt, u);
                            rs[3].set(pt, v);
                            rs[0].set(pt, rs[0].get(pt) + u * POS_K);
                            rs[1].set(pt, rs[1].get(pt) + v * POS_K);
                            rs[4].set(pt, 0.0);
                            rs[5].set(pt, 0.0);
                        }
                    }) as TaskBody
                });
                wave.push(LaunchSpec::new(
                    format!("move_points[{iter}]"),
                    i % cfg.nodes,
                    vec![
                        RegionRequirement::read_write(mpiece, f_px),
                        RegionRequirement::read_write(mpiece, f_py),
                        RegionRequirement::read_write(mpiece, f_pu),
                        RegionRequirement::read_write(mpiece, f_pv),
                        RegionRequirement::read_write(mpiece, f_fx),
                        RegionRequirement::read_write(mpiece, f_fy),
                        RegionRequirement::read(ctrl_root, f_dt),
                    ],
                    mv_ns,
                    body,
                ));
            }
            let handles = rt.submit_batch(wave).expect("valid wave");
            if cfg.traced {
                rt.try_end_trace(0).expect("trace 0 is open");
            }
            run.iter_end.push(handles.last().unwrap().id());
        }

        if cfg.with_bodies {
            run.probes.push(rt.inline_read(points_root, f_px).unwrap());
            run.probes.push(rt.inline_read(points_root, f_py).unwrap());
            run.probes.push(rt.inline_read(points_root, f_pu).unwrap());
            run.probes.push(rt.inline_read(zones_root, f_zp).unwrap());
            run.probes.push(rt.inline_read(ctrl_root, f_dt).unwrap());
        }
        run
    }

    fn reference(&self) -> Vec<Vec<f64>> {
        let cfg = &self.cfg;
        let zx = cfg.zones_x();
        let zy = cfg.zones_y;
        let (pw, ph) = (zx + 1, zy + 1);
        let pidx = |x: i64, y: i64| (y * pw + x) as usize;
        let zidx = |x: i64, y: i64| (y * zx + x) as usize;
        let mut px: Vec<f64> = (0..pw * ph)
            .map(|k| Pennant::initial_px(Point::new(k % pw, k / pw)))
            .collect();
        let mut py: Vec<f64> = (0..pw * ph)
            .map(|k| Pennant::initial_py(Point::new(k % pw, k / pw)))
            .collect();
        let mut pu = vec![0.0f64; (pw * ph) as usize];
        let mut pv = vec![0.0f64; (pw * ph) as usize];
        let mut fx = vec![0.0f64; (pw * ph) as usize];
        let mut fy = vec![0.0f64; (pw * ph) as usize];
        let mut zp = vec![0.0f64; (zx * zy) as usize];
        let mut dt = 0.0f64;
        for _ in 0..cfg.iterations {
            dt = DT0;
            for y in 0..zy {
                for x in 0..zx {
                    zp[zidx(x, y)] = zone_pressure(
                        px[pidx(x, y)],
                        px[pidx(x + 1, y)],
                        py[pidx(x, y)],
                        py[pidx(x, y + 1)],
                    );
                }
            }
            // dt: per-piece partial minima, folded by the gather task.
            for i in 0..cfg.pieces as i64 {
                let mut m = f64::INFINITY;
                for y in 0..zy {
                    for x in i * cfg.zones_x_per_piece..(i + 1) * cfg.zones_x_per_piece {
                        m = m.min(zone_dt(zp[zidx(x, y)]));
                    }
                }
                dt = dt.min(m);
            }
            // Forces: per-piece accumulators folded in piece order, zone
            // iteration in the tasks' domain order (row-major per strip).
            for i in 0..cfg.pieces as i64 {
                let mut ax = std::collections::BTreeMap::new();
                let mut ay = std::collections::BTreeMap::new();
                for y in 0..zy {
                    for x in i * cfg.zones_x_per_piece..(i + 1) * cfg.zones_x_per_piece {
                        for (dx, dy, cfx, cfy) in corner_forces(zp[zidx(x, y)]) {
                            *ax.entry(pidx(x + dx, y + dy)).or_insert(0.0) += cfx;
                            *ay.entry(pidx(x + dx, y + dy)).or_insert(0.0) += cfy;
                        }
                    }
                }
                for (k, a) in ax {
                    fx[k] += a;
                }
                for (k, a) in ay {
                    fy[k] += a;
                }
            }
            for k in 0..(pw * ph) as usize {
                pu[k] += fx[k] * dt * VEL_K;
                pv[k] += fy[k] * dt * VEL_K;
                px[k] += pu[k] * POS_K;
                py[k] += pv[k] * POS_K;
                fx[k] = 0.0;
                fy[k] = 0.0;
            }
        }
        vec![px, py, pu, zp, vec![dt]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_runtime::{EngineKind, Runtime, RuntimeConfig};

    fn run_and_verify(engine: EngineKind, cfg: PennantConfig, nodes: usize, dcr: bool) {
        let app = Pennant::new(PennantConfig { nodes, ..cfg });
        let mut rt = Runtime::new(RuntimeConfig::new(engine).nodes(nodes).dcr(dcr));
        let run = app.execute(&mut rt);
        let violations =
            viz_runtime::validate::check_sufficiency(rt.forest(), rt.launches(), rt.dag());
        assert!(violations.is_empty(), "{engine:?}: {violations:?}");
        let store = rt.execute_values();
        let expect = app.reference();
        for (k, (probe, exp)) in run.probes.iter().zip(&expect).enumerate() {
            let got: Vec<f64> = store.inline(*probe).iter().map(|(_, v)| v).collect();
            assert_eq!(&got, exp, "{engine:?} probe {k} diverged");
        }
    }

    #[test]
    fn all_engines_match_reference() {
        for engine in EngineKind::all() {
            run_and_verify(engine, PennantConfig::small(3, 3), 1, false);
        }
    }

    #[test]
    fn multi_node_dcr_matches_reference() {
        for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
            run_and_verify(engine, PennantConfig::small(3, 2), 3, true);
        }
    }

    #[test]
    fn single_piece_runs() {
        run_and_verify(EngineKind::RayCast, PennantConfig::small(1, 2), 1, false);
    }

    #[test]
    fn point_partitions_are_consistent() {
        let app = Pennant::new(PennantConfig::small(4, 1));
        // Master partition: disjoint, covers all point columns.
        let mut total = 0;
        for i in 0..4 {
            let m = app.master_points(i);
            total += m.volume();
            for j in 0..i {
                assert!(!m.overlaps(&app.master_points(j)));
            }
        }
        let (zx, zy) = (app.cfg.zones_x(), app.cfg.zones_y);
        assert_eq!(total, ((zx + 1) * (zy + 1)) as u64);
        // Needed partition: neighbors share exactly one point column.
        let shared = IndexSpace::from_rect(app.needed_points(0))
            .intersect(&IndexSpace::from_rect(app.needed_points(1)));
        assert_eq!(shared.volume(), (zy + 1) as u64);
    }

    #[test]
    fn dt_reduction_serializes_iterations() {
        // Every piece's move_points reads dt, which every piece's calc_dt
        // reduced: one global synchronization per iteration.
        let app = Pennant::new(PennantConfig::small(3, 2));
        let mut rt = Runtime::single_node(EngineKind::RayCast);
        app.execute(&mut rt);
        // First iteration: init → calc_zones → calc_dt → move (4 levels);
        // each further iteration adds ≥ 3 levels (reset/calc_dt/move chain
        // through the dt control region).
        assert!(rt.dag().critical_path_len() >= 4 + 3);
    }
}
