//! The 2-D stencil benchmark (§8, \[26\]).
//!
//! A 9-point *star* stencil of radius 2 (two cells in each direction from
//! the center, no corners) over a structured grid of cells, intermixed with
//! a data-parallel increment — the Parallel Research Kernels "stencil"
//! pattern. The grid is tiled into `pieces` square tiles (the disjoint,
//! complete primary partition); each tile also names its two-cell **halo**
//! ring (an aliased, incomplete partition), which is where the coherence
//! analysis earns its keep: every iteration, each tile's stencil task reads
//! halo cells most recently written by its neighbors' increment tasks.
//!
//! Arithmetic uses dyadic weights (1/4, 1/8) so value-mode results are
//! bit-exact against the serial reference.

use crate::workload::{Workload, WorkloadRun};
use std::sync::Arc;
use viz_geometry::{IndexSpace, Point, Rect};
use viz_runtime::{LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, TaskBody};

/// Stencil radius (PRK default 2) and weights: distance-1 neighbors 1/4,
/// distance-2 neighbors 1/8.
pub const RADIUS: i64 = 2;
const W1: f64 = 0.25;
const W2: f64 = 0.125;

/// Modeled GPU time per grid point for the stencil task (calibrated so a
/// 6400² per-node tile runs ≈ 4 ms, matching the paper's ≈ 8·10⁹
/// points/s/node single-node throughput).
const STENCIL_NS_PER_POINT: f64 = 0.100;
const ADD_NS_PER_POINT: f64 = 0.025;
/// One-time per-piece data initialization (matches the paper's ≈ 60 ms
/// single-node init for stencil).
const INIT_TASK_NS: u64 = 30_000_000;

#[derive(Clone, Debug)]
pub struct StencilConfig {
    /// Number of tiles (= pieces). Arranged in a near-square grid.
    pub pieces: usize,
    /// Tile side length in cells.
    pub tile: i64,
    /// Top-level loop iterations.
    pub iterations: usize,
    /// Simulated machine nodes (pieces are mapped round-robin).
    pub nodes: usize,
    /// Attach real task bodies (value mode).
    pub with_bodies: bool,
    /// Wrap each top-level iteration in a runtime trace (dynamic tracing,
    /// the paper's reference \[15\]; §8 disables it — this knob measures the
    /// extension).
    pub traced: bool,
    /// Independent variable pairs: each gets its own `in`/`out` fields and
    /// its own init/stencil/add tasks per piece. Every pair contributes two
    /// `(root, field)` analysis shards, so `vars > 1` gives the sharded
    /// driver cross-shard scans to overlap. `1` is the paper's shape.
    pub vars: usize,
}

impl StencilConfig {
    /// A small value-mode configuration for correctness tests.
    pub fn small(pieces: usize, tile: i64, iterations: usize) -> Self {
        StencilConfig {
            pieces,
            tile,
            iterations,
            nodes: 1,
            with_bodies: true,
            traced: false,
            vars: 1,
        }
    }

    /// The weak-scaling configuration of Figs 12/15: one piece per node,
    /// fixed per-node tile, timed mode.
    pub fn paper(nodes: usize) -> Self {
        StencilConfig {
            pieces: nodes,
            tile: 6400,
            iterations: 10,
            nodes,
            with_bodies: false,
            traced: false,
            vars: 1,
        }
    }

    /// Tile arrangement: the largest divisor of `pieces` at most √pieces.
    pub fn tiles_xy(&self) -> (i64, i64) {
        let p = self.pieces as i64;
        let mut tx = (p as f64).sqrt() as i64;
        while tx > 1 && p % tx != 0 {
            tx -= 1;
        }
        (tx.max(1), p / tx.max(1))
    }

    pub fn grid_extent(&self) -> (i64, i64) {
        let (tx, ty) = self.tiles_xy();
        (tx * self.tile, ty * self.tile)
    }
}

/// The stencil application.
pub struct Stencil {
    pub cfg: StencilConfig,
}

impl Stencil {
    pub fn new(cfg: StencilConfig) -> Self {
        Stencil { cfg }
    }

    fn tile_rect(&self, i: usize) -> Rect {
        let (tx, _) = self.cfg.tiles_xy();
        let col = (i as i64) % tx;
        let row = (i as i64) / tx;
        Rect::xy(
            col * self.cfg.tile,
            (col + 1) * self.cfg.tile - 1,
            row * self.cfg.tile,
            (row + 1) * self.cfg.tile - 1,
        )
    }

    fn halo_space(&self, i: usize) -> IndexSpace {
        let (w, h) = self.cfg.grid_extent();
        let t = self.tile_rect(i);
        let grown = Rect::xy(
            (t.lo.x - RADIUS).max(0),
            (t.hi.x + RADIUS).min(w - 1),
            (t.lo.y - RADIUS).max(0),
            (t.hi.y + RADIUS).min(h - 1),
        );
        IndexSpace::from_rect(grown).subtract(&IndexSpace::from_rect(t))
    }

    /// The star-stencil value at `p` given an `in` accessor.
    #[inline]
    fn star(get: &impl Fn(Point) -> f64, p: Point) -> f64 {
        W1 * (get(p.offset(-1, 0))
            + get(p.offset(1, 0))
            + get(p.offset(0, -1))
            + get(p.offset(0, 1)))
            + W2 * (get(p.offset(-2, 0))
                + get(p.offset(2, 0))
                + get(p.offset(0, -2))
                + get(p.offset(0, 2)))
    }

    /// Initial `in` value for variable pair `v` (pairs get distinct data so
    /// a cross-variable dependence bug shows up as a value divergence).
    fn initial_var(v: usize, p: Point) -> f64 {
        ((p.x + 2 * p.y + v as i64) % 64) as f64
    }
}

impl Workload for Stencil {
    fn name(&self) -> &'static str {
        "stencil"
    }

    fn unit(&self) -> &'static str {
        "points"
    }

    fn execute(&self, rt: &mut Runtime) -> WorkloadRun {
        let cfg = &self.cfg;
        let vars = cfg.vars.max(1);
        let (w, h) = cfg.grid_extent();
        let grid = rt
            .forest_mut()
            .create_root("grid", IndexSpace::from_rect(Rect::xy(0, w - 1, 0, h - 1)));
        // One `in`/`out` field pair per variable: 2·vars analysis shards.
        let fields: Vec<(viz_region::FieldId, viz_region::FieldId)> = {
            let mut forest = rt.forest_mut();
            (0..vars)
                .map(|v| {
                    (
                        forest.add_field(grid, format!("in{v}")),
                        forest.add_field(grid, format!("out{v}")),
                    )
                })
                .collect()
        };
        let tiles: Vec<IndexSpace> = (0..cfg.pieces)
            .map(|i| IndexSpace::from_rect(self.tile_rect(i)))
            .collect();
        let p = rt
            .forest_mut()
            .create_partition_with_flags(grid, "P", tiles, true, true);
        let halos: Vec<IndexSpace> = (0..cfg.pieces).map(|i| self.halo_space(i)).collect();
        let hp = rt
            .forest_mut()
            .create_partition_with_flags(grid, "H", halos, false, false);

        let tile_points = (cfg.tile * cfg.tile) as u64;
        let stencil_ns = (tile_points as f64 * STENCIL_NS_PER_POINT) as u64;
        let add_ns = (tile_points as f64 * ADD_NS_PER_POINT) as u64;
        let mut run = WorkloadRun {
            elements_per_iter: (w * h) as u64 * vars as u64,
            ..Default::default()
        };

        // Setup: per-piece initialization of each variable's field pair.
        // Each wave goes through the batched driver; with one analysis
        // thread (or inside a trace) it degenerates to serial launches.
        let mut wave: Vec<LaunchSpec> = Vec::new();
        for i in 0..cfg.pieces {
            let piece = rt.forest().subregion(p, i);
            for (v, &(f_in, f_out)) in fields.iter().enumerate() {
                let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                    Arc::new(move |rs: &mut [PhysicalRegion]| {
                        rs[0].update_all(|pt, _| Stencil::initial_var(v, pt));
                        rs[1].update_all(|_, _| 0.0);
                    }) as TaskBody
                });
                wave.push(LaunchSpec::new(
                    "init",
                    i % cfg.nodes,
                    vec![
                        RegionRequirement::read_write(piece, f_in),
                        RegionRequirement::read_write(piece, f_out),
                    ],
                    INIT_TASK_NS,
                    body,
                ));
            }
        }
        rt.submit_batch(wave).expect("valid init wave");

        for iter in 0..cfg.iterations {
            if cfg.traced {
                rt.try_begin_trace(0).expect("no trace is open");
            }
            let mut wave: Vec<LaunchSpec> = Vec::new();
            for i in 0..cfg.pieces {
                let piece = rt.forest().subregion(p, i);
                let halo = rt.forest().subregion(hp, i);
                let (gw, gh) = (w, h);
                for &(f_in, f_out) in &fields {
                    let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                        Arc::new(move |rs: &mut [PhysicalRegion]| {
                            // rs[0] = out (rw tile), rs[1] = in (tile),
                            // rs[2] = in (halo).
                            let (out, ins) = rs.split_at_mut(1);
                            let get = |pt: Point| {
                                if ins[0].contains(pt) {
                                    ins[0].get(pt)
                                } else {
                                    ins[1].get(pt)
                                }
                            };
                            out[0].update_all(|pt, v| {
                                // PRK computes interior points only.
                                if pt.x >= RADIUS
                                    && pt.x < gw - RADIUS
                                    && pt.y >= RADIUS
                                    && pt.y < gh - RADIUS
                                {
                                    v + Stencil::star(&get, pt)
                                } else {
                                    v
                                }
                            });
                        }) as TaskBody
                    });
                    wave.push(LaunchSpec::new(
                        format!("stencil[{iter}]"),
                        i % cfg.nodes,
                        vec![
                            RegionRequirement::read_write(piece, f_out),
                            RegionRequirement::read(piece, f_in),
                            RegionRequirement::read(halo, f_in),
                        ],
                        stencil_ns,
                        body,
                    ));
                }
            }
            rt.submit_batch(wave).expect("valid stencil wave");
            // Second phase: the data-parallel increment `in += 1` (all
            // stencil tasks of the iteration read the pre-increment `in`).
            let mut wave: Vec<LaunchSpec> = Vec::new();
            for i in 0..cfg.pieces {
                let piece = rt.forest().subregion(p, i);
                for &(f_in, _) in &fields {
                    let body: Option<TaskBody> = cfg.with_bodies.then(|| {
                        Arc::new(move |rs: &mut [PhysicalRegion]| {
                            rs[0].update_all(|_, v| v + 1.0);
                        }) as TaskBody
                    });
                    wave.push(LaunchSpec::new(
                        format!("add[{iter}]"),
                        i % cfg.nodes,
                        vec![RegionRequirement::read_write(piece, f_in)],
                        add_ns,
                        body,
                    ));
                }
            }
            let handles = rt.submit_batch(wave).expect("valid add wave");
            if cfg.traced {
                rt.try_end_trace(0).expect("trace 0 is open");
            }
            run.iter_end.push(handles.last().unwrap().id());
        }

        if cfg.with_bodies {
            for &(f_in, f_out) in &fields {
                run.probes.push(rt.inline_read(grid, f_out).unwrap());
                run.probes.push(rt.inline_read(grid, f_in).unwrap());
            }
        }
        run
    }

    fn reference(&self) -> Vec<Vec<f64>> {
        let cfg = &self.cfg;
        let vars = cfg.vars.max(1);
        let (w, h) = cfg.grid_extent();
        let idx = |x: i64, y: i64| (y * w + x) as usize;
        let mut out = Vec::with_capacity(2 * vars);
        for var in 0..vars {
            let mut vin: Vec<f64> = (0..w * h)
                .map(|k| Stencil::initial_var(var, Point::new(k % w, k / w)))
                .collect();
            let mut vout = vec![0.0f64; (w * h) as usize];
            for _ in 0..cfg.iterations {
                // The stencil tasks all read the same `in` version; apply
                // them as one grid-wide step (their tiles are disjoint).
                let prev = vin.clone();
                let get = |p: Point| prev[idx(p.x, p.y)];
                for y in RADIUS..h - RADIUS {
                    for x in RADIUS..w - RADIUS {
                        vout[idx(x, y)] += Stencil::star(&get, Point::new(x, y));
                    }
                }
                for v in vin.iter_mut() {
                    *v += 1.0;
                }
            }
            out.push(vout);
            out.push(vin);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_runtime::{EngineKind, Runtime, RuntimeConfig};

    fn run_and_verify(engine: EngineKind, cfg: StencilConfig, nodes: usize, dcr: bool) {
        run_and_verify_threads(engine, cfg, nodes, dcr, 1);
    }

    fn run_and_verify_threads(
        engine: EngineKind,
        cfg: StencilConfig,
        nodes: usize,
        dcr: bool,
        threads: usize,
    ) {
        let app = Stencil::new(StencilConfig {
            nodes,
            ..cfg.clone()
        });
        let mut rt = Runtime::new(
            RuntimeConfig::new(engine)
                .nodes(nodes)
                .dcr(dcr)
                .analysis_threads(threads),
        );
        let run = app.execute(&mut rt);
        let violations =
            viz_runtime::validate::check_sufficiency(rt.forest(), rt.launches(), rt.dag());
        assert!(violations.is_empty(), "{engine:?}: {violations:?}");
        let store = rt.execute_values();
        let expect = app.reference();
        for (probe, exp) in run.probes.iter().zip(&expect) {
            let got = store.inline(*probe);
            let vals: Vec<f64> = got.iter().map(|(_, v)| v).collect();
            assert_eq!(&vals, exp, "{engine:?} diverged from serial stencil");
        }
    }

    #[test]
    fn single_piece_matches_reference() {
        for engine in EngineKind::all() {
            run_and_verify(engine, StencilConfig::small(1, 8, 3), 1, false);
        }
    }

    #[test]
    fn four_pieces_exchange_halos_correctly() {
        for engine in EngineKind::all() {
            run_and_verify(engine, StencilConfig::small(4, 6, 3), 1, false);
        }
    }

    #[test]
    fn multi_node_dcr_matches_reference() {
        for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
            run_and_verify(engine, StencilConfig::small(4, 6, 2), 4, true);
        }
    }

    #[test]
    fn rectangular_piece_grids() {
        // 6 pieces → 2×3 tiles; 8 pieces → 2×4.
        for pieces in [2, 6, 8] {
            run_and_verify(
                EngineKind::RayCast,
                StencilConfig::small(pieces, 5, 2),
                2,
                false,
            );
        }
    }

    #[test]
    fn stencil_parallelism_within_iteration() {
        // All stencil tasks of one iteration can run concurrently: the DAG
        // waves are (init)(stencil*)(add*)(stencil*)…
        let app = Stencil::new(StencilConfig::small(4, 6, 2));
        let mut rt = Runtime::single_node(EngineKind::RayCast);
        app.execute(&mut rt);
        let waves = rt.dag().waves();
        // init wave, then 2 iterations × (stencil wave + add wave), probes.
        assert!(waves[0].len() >= 4, "init tasks are parallel");
        assert!(waves[1].len() == 4, "stencil tasks are parallel");
    }

    #[test]
    fn independent_variable_pairs_match_reference() {
        for engine in EngineKind::all() {
            run_and_verify(
                engine,
                StencilConfig {
                    vars: 2,
                    ..StencilConfig::small(4, 6, 2)
                },
                1,
                false,
            );
        }
    }

    #[test]
    fn sharded_driver_matches_reference() {
        // The batched driver with 4 analysis threads must produce the same
        // values as the serial path, on every engine, with and without DCR.
        for engine in EngineKind::all() {
            for (nodes, dcr) in [(1, false), (4, true)] {
                run_and_verify_threads(
                    engine,
                    StencilConfig {
                        vars: 3,
                        ..StencilConfig::small(4, 6, 3)
                    },
                    nodes,
                    dcr,
                    4,
                );
            }
        }
    }

    #[test]
    fn tiles_xy_factors_pieces() {
        for pieces in 1..=64usize {
            let cfg = StencilConfig::small(pieces, 4, 1);
            let (tx, ty) = cfg.tiles_xy();
            assert_eq!((tx * ty) as usize, pieces);
            assert!(tx <= ty);
        }
    }

    #[test]
    fn halo_never_overlaps_own_tile() {
        let app = Stencil::new(StencilConfig::small(9, 5, 1));
        for i in 0..9 {
            let tile = IndexSpace::from_rect(app.tile_rect(i));
            let halo = app.halo_space(i);
            assert!(!tile.overlaps(&halo));
        }
    }
}
