//! The common workload interface the benchmark harness drives.

use viz_runtime::{Runtime, TaskId};

/// The record of one application run: iteration boundaries for the paper's
/// two measurement phases (§8: initialization = application start through
/// the end of the first iteration of the top-level loop; steady state = the
/// remaining iterations) plus verification probes.
#[derive(Clone, Debug, Default)]
pub struct WorkloadRun {
    /// Last task id of each top-level-loop iteration. `iter_end[0]` closes
    /// the initialization phase (setup tasks + the first iteration).
    pub iter_end: Vec<TaskId>,
    /// Application elements processed per iteration (points / wires /
    /// zones) — the numerator of the weak-scaling throughput figures.
    pub elements_per_iter: u64,
    /// Inline-read probes appended after the last iteration (value mode
    /// only), for verification against the serial reference.
    pub probes: Vec<TaskId>,
}

/// A benchmark application.
pub trait Workload {
    fn name(&self) -> &'static str;

    /// The element unit of the weak-scaling figure ("points", "wires",
    /// "zones").
    fn unit(&self) -> &'static str;

    /// Build regions/partitions in the runtime and launch every iteration.
    fn execute(&self, rt: &mut Runtime) -> WorkloadRun;

    /// The expected final field values (value mode), one vector per probe
    /// in [`WorkloadRun::probes`], computed by an independent serial
    /// implementation.
    fn reference(&self) -> Vec<Vec<f64>>;
}
