//! # viz-array
//!
//! Implicitly-distributed 1-D arrays in the style of Legate NumPy (the
//! paper's reference \[3\]): "high-productivity programming models based on
//! automatic discovery of parallelism from computations over
//! implicitly-distributed collection data types, such as arrays and
//! dataframes" (§1).
//!
//! A [`DistArray`] is a root region with one field, block-partitioned into
//! pieces mapped round-robin over the machine. Every operation launches one
//! task per piece; the runtime's visibility analysis discovers the
//! parallelism and the communication:
//!
//! * elementwise ops ([`DistArray::map`], [`DistArray::zip_with`]) are
//!   embarrassingly parallel — disjoint pieces, no dependences across
//!   arrays' pieces of the same index;
//! * [`DistArray::shift_add`] needs each piece's neighbor elements — the
//!   halo partition is *computed* with dependent partitioning
//!   (`image(pieces, i ↦ i±offset) \ pieces`), and the analysis routes the
//!   freshest neighbor values automatically;
//! * [`DistArray::sum`] / [`DistArray::min`] reduce through per-piece
//!   `reduce+`/`reduce min` partials folded by a gather task;
//! * [`DistArray::slice`] names an arbitrary subrange — *aliased* with the
//!   block partition, the case that needs content-based coherence (§2).
//!
//! Execution stays deferred: build a whole computation, then call
//! `Runtime::execute_values` once and resolve [`Scalar`]s and
//! [`ArrayProbe`]s against the returned store.

// Deprecated-wrapper allowlist (PR 4): this crate still uses the panicking
// `launch`/`set_initial` spellings; migrate to `submit` in PR 5.

use std::sync::Arc;
use viz_geometry::{IndexSpace, Point};
use viz_region::{deppart, FieldId, PartitionId, RedOpRegistry, RegionId};
use viz_runtime::exec::ValueStore;
use viz_runtime::{LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, TaskBody, TaskId};

/// A deferred scalar result (from a reduction).
#[derive(Copy, Clone, Debug)]
pub struct Scalar {
    probe: TaskId,
}

impl Scalar {
    /// Resolve against the store returned by `Runtime::execute_values`.
    pub fn get(&self, store: &ValueStore) -> f64 {
        store.inline(self.probe).get(Point::p1(0))
    }
}

/// A deferred snapshot of a whole array.
#[derive(Copy, Clone, Debug)]
pub struct ArrayProbe {
    probe: TaskId,
    len: i64,
}

impl ArrayProbe {
    pub fn get(&self, store: &ValueStore) -> Vec<f64> {
        let r = store.inline(self.probe);
        (0..self.len).map(|i| r.get(Point::p1(i))).collect()
    }
}

/// An implicitly-distributed 1-D `f64` array.
#[derive(Clone, Debug)]
pub struct DistArray {
    root: RegionId,
    field: FieldId,
    part: PartitionId,
    pieces: usize,
    len: i64,
}

impl DistArray {
    /// A zero-filled array of `len` elements in `pieces` blocks.
    pub fn zeros(rt: &mut Runtime, len: i64, pieces: usize) -> Self {
        Self::from_fn(rt, len, pieces, |_| 0.0)
    }

    /// Build from an index function (evaluated in per-piece init tasks).
    pub fn from_fn(
        rt: &mut Runtime,
        len: i64,
        pieces: usize,
        f: impl Fn(i64) -> f64 + Send + Sync + Clone + 'static,
    ) -> Self {
        assert!(len > 0 && pieces > 0 && pieces as i64 <= len);
        let root = rt.forest_mut().create_root_1d("array", len);
        let field = rt.forest_mut().add_field(root, "data");
        let part = rt
            .forest_mut()
            .create_equal_partition_1d(root, "blocks", pieces);
        let arr = DistArray {
            root,
            field,
            part,
            pieces,
            len,
        };
        for i in 0..pieces {
            let piece = rt.forest().subregion(part, i);
            let f = f.clone();
            rt.submit(LaunchSpec::new(
                "array_init",
                arr.node_of(rt, i),
                vec![RegionRequirement::read_write(piece, field)],
                0,
                Some(Arc::new(move |rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|p, _| f(p.x));
                }) as TaskBody),
            ))
            .unwrap()
            .id();
        }
        arr
    }

    pub fn len(&self) -> i64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn pieces(&self) -> usize {
        self.pieces
    }

    fn node_of(&self, rt: &Runtime, piece: usize) -> usize {
        // `num_nodes` is a cached constant — unlike `machine()`, it does
        // not drain the submission pipeline on every launch.
        piece % rt.num_nodes()
    }

    /// A new array with `f` applied elementwise.
    pub fn map(
        &self,
        rt: &mut Runtime,
        f: impl Fn(f64) -> f64 + Send + Sync + Clone + 'static,
    ) -> DistArray {
        let out = DistArray::zeros(rt, self.len, self.pieces);
        for i in 0..self.pieces {
            let src = rt.forest().subregion(self.part, i);
            let dst = rt.forest().subregion(out.part, i);
            let f = f.clone();
            rt.submit(LaunchSpec::new(
                "array_map",
                self.node_of(rt, i),
                vec![
                    RegionRequirement::read_write(dst, out.field),
                    RegionRequirement::read(src, self.field),
                ],
                0,
                Some(Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let (w, r) = rs.split_at_mut(1);
                    w[0].update_all(|p, _| f(r[0].get(p)));
                }) as TaskBody),
            ))
            .unwrap()
            .id();
        }
        out
    }

    /// Apply `f` elementwise in place.
    pub fn map_inplace(
        &self,
        rt: &mut Runtime,
        f: impl Fn(f64) -> f64 + Send + Sync + Clone + 'static,
    ) {
        for i in 0..self.pieces {
            let piece = rt.forest().subregion(self.part, i);
            let f = f.clone();
            rt.submit(LaunchSpec::new(
                "array_map_inplace",
                self.node_of(rt, i),
                vec![RegionRequirement::read_write(piece, self.field)],
                0,
                Some(Arc::new(move |rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| f(v));
                }) as TaskBody),
            ))
            .unwrap()
            .id();
        }
    }

    /// A new array `f(self[i], other[i])`. Arrays must have equal length
    /// and piece counts.
    pub fn zip_with(
        &self,
        rt: &mut Runtime,
        other: &DistArray,
        f: impl Fn(f64, f64) -> f64 + Send + Sync + Clone + 'static,
    ) -> DistArray {
        assert_eq!(self.len, other.len, "length mismatch");
        assert_eq!(self.pieces, other.pieces, "piece-count mismatch");
        let out = DistArray::zeros(rt, self.len, self.pieces);
        for i in 0..self.pieces {
            let a = rt.forest().subregion(self.part, i);
            let b = rt.forest().subregion(other.part, i);
            let dst = rt.forest().subregion(out.part, i);
            let f = f.clone();
            rt.submit(LaunchSpec::new(
                "array_zip",
                self.node_of(rt, i),
                vec![
                    RegionRequirement::read_write(dst, out.field),
                    RegionRequirement::read(a, self.field),
                    RegionRequirement::read(b, other.field),
                ],
                0,
                Some(Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let (w, r) = rs.split_at_mut(1);
                    w[0].update_all(|p, _| f(r[0].get(p), r[1].get(p)));
                }) as TaskBody),
            ))
            .unwrap()
            .id();
        }
        out
    }

    /// `self + other`, elementwise.
    pub fn add(&self, rt: &mut Runtime, other: &DistArray) -> DistArray {
        self.zip_with(rt, other, |a, b| a + b)
    }

    /// `self * other`, elementwise.
    pub fn mul(&self, rt: &mut Runtime, other: &DistArray) -> DistArray {
        self.zip_with(rt, other, |a, b| a * b)
    }

    /// `self += coeff * shifted(self, offset)`, where out-of-range
    /// neighbors contribute 0 — the halo-exchange pattern. Each piece's
    /// needed neighbor cells are computed with dependent partitioning.
    pub fn shift_add(&self, rt: &mut Runtime, offset: i64, coeff: f64) {
        assert!(offset != 0, "offset 0 would alias the write");
        let len = self.len;
        // Halo = image of each piece through i ↦ i+offset, minus the piece.
        let touched = deppart::image(
            &mut rt.forest_mut(),
            self.part,
            self.root,
            format!("shift{offset}"),
            move |p| {
                let q = p.x + offset;
                if q >= 0 && q < len {
                    vec![Point::p1(q)]
                } else {
                    vec![]
                }
            },
        );
        let halo = deppart::difference(&mut rt.forest_mut(), touched, self.part, "halo");
        for i in 0..self.pieces {
            let piece = rt.forest().subregion(self.part, i);
            let h = rt.forest().subregion(halo, i);
            rt.submit(LaunchSpec::new(
                "array_shift_add",
                self.node_of(rt, i),
                vec![
                    RegionRequirement::read_write(piece, self.field),
                    RegionRequirement::read(h, self.field),
                ],
                0,
                Some(Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let (w, r) = rs.split_at_mut(1);
                    let dom = w[0].domain().clone();
                    let mut news = Vec::new();
                    for p in dom.points() {
                        let q = Point::p1(p.x + offset);
                        let n = if w[0].contains(q) {
                            // Same piece: read the *pre-update* value — we
                            // buffer updates and apply after the scan.
                            w[0].get(q)
                        } else if r[0].contains(q) {
                            r[0].get(q)
                        } else {
                            0.0
                        };
                        news.push((p, w[0].get(p) + coeff * n));
                    }
                    for (p, v) in news {
                        w[0].set(p, v);
                    }
                }) as TaskBody),
            ))
            .unwrap()
            .id();
        }
    }

    /// Deferred sum of all elements (per-piece `reduce+` partials, one
    /// gather task).
    pub fn sum(&self, rt: &mut Runtime) -> Scalar {
        self.reduce(rt, RedOpRegistry::SUM, 0.0, |acc, v| acc + v)
    }

    /// Deferred minimum.
    pub fn min(&self, rt: &mut Runtime) -> Scalar {
        self.reduce(rt, RedOpRegistry::MIN, f64::INFINITY, f64::min)
    }

    fn reduce(
        &self,
        rt: &mut Runtime,
        op: viz_region::ReductionOpId,
        identity: f64,
        fold: impl Fn(f64, f64) -> f64 + Send + Sync + Clone + 'static,
    ) -> Scalar {
        let partials_root = rt
            .forest_mut()
            .create_root_1d("partials", self.pieces as i64);
        let pf = rt.forest_mut().add_field(partials_root, "p");
        rt.try_set_initial(partials_root, pf, move |_| identity)
            .unwrap();
        let ppart = rt
            .forest_mut()
            .create_equal_partition_1d(partials_root, "pp", self.pieces);
        for i in 0..self.pieces {
            let piece = rt.forest().subregion(self.part, i);
            let slot_region = rt.forest().subregion(ppart, i);
            let slot = Point::p1(i as i64);
            let fold = fold.clone();
            rt.submit(LaunchSpec::new(
                "array_reduce_piece",
                self.node_of(rt, i),
                vec![
                    RegionRequirement::read(piece, self.field),
                    RegionRequirement::reduce(slot_region, pf, op),
                ],
                0,
                Some(Arc::new(move |rs: &mut [PhysicalRegion]| {
                    let mut acc = None;
                    for (_, v) in rs[0].iter() {
                        acc = Some(match acc {
                            None => v,
                            Some(a) => fold(a, v),
                        });
                    }
                    if let Some(a) = acc {
                        rs[1].reduce(slot, a);
                    }
                }) as TaskBody),
            ))
            .unwrap()
            .id();
        }
        // Gather: fold the partials into a fresh scalar region.
        let out_root = rt.forest_mut().create_root_1d("scalar", 1);
        let of = rt.forest_mut().add_field(out_root, "v");
        let pieces = self.pieces as i64;
        let fold2 = fold.clone();
        rt.submit(LaunchSpec::new(
            "array_reduce_gather",
            0,
            vec![
                RegionRequirement::read(partials_root, pf),
                RegionRequirement::read_write(out_root, of),
            ],
            0,
            Some(Arc::new(move |rs: &mut [PhysicalRegion]| {
                let mut acc = identity;
                for i in 0..pieces {
                    acc = fold2(acc, rs[0].get(Point::p1(i)));
                }
                rs[1].set(Point::p1(0), acc);
            }) as TaskBody),
        ))
        .unwrap()
        .id();
        let probe = rt.inline_read(out_root, of).unwrap();
        Scalar { probe }
    }

    /// Dot product (elementwise multiply then sum).
    pub fn dot(&self, rt: &mut Runtime, other: &DistArray) -> Scalar {
        let prod = self.mul(rt, other);
        prod.sum(rt)
    }

    /// Fill an arbitrary subrange `[lo, hi]` with a value — the slice
    /// *aliases* the block partition, requiring content-based coherence.
    pub fn fill_slice(&self, rt: &mut Runtime, lo: i64, hi: i64, value: f64) {
        assert!(lo <= hi && lo >= 0 && hi < self.len, "slice out of range");
        let slice = rt.forest_mut().create_partition_with_flags(
            self.root,
            format!("slice{lo}_{hi}"),
            vec![IndexSpace::span(lo, hi)],
            true,
            false,
        );
        let region = rt.forest().subregion(slice, 0);
        rt.submit(LaunchSpec::new(
            "array_fill_slice",
            0,
            vec![RegionRequirement::read_write(region, self.field)],
            0,
            Some(Arc::new(move |rs: &mut [PhysicalRegion]| {
                rs[0].update_all(|_, _| value);
            }) as TaskBody),
        ))
        .unwrap()
        .id();
    }

    /// Deferred snapshot of the whole array.
    pub fn probe(&self, rt: &mut Runtime) -> ArrayProbe {
        ArrayProbe {
            probe: rt.inline_read(self.root, self.field).unwrap(),
            len: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_runtime::validate::check_sufficiency;
    use viz_runtime::{EngineKind, RuntimeConfig};

    fn rt(engine: EngineKind, nodes: usize) -> Runtime {
        Runtime::new(RuntimeConfig::new(engine).nodes(nodes))
    }

    fn finish(rt: &Runtime) -> ValueStore {
        assert!(
            check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty(),
            "unsound DAG"
        );
        rt.execute_values()
    }

    #[test]
    fn axpy_matches_reference() {
        for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
            let mut rt = rt(engine, 2);
            let x = DistArray::from_fn(&mut rt, 40, 4, |i| i as f64);
            let y = DistArray::from_fn(&mut rt, 40, 4, |i| (i * 2) as f64);
            let ax = x.map(&mut rt, |v| v * 3.0);
            let z = ax.add(&mut rt, &y);
            let probe = z.probe(&mut rt);
            let store = finish(&rt);
            let got = probe.get(&store);
            let expect: Vec<f64> = (0..40).map(|i| 3.0 * i as f64 + 2.0 * i as f64).collect();
            assert_eq!(got, expect, "{engine:?}");
        }
    }

    #[test]
    fn dot_and_sums() {
        let mut rt = rt(EngineKind::RayCast, 3);
        let x = DistArray::from_fn(&mut rt, 30, 3, |i| (i % 5) as f64);
        let y = DistArray::from_fn(&mut rt, 30, 3, |i| ((i + 1) % 3) as f64);
        let d = x.dot(&mut rt, &y);
        let s = x.sum(&mut rt);
        let m = y.min(&mut rt);
        let store = finish(&rt);
        let expect_dot: f64 = (0..30)
            .map(|i| ((i % 5) as f64) * (((i + 1) % 3) as f64))
            .sum();
        let expect_sum: f64 = (0..30).map(|i| (i % 5) as f64).sum();
        assert_eq!(d.get(&store), expect_dot);
        assert_eq!(s.get(&store), expect_sum);
        assert_eq!(m.get(&store), 0.0);
    }

    #[test]
    fn shift_add_crosses_piece_boundaries() {
        for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
            let mut rt = rt(engine, 2);
            let x = DistArray::from_fn(&mut rt, 16, 4, |i| i as f64);
            x.shift_add(&mut rt, 1, 0.5); // x[i] += 0.5 * x[i+1]
            let probe = x.probe(&mut rt);
            let store = finish(&rt);
            let got = probe.get(&store);
            let expect: Vec<f64> = (0..16)
                .map(|i| {
                    let n = if i + 1 < 16 { (i + 1) as f64 } else { 0.0 };
                    i as f64 + 0.5 * n
                })
                .collect();
            assert_eq!(got, expect, "{engine:?}");
        }
    }

    #[test]
    fn slices_alias_the_block_partition() {
        let mut rt = rt(EngineKind::RayCast, 2);
        let x = DistArray::from_fn(&mut rt, 20, 4, |i| i as f64);
        // The slice spans pieces 1 and 2; subsequent ops must see it.
        x.fill_slice(&mut rt, 7, 12, -1.0);
        let s = x.sum(&mut rt);
        let probe = x.probe(&mut rt);
        let store = finish(&rt);
        let got = probe.get(&store);
        for i in 0..20i64 {
            let expect = if (7..=12).contains(&i) {
                -1.0
            } else {
                i as f64
            };
            assert_eq!(got[i as usize], expect);
        }
        let expect_sum: f64 = (0..20)
            .map(|i| {
                if (7..=12).contains(&i) {
                    -1.0
                } else {
                    i as f64
                }
            })
            .sum();
        assert_eq!(s.get(&store), expect_sum);
    }

    #[test]
    fn pipelines_stay_parallel_across_pieces() {
        let mut rt = rt(EngineKind::RayCast, 4);
        let x = DistArray::from_fn(&mut rt, 40, 4, |i| i as f64);
        let y = x.map(&mut rt, |v| v + 1.0);
        let _z = x.add(&mut rt, &y);
        // Waves: 4 inits, then zeros+maps etc. — but nothing within a wave
        // serializes: every wave has multiples of 4 tasks.
        let waves = rt.dag().waves();
        assert!(waves.iter().all(|w| w.len() % 4 == 0 || w.len() == 1));
    }

    #[test]
    fn chained_computation_deep_pipeline() {
        let mut rt = rt(EngineKind::Warnock, 2);
        let x = DistArray::from_fn(&mut rt, 24, 3, |i| (i % 7) as f64);
        for _ in 0..4 {
            x.map_inplace(&mut rt, |v| v * 2.0);
            x.shift_add(&mut rt, -1, 1.0);
        }
        let probe = x.probe(&mut rt);
        let store = finish(&rt);
        // Reference computation, honoring sequential task order: the
        // shift task of piece j runs after piece j-1's (so a cross-piece
        // neighbor read sees the *updated* neighbor), while same-piece
        // reads see the piece's pre-update values (task-local buffering).
        let mut r: Vec<f64> = (0..24).map(|i| (i % 7) as f64).collect();
        for _ in 0..4 {
            for v in r.iter_mut() {
                *v *= 2.0;
            }
            for piece in 0..3usize {
                let lo = piece * 8;
                let old_piece: Vec<f64> = r[lo..lo + 8].to_vec();
                for k in 0..8usize {
                    let i = lo + k;
                    let n = if i == 0 {
                        0.0
                    } else if i > lo {
                        old_piece[i - 1 - lo]
                    } else {
                        r[i - 1]
                    };
                    r[i] += n;
                }
            }
        }
        assert_eq!(probe.get(&store), r);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_length_mismatch_panics() {
        let mut rt = rt(EngineKind::RayCast, 1);
        let x = DistArray::zeros(&mut rt, 10, 2);
        let y = DistArray::zeros(&mut rt, 12, 2);
        x.add(&mut rt, &y);
    }

    #[test]
    #[should_panic(expected = "slice out of range")]
    fn bad_slice_panics() {
        let mut rt = rt(EngineKind::RayCast, 1);
        let x = DistArray::zeros(&mut rt, 10, 2);
        x.fill_slice(&mut rt, 5, 10, 0.0);
    }
}
