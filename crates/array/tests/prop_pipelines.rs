//! Property test: random deferred array pipelines match a direct `Vec`
//! interpretation, under every engine and machine shape.

use proptest::prelude::*;
use viz_array::DistArray;
use viz_runtime::validate::check_sufficiency;
use viz_runtime::{EngineKind, Runtime, RuntimeConfig};

const LEN: i64 = 32;
const PIECES: usize = 4;
const PIECE: usize = (LEN as usize) / PIECES;

#[derive(Clone, Debug)]
enum Op {
    MapAdd(i8),
    MapScale(bool), // ×2 or ×0.5 (exact)
    ShiftAdd { offset: i8, coeff_quarters: u8 },
    FillSlice { lo: u8, len: u8, value: i8 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-8i8..8).prop_map(Op::MapAdd),
        any::<bool>().prop_map(Op::MapScale),
        ((1i8..3), (1u8..4)).prop_map(|(offset, coeff_quarters)| Op::ShiftAdd {
            offset,
            coeff_quarters,
        }),
        ((0u8..28), (1u8..8), (-5i8..5)).prop_map(|(lo, len, value)| Op::FillSlice {
            lo,
            len,
            value,
        }),
    ]
}

/// Apply one op to the reference vector, mirroring sequential task order
/// (see `DistArray::shift_add`: the task for piece j sees pieces < j
/// already updated; same-piece reads are pre-update).
fn apply_ref(r: &mut [f64], op: &Op) {
    match op {
        Op::MapAdd(a) => r.iter_mut().for_each(|v| *v += *a as f64),
        Op::MapScale(up) => {
            let k = if *up { 2.0 } else { 0.5 };
            r.iter_mut().for_each(|v| *v *= k);
        }
        Op::ShiftAdd {
            offset,
            coeff_quarters,
        } => {
            let coeff = *coeff_quarters as f64 * 0.25;
            let off = *offset as i64;
            for piece in 0..PIECES {
                let lo = piece * PIECE;
                let old: Vec<f64> = r[lo..lo + PIECE].to_vec();
                for k in 0..PIECE {
                    let i = lo + k;
                    let q = i as i64 + off;
                    let n = if !(0..LEN).contains(&q) {
                        0.0
                    } else if (q as usize) >= lo && (q as usize) < lo + PIECE {
                        old[q as usize - lo]
                    } else {
                        r[q as usize]
                    };
                    r[i] += coeff * n;
                }
            }
        }
        Op::FillSlice { lo, len, value } => {
            let lo = *lo as usize;
            let hi = (lo + *len as usize).min(LEN as usize - 1);
            for v in &mut r[lo..=hi] {
                *v = *value as f64;
            }
        }
    }
}

fn apply_rt(rt: &mut Runtime, arr: &DistArray, op: &Op) {
    match op {
        Op::MapAdd(a) => {
            let a = *a as f64;
            arr.map_inplace(rt, move |v| v + a);
        }
        Op::MapScale(up) => {
            let k = if *up { 2.0 } else { 0.5 };
            arr.map_inplace(rt, move |v| v * k);
        }
        Op::ShiftAdd {
            offset,
            coeff_quarters,
        } => arr.shift_add(rt, *offset as i64, *coeff_quarters as f64 * 0.25),
        Op::FillSlice { lo, len, value } => {
            let lo = *lo as i64;
            let hi = (lo + *len as i64).min(LEN - 1);
            arr.fill_slice(rt, lo, hi, *value as f64);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pipelines_match_vec_reference(ops in prop::collection::vec(op(), 1..8)) {
        let mut reference: Vec<f64> = (0..LEN).map(|i| (i % 6) as f64).collect();
        for o in &ops {
            apply_ref(&mut reference, o);
        }
        let ref_sum: f64 = reference.iter().sum();

        for engine in [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast] {
            for nodes in [1usize, 3] {
                let mut rt = Runtime::new(RuntimeConfig::new(engine).nodes(nodes));
                let arr = DistArray::from_fn(&mut rt, LEN, PIECES, |i| (i % 6) as f64);
                for o in &ops {
                    apply_rt(&mut rt, &arr, o);
                }
                let sum = arr.sum(&mut rt);
                let probe = arr.probe(&mut rt);
                prop_assert!(
                    check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty(),
                    "{:?} nodes={}", engine, nodes
                );
                let store = rt.execute_values();
                prop_assert_eq!(probe.get(&store), reference.clone(),
                    "{:?} nodes={} ops={:?}", engine, nodes, ops);
                prop_assert_eq!(sum.get(&store), ref_sum);
            }
        }
    }
}
