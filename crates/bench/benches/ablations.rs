//! Ablation benches for the design choices DESIGN.md §6 calls out.
//!
//! * **A1** — painter's composite views + region-tree sub-histories vs the
//!   literal Fig 7 global history.
//! * **A2** — Warnock's memoized constituent-set lookup (§6.1) vs
//!   traversing the refinement tree from the root on every launch.
//! * **A3** — ray casting's partition-anchored index vs the K-d tree
//!   fallback (§7.1).
//! * **A4** — dominating-write pruning: equivalence sets retained by
//!   RayCast vs Warnock on the same launch stream (reported, not timed).
//! * **A5** — index-space set algebra on the hot shapes (halo rings,
//!   sparse ghost sets).
//! * **A7** — the sharded analysis driver (`analysis_threads > 1`) vs the
//!   serial one on a multi-variable stencil (host time; the analyses are
//!   bit-identical, see `tests/sharded_determinism.rs`).

use criterion::{BenchmarkId, Criterion};
use viz_apps::{Circuit, CircuitConfig, Stencil, StencilConfig, Workload};
use viz_bench::{measure, AppKind, RunConfig};
use viz_geometry::{IndexSpace, Point, Rect};
use viz_runtime::analysis::{
    paint::Painter, paint_naive::PaintNaive, raycast::RayCast, warnock::Warnock,
};
use viz_runtime::{CoherenceEngine, EngineKind, Runtime, RuntimeConfig};

fn run_with_engine(engine: Box<dyn CoherenceEngine>, workload: &dyn Workload, nodes: usize) {
    let mut rt = rt_with_engine(engine, workload, nodes);
    assert!(rt.num_tasks() > 0);
    rt.machine_mut().reset_counters();
}

fn rt_with_engine(
    engine: Box<dyn CoherenceEngine>,
    workload: &dyn Workload,
    nodes: usize,
) -> Runtime {
    let mut rt = Runtime::with_engine(
        RuntimeConfig::new(EngineKind::RayCast)
            .nodes(nodes)
            .validate(false),
        engine,
    );
    let run = workload.execute(&mut rt);
    assert!(!run.iter_end.is_empty());
    rt
}

/// A1: the quantity §5.1's optimizations target is the analysis *work*
/// (history entries scanned), not host time — the literal Fig 7 history
/// grows without bound while the tree version's occlusion pruning keeps
/// the visible state small. Reported as a table over loop length.
fn a1_paint_views_report() {
    println!("\n# Ablation A1: painter tree+views vs literal Fig 7 (4 pieces)");
    println!("iterations\ttree_entries_scanned\tnaive_entries_scanned\ttree_state\tnaive_state");
    for iterations in [10usize, 40, 160] {
        let app = Stencil::new(StencilConfig {
            with_bodies: false,
            nodes: 4,
            ..StencilConfig::small(4, 64, iterations)
        });
        let tree = rt_with_engine(Box::new(Painter::new()), &app, 4);
        let naive = rt_with_engine(Box::new(PaintNaive::without_pruning()), &app, 4);
        println!(
            "{iterations}\t{}\t{}\t{}\t{}",
            tree.machine().counters().hist_entries_scanned,
            naive.machine().counters().hist_entries_scanned,
            tree.stats().state.history_entries,
            naive.stats().state.history_entries,
        );
        if iterations >= 40 {
            assert!(
                naive.machine().counters().hist_entries_scanned
                    > 2 * tree.machine().counters().hist_entries_scanned,
                "the unpruned global history must dominate on long loops"
            );
        }
    }
}

fn a2_warnock_memo(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_warnock_memo");
    g.sample_size(10);
    for pieces in [4usize, 16] {
        let app = Circuit::new(CircuitConfig {
            with_bodies: false,
            nodes: pieces,
            iterations: 5,
            ..CircuitConfig::small(pieces, 5)
        });
        g.bench_with_input(BenchmarkId::new("memoized", pieces), &pieces, |b, &n| {
            b.iter(|| run_with_engine(Box::new(Warnock::new()), &app, n));
        });
        g.bench_with_input(BenchmarkId::new("no_memo", pieces), &pieces, |b, &n| {
            b.iter(|| run_with_engine(Box::new(Warnock::without_memoization()), &app, n));
        });
    }
    g.finish();
}

fn a3_raycast_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_raycast_bvh");
    g.sample_size(10);
    for pieces in [4usize, 16] {
        let app = Stencil::new(StencilConfig {
            with_bodies: false,
            nodes: pieces,
            ..StencilConfig::small(pieces, 64, 5)
        });
        g.bench_with_input(
            BenchmarkId::new("partition_anchors", pieces),
            &pieces,
            |b, &n| {
                b.iter(|| run_with_engine(Box::new(RayCast::new()), &app, n));
            },
        );
        g.bench_with_input(BenchmarkId::new("kd_tree", pieces), &pieces, |b, &n| {
            b.iter(|| run_with_engine(Box::new(RayCast::force_kd_tree()), &app, n));
        });
    }
    g.finish();
}

fn a4_dominating_write_report() {
    println!("\n# Ablation A4: equivalence sets retained (dominating writes)");
    println!("app\tpieces\twarnock_sets\traycast_sets");
    for pieces in [4usize, 16, 64] {
        let wl = AppKind::Circuit.bench_scale(pieces);
        let w = measure(
            AppKind::Circuit,
            wl.as_ref(),
            RunConfig {
                engine: EngineKind::Warnock,
                dcr: false,
            },
            pieces,
        );
        let r = measure(
            AppKind::Circuit,
            wl.as_ref(),
            RunConfig {
                engine: EngineKind::RayCast,
                dcr: false,
            },
            pieces,
        );
        println!(
            "circuit\t{pieces}\t{}\t{}",
            w.state.equivalence_sets, r.state.equivalence_sets
        );
        assert!(r.state.equivalence_sets <= w.state.equivalence_sets);
    }
}

fn a5_geometry(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_geometry");
    // The hot shapes: a tile vs its halo ring, and sparse ghost-node sets.
    let tile = IndexSpace::from_rect(Rect::xy(100, 163, 100, 163));
    let grown = IndexSpace::from_rect(Rect::xy(98, 165, 98, 165));
    let halo = grown.subtract(&tile);
    g.bench_function("halo_subtract", |b| {
        b.iter(|| grown.subtract(&tile));
    });
    g.bench_function("halo_overlap_test", |b| {
        b.iter(|| halo.overlaps(&tile));
    });
    g.bench_function("halo_intersect", |b| {
        b.iter(|| halo.intersect(&grown));
    });
    let sparse_a = IndexSpace::from_points((0..400).map(|i| Point::p1(i * 7 % 2048)));
    let sparse_b = IndexSpace::from_points((0..400).map(|i| Point::p1(i * 13 % 2048)));
    g.bench_function("sparse_intersect", |b| {
        b.iter(|| sparse_a.intersect(&sparse_b));
    });
    g.bench_function("sparse_union", |b| {
        b.iter(|| sparse_a.union(&sparse_b));
    });
    g.finish();
}

/// A7: serial vs sharded analysis driver. Same launches, same results —
/// only the host-side scheduling of the per-(root, field) scans differs.
fn a7_sharded_driver(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_sharded_driver");
    g.sample_size(10);
    let app = Stencil::new(StencilConfig {
        pieces: 16,
        tile: 16,
        iterations: 4,
        nodes: 4,
        with_bodies: false,
        traced: false,
        vars: 4,
    });
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("raycast_threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut rt = Runtime::new(
                        RuntimeConfig::new(EngineKind::RayCast)
                            .nodes(4)
                            .dcr(true)
                            .validate(false)
                            .analysis_threads(threads),
                    );
                    let run = app.execute(&mut rt);
                    assert!(!run.iter_end.is_empty());
                });
            },
        );
    }
    g.finish();
}

fn main() {
    a1_paint_views_report();
    a4_dominating_write_report();
    // Short measurement windows: the workloads are deterministic
    // simulations, so tight confidence intervals come cheap.
    let mut c = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
        .configure_from_args();
    a2_warnock_memo(&mut c);
    a3_raycast_index(&mut c);
    a5_geometry(&mut c);
    a7_sharded_driver(&mut c);
    c.final_summary();
}
