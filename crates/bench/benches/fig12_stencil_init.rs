//! Figure 12: stencil initialization time — see `figcommon`.

#[path = "figcommon.rs"]
mod figcommon;

fn main() {
    figcommon::run(12, viz_bench::AppKind::Stencil, true);
}
