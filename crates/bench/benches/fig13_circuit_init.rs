//! Figure 13: circuit initialization time — see `figcommon`.

#[path = "figcommon.rs"]
mod figcommon;

fn main() {
    figcommon::run(13, viz_bench::AppKind::Circuit, true);
}
