//! Figure 14: pennant initialization time — see `figcommon`.

#[path = "figcommon.rs"]
mod figcommon;

fn main() {
    figcommon::run(14, viz_bench::AppKind::Pennant, true);
}
