//! Figure 15: stencil weak scaling — see `figcommon`.

#[path = "figcommon.rs"]
mod figcommon;

fn main() {
    figcommon::run(15, viz_bench::AppKind::Stencil, false);
}
