//! Figure 16: circuit weak scaling — see `figcommon`.

#[path = "figcommon.rs"]
mod figcommon;

fn main() {
    figcommon::run(16, viz_bench::AppKind::Circuit, false);
}
