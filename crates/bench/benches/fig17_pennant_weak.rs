//! Figure 17: pennant weak scaling — see `figcommon`.

#[path = "figcommon.rs"]
mod figcommon;

fn main() {
    figcommon::run(17, viz_bench::AppKind::Pennant, false);
}
