//! Shared driver for the per-figure benches.
//!
//! Each `figNN_*` bench does two things:
//!
//! 1. **Regenerates the figure's data series** (simulated machine times from
//!    the real analysis runs) and prints the TSV — the same rows the
//!    `figures` binary emits. Environment knobs:
//!    `VIZ_FIG_MAX_NODES` (default 64) and `VIZ_PAPER_SCALE=1` for the full
//!    per-piece sizes (default is the scaled-down bench size).
//! 2. **Criterion-times the analysis itself** (host wall time of this
//!    implementation) at a few machine scales per configuration.

use criterion::{BenchmarkId, Criterion};
use viz_bench::{
    init_figure_tsv, measure, paper_node_counts, sweep, weak_figure_tsv, AppKind, RunConfig,
};

pub fn run(fig: u32, app: AppKind, init_figure: bool) {
    // ---- Phase 1: regenerate the figure series.
    let max_nodes: usize = std::env::var("VIZ_FIG_MAX_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let paper_scale = std::env::var("VIZ_PAPER_SCALE").ok().as_deref() == Some("1");
    let nodes = paper_node_counts(max_nodes);
    let rows = sweep(app, &nodes, paper_scale);
    let table = if init_figure {
        init_figure_tsv(&rows)
    } else {
        weak_figure_tsv(app, &rows)
    };
    println!(
        "\n# Figure {fig}: {} {} ({} scale, nodes<= {max_nodes})\n{table}",
        app.label(),
        if init_figure {
            "initialization time (simulated s)"
        } else {
            "weak scaling (throughput/node)"
        },
        if paper_scale { "paper" } else { "bench" },
    );

    // ---- Phase 2: criterion timing of the analysis implementation.
    // Short measurement windows: the workloads are deterministic
    // simulations, so tight confidence intervals come cheap.
    let mut c = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
        .configure_from_args();
    let mut g = c.benchmark_group(format!("fig{fig}_{}", app.label()));
    g.sample_size(10);
    for n in [1usize, 8, 32] {
        for cfg in RunConfig::evaluated() {
            g.bench_with_input(
                BenchmarkId::new(cfg.label().replace(", ", "_"), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let w = app.bench_scale(n);
                        measure(app, w.as_ref(), cfg, n)
                    })
                },
            );
        }
    }
    g.finish();
    c.final_summary();
}
