//! Set-algebra microbench: memoized [`SpaceAlgebra`] vs direct sweeps.
//!
//! The workload replays the op mix the engines issue during a ghost-exchange
//! dependence analysis — `overlaps`/`contains` filters, then
//! `intersect`/`subtract` refinements between task targets and equivalence-set
//! domains — over many identical iterations, which is exactly the repetition
//! the interner and the algebra cache exist to exploit. Reported:
//!
//! * wall-clock of the full op stream, direct (`IndexSpace` sweeps) vs
//!   interned+cached (`SpaceAlgebra` with default config) — the acceptance
//!   target is a ≥ 2× speedup for the cached path;
//! * the cache hit rate (hits + fast-path hits over total lookups);
//! * a TSV of the table at `results/geometry_algebra.tsv`;
//! * criterion timings for the two paths.
//!
//! Correctness of the memoized path is not measured here — it is proved
//! structurally by `viz-geometry/tests/prop_interned_algebra.rs` and the
//! engine differential in `viz-runtime/tests/prop_intern_differential.rs`.

use criterion::Criterion;
use std::hint::black_box;
use std::time::Instant;
use viz_geometry::{IndexSpace, InternConfig, Rect, SpaceAlgebra};

/// Pieces per side of the simulated 2-D partition; each piece is a
/// `TILE`x`TILE` primary tile plus a four-strip ghost halo, like the 2-D
/// stencil app — multi-rect spaces are where the sweeps actually cost.
const SIDE: i64 = 4;
const TILE: i64 = 32;
/// Halo depth.
const HALO: i64 = 2;
/// Identical analysis rounds — the repetition a trace loop produces.
const ITERS: usize = 40;

/// The (target, set-domain) op stream of one analysis round, as concrete
/// spaces. Each target is checked against every set domain the way the
/// engines' refinement loops do.
fn build_spaces() -> (Vec<IndexSpace>, Vec<IndexSpace>) {
    let n = SIDE * TILE;
    let tiles: Vec<(i64, i64, i64, i64)> = (0..SIDE)
        .flat_map(|i| {
            (0..SIDE).map(move |j| (i * TILE, (i + 1) * TILE - 1, j * TILE, (j + 1) * TILE - 1))
        })
        .collect();
    let primaries: Vec<IndexSpace> = tiles
        .iter()
        .map(|&(x0, x1, y0, y1)| IndexSpace::from_rect(Rect::xy(x0, x1, y0, y1)))
        .collect();
    let ghosts: Vec<IndexSpace> = tiles
        .iter()
        .map(|&(x0, x1, y0, y1)| {
            let mut rects = Vec::new();
            if x0 > 0 {
                rects.push(Rect::xy(x0 - HALO, x0 - 1, y0, y1));
            }
            if x1 < n - 1 {
                rects.push(Rect::xy(x1 + 1, (x1 + HALO).min(n - 1), y0, y1));
            }
            if y0 > 0 {
                rects.push(Rect::xy(x0, x1, y0 - HALO, y0 - 1));
            }
            if y1 < n - 1 {
                rects.push(Rect::xy(x0, x1, y1 + 1, (y1 + HALO).min(n - 1)));
            }
            IndexSpace::from_rects(rects)
        })
        .collect();
    let mut targets = primaries.clone();
    targets.extend(ghosts.iter().cloned());
    // Set domains drift as writes split them: primaries, halos, the
    // extended read sets p ∪ g, and primaries with a neighbour's halo
    // carved out (the halo of the next tile reaches into this one).
    let mut domains = primaries.clone();
    domains.extend(ghosts.iter().cloned());
    for (k, (p, g)) in primaries.iter().zip(&ghosts).enumerate() {
        domains.push(p.union(g));
        domains.push(p.subtract(&ghosts[(k + 1) % ghosts.len()]));
    }
    (targets, domains)
}

/// One full analysis round through plain `IndexSpace` sweeps. Returns a
/// checksum so the optimizer keeps every op.
fn direct_round(targets: &[IndexSpace], domains: &[IndexSpace]) -> u64 {
    let mut sum = 0u64;
    for t in targets {
        for d in domains {
            if !t.overlaps(d) {
                continue;
            }
            if t.contains(d) {
                sum += 1;
                continue;
            }
            let inside = d.intersect(t);
            let outside = d.subtract(t);
            sum += inside.rects().len() as u64 + outside.rects().len() as u64;
        }
    }
    sum
}

/// The same round through the interner: spaces are interned once up front
/// (as the engines do when sets are created) and every op is id-keyed.
fn interned_round(
    alg: &mut SpaceAlgebra,
    targets: &[viz_geometry::SpaceId],
    domains: &[viz_geometry::SpaceId],
) -> u64 {
    let mut sum = 0u64;
    for &t in targets {
        for &d in domains {
            if !alg.overlaps(d, t) {
                continue;
            }
            if alg.contains(t, d) {
                sum += 1;
                continue;
            }
            let inside = alg.intersect(d, t);
            let outside = alg.subtract(d, t);
            sum += alg.space(inside).rects().len() as u64 + alg.space(outside).rects().len() as u64;
        }
    }
    sum
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn speedup_report() {
    const REPS: usize = 7;
    let (targets, domains) = build_spaces();
    let ops = targets.len() * domains.len() * ITERS;

    let direct_s = median(
        (0..REPS)
            .map(|_| {
                let t0 = Instant::now();
                let mut sum = 0u64;
                for _ in 0..ITERS {
                    sum = sum.wrapping_add(direct_round(&targets, &domains));
                }
                black_box(sum);
                t0.elapsed().as_secs_f64()
            })
            .collect(),
    );

    let mut hit_rate = 0.0;
    let mut interned_count = 0usize;
    let interned_s = median(
        (0..REPS)
            .map(|_| {
                let mut alg = SpaceAlgebra::new(InternConfig::default());
                let tids: Vec<_> = targets.iter().map(|s| alg.intern(s)).collect();
                let dids: Vec<_> = domains.iter().map(|s| alg.intern(s)).collect();
                let t0 = Instant::now();
                let mut sum = 0u64;
                for _ in 0..ITERS {
                    sum = sum.wrapping_add(interned_round(&mut alg, &tids, &dids));
                }
                black_box(sum);
                let dt = t0.elapsed().as_secs_f64();
                let st = alg.stats();
                let looked_up = st.hits + st.fast_hits + st.misses;
                hit_rate = (st.hits + st.fast_hits) as f64 / looked_up.max(1) as f64;
                interned_count = st.interned;
                dt
            })
            .collect(),
    );

    // Sanity: both paths agree on one round.
    {
        let mut alg = SpaceAlgebra::new(InternConfig::default());
        let tids: Vec<_> = targets.iter().map(|s| alg.intern(s)).collect();
        let dids: Vec<_> = domains.iter().map(|s| alg.intern(s)).collect();
        assert_eq!(
            direct_round(&targets, &domains),
            interned_round(&mut alg, &tids, &dids),
            "interned round diverged from direct round"
        );
    }

    let speedup = direct_s / interned_s;
    let per_op_direct = direct_s * 1e9 / ops as f64;
    let per_op_interned = interned_s * 1e9 / ops as f64;
    println!(
        "\n# Set algebra: direct sweeps vs interned+memoized ({} targets x {} domains x {ITERS} rounds = {ops} op groups)",
        targets.len(),
        domains.len()
    );
    let tsv = format!(
        "path\ttotal_ms\tns_per_op_group\tspeedup\tcache_hit_rate\tinterned_spaces\n\
         direct\t{:.3}\t{per_op_direct:.1}\t1.00\t-\t-\n\
         interned\t{:.3}\t{per_op_interned:.1}\t{speedup:.2}\t{:.3}\t{interned_count}\n",
        direct_s * 1e3,
        interned_s * 1e3,
        hit_rate,
    );
    print!("{tsv}");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/geometry_algebra.tsv"
    );
    if let Err(e) = std::fs::write(out, &tsv) {
        println!("# could not write {out}: {e}");
    } else {
        println!("# wrote {out}");
    }
    assert!(
        hit_rate > 0.5,
        "cache hit rate {hit_rate:.3} too low for a repeated op stream"
    );
    assert!(
        speedup >= 2.0,
        "interned algebra reached only {speedup:.2}x over direct sweeps (target: >= 2x)"
    );
}

fn criterion_benches(c: &mut Criterion) {
    let (targets, domains) = build_spaces();
    let mut g = c.benchmark_group("geometry_algebra");
    g.bench_function("direct", |b| {
        b.iter(|| direct_round(black_box(&targets), black_box(&domains)))
    });
    // Warm: one long-lived algebra, so steady-state rounds are all hits —
    // the trace-loop regime the speedup table measures.
    let mut alg = SpaceAlgebra::new(InternConfig::default());
    let tids: Vec<_> = targets.iter().map(|s| alg.intern(s)).collect();
    let dids: Vec<_> = domains.iter().map(|s| alg.intern(s)).collect();
    g.bench_function("interned_warm", |b| {
        b.iter(|| interned_round(&mut alg, black_box(&tids), black_box(&dids)))
    });
    // Cold: a fresh algebra per round — every op misses and pays the
    // cache-fill cost on top of the sweep (the first-iteration price).
    g.bench_function("interned_cold", |b| {
        let mut alg = SpaceAlgebra::new(InternConfig::default());
        let tids: Vec<_> = targets.iter().map(|s| alg.intern(s)).collect();
        let dids: Vec<_> = domains.iter().map(|s| alg.intern(s)).collect();
        b.iter(|| interned_round(&mut alg, black_box(&tids), black_box(&dids)))
    });
    g.finish();
}

fn main() {
    speedup_report();
    let mut c = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
        .configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
