//! Pipelined-frontend bench: synchronous submission vs the deferred
//! queue + analysis driver thread.
//!
//! The application thread alternates real work (a deterministic spin)
//! with launch submissions. Synchronously, each `submit` runs the
//! dependence analysis inline, so total wall-clock is app work *plus*
//! analysis. Pipelined, the analysis driver overlaps the app spin, so
//! total wall-clock approaches `max(app, analysis)`. Reported:
//!
//! * per-engine wall-clock table: synchronous vs pipelined, app-thread
//!   submit time vs total (post-`flush`) time, and the overlap win (the
//!   acceptance target is a measurable reduction on ≥ 2 host cores);
//! * the pipeline's own metrics (queue high-water mark, backpressure
//!   stalls) proving the queue actually buffered work;
//! * criterion timings per engine, pipelined off and on.
//!
//! The pipeline is transparent (see `tests/pipeline.rs`): values,
//! dependences, and plans are byte-identical, so this bench only measures
//! host time.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use viz_geometry::IndexSpace;
use viz_runtime::{EngineKind, LaunchSpec, RegionRequirement, Runtime, RuntimeConfig};

const PIECES: usize = 32;
const N: i64 = PIECES as i64 * 16;
const LAUNCHES: usize = 600;
const APP_SPIN: u64 = 12_000;

/// Deterministic app-side work between submissions (an LCG spin).
fn app_work(iters: u64) -> u64 {
    let mut x = 0x9e3779b97f4a7c15u64;
    for _ in 0..iters {
        x = black_box(
            x.wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407),
        );
    }
    x
}

struct RunTimes {
    submit: f64,
    total: f64,
    max_depth: u64,
    stalls: u64,
}

/// One full run: interleaved app spins and submissions, then a flush.
fn run_once(engine: EngineKind, pipelined: bool) -> RunTimes {
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(4)
            .dcr(true)
            .validate(false)
            .pipeline(pipelined),
    );
    let root = rt.forest_mut().create_root_1d("A", N);
    let field = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", PIECES);
    let chunk = N / PIECES as i64;
    let ghosts: Vec<IndexSpace> = (0..PIECES as i64)
        .map(|i| {
            let lo = (i * chunk - 1).max(0);
            let hi = ((i + 1) * chunk).min(N - 1);
            IndexSpace::span(lo, hi)
        })
        .collect();
    let g = rt.forest_mut().create_partition(root, "G", ghosts);
    let pieces: Vec<_> = (0..PIECES).map(|k| rt.forest().subregion(p, k)).collect();
    let halos: Vec<_> = (0..PIECES).map(|k| rt.forest().subregion(g, k)).collect();

    let t0 = Instant::now();
    for i in 0..LAUNCHES {
        black_box(app_work(APP_SPIN));
        let k = i % PIECES;
        let reqs = vec![
            RegionRequirement::read(halos[k], field),
            RegionRequirement::read_write(pieces[k], field),
        ];
        rt.submit(LaunchSpec::new(format!("t{i}"), k % 4, reqs, 100, None))
            .expect("valid launch");
    }
    let submit = t0.elapsed().as_secs_f64();
    rt.flush();
    let total = t0.elapsed().as_secs_f64();
    assert_eq!(rt.num_tasks(), LAUNCHES);
    let (max_depth, stalls) = rt
        .pipeline_metrics()
        .map_or((0, 0), |m| (m.max_depth(), m.stalls()));
    RunTimes {
        submit,
        total,
        max_depth,
        stalls,
    }
}

fn median_by<F: Fn(&RunTimes) -> f64>(xs: &[RunTimes], f: F) -> f64 {
    let mut v: Vec<f64> = xs.iter().map(f).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Overlap table: the pipelined total must beat the synchronous total
/// whenever a second core exists to run the driver on.
fn overlap_report() {
    const REPS: usize = 7;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n# Pipelined frontend: {LAUNCHES} launches, {PIECES} pieces, 4 nodes, \
         {APP_SPIN}-iter app spin between submissions ({cores} host cores)"
    );
    println!("engine\tsync_ms\tpiped_ms\tpiped_submit_ms\toverlap_win\tmax_depth\tstalls");
    let mut best = 0.0f64;
    for engine in EngineKind::all() {
        let sync: Vec<RunTimes> = (0..REPS).map(|_| run_once(engine, false)).collect();
        let piped: Vec<RunTimes> = (0..REPS).map(|_| run_once(engine, true)).collect();
        let sync_total = median_by(&sync, |r| r.total);
        let piped_total = median_by(&piped, |r| r.total);
        let piped_submit = median_by(&piped, |r| r.submit);
        let win = sync_total / piped_total;
        best = best.max(win);
        let depth = piped.iter().map(|r| r.max_depth).max().unwrap();
        let stalls = piped.iter().map(|r| r.stalls).max().unwrap();
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3}\t{win:.2}x\t{depth}\t{stalls}",
            format!("{engine:?}").to_lowercase(),
            sync_total * 1e3,
            piped_total * 1e3,
            piped_submit * 1e3,
        );
    }
    if cores >= 2 {
        assert!(
            best > 1.05,
            "the pipeline overlapped nothing: best win {best:.2}x on {cores} cores \
             (target: measurable submission/analysis overlap)"
        );
    } else {
        println!("# single host core: the driver timeslices the app thread, win not asserted");
    }
}

fn criterion_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipelined_frontend");
    g.sample_size(10);
    for engine in EngineKind::all() {
        for pipelined in [false, true] {
            g.bench_with_input(
                BenchmarkId::new(
                    format!("{engine:?}").to_lowercase(),
                    if pipelined { "pipelined" } else { "sync" },
                ),
                &pipelined,
                |b, &pipelined| {
                    b.iter(|| run_once(engine, pipelined).total);
                },
            );
        }
    }
    g.finish();
}

fn main() {
    overlap_report();
    let mut c = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
        .configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
