//! Sharded-analysis bench: serial driver vs the scoped worker pool.
//!
//! The workload is a 4-node stencil with `vars` independent variable
//! pairs — 2·vars `(root, field)` analysis shards with identical work, the
//! shape the per-shard decomposition is designed for. Reported:
//!
//! * host wall-clock of the full analysis, serial vs `--analysis-threads 4`
//!   (the acceptance target is ≥ 1.5× at 4 threads);
//! * a viz-profile pass proving the sharded scans actually overlap: engine
//!   spans recorded on *different worker threads* with intersecting wall
//!   time intervals;
//! * criterion timings per engine at 1 and 4 threads.
//!
//! The sharded driver is bit-identical to the serial one (see
//! `tests/sharded_determinism.rs`), so this bench only measures host time.

use criterion::{BenchmarkId, Criterion};
use std::time::Instant;
use viz_apps::{Stencil, StencilConfig, Workload};
use viz_profile::{EventKind, Track};
use viz_runtime::{EngineKind, Runtime, RuntimeConfig};

/// The benchmark shape: one piece per node, several independent variable
/// pairs so distinct shards carry comparable scan work.
fn bench_app(vars: usize) -> Stencil {
    Stencil::new(StencilConfig {
        pieces: 64,
        tile: 16,
        iterations: 4,
        nodes: 4,
        with_bodies: false,
        traced: false,
        vars,
    })
}

/// Host seconds for one full analysis run at the given thread count.
fn run_once(engine: EngineKind, vars: usize, threads: usize) -> f64 {
    let app = bench_app(vars);
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(4)
            .dcr(true)
            .validate(false)
            .analysis_threads(threads),
    );
    let t0 = Instant::now();
    let run = app.execute(&mut rt);
    let dt = t0.elapsed().as_secs_f64();
    assert!(!run.iter_end.is_empty());
    dt
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Speedup table: serial vs 4-thread sharded analysis, per engine.
///
/// The ≥ 1.5× acceptance target only makes sense on hardware that can run
/// the four workers and the retire stage concurrently; on fewer cores the
/// workers timeslice one another and the table documents the (expected)
/// slowdown instead of asserting.
fn speedup_report() {
    const REPS: usize = 15;
    const VARS: usize = 6;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n# Sharded analysis: serial vs 4 threads (stencil, 4 nodes, {VARS} variable pairs, {cores} host cores)");
    println!("engine\tserial_ms\tsharded_ms\tspeedup");
    let mut best = 0.0f64;
    for engine in EngineKind::all() {
        let serial = median((0..REPS).map(|_| run_once(engine, VARS, 1)).collect());
        let sharded = median((0..REPS).map(|_| run_once(engine, VARS, 4)).collect());
        let speedup = serial / sharded;
        best = best.max(speedup);
        println!(
            "{}\t{:.3}\t{:.3}\t{speedup:.2}x",
            format!("{engine:?}").to_lowercase(),
            serial * 1e3,
            sharded * 1e3,
        );
    }
    if cores >= 5 {
        assert!(
            best >= 1.5,
            "sharded analysis reached only {best:.2}x over serial on {cores} cores \
             (target: >= 1.5x at 4 analysis threads)"
        );
    } else {
        println!(
            "# {cores} host cores < 5 (4 workers + retire stage): speedup not asserted, \
             4 analysis threads timeslice a single core here"
        );
    }
}

/// Profile pass: the sharded scans must actually run concurrently. Engine
/// spans from different worker threads with overlapping wall-clock
/// intervals are direct evidence.
fn overlap_report() {
    viz_profile::clear();
    viz_profile::enable();
    run_once(EngineKind::RayCast, 6, 4);
    viz_profile::disable();
    let profile = viz_profile::take();
    let spans: Vec<(u32, u64, u64)> = profile
        .events
        .iter()
        .filter_map(|e| match (e.track, &e.kind) {
            (Track::Host { thread }, EventKind::Span { name }) if *name == "raycast" => {
                Some((thread, e.ts, e.ts + e.dur))
            }
            _ => None,
        })
        .collect();
    let mut overlapping = 0usize;
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if a.0 != b.0 && a.1 < b.2 && b.1 < a.2 {
                overlapping += 1;
            }
        }
    }
    let threads: std::collections::BTreeSet<u32> = spans.iter().map(|s| s.0).collect();
    println!(
        "\n# Overlap proof: {} engine spans on {} worker threads, {} cross-thread overlapping pairs",
        spans.len(),
        threads.len(),
        overlapping
    );
    let busy: u64 = spans.iter().map(|s| s.2 - s.1).sum();
    let wall =
        spans.iter().map(|s| s.2).max().unwrap_or(0) - spans.iter().map(|s| s.1).min().unwrap_or(0);
    println!(
        "# Scan busy time: {:.3} ms total across workers, {:.3} ms wall inside batches",
        busy as f64 / 1e6,
        wall as f64 / 1e6
    );
    assert!(
        threads.len() >= 2 && overlapping > 0,
        "sharded scans did not overlap: {} threads, {} overlapping span pairs",
        threads.len(),
        overlapping
    );
}

fn criterion_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharded_analysis");
    g.sample_size(10);
    for engine in EngineKind::all() {
        for threads in [1usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("{engine:?}").to_lowercase(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| run_once(engine, 6, threads));
                },
            );
        }
    }
    g.finish();
}

fn main() {
    speedup_report();
    overlap_report();
    let mut c = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
        .configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
