//! Submit-scaling bench: aggregate submission throughput as producer
//! contexts are added (PR 7's multi-producer submission plane).
//!
//! Each producer claims its own SPSC ring and pushes launches against its
//! own private region tree, so producers share *nothing* on the submission
//! path — no queue lock, no core lock, no handoff. Rings are deep
//! (`pipeline_depth(4096)`) so the measurement captures ring-push cost,
//! not dispatcher backpressure. The wall-clock window covers barrier-synced
//! submission only; the combined drain happens after the clock stops.
//!
//! Reported: a TSV (`results/submit_scaling.tsv`) of aggregate throughput
//! at 1, 2, 4, and 8 producers with scaling relative to one producer, plus
//! criterion timings. The acceptance target (≥ 3x aggregate throughput at
//! 8 producers vs 1) is asserted only when the host has enough cores to
//! run the producers in parallel; a timesliced host still writes the TSV.

use criterion::{BenchmarkId, Criterion};
use std::sync::Barrier;
use std::time::Instant;
use viz_region::{FieldId, RegionId};
use viz_runtime::{EngineKind, LaunchSpec, RegionRequirement, Runtime, RuntimeConfig};

const PIECES: usize = 16;
const N: i64 = PIECES as i64 * 8;
/// Launches per producer: constant per-producer work, so perfect scaling
/// is constant wall-clock and aggregate throughput ∝ producers.
const PER_PRODUCER: usize = 4_000;
const PRODUCER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct Tenant {
    field: FieldId,
    pieces: Vec<RegionId>,
}

fn setup_tenant(rt: &mut Runtime, t: usize) -> Tenant {
    let root = rt.forest_mut().create_root_1d(format!("R{t}"), N);
    let field = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", PIECES);
    let pieces = (0..PIECES).map(|k| rt.forest().subregion(p, k)).collect();
    Tenant { field, pieces }
}

/// One run: `producers` contexts, barrier-released, each pushing
/// `PER_PRODUCER` launches into its own ring. Returns the submission
/// wall-clock (barrier release to last producer done).
fn run_once(producers: usize) -> f64 {
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .nodes(4)
            .dcr(true)
            .validate(false)
            .pipeline(true)
            .pipeline_depth(4096)
            .submit_rings(producers + 1),
    );
    let tenants: Vec<Tenant> = (0..producers).map(|t| setup_tenant(&mut rt, t)).collect();
    let mut ctxs: Vec<_> = (0..producers)
        .map(|_| rt.new_context().expect("one ring per producer"))
        .collect();
    let barrier = Barrier::new(producers);
    // Timed inside each producer (barrier release to its last push): the
    // aggregate window is max(end) - min(start), which stays honest even
    // when a producer runs to completion before the main thread wakes.
    let elapsed = std::thread::scope(|s| {
        let joins: Vec<_> = ctxs
            .iter_mut()
            .zip(&tenants)
            .map(|(ctx, tenant)| {
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let start = Instant::now();
                    for i in 0..PER_PRODUCER {
                        let k = i % PIECES;
                        ctx.submit(LaunchSpec::new(
                            "t",
                            k % 4,
                            vec![RegionRequirement::read_write(
                                tenant.pieces[k],
                                tenant.field,
                            )],
                            100,
                            None,
                        ))
                        .expect("healthy driver");
                    }
                    (start, Instant::now())
                })
            })
            .collect();
        let spans: Vec<(Instant, Instant)> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let t0 = spans.iter().map(|(s, _)| *s).min().unwrap();
        let t1 = spans.iter().map(|(_, e)| *e).max().unwrap();
        (t1 - t0).as_secs_f64()
    });
    drop(ctxs);
    rt.flush();
    assert_eq!(rt.num_tasks(), producers * PER_PRODUCER);
    elapsed
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn scaling_report() {
    const REPS: usize = 5;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\n# Submit scaling: {PER_PRODUCER} launches/producer, deep rings \
         (depth 4096), disjoint tenant trees ({cores} host cores)"
    );
    let mut tsv =
        String::from("producers\tlaunches\tsubmit_ms\tthroughput_klaunches_s\tscaling_vs_1\n");
    let mut base_tput = 0.0f64;
    let mut best_scaling = 0.0f64;
    for &p in &PRODUCER_COUNTS {
        let secs = median((0..REPS).map(|_| run_once(p)).collect());
        let launches = p * PER_PRODUCER;
        let tput = launches as f64 / secs;
        if p == 1 {
            base_tput = tput;
        }
        let scaling = tput / base_tput;
        best_scaling = best_scaling.max(scaling);
        tsv.push_str(&format!(
            "{p}\t{launches}\t{:.3}\t{:.1}\t{scaling:.2}\n",
            secs * 1e3,
            tput / 1e3,
        ));
    }
    print!("{tsv}");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/submit_scaling.tsv"
    );
    if let Err(e) = std::fs::write(out, &tsv) {
        println!("# could not write {out}: {e}");
    } else {
        println!("# wrote {out}");
    }
    if cores >= 8 {
        assert!(
            best_scaling >= 3.0,
            "aggregate submit throughput scaled only {best_scaling:.2}x on {cores} cores \
             (target: >= 3x at 8 producers vs 1)"
        );
    } else {
        println!(
            "# {cores} host core(s): producers timeslice, scaling not asserted \
             (target is >= 3x at 8 producers on >= 8 cores)"
        );
    }
}

fn criterion_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("submit_scaling");
    g.sample_size(10);
    for &p in &PRODUCER_COUNTS {
        g.bench_with_input(BenchmarkId::new("producers", p), &p, |b, &p| {
            b.iter(|| run_once(p));
        });
    }
    g.finish();
}

fn main() {
    scaling_report();
    let mut c = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
        .configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
