//! Trace-replay bench: per-launch cost of replaying a trace — manual
//! (`begin_trace`/`end_trace`) and automatic (detector-promoted) — against
//! ordinary analysis, plus a direct zero-copy proof.
//!
//! The workload is the stencil's repetitive top-level loop (64 pieces on 4
//! nodes), the shape tracing exists for. Reported:
//!
//! * host nanoseconds per launch, untraced vs manual vs auto-traced, and
//!   the resulting replay speedup over the visibility analysis;
//! * a pointer-identity proof that replay never deep-clones an
//!   [`viz_runtime::AnalysisResult`]: every replayed launch stores the
//!   *same* `Arc` allocation as the template entry it came from, so the
//!   number of distinct shared allocations stays bounded by the template
//!   length no matter how many instances replay;
//! * criterion timings per mode.

use criterion::{BenchmarkId, Criterion};
use std::collections::BTreeSet;
use std::time::Instant;
use viz_apps::{Stencil, StencilConfig, Workload};
use viz_runtime::{EngineKind, Runtime, RuntimeConfig, TaskId};

const PIECES: usize = 64;
const NODES: usize = 4;
const ITERS: usize = 12;

#[derive(Copy, Clone, PartialEq, Debug)]
enum Mode {
    Untraced,
    Manual,
    Auto,
}

fn bench_app(mode: Mode) -> Stencil {
    Stencil::new(StencilConfig {
        pieces: PIECES,
        tile: 8,
        iterations: ITERS,
        nodes: NODES,
        with_bodies: false,
        traced: mode == Mode::Manual,
        vars: 1,
    })
}

/// One full run; returns host seconds and the runtime for inspection.
fn run_once(engine: EngineKind, mode: Mode) -> (f64, Runtime) {
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(NODES)
            .dcr(false)
            .validate(false)
            .auto_trace(mode == Mode::Auto),
    );
    let app = bench_app(mode);
    let t0 = Instant::now();
    let run = app.execute(&mut rt);
    let dt = t0.elapsed().as_secs_f64();
    assert!(!run.iter_end.is_empty());
    (dt, rt)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Per-launch host cost per mode, and the replay speedup over analysis.
fn speedup_report() {
    const REPS: usize = 9;
    println!(
        "\n# Trace replay: per-launch host cost (stencil, {PIECES} pieces, {NODES} nodes, \
         {ITERS} iterations)"
    );
    println!("engine\tmode\tns_per_launch\treplayed\tspeedup_vs_untraced");
    for engine in [EngineKind::Paint, EngineKind::RayCast] {
        let mut untraced_ns = 0.0;
        for mode in [Mode::Untraced, Mode::Manual, Mode::Auto] {
            let secs = median((0..REPS).map(|_| run_once(engine, mode).0).collect());
            let (_, rt) = run_once(engine, mode);
            let ns = secs * 1e9 / rt.num_tasks() as f64;
            if mode == Mode::Untraced {
                untraced_ns = ns;
            }
            println!(
                "{}\t{:?}\t{:.0}\t{}\t{:.2}x",
                engine.label(),
                mode,
                ns,
                rt.replayed_launches(),
                untraced_ns / ns
            );
            if mode != Mode::Untraced {
                assert!(
                    rt.replayed_launches() > 0,
                    "{engine:?} {mode:?}: nothing replayed"
                );
            }
        }
    }
}

/// Zero-copy proof: replayed launches share the template's allocations.
///
/// If replay deep-cloned results, every replayed launch would store a
/// fresh allocation and the distinct-address count would grow with the
/// replayed-launch count. Sharing bounds it by the launches of the
/// analyzed instances (template + one auto-verification instance).
fn zero_copy_report() {
    for mode in [Mode::Manual, Mode::Auto] {
        let (_, rt) = run_once(EngineKind::RayCast, mode);
        let mut shared_tasks = 0u64;
        let mut addrs = BTreeSet::new();
        for t in 0..rt.num_tasks() {
            if let Some(a) = rt.shared_result_addr(TaskId(t as u32)) {
                shared_tasks += 1;
                addrs.insert(a);
            }
        }
        let per_iter = shared_tasks.min(2 * PIECES as u64 + 8);
        println!(
            "# Zero-copy ({mode:?}): {} trace-backed launches share {} allocations \
             ({} replayed)",
            shared_tasks,
            addrs.len(),
            rt.replayed_launches()
        );
        assert!(
            rt.replayed_launches() >= 6 * per_iter,
            "{mode:?}: expected most instances to replay, got {}",
            rt.replayed_launches()
        );
        // Template entries (+ the auto path's analyzed verification
        // instance) are the only distinct allocations; replays add none.
        assert!(
            (addrs.len() as u64) <= 2 * per_iter,
            "{mode:?}: {} distinct allocations for {} trace-backed launches — \
             replay is cloning results",
            addrs.len(),
            shared_tasks
        );
    }
}

fn criterion_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracing_replay");
    g.sample_size(10);
    for mode in [Mode::Untraced, Mode::Manual, Mode::Auto] {
        g.bench_with_input(
            BenchmarkId::new("raycast", format!("{mode:?}").to_lowercase()),
            &mode,
            |b, &mode| {
                b.iter(|| run_once(EngineKind::RayCast, mode).0);
            },
        );
    }
    g.finish();
}

fn main() {
    speedup_report();
    zero_copy_report();
    let mut c = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(1))
        .warm_up_time(std::time::Duration::from_millis(300))
        .configure_from_args();
    criterion_benches(&mut c);
    c.final_summary();
}
