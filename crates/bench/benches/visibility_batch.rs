//! Candidate-resolution microbench: scalar per-query K-d walks vs the
//! batched SoA sweep over the flattened snapshot (`VIZ_VIS_BACKEND=batch`).
//!
//! The workload replays what the raycast backward scan hands a shard per
//! launch batch: a set of requirements, each contributing a handful of
//! query rectangles, resolved against the live-set interval tree. Leaf
//! density is held constant as the tree grows, so per-query hit counts
//! stay flat and the curves isolate traversal cost. Reported per tree
//! size (32 is below the default `VIZ_VIS_BATCH_MIN`, so the batch
//! backend's scalar fallback runs there — the no-regression row):
//!
//! * best-of-reps wall-clock of the full batch stream for each backend
//!   (reps interleaved between the two paths to cancel ambient load);
//! * throughput in resolved queries per second and the batch/scalar
//!   speedup — the acceptance target is ≥ 2x at ≥ 1024 spaces;
//! * a TSV at `results/visibility_batch.tsv` and machine-readable JSON at
//!   the repo root (`BENCH_visibility.json`);
//! * criterion timings for both backends at the largest size.
//!
//! Correctness is not measured here — it is proved by the differential
//! suite in `viz-runtime/tests/prop_vis_backend_differential.rs` and the
//! snapshot property tests in `viz-geometry/tests/prop_spatial_indexes.rs`.
//! Set `VIZ_BENCH_SMOKE=1` for a single-sample CI smoke run that still
//! writes both artifacts but skips the speedup assertions.

use criterion::Criterion;
use std::hint::black_box;
use std::time::Instant;
use viz_geometry::{DynamicBvh, Rect};
use viz_runtime::analysis::visibility::{
    BatchVisibility, QuerySpan, ScalarVisibility, VisibilityBackend, DEFAULT_BATCH_MIN,
};

/// Tree sizes (live index spaces). 32 sits below `DEFAULT_BATCH_MIN`.
const SIZES: [usize; 5] = [32, 64, 256, 1024, 4096];
/// Requirements per shard batch, each with two query rects (a primary
/// span and a halo strip), like the scan's per-launch query lists.
const REQS: usize = 96;

/// Deterministic xorshift so runs are reproducible without seeding rand.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: i64) -> i64 {
        (self.next() % n.max(1) as u64) as i64
    }
}

/// Constant-density fixture: `n` 10x8 leaves scattered over a square that
/// grows with `n`, plus the REQS x 2 query batch.
fn fixture(n: usize) -> (DynamicBvh, Vec<Rect>, Vec<QuerySpan>) {
    let side = (((n as f64).sqrt() * 24.0) as i64).max(64);
    let mut rng = Lcg(0x9e37_79b9 ^ n as u64);
    let mut tree = DynamicBvh::new();
    for i in 0..n {
        let x = rng.below(side);
        let y = rng.below(side);
        tree.insert(i as u64, Rect::xy(x, x + 10, y, y + 8));
    }
    let mut queries = Vec::new();
    let mut spans = Vec::new();
    for _ in 0..REQS {
        let start = queries.len() as u32;
        let (x, y) = (rng.below(side), rng.below(side));
        queries.push(Rect::xy(x, x + 120, y, y + 96));
        let (hx, hy) = (rng.below(side), rng.below(side));
        queries.push(Rect::xy(hx, hx + 200, hy, hy + 8));
        spans.push((start, 2));
    }
    (tree, queries, spans)
}

/// One full shard batch through a backend: every requirement resolved and
/// its candidate list checksummed (so no work can be elided). The scan's
/// downstream sort/dedup is *not* timed — it costs the same either way and
/// this bench isolates resolution throughput.
fn run_batch(
    backend: &mut dyn VisibilityBackend,
    tree: &DynamicBvh,
    queries: &[Rect],
    spans: &[QuerySpan],
    out: &mut Vec<u64>,
) -> u64 {
    backend.begin_batch();
    let mut sum = 0u64;
    for k in 0..spans.len() {
        out.clear();
        backend.resolve(tree, queries, spans, k, out);
        for &id in out.iter() {
            sum = sum.wrapping_add(id ^ (id << 7));
        }
        sum = sum.wrapping_add(out.len() as u64);
    }
    sum
}

/// One timed rep: `rounds` batches, seconds per batch.
fn time_rep(
    backend: &mut dyn VisibilityBackend,
    tree: &DynamicBvh,
    queries: &[Rect],
    spans: &[QuerySpan],
    out: &mut Vec<u64>,
    rounds: usize,
) -> f64 {
    let t0 = Instant::now();
    let mut sum = 0u64;
    for _ in 0..rounds {
        sum = sum.wrapping_add(run_batch(backend, tree, queries, spans, out));
    }
    black_box(sum);
    t0.elapsed().as_secs_f64() / rounds as f64
}

/// Best-of-reps seconds per batch for both backends, reps *interleaved*
/// so ambient load and frequency drift on a shared box hit both paths
/// alike; the minimum is the least-noise estimator of the true cost.
fn measure_pair(
    scalar: &mut dyn VisibilityBackend,
    batch: &mut dyn VisibilityBackend,
    tree: &DynamicBvh,
    queries: &[Rect],
    spans: &[QuerySpan],
    reps: usize,
    rounds: usize,
) -> (f64, f64) {
    let mut out = Vec::new();
    // Warm-up sizes every scratch buffer (and takes the flat snapshot).
    black_box(run_batch(scalar, tree, queries, spans, &mut out));
    black_box(run_batch(batch, tree, queries, spans, &mut out));
    let (mut best_s, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        best_s = best_s.min(time_rep(scalar, tree, queries, spans, &mut out, rounds));
        best_b = best_b.min(time_rep(batch, tree, queries, spans, &mut out, rounds));
    }
    (best_s, best_b)
}

struct Row {
    spaces: usize,
    scalar_us: f64,
    batch_us: f64,
    speedup: f64,
    scalar_qps: f64,
    batch_qps: f64,
}

fn speedup_report(smoke: bool) -> Vec<Row> {
    let (reps, rounds) = if smoke { (1, 1) } else { (7, 40) };
    let mut rows = Vec::new();
    for &n in &SIZES {
        let (tree, queries, spans) = fixture(n);
        // Sanity: the two backends return the same candidates.
        {
            let mut s = ScalarVisibility::default();
            let mut b = BatchVisibility::new(0);
            let (mut so, mut bo) = (Vec::new(), Vec::new());
            assert_eq!(
                run_batch(&mut s, &tree, &queries, &spans, &mut so),
                run_batch(&mut b, &tree, &queries, &spans, &mut bo),
                "backends diverged at {n} spaces"
            );
        }
        let mut scalar = ScalarVisibility::default();
        // Default threshold: at 32 spaces this exercises the fallback row.
        let mut batch = BatchVisibility::new(DEFAULT_BATCH_MIN);
        let (scalar_s, batch_s) = measure_pair(
            &mut scalar,
            &mut batch,
            &tree,
            &queries,
            &spans,
            reps,
            rounds,
        );
        let nq = queries.len() as f64;
        rows.push(Row {
            spaces: n,
            scalar_us: scalar_s * 1e6,
            batch_us: batch_s * 1e6,
            speedup: scalar_s / batch_s,
            scalar_qps: nq / scalar_s,
            batch_qps: nq / batch_s,
        });
    }
    rows
}

fn write_artifacts(rows: &[Row], smoke: bool) {
    println!(
        "\n# Candidate resolution: scalar K-d walks vs batched SoA sweep \
         ({REQS} reqs x 2 rects per batch; 32 spaces = fallback row)"
    );
    let mut tsv = String::from(
        "spaces\tscalar_us_per_batch\tbatch_us_per_batch\tspeedup\tscalar_qps\tbatch_qps\n",
    );
    for r in rows {
        tsv.push_str(&format!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{:.0}\t{:.0}\n",
            r.spaces, r.scalar_us, r.batch_us, r.speedup, r.scalar_qps, r.batch_qps
        ));
    }
    print!("{tsv}");
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/visibility_batch.tsv"
    );
    match std::fs::write(out, &tsv) {
        Ok(()) => println!("# wrote {out}"),
        Err(e) => println!("# could not write {out}: {e}"),
    }

    let mut json = String::from("{\n  \"bench\": \"visibility_batch\",\n");
    json.push_str(&format!(
        "  \"smoke\": {smoke},\n  \"reqs_per_batch\": {REQS},\n  \
         \"queries_per_batch\": {},\n  \"batch_min\": {DEFAULT_BATCH_MIN},\n  \"rows\": [\n",
        REQS * 2
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"spaces\": {}, \"scalar_us_per_batch\": {:.2}, \
             \"batch_us_per_batch\": {:.2}, \"speedup\": {:.3}, \
             \"scalar_queries_per_sec\": {:.0}, \"batch_queries_per_sec\": {:.0}}}{}\n",
            r.spaces,
            r.scalar_us,
            r.batch_us,
            r.speedup,
            r.scalar_qps,
            r.batch_qps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let jout = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_visibility.json");
    match std::fs::write(jout, &json) {
        Ok(()) => println!("# wrote {jout}"),
        Err(e) => println!("# could not write {jout}: {e}"),
    }
}

fn criterion_benches(c: &mut Criterion) {
    let n = *SIZES.last().unwrap();
    let (tree, queries, spans) = fixture(n);
    let mut g = c.benchmark_group("visibility_batch");
    let mut scalar = ScalarVisibility::default();
    let mut out = Vec::new();
    g.bench_function("scalar_4096", |b| {
        b.iter(|| run_batch(&mut scalar, &tree, black_box(&queries), &spans, &mut out))
    });
    let mut batch = BatchVisibility::new(DEFAULT_BATCH_MIN);
    g.bench_function("batch_4096", |b| {
        b.iter(|| run_batch(&mut batch, &tree, black_box(&queries), &spans, &mut out))
    });
    g.finish();
}

fn main() {
    let smoke = std::env::var("VIZ_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let rows = speedup_report(smoke);
    write_artifacts(&rows, smoke);
    if !smoke {
        for r in &rows {
            if r.spaces >= 1024 {
                assert!(
                    r.speedup >= 2.0,
                    "batch sweep reached only {:.2}x at {} spaces (target: >= 2x)",
                    r.speedup,
                    r.spaces
                );
            } else if r.spaces < DEFAULT_BATCH_MIN {
                assert!(
                    r.speedup >= 0.75,
                    "fallback path regressed to {:.2}x at {} spaces (below threshold \
                     it must track scalar)",
                    r.speedup,
                    r.spaces
                );
            }
        }
        let mut c = Criterion::default()
            .measurement_time(std::time::Duration::from_secs(1))
            .warm_up_time(std::time::Duration::from_millis(300))
            .configure_from_args();
        criterion_benches(&mut c);
        c.final_summary();
    }
}
