//! Regenerate the paper's evaluation figures (Figs 12–17).
//!
//! ```text
//! figures [--fig N | --all] [--max-nodes N] [--reps N] [--artifact] [--out DIR] [--quick]
//! ```
//!
//! * `--fig 12..=17` — one figure; `--all` — all six (default).
//! * `--max-nodes` — largest node count of the sweep (default 512, the
//!   paper's largest machine).
//! * `--artifact` — also print the Appendix-A.4-format TSV per app.
//! * `--out DIR` — additionally write each table to `DIR/figNN_*.tsv`.
//! * `--quick` — scaled-down workloads (fast smoke run).
//! * `--reps N` — repetition count in the artifact TSV (simulation is
//!   deterministic; reps are replicated rows, default 1).
//! * `--tracing` — also emit the manual dynamic-tracing extension table
//!   (`ext_tracing_<app>`); `--auto-tracing` — the automatic trace
//!   detection table (`ext_autotracing_<app>`).
//! * `--profile PATH` — record a structured trace of the sweep and write a
//!   Chrome trace-event JSON to `PATH`, a folded-stack flamegraph to
//!   `PATH.folded`, and per-engine metrics to `PATH.metrics.tsv`.
//! * `--analysis-threads N` — run every analysis through the sharded
//!   driver with N worker threads (default: `VIZ_ANALYSIS_THREADS`, else
//!   serial). The figures are bit-identical either way; only host time
//!   changes.
//! * `--pipeline` — route every submission through the deferred-execution
//!   frontend (per-context submission rings + combining dispatcher;
//!   default: `VIZ_PIPELINE`). Figures are bit-identical; submission and
//!   analysis overlap on the host.
//! * `--submit-rings N` — size the submission plane's ring array (primary
//!   facade plus N-1 tenant contexts; default: `VIZ_SUBMIT_RINGS`, else 8).

use std::io::Write;
use viz_bench::{
    artifact_tsv, autotracing_sweep, init_figure_tsv, paper_node_counts, sweep, tracing_sweep,
    weak_figure_tsv, AppKind,
};

struct Args {
    figs: Vec<u32>,
    max_nodes: usize,
    reps: usize,
    artifact: bool,
    out: Option<String>,
    quick: bool,
    tracing: bool,
    auto_tracing: bool,
    plot: bool,
    profile: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        figs: vec![12, 13, 14, 15, 16, 17],
        max_nodes: 512,
        reps: 1,
        artifact: false,
        out: None,
        quick: false,
        tracing: false,
        auto_tracing: false,
        plot: false,
        profile: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fig" => {
                let n: u32 = it.next().expect("--fig N").parse().expect("figure number");
                assert!((12..=17).contains(&n), "figures are 12..=17");
                args.figs = vec![n];
            }
            "--all" => args.figs = vec![12, 13, 14, 15, 16, 17],
            "--max-nodes" => {
                args.max_nodes = it.next().expect("--max-nodes N").parse().expect("number")
            }
            "--reps" => args.reps = it.next().expect("--reps N").parse().expect("number"),
            "--artifact" => args.artifact = true,
            "--out" => args.out = Some(it.next().expect("--out DIR")),
            "--quick" => args.quick = true,
            "--tracing" => args.tracing = true,
            "--auto-tracing" => args.auto_tracing = true,
            "--plot" => args.plot = true,
            "--profile" => args.profile = Some(it.next().expect("--profile PATH")),
            "--analysis-threads" => {
                let n: usize = it
                    .next()
                    .expect("--analysis-threads N")
                    .parse()
                    .expect("thread count");
                assert!(n >= 1, "--analysis-threads needs N >= 1");
                // The sweep builds its runtimes internally; route the
                // setting through the env default they all read.
                std::env::set_var("VIZ_ANALYSIS_THREADS", n.to_string());
            }
            "--pipeline" => std::env::set_var("VIZ_PIPELINE", "1"),
            "--submit-rings" => {
                let n: usize = it
                    .next()
                    .expect("--submit-rings N")
                    .parse()
                    .expect("ring count");
                assert!(n >= 2, "--submit-rings needs N >= 2 (primary + tenants)");
                std::env::set_var("VIZ_SUBMIT_RINGS", n.to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn app_of_fig(fig: u32) -> AppKind {
    match fig {
        12 | 15 => AppKind::Stencil,
        13 | 16 => AppKind::Circuit,
        14 | 17 => AppKind::Pennant,
        _ => unreachable!(),
    }
}

fn emit(out_dir: &Option<String>, name: &str, content: &str) {
    println!("{content}");
    if let Some(dir) = out_dir {
        std::fs::create_dir_all(dir).expect("create out dir");
        let path = format!("{dir}/{name}.tsv");
        let mut f = std::fs::File::create(&path).expect("create tsv");
        f.write_all(content.as_bytes()).expect("write tsv");
        eprintln!("wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    if args.profile.is_some() {
        viz_profile::enable();
    }
    let nodes = paper_node_counts(args.max_nodes);
    // Measure each needed app once; init and weak figures share the sweep.
    let mut apps: Vec<AppKind> = args.figs.iter().map(|f| app_of_fig(*f)).collect();
    apps.dedup();
    for app in apps {
        eprintln!(
            "== {} : sweeping nodes {:?} x 5 configs ({}) ==",
            app.label(),
            nodes,
            if args.quick {
                "quick scale"
            } else {
                "paper scale"
            }
        );
        let t0 = std::time::Instant::now();
        let rows = sweep(app, &nodes, !args.quick);
        eprintln!("   swept in {:.1}s host time", t0.elapsed().as_secs_f64());
        for &fig in &args.figs {
            if app_of_fig(fig) != app {
                continue;
            }
            let (name, content) = if fig <= 14 {
                (
                    format!("fig{fig}_{}_init", app.label()),
                    format!(
                        "# Figure {fig}: {} initialization time (simulated seconds)\n{}",
                        app.label(),
                        init_figure_tsv(&rows)
                    ),
                )
            } else {
                (
                    format!("fig{fig}_{}_weak", app.label()),
                    format!(
                        "# Figure {fig}: {} weak scaling (throughput per node)\n{}",
                        app.label(),
                        weak_figure_tsv(app, &rows)
                    ),
                )
            };
            emit(&args.out, &name, &content);
            if args.plot {
                let (scale, unit) = app.unit_scale();
                let chart = if fig <= 14 {
                    viz_bench::plot::render(
                        &format!("Figure {fig}: {} init time", app.label()),
                        "s",
                        &rows,
                        |m| m.init_time_s,
                        true,
                    )
                } else {
                    viz_bench::plot::render(
                        &format!("Figure {fig}: {} weak scaling", app.label()),
                        unit,
                        &rows,
                        move |m| m.throughput_per_node / scale,
                        false,
                    )
                };
                println!("{chart}");
            }
        }
        if args.artifact {
            emit(
                &args.out,
                &format!("artifact_{}", app.label()),
                &artifact_tsv(&rows, args.reps),
            );
        }
        if args.tracing {
            emit(
                &args.out,
                &format!("ext_tracing_{}", app.label()),
                &tracing_sweep(app, &nodes),
            );
        }
        if args.auto_tracing {
            emit(
                &args.out,
                &format!("ext_autotracing_{}", app.label()),
                &autotracing_sweep(app, &nodes),
            );
        }
    }
    if let Some(path) = &args.profile {
        let profile = viz_profile::take();
        std::fs::write(path, viz_profile::export::chrome_trace(&profile))
            .expect("write chrome trace");
        std::fs::write(
            format!("{path}.folded"),
            viz_profile::export::folded_stacks(&profile),
        )
        .expect("write folded stacks");
        std::fs::write(
            format!("{path}.metrics.tsv"),
            viz_profile::export::metrics_tsv(&profile),
        )
        .expect("write metrics tsv");
        eprintln!(
            "profile: {} events ({} dropped) -> {path}, {path}.folded, {path}.metrics.tsv",
            profile.events.len(),
            profile.dropped
        );
    }
}
