//! Diagnostic probe: per-iteration completion deltas, counters, and state
//! sizes for one app × configuration × node count.
//!
//! ```text
//! probe <stencil|circuit|pennant> <raycast|warnock|paint|paintnaive> <dcr|nodcr> <nodes> \
//!       [--quick] [--profile] [--analysis-threads N] [--auto-trace] [--pipeline] \
//!       [--submit-rings N] [--oracle] [--record-history PATH]
//! ```
//!
//! `--profile` records a structured trace of the run and appends the
//! per-engine metrics table (TSV) to the output. `--analysis-threads N`
//! runs the analysis through the sharded driver with N workers (the
//! reported figures are bit-identical to serial; only host time changes).
//! `--auto-trace` enables automatic trace detection and reports what the
//! detector promoted, replayed, and demoted. `--pipeline` routes
//! submissions through the deferred-execution frontend (bounded queue +
//! analysis driver thread) and reports queue depth/stall statistics; the
//! figures again stay bit-identical, only host overlap changes.
//! `--submit-rings N` sizes the submission plane's ring array (primary
//! facade plus N-1 tenant contexts; also settable via `VIZ_SUBMIT_RINGS`).
//! `--oracle` records the run's history and judges it with the external
//! saturation checker (viz-oracle) after scheduling; a violation is a
//! nonzero exit. `--record-history PATH` writes the recorded history in
//! the portable `VZH1` binary format for offline checking.

use viz_bench::AppKind;
use viz_runtime::{EngineKind, Runtime, RuntimeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app = match args[0].as_str() {
        "stencil" => AppKind::Stencil,
        "circuit" => AppKind::Circuit,
        "pennant" => AppKind::Pennant,
        a => panic!("unknown app {a}"),
    };
    let engine = match args[1].as_str() {
        "raycast" => EngineKind::RayCast,
        "warnock" => EngineKind::Warnock,
        "paint" => EngineKind::Paint,
        "paintnaive" => EngineKind::PaintNaive,
        a => panic!("unknown engine {a}"),
    };
    let dcr = args[2] == "dcr";
    let nodes: usize = args[3].parse().unwrap();
    let quick = args.iter().any(|a| a == "--quick");
    let profile = args.iter().any(|a| a == "--profile");
    let auto_trace = args.iter().any(|a| a == "--auto-trace");
    let pipeline = args.iter().any(|a| a == "--pipeline") || viz_runtime::default_pipeline();
    let analysis_threads = args
        .iter()
        .position(|a| a == "--analysis-threads")
        .map(|i| {
            args.get(i + 1)
                .expect("--analysis-threads N")
                .parse::<usize>()
                .expect("thread count")
        })
        .unwrap_or_else(viz_runtime::default_analysis_threads);
    let submit_rings = args
        .iter()
        .position(|a| a == "--submit-rings")
        .map(|i| {
            args.get(i + 1)
                .expect("--submit-rings N")
                .parse::<usize>()
                .expect("ring count")
        })
        .unwrap_or_else(viz_runtime::default_submit_rings);
    let oracle = args.iter().any(|a| a == "--oracle");
    let history_path = args
        .iter()
        .position(|a| a == "--record-history")
        .map(|i| args.get(i + 1).expect("--record-history PATH").clone());
    let record = oracle || history_path.is_some() || viz_runtime::default_record_history();
    if profile {
        viz_profile::enable();
    }

    let workload = if quick {
        app.bench_scale(nodes)
    } else {
        app.paper(nodes)
    };
    let mut rt = Runtime::new(
        RuntimeConfig::new(engine)
            .nodes(nodes)
            .dcr(dcr)
            .validate(false)
            .analysis_threads(analysis_threads)
            .auto_trace(auto_trace)
            .pipeline(pipeline)
            .submit_rings(submit_rings)
            .record_history(record),
    );
    let host = std::time::Instant::now();
    let run = workload.execute(&mut rt);
    let host_submit = host.elapsed().as_secs_f64();
    rt.flush();
    let host_analysis = host.elapsed().as_secs_f64();
    let report = rt.timed_schedule();
    println!(
        "app={} engine={} dcr={} nodes={} launches={} analysis_threads={} host_analysis={:.2}s",
        app.label(),
        engine.label(),
        dcr,
        nodes,
        rt.num_tasks(),
        analysis_threads,
        host_analysis
    );
    let mut prev = 0u64;
    for (k, end) in run.iter_end.iter().enumerate() {
        let t = report.completion_through(*end);
        println!(
            "iter {k:>3}: completion {:>12.6}s  delta {:>10.6}s",
            t as f64 * 1e-9,
            (t - prev) as f64 * 1e-9
        );
        prev = t;
    }
    let mut clocks: Vec<(usize, u64)> = rt.machine().clocks().iter().copied().enumerate().collect();
    clocks.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!(
        "top clocks: {:?}",
        clocks
            .iter()
            .take(5)
            .map(|(n, c)| (*n, *c as f64 * 1e-9))
            .collect::<Vec<_>>()
    );
    let mut svc: Vec<(usize, u64)> = rt
        .machine()
        .service_clocks()
        .iter()
        .copied()
        .enumerate()
        .collect();
    svc.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!(
        "top service: {:?}",
        svc.iter()
            .take(3)
            .map(|(n, c)| (*n, *c as f64 * 1e-9))
            .collect::<Vec<_>>()
    );
    let state = rt.stats().state;
    println!(
        "state[{}]: history_entries={} equivalence_sets={} composite_views={} \
         index_nodes={} memo_entries={}",
        engine.label(),
        state.history_entries,
        state.equivalence_sets,
        state.composite_views,
        state.index_nodes,
        state.memo_entries
    );
    if auto_trace {
        println!(
            "auto-trace: detected={} demoted={} replayed_launches={} violations={} rebase_ranges={}",
            rt.auto_traces_detected(),
            rt.auto_traces_demoted(),
            rt.replayed_launches(),
            rt.trace_violations().len(),
            rt.trace_rebase_ranges()
        );
    }
    if let Some(m) = rt.pipeline_metrics() {
        println!(
            "pipeline: submitted={} retired={} max_depth={} stalls={} stalled={:.3}s \
             combines={} combined_specs={} max_combine={} multi_ring_combines={} \
             host_submit={host_submit:.2}s (analysis overlapped {:.2}s)",
            m.submitted(),
            m.retired(),
            m.max_depth(),
            m.stalls(),
            m.stalled_ns() as f64 * 1e-9,
            m.combines(),
            m.combined_specs(),
            m.max_combine(),
            m.multi_ring_combines(),
            host_analysis - host_submit
        );
    }
    println!("counters: {:#?}", rt.machine().counters());
    if oracle || history_path.is_some() {
        let history = viz_oracle::capture(&rt).expect("history recording was enabled");
        if let Some(path) = &history_path {
            let bytes = history.encode();
            std::fs::write(path, &bytes).expect("write history");
            println!(
                "history: {} launches -> {path} ({} bytes)",
                history.launches.len(),
                bytes.len()
            );
        }
        if oracle {
            let report = viz_oracle::check(&history);
            println!(
                "oracle: launches={} pairs={} edges={} violations={}",
                report.launches,
                report.pairs_checked,
                report.edges_checked,
                report.violations.len()
            );
            for v in &report.violations {
                eprintln!("oracle violation: {v}");
            }
            if !report.ok() {
                std::process::exit(1);
            }
        }
    }
    if profile {
        let prof = viz_profile::take();
        println!(
            "profile: {} events, {} dropped",
            prof.events.len(),
            prof.dropped
        );
        print!("{}", viz_profile::export::metrics_tsv(&prof));
    }
}
