//! Extended weak scaling (ISSUE 9): fig15-style curves pushed to 16384
//! simulated nodes, with history GC keeping runtime memory bounded by the
//! retained window instead of program length.
//!
//! Each data point runs in a **fresh subprocess** (the binary re-execs
//! itself with `--child`) so `VmHWM` from `/proc/self/status` is the true
//! peak RSS of that point alone — allocator high-water marks and leftover
//! state from earlier points can't contaminate it.
//!
//! Output: `results/ext_weakscale_<app>.tsv`, one row per (gc, nodes)
//! point. The `gc=0` baseline stops at 1024 nodes (that's the point of the
//! exercise: without retirement the ledger, DAG rows, and dead engine sets
//! grow with program length); `gc=1` continues to 16384.
//!
//! Usage:
//!   weakscale [max_nodes] [--app stencil|circuit|pennant]
//!   weakscale --child <app> <nodes> <gc>      (internal)

use std::io::Write as _;
use std::process::Command;
use std::time::Instant;
use viz_bench::AppKind;
use viz_runtime::{EngineKind, Runtime, RuntimeConfig};

/// Peak resident set size of this process, in MiB, from /proc/self/status.
/// Returns 0.0 where procfs is unavailable (non-Linux).
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

fn app_from(label: &str) -> AppKind {
    match label {
        "stencil" => AppKind::Stencil,
        "circuit" => AppKind::Circuit,
        "pennant" => AppKind::Pennant,
        other => panic!("unknown app {other:?}"),
    }
}

const COLUMNS: &str = "app\tgc\tnodes\tlaunches\tretained\twatermark\tanalysis_s\tus_per_launch\t\
                       peak_rss_mb\thistory_entries\tequivalence_sets\tinterned_spaces\t\
                       dag_tag_words\tgc_collections\tgc_retired\tgc_dropped\tgc_tag_words_freed\t\
                       candidates_visited\tsets_swept";

/// One measurement, printed as a TSV row on stdout (parsed by the parent).
fn child(app: AppKind, nodes: usize, gc: bool) {
    // Analysis-streaming mode: no task bodies, no timed schedule — those
    // replay the full history, which is exactly what GC retires.
    let workload = app.paper(nodes);
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .nodes(nodes)
            .validate(false)
            .history_gc(gc),
    );
    let start = Instant::now();
    let run = workload.execute(&mut rt);
    let analysis_s = start.elapsed().as_secs_f64();
    assert!(!run.iter_end.is_empty());
    let stats = rt.stats();
    let us_per_launch = analysis_s * 1e6 / stats.tasks.max(1) as f64;
    println!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.1}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        app.label(),
        gc as u8,
        nodes,
        stats.tasks,
        stats.retained,
        stats.watermark,
        analysis_s,
        us_per_launch,
        peak_rss_mb(),
        stats.state.history_entries,
        stats.state.equivalence_sets,
        stats.state.interned_spaces,
        stats.dag.tag_words,
        stats.gc.collections,
        stats.gc.retired_launches,
        stats.gc.history_entries
            + stats.gc.equivalence_sets
            + stats.gc.composite_views
            + stats.gc.index_nodes
            + stats.gc.memo_entries,
        stats.gc.tag_words_freed,
        stats.state.candidates_visited,
        stats.state.sets_swept,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--child") {
        let app = app_from(&args[2]);
        let nodes: usize = args[3].parse().expect("nodes");
        let gc: u8 = args[4].parse().expect("gc");
        child(app, nodes, gc != 0);
        return;
    }

    let mut max_nodes = 16384usize;
    let mut app = AppKind::Stencil;
    let mut it = args.iter().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--app" => app = app_from(it.next().expect("--app value")),
            n => max_nodes = n.parse().expect("max_nodes"),
        }
    }
    // The GC-off baseline is capped: its memory grows with program length,
    // which is the comparison the figure makes.
    let baseline_cap = max_nodes.min(1024);

    let exe = std::env::current_exe().expect("current_exe");
    let mut rows = vec![COLUMNS.to_string()];
    for gc in [false, true] {
        let cap = if gc { max_nodes } else { baseline_cap };
        let mut nodes = 16usize;
        while nodes <= cap {
            eprintln!("weakscale: {} gc={} nodes={}", app.label(), gc as u8, nodes);
            let out = Command::new(&exe)
                .args([
                    "--child",
                    app.label(),
                    &nodes.to_string(),
                    &(gc as u8).to_string(),
                ])
                .output()
                .expect("spawn child");
            assert!(
                out.status.success(),
                "child failed at nodes={nodes} gc={gc}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            let row = String::from_utf8(out.stdout).expect("utf8");
            rows.push(row.trim_end().to_string());
            nodes *= 2;
        }
    }

    std::fs::create_dir_all("results").expect("mkdir results");
    let path = format!("results/ext_weakscale_{}.tsv", app.label());
    let mut f = std::fs::File::create(&path).expect("create tsv");
    writeln!(f, "{}", rows.join("\n")).expect("write tsv");
    eprintln!("wrote {path}");
}
