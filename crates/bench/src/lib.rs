//! # viz-bench
//!
//! The benchmark harness regenerating every figure of the paper's
//! evaluation (§8):
//!
//! | Figure | Content | Bench target |
//! |---|---|---|
//! | Fig 12 | Stencil initialization time | `fig12_stencil_init` |
//! | Fig 13 | Circuit initialization time | `fig13_circuit_init` |
//! | Fig 14 | Pennant initialization time | `fig14_pennant_init` |
//! | Fig 15 | Stencil weak scaling | `fig15_stencil_weak` |
//! | Fig 16 | Circuit weak scaling | `fig16_circuit_weak` |
//! | Fig 17 | Pennant weak scaling | `fig17_pennant_weak` |
//!
//! plus the `figures` binary, which sweeps node counts 1–512 over the five
//! runtime configurations of the paper (RayCast ± DCR, Warnock ± DCR, Paint
//! without DCR) and emits both the artifact's TSV format (Appendix A.4) and
//! per-figure series.
//!
//! Measurements are *simulated* machine times: the coherence engines run
//! their real data structures at the configured scale, and the LogP cost
//! model converts the resulting operation/message streams into time (see
//! `viz-sim` and DESIGN.md §3).

pub mod plot;

use std::time::Instant;
use viz_apps::{Circuit, CircuitConfig, Pennant, PennantConfig, Stencil, StencilConfig, Workload};
use viz_runtime::engine::StateSize;
use viz_runtime::{EngineKind, Runtime, RuntimeConfig};
use viz_sim::Counters;

/// The three benchmark applications.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AppKind {
    Stencil,
    Circuit,
    Pennant,
}

impl AppKind {
    pub fn all() -> [AppKind; 3] {
        [AppKind::Stencil, AppKind::Circuit, AppKind::Pennant]
    }

    pub fn label(self) -> &'static str {
        match self {
            AppKind::Stencil => "stencil",
            AppKind::Circuit => "circuit",
            AppKind::Pennant => "pennant",
        }
    }

    /// Weak-scaling workload at paper scale: one piece per node.
    pub fn paper(self, nodes: usize) -> Box<dyn Workload> {
        match self {
            AppKind::Stencil => Box::new(Stencil::new(StencilConfig::paper(nodes))),
            AppKind::Circuit => Box::new(Circuit::new(CircuitConfig::paper(nodes))),
            AppKind::Pennant => Box::new(Pennant::new(PennantConfig::paper(nodes))),
        }
    }

    /// Paper-scale workload with each iteration wrapped in a runtime trace
    /// (the dynamic-tracing extension, \[15\]).
    pub fn paper_traced(self, nodes: usize) -> Box<dyn Workload> {
        match self {
            AppKind::Stencil => Box::new(Stencil::new(StencilConfig {
                traced: true,
                ..StencilConfig::paper(nodes)
            })),
            AppKind::Circuit => Box::new(Circuit::new(CircuitConfig {
                traced: true,
                ..CircuitConfig::paper(nodes)
            })),
            AppKind::Pennant => Box::new(Pennant::new(PennantConfig {
                traced: true,
                ..PennantConfig::paper(nodes)
            })),
        }
    }

    /// A scaled-down workload (same structure, smaller per-piece size) for
    /// fast criterion runs.
    pub fn bench_scale(self, nodes: usize) -> Box<dyn Workload> {
        match self {
            AppKind::Stencil => Box::new(Stencil::new(StencilConfig {
                tile: 512,
                iterations: 5,
                ..StencilConfig::paper(nodes)
            })),
            AppKind::Circuit => Box::new(Circuit::new(CircuitConfig {
                nodes_per_piece: 200,
                wires_per_piece: 2_000,
                iterations: 5,
                ..CircuitConfig::paper(nodes)
            })),
            AppKind::Pennant => Box::new(Pennant::new(PennantConfig {
                zones_x_per_piece: 80,
                zones_y: 50,
                iterations: 5,
                ..PennantConfig::paper(nodes)
            })),
        }
    }

    /// The per-node throughput unit of the weak-scaling figure, and its
    /// scale factor as printed by the paper ("10⁹ points/s" etc.).
    pub fn unit_scale(self) -> (f64, &'static str) {
        match self {
            AppKind::Stencil => (1e9, "1e9 points/s"),
            AppKind::Circuit => (1e6, "1e6 wires/s"),
            AppKind::Pennant => (1e6, "1e6 zones/s"),
        }
    }
}

/// One runtime configuration of the evaluation.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RunConfig {
    pub engine: EngineKind,
    pub dcr: bool,
}

impl RunConfig {
    /// The five configurations of Figs 12–17, in legend order. (The
    /// painter's algorithm implementation predates DCR, §8.)
    pub fn evaluated() -> [RunConfig; 5] {
        [
            RunConfig {
                engine: EngineKind::RayCast,
                dcr: true,
            },
            RunConfig {
                engine: EngineKind::RayCast,
                dcr: false,
            },
            RunConfig {
                engine: EngineKind::Warnock,
                dcr: true,
            },
            RunConfig {
                engine: EngineKind::Warnock,
                dcr: false,
            },
            RunConfig {
                engine: EngineKind::Paint,
                dcr: false,
            },
        ]
    }

    /// Legend label, matching the paper's figures.
    pub fn label(self) -> String {
        format!(
            "{}, {}",
            self.engine.label(),
            if self.dcr { "DCR" } else { "No DCR" }
        )
    }

    /// Artifact system name (`neweqcr_dcr`, `paint_nodcr`, …).
    pub fn artifact_system(self) -> String {
        format!(
            "{}_{}",
            self.engine.artifact_name(),
            if self.dcr { "dcr" } else { "nodcr" }
        )
    }
}

/// One measured data point.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub app: &'static str,
    pub config: RunConfig,
    pub nodes: usize,
    /// Simulated initialization time (application start through the end of
    /// the first top-level iteration), seconds — Figs 12–14.
    pub init_time_s: f64,
    /// Simulated total elapsed time, seconds (artifact `elapsed_time`).
    pub elapsed_s: f64,
    /// Steady-state per-iteration time (excluding the first), seconds.
    pub per_iter_s: f64,
    /// Elements processed per second per node — Figs 15–17.
    pub throughput_per_node: f64,
    /// Exact operation counts from the engines.
    pub counters: Counters,
    /// Engine state sizes at the end of the run.
    pub state: StateSize,
    /// Host wall-clock spent in the analysis itself (this implementation's
    /// real speed, measured by the criterion benches).
    pub host_analysis_s: f64,
}

/// Run one workload under one configuration and measure both phases.
pub fn measure(
    app: AppKind,
    workload: &dyn Workload,
    config: RunConfig,
    nodes: usize,
) -> Measurement {
    let mut rt = Runtime::new(
        RuntimeConfig::new(config.engine)
            .nodes(nodes)
            .dcr(config.dcr)
            .validate(false),
    );
    let host_start = Instant::now();
    let run = workload.execute(&mut rt);
    let host_analysis_s = host_start.elapsed().as_secs_f64();
    let report = rt.timed_schedule();
    assert!(!run.iter_end.is_empty(), "workload must report iterations");
    let init_ns = report.completion_through(run.iter_end[0]);
    let total_ns = report.completion_through(*run.iter_end.last().unwrap());
    let iters = run.iter_end.len();
    // Steady state (§8: "once the initial analysis is done the performance
    // stabilizes"): the median per-iteration delta over the last half of
    // the iterations, which excludes the pipeline-fill drain after the
    // first-iteration analysis burst.
    let per_iter_s = if iters > 1 {
        let mut deltas: Vec<u64> = run
            .iter_end
            .windows(2)
            .map(|w| report.completion_through(w[1]) - report.completion_through(w[0]))
            .collect();
        let half = deltas.split_off(deltas.len() / 2);
        let mut half = half;
        half.sort_unstable();
        half[half.len() / 2] as f64 * 1e-9
    } else {
        init_ns as f64 * 1e-9
    };
    let throughput_per_node = if per_iter_s > 0.0 {
        run.elements_per_iter as f64 / per_iter_s / nodes as f64
    } else {
        0.0
    };
    let counters = rt.machine().counters().clone();
    let state = rt.stats().state;
    Measurement {
        app: app.label(),
        config,
        nodes,
        init_time_s: init_ns as f64 * 1e-9,
        elapsed_s: total_ns as f64 * 1e-9,
        per_iter_s,
        throughput_per_node,
        counters,
        state,
        host_analysis_s,
    }
}

/// Sweep an app over node counts × the five configurations.
pub fn sweep(app: AppKind, node_counts: &[usize], paper_scale: bool) -> Vec<Measurement> {
    let mut out = Vec::new();
    for &nodes in node_counts {
        for config in RunConfig::evaluated() {
            let workload = if paper_scale {
                app.paper(nodes)
            } else {
                app.bench_scale(nodes)
            };
            out.push(measure(app, workload.as_ref(), config, nodes));
        }
    }
    out
}

/// The paper's node counts: powers of two, 1..=512.
pub fn paper_node_counts(max: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = 1;
    while n <= max {
        v.push(n);
        n *= 2;
    }
    v
}

/// Render measurements as the artifact's TSV (Appendix A.4):
/// `system nodes procs_per_node rep init_time elapsed_time`.
pub fn artifact_tsv(rows: &[Measurement], reps: usize) -> String {
    let mut s = String::from("system\tnodes\tprocs_per_node\trep\tinit_time\telapsed_time\n");
    for m in rows {
        for rep in 0..reps {
            s.push_str(&format!(
                "{}\t{}\t1\t{}\t{:.3}\t{:.3}\n",
                m.config.artifact_system(),
                m.nodes,
                rep,
                m.init_time_s,
                m.elapsed_s
            ));
        }
    }
    s
}

/// Render an initialization-time figure (Figs 12–14): one column per
/// configuration, rows by node count.
pub fn init_figure_tsv(rows: &[Measurement]) -> String {
    series_tsv(rows, "init_time_s", |m| m.init_time_s)
}

/// Render a weak-scaling figure (Figs 15–17): throughput per node.
pub fn weak_figure_tsv(app: AppKind, rows: &[Measurement]) -> String {
    let (scale, unit) = app.unit_scale();
    series_tsv(rows, unit, move |m| m.throughput_per_node / scale)
}

fn series_tsv(rows: &[Measurement], value_name: &str, f: impl Fn(&Measurement) -> f64) -> String {
    let configs = RunConfig::evaluated();
    let mut nodes: Vec<usize> = rows.iter().map(|m| m.nodes).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut s = format!("# value: {value_name}\nnodes");
    for c in configs {
        s.push('\t');
        s.push_str(&c.label());
    }
    s.push('\n');
    for n in nodes {
        s.push_str(&n.to_string());
        for c in configs {
            let v = rows.iter().find(|m| m.nodes == n && m.config == c).map(&f);
            match v {
                Some(v) => s.push_str(&format!("\t{v:.4}")),
                None => s.push_str("\t-"),
            }
        }
        s.push('\n');
    }
    s
}

/// Steady-state per-node throughput of one workload on one runtime, plus
/// the runtime's tracing statistics: (throughput, replayed launches,
/// auto traces detected, auto traces demoted).
fn steady_state_run(
    workload: &dyn Workload,
    config: RunConfig,
    nodes: usize,
    auto_trace: bool,
) -> (f64, u64, u64, u64) {
    let mut rt = Runtime::new(
        RuntimeConfig::new(config.engine)
            .nodes(nodes)
            .dcr(config.dcr)
            .validate(false)
            .auto_trace(auto_trace),
    );
    let run = workload.execute(&mut rt);
    let report = rt.timed_schedule();
    let mut deltas: Vec<u64> = run
        .iter_end
        .windows(2)
        .map(|w| report.completion_through(w[1]) - report.completion_through(w[0]))
        .collect();
    let mut half = deltas.split_off(deltas.len() / 2);
    half.sort_unstable();
    let per_iter_s = half[half.len() / 2] as f64 * 1e-9;
    let tput = run.elements_per_iter as f64 / per_iter_s / nodes as f64;
    (
        tput,
        rt.replayed_launches(),
        rt.auto_traces_detected(),
        rt.auto_traces_demoted(),
    )
}

/// The dynamic-tracing extension experiment (E9 in DESIGN.md): the
/// ray-casting engine with and without per-iteration traces, at paper
/// scale. Tracing removes the per-launch analysis from the steady state,
/// which should flatten the no-DCR curve that analysis costs bend.
pub fn tracing_sweep(app: AppKind, node_counts: &[usize]) -> String {
    let config = RunConfig {
        engine: EngineKind::RayCast,
        dcr: false,
    };
    let (scale, unit) = app.unit_scale();
    let mut s = format!(
        "# Extension: dynamic tracing [15] — {} weak scaling, RayCast No DCR
         # value: {unit}
nodes	untraced	traced	replayed_launches
",
        app.label()
    );
    for &nodes in node_counts {
        let plain = measure(app, app.paper(nodes).as_ref(), config, nodes);
        let (traced_tput, replayed, _, _) =
            steady_state_run(app.paper_traced(nodes).as_ref(), config, nodes, false);
        s.push_str(&format!(
            "{nodes}	{:.4}	{:.4}	{replayed}
",
            plain.throughput_per_node / scale,
            traced_tput / scale,
        ));
    }
    s
}

/// The automatic trace detection experiment: the same weak-scaling
/// workload untraced, manually traced (`begin_trace`/`end_trace` in the
/// app), and *unannotated* on a runtime that detects the repeats itself.
/// Auto-traced throughput should track manual tracing closely — the
/// detector only costs extra analyzed instances before promotion, which
/// the steady-state median excludes.
pub fn autotracing_sweep(app: AppKind, node_counts: &[usize]) -> String {
    let config = RunConfig {
        engine: EngineKind::RayCast,
        dcr: false,
    };
    let (scale, unit) = app.unit_scale();
    let mut s = format!(
        "# Extension: automatic trace detection — {} weak scaling, RayCast No DCR
         # value: {unit}
nodes	untraced	traced	auto_traced	replayed_manual	replayed_auto	detected	demoted
",
        app.label()
    );
    for &nodes in node_counts {
        let plain = measure(app, app.paper(nodes).as_ref(), config, nodes);
        let (manual_tput, manual_replayed, _, _) =
            steady_state_run(app.paper_traced(nodes).as_ref(), config, nodes, false);
        let (auto_tput, auto_replayed, detected, demoted) =
            steady_state_run(app.paper(nodes).as_ref(), config, nodes, true);
        s.push_str(&format!(
            "{nodes}	{:.4}	{:.4}	{:.4}	{manual_replayed}	{auto_replayed}	{detected}	{demoted}
",
            plain.throughput_per_node / scale,
            manual_tput / scale,
            auto_tput / scale,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_configurations_match_paper_legend() {
        let cfgs = RunConfig::evaluated();
        assert_eq!(cfgs.len(), 5);
        let labels: Vec<String> = cfgs.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "RayCast, DCR",
                "RayCast, No DCR",
                "Warnock, DCR",
                "Warnock, No DCR",
                "Paint, No DCR"
            ]
        );
        assert_eq!(cfgs[0].artifact_system(), "neweqcr_dcr");
        assert_eq!(cfgs[4].artifact_system(), "paint_nodcr");
    }

    #[test]
    fn paper_node_counts_are_powers_of_two() {
        assert_eq!(
            paper_node_counts(512),
            vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
        );
        assert_eq!(paper_node_counts(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn measure_produces_sane_stencil_point() {
        let m = measure(
            AppKind::Stencil,
            AppKind::Stencil.bench_scale(2).as_ref(),
            RunConfig {
                engine: EngineKind::RayCast,
                dcr: false,
            },
            2,
        );
        assert!(m.init_time_s > 0.0);
        assert!(m.elapsed_s >= m.init_time_s);
        assert!(m.throughput_per_node > 0.0);
        assert!(m.counters.launches > 0);
    }

    #[test]
    fn artifact_tsv_shape() {
        let m = measure(
            AppKind::Circuit,
            AppKind::Circuit.bench_scale(1).as_ref(),
            RunConfig {
                engine: EngineKind::Paint,
                dcr: false,
            },
            1,
        );
        let tsv = artifact_tsv(&[m], 2);
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 reps");
        assert!(lines[0].starts_with("system\tnodes"));
        assert!(lines[1].starts_with("paint_nodcr\t1\t1\t0\t"));
    }

    #[test]
    fn figure_tsv_has_all_configs() {
        let rows = sweep(AppKind::Pennant, &[1, 2], false);
        let fig = init_figure_tsv(&rows);
        let header = fig.lines().nth(1).unwrap();
        assert_eq!(header.split('\t').count(), 6, "nodes + 5 configs");
        assert_eq!(fig.lines().count(), 4, "comment + header + 2 node rows");
    }
}
