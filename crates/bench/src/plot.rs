//! Terminal rendering of the figure series — log₂-x line charts like the
//! paper's log-linear plots, drawn with unicode block characters.

use crate::Measurement;
use crate::RunConfig;

/// Per-configuration glyphs, in `RunConfig::evaluated()` order (matching
/// the paper's five-curve legend).
const GLYPHS: [char; 5] = ['R', 'r', 'W', 'w', 'P'];

/// Render one figure as an ASCII chart: x = log₂(nodes), y = value.
///
/// `value` extracts the plotted quantity; `log_y` uses a log₁₀ y-axis
/// (natural for the init-time figures, whose curves span decades).
pub fn render(
    title: &str,
    unit: &str,
    rows: &[Measurement],
    value: impl Fn(&Measurement) -> f64,
    log_y: bool,
) -> String {
    let configs = RunConfig::evaluated();
    let mut nodes: Vec<usize> = rows.iter().map(|m| m.nodes).collect();
    nodes.sort_unstable();
    nodes.dedup();
    if nodes.is_empty() {
        return format!("{title}: no data\n");
    }
    let width = nodes.len();
    let height = 16usize;

    // Gather the series and the y range.
    let mut series: Vec<Vec<Option<f64>>> = Vec::new();
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for c in configs {
        let mut s = Vec::with_capacity(width);
        for n in &nodes {
            let v = rows
                .iter()
                .find(|m| m.nodes == *n && m.config == c)
                .map(&value);
            if let Some(v) = v {
                let v = if log_y { v.max(1e-12).log10() } else { v };
                lo = lo.min(v);
                hi = hi.max(v);
                s.push(Some(v));
            } else {
                s.push(None);
            }
        }
        series.push(s);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return format!("{title}: no data\n");
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }

    // Paint the canvas; later series overwrite earlier at collisions.
    let mut canvas = vec![vec![' '; width * 4 + 1]; height];
    for (si, s) in series.iter().enumerate() {
        for (xi, v) in s.iter().enumerate() {
            let Some(v) = v else { continue };
            let y = ((v - lo) / (hi - lo) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y;
            // Each node gets a 4-column slot; series are offset within it
            // so coincident curves stay visible.
            canvas[row][xi * 4 + si.min(4)] = GLYPHS[si];
        }
    }

    let fmt_tick = |v: f64| -> String {
        let v = if log_y { 10f64.powf(v) } else { v };
        if v >= 100.0 {
            format!("{v:>8.0}")
        } else if v >= 1.0 {
            format!("{v:>8.2}")
        } else {
            format!("{v:>8.4}")
        }
    };

    let mut out = String::new();
    out.push_str(&format!(
        "{title}   [{unit}{}]\n",
        if log_y { ", log y" } else { "" }
    ));
    for (ri, row) in canvas.iter().enumerate() {
        let tick = if ri == 0 {
            fmt_tick(hi)
        } else if ri == height - 1 {
            fmt_tick(lo)
        } else {
            " ".repeat(8)
        };
        out.push_str(&format!("{tick} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("{} +{}\n", " ".repeat(8), "-".repeat(width * 4)));
    out.push_str(&format!(
        "{}  {}\n",
        " ".repeat(8),
        nodes.iter().map(|n| format!("{n:<4}")).collect::<String>()
    ));
    out.push_str("legend: ");
    for (c, g) in configs.iter().zip(GLYPHS) {
        out.push_str(&format!("{g}={}  ", c.label()));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{measure, AppKind, RunConfig};

    fn sample_rows() -> Vec<Measurement> {
        let mut rows = Vec::new();
        for nodes in [1usize, 2] {
            for config in RunConfig::evaluated() {
                let wl = AppKind::Circuit.bench_scale(nodes);
                rows.push(measure(AppKind::Circuit, wl.as_ref(), config, nodes));
            }
        }
        rows
    }

    #[test]
    fn renders_all_series_with_legend() {
        let rows = sample_rows();
        let chart = render("test chart", "s", &rows, |m| m.init_time_s, true);
        assert!(chart.contains("test chart"));
        assert!(chart.contains("legend:"));
        for g in GLYPHS {
            assert!(chart.contains(g), "glyph {g} missing from chart:\n{chart}");
        }
        // Axis ticks and node labels present.
        assert!(chart.contains('|') && chart.contains('+'));
        assert!(chart.contains("1   2"));
    }

    #[test]
    fn empty_input_is_graceful() {
        let chart = render("empty", "s", &[], |m| m.init_time_s, false);
        assert!(chart.contains("no data"));
    }

    #[test]
    fn linear_and_log_axes_render() {
        let rows = sample_rows();
        let lin = render("lin", "x", &rows, |m| m.throughput_per_node, false);
        let log = render("log", "x", &rows, |m| m.throughput_per_node, true);
        assert!(lin.contains("lin") && log.contains("log y"));
    }
}
