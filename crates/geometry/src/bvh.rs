//! A static bounding-volume hierarchy (paper §6.1).
//!
//! Warnock's algorithm and the region tree use a BVH as the acceleration
//! structure for "which stored entries does this region overlap" queries.
//! This BVH is built once over a fixed set of `(id, bbox)` leaves (e.g. the
//! children of a partition) and queried many times.

use crate::rect::Rect;

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        bbox: Rect,
        /// Range into `items` (leaves store a handful of items each).
        start: u32,
        len: u32,
    },
    Inner {
        bbox: Rect,
        left: u32,
        right: u32,
    },
}

/// Static BVH over `(id, bbox)` items, built with spatial-median splits on
/// the longer axis of the centroid bounds.
#[derive(Clone, Debug, Default)]
pub struct Bvh {
    nodes: Vec<Node>,
    items: Vec<(u32, Rect)>,
    root: Option<u32>,
}

const LEAF_SIZE: usize = 4;

impl Bvh {
    /// Build a BVH over the given items. Empty bboxes are dropped.
    pub fn build(items: Vec<(u32, Rect)>) -> Self {
        let mut items: Vec<(u32, Rect)> =
            items.into_iter().filter(|(_, r)| !r.is_empty()).collect();
        let mut bvh = Bvh {
            nodes: Vec::new(),
            items: Vec::new(),
            root: None,
        };
        if items.is_empty() {
            return bvh;
        }
        let n = items.len();
        let root = bvh.build_range(&mut items, 0, n);
        bvh.items = items;
        bvh.root = Some(root);
        bvh
    }

    fn build_range(&mut self, items: &mut [(u32, Rect)], start: usize, end: usize) -> u32 {
        let slice = &mut items[start..end];
        let bbox = slice
            .iter()
            .fold(Rect::EMPTY, |acc, (_, r)| acc.union_bbox(r));
        if slice.len() <= LEAF_SIZE {
            let id = self.nodes.len() as u32;
            self.nodes.push(Node::Leaf {
                bbox,
                start: start as u32,
                len: slice.len() as u32,
            });
            return id;
        }
        // Split on the longer axis of the centroid extent.
        let centers: Rect = slice.iter().fold(Rect::EMPTY, |acc, (_, r)| {
            acc.union_bbox(&Rect::point(r.center()))
        });
        let x_extent = centers.hi.x - centers.lo.x;
        let y_extent = centers.hi.y - centers.lo.y;
        if x_extent >= y_extent {
            slice.sort_unstable_by_key(|(_, r)| r.center().x);
        } else {
            slice.sort_unstable_by_key(|(_, r)| r.center().y);
        }
        let mid = start + (end - start) / 2;
        let left = self.build_range(items, start, mid);
        let right = self.build_range(items, mid, end);
        let id = self.nodes.len() as u32;
        self.nodes.push(Node::Inner { bbox, left, right });
        id
    }

    /// Append the ids of every stored item whose bbox overlaps `query`.
    pub fn query(&self, query: &Rect, out: &mut Vec<u32>) {
        let Some(root) = self.root else { return };
        if query.is_empty() {
            return;
        }
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            match &self.nodes[n as usize] {
                Node::Leaf { bbox, start, len } => {
                    if bbox.overlaps(query) {
                        for (id, r) in &self.items[*start as usize..(*start + *len) as usize] {
                            if r.overlaps(query) {
                                out.push(*id);
                            }
                        }
                    }
                }
                Node::Inner { bbox, left, right } => {
                    if bbox.overlaps(query) {
                        stack.push(*left);
                        stack.push(*right);
                    }
                }
            }
        }
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn query_vec(&self, query: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.query(query, &mut out);
        out
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn grid_tiles(n: i64, tile: i64) -> Vec<(u32, Rect)> {
        let mut out = Vec::new();
        let mut id = 0;
        for ty in 0..n {
            for tx in 0..n {
                out.push((
                    id,
                    Rect::xy(
                        tx * tile,
                        (tx + 1) * tile - 1,
                        ty * tile,
                        (ty + 1) * tile - 1,
                    ),
                ));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn empty_bvh_returns_nothing() {
        let bvh = Bvh::build(vec![]);
        assert!(bvh.is_empty());
        assert!(bvh.query_vec(&Rect::span(0, 100)).is_empty());
    }

    #[test]
    fn finds_exactly_overlapping_tiles() {
        let bvh = Bvh::build(grid_tiles(8, 10));
        // Query covering tiles (2,2)..(4,4) plus one-cell bleed.
        let q = Rect::xy(20, 45, 20, 45);
        let mut hits = bvh.query_vec(&q);
        hits.sort_unstable();
        let mut expect: Vec<u32> = grid_tiles(8, 10)
            .into_iter()
            .filter(|(_, r)| r.overlaps(&q))
            .map(|(id, _)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(hits, expect);
        assert_eq!(hits.len(), 9);
    }

    #[test]
    fn point_query_hits_single_tile() {
        let bvh = Bvh::build(grid_tiles(16, 4));
        let q = Rect::point(Point::new(33, 7));
        let hits = bvh.query_vec(&q);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn matches_linear_scan_on_random_rects() {
        // Deterministic pseudo-random rects; BVH must agree with brute force.
        let mut state = 0x12345678u64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as i64
        };
        let items: Vec<(u32, Rect)> = (0..200)
            .map(|i| {
                let x = rnd();
                let y = rnd();
                (i, Rect::xy(x, x + rnd() % 50, y, y + rnd() % 50))
            })
            .collect();
        let bvh = Bvh::build(items.clone());
        for _ in 0..50 {
            let x = rnd();
            let y = rnd();
            let q = Rect::xy(x, x + 80, y, y + 80);
            let mut hits = bvh.query_vec(&q);
            hits.sort_unstable();
            let mut expect: Vec<u32> = items
                .iter()
                .filter(|(_, r)| r.overlaps(&q))
                .map(|(id, _)| *id)
                .collect();
            expect.sort_unstable();
            assert_eq!(hits, expect);
        }
    }
}
