//! An incrementally maintained bounding-volume hierarchy.
//!
//! The static [`crate::Bvh`] is rebuilt from scratch whenever its leaf set
//! changes, which is fine for partition children (fixed at creation) but
//! wrong for equivalence-set indexes: ray casting's dominating writes create
//! and destroy sets continuously, and a full rebuild per refinement turns
//! O(log n) maintenance into O(n log n). This tree instead:
//!
//! * **inserts** a leaf next to the sibling whose bounds grow least
//!   (perimeter heuristic), then *refits* ancestor bounds on the way up;
//! * **removes** a leaf by splicing its sibling into the parent's slot,
//!   again refitting ancestors;
//! * **rebuilds** from scratch (spatial-median splits, like the static BVH)
//!   only when incremental maintenance has degraded the tree — a leaf path
//!   observed to exceed `2·log2(n) + 8` — keeping queries logarithmic
//!   without paying rebuild costs on every refinement.
//!
//! Refit and rebuild counts are exposed so the engines can export the
//! refit-vs-rebuild ratio through viz-profile.

use crate::hash::FxHashMap;
use crate::rect::Rect;

const NONE: u32 = u32::MAX;

#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub(crate) bbox: Rect,
    pub(crate) parent: u32,
    /// `NONE` for leaves.
    pub(crate) left: u32,
    pub(crate) right: u32,
    /// Item id (leaves only).
    pub(crate) id: u64,
}

impl Node {
    #[inline]
    pub(crate) fn is_leaf(&self) -> bool {
        self.left == NONE
    }
}

/// Dynamic BVH over `(id, rect)` items with incremental maintenance.
///
/// Ids are caller-managed and must be unique among live items (re-inserting
/// a live id is a logic error and panics in debug builds).
#[derive(Clone, Debug, Default)]
pub struct DynamicBvh {
    pub(crate) nodes: Vec<Node>,
    free: Vec<u32>,
    pub(crate) root: u32,
    leaf_of: FxHashMap<u64, u32>,
    refits: u64,
    rebuilds: u64,
    /// Bumped on every structural mutation (insert/remove, including the
    /// rebuilds they trigger). Flat snapshots ([`crate::FlatBvh`]) record
    /// the epoch they were taken at; a mismatch means the snapshot is
    /// stale and must be re-taken.
    epoch: u64,
}

impl DynamicBvh {
    pub fn new() -> Self {
        DynamicBvh {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NONE,
            leaf_of: FxHashMap::default(),
            refits: 0,
            rebuilds: 0,
            epoch: 0,
        }
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.leaf_of.len()
    }

    pub fn is_empty(&self) -> bool {
        self.leaf_of.is_empty()
    }

    /// Ancestor-refit passes performed by incremental maintenance.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Full rebuilds triggered by the degradation heuristic.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Mutation epoch: bumped by every [`insert`](Self::insert) of a
    /// non-empty rect and every successful [`remove`](Self::remove)
    /// (rebuilds happen inside those and are covered). Two calls observing
    /// the same epoch observe the identical tree, which is what lets a
    /// [`crate::FlatBvh`] snapshot be reused across queries.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Check that every stored bounding box is *exactly tight*: each inner
    /// node's bbox equals the union of its children's, transitively the
    /// union of its descendant leaves — the invariant the ancestor-refit
    /// early break relies on. Returns the first violation, if any.
    /// Test/audit support; walks the whole tree.
    pub fn validate_tight(&self) -> Result<(), String> {
        if self.root == NONE {
            return Ok(());
        }
        let mut stack = vec![self.root];
        while let Some(cur) = stack.pop() {
            let n = &self.nodes[cur as usize];
            if n.is_leaf() {
                continue;
            }
            let merged = self.nodes[n.left as usize]
                .bbox
                .union_bbox(&self.nodes[n.right as usize].bbox);
            if n.bbox != merged {
                return Err(format!(
                    "node {cur}: stored bbox {:?} != children union {merged:?}",
                    n.bbox
                ));
            }
            stack.push(n.left);
            stack.push(n.right);
        }
        Ok(())
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            slot
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Cost of enlarging `bbox` to hold `add`: perimeter growth. Cheap,
    /// overflow-free for the index ranges the runtime uses, and monotone
    /// enough to keep sibling choices local.
    #[inline]
    fn growth(bbox: &Rect, add: &Rect) -> i64 {
        let u = bbox.union_bbox(add);
        let per = |r: &Rect| (r.hi.x - r.lo.x) + (r.hi.y - r.lo.y);
        per(&u) - per(bbox)
    }

    /// Insert an item. Empty rects are ignored (they overlap nothing).
    pub fn insert(&mut self, id: u64, rect: Rect) {
        if rect.is_empty() {
            return;
        }
        debug_assert!(
            !self.leaf_of.contains_key(&id),
            "duplicate live id {id} inserted"
        );
        self.epoch += 1;
        let leaf = self.alloc(Node {
            bbox: rect,
            parent: NONE,
            left: NONE,
            right: NONE,
            id,
        });
        self.leaf_of.insert(id, leaf);
        if self.root == NONE {
            self.root = leaf;
            return;
        }
        // Descend to the sibling whose bounds grow least.
        let mut cur = self.root;
        let mut depth = 0u32;
        while !self.nodes[cur as usize].is_leaf() {
            let (l, r) = (
                self.nodes[cur as usize].left,
                self.nodes[cur as usize].right,
            );
            let gl = Self::growth(&self.nodes[l as usize].bbox, &rect);
            let gr = Self::growth(&self.nodes[r as usize].bbox, &rect);
            cur = if gl <= gr { l } else { r };
            depth += 1;
        }
        // Splice a new inner node in the sibling's place.
        let sibling = cur;
        let parent = self.nodes[sibling as usize].parent;
        let inner = self.alloc(Node {
            bbox: self.nodes[sibling as usize].bbox.union_bbox(&rect),
            parent,
            left: sibling,
            right: leaf,
            id: 0,
        });
        self.nodes[sibling as usize].parent = inner;
        self.nodes[leaf as usize].parent = inner;
        if parent == NONE {
            self.root = inner;
        } else {
            let p = &mut self.nodes[parent as usize];
            if p.left == sibling {
                p.left = inner;
            } else {
                p.right = inner;
            }
            self.refit_from(parent);
        }
        if self.degraded(depth) {
            self.rebuild();
        }
    }

    /// Remove an item by id. Returns whether a live item was removed.
    pub fn remove(&mut self, id: u64) -> bool {
        let Some(leaf) = self.leaf_of.remove(&id) else {
            return false;
        };
        self.epoch += 1;
        let parent = self.nodes[leaf as usize].parent;
        self.free.push(leaf);
        if parent == NONE {
            self.root = NONE;
            return true;
        }
        // Splice the sibling into the parent's slot.
        let p = &self.nodes[parent as usize];
        let sibling = if p.left == leaf { p.right } else { p.left };
        let grand = p.parent;
        self.nodes[sibling as usize].parent = grand;
        self.free.push(parent);
        if grand == NONE {
            self.root = sibling;
        } else {
            let g = &mut self.nodes[grand as usize];
            if g.left == parent {
                g.left = sibling;
            } else {
                g.right = sibling;
            }
            self.refit_from(grand);
        }
        true
    }

    /// Tighten ancestor bounds from `from` to the root (one refit pass).
    fn refit_from(&mut self, from: u32) {
        self.refits += 1;
        let mut cur = from;
        while cur != NONE {
            let n = &self.nodes[cur as usize];
            let merged = self.nodes[n.left as usize]
                .bbox
                .union_bbox(&self.nodes[n.right as usize].bbox);
            let n = &mut self.nodes[cur as usize];
            if n.bbox == merged {
                // Ancestors are bounds of this bound: already tight.
                break;
            }
            n.bbox = merged;
            cur = n.parent;
        }
    }

    /// Degradation heuristic: a leaf path longer than `2·log2(n) + 8` means
    /// incremental updates have unbalanced the tree.
    fn degraded(&self, depth: u32) -> bool {
        let n = self.len().max(2) as u32;
        depth > 2 * (u32::BITS - n.leading_zeros()) + 8
    }

    /// Rebuild from scratch with spatial-median splits.
    fn rebuild(&mut self) {
        let mut items: Vec<(u64, Rect)> = self.iter().collect();
        self.nodes.clear();
        self.free.clear();
        self.leaf_of.clear();
        self.root = NONE;
        self.rebuilds += 1;
        if items.is_empty() {
            return;
        }
        let n = items.len();
        self.root = self.build_range(&mut items, 0, n, NONE);
    }

    fn build_range(
        &mut self,
        items: &mut [(u64, Rect)],
        start: usize,
        end: usize,
        parent: u32,
    ) -> u32 {
        let slice = &mut items[start..end];
        if slice.len() == 1 {
            let (id, rect) = slice[0];
            let leaf = self.alloc(Node {
                bbox: rect,
                parent,
                left: NONE,
                right: NONE,
                id,
            });
            self.leaf_of.insert(id, leaf);
            return leaf;
        }
        let bbox = slice
            .iter()
            .fold(Rect::EMPTY, |acc, (_, r)| acc.union_bbox(r));
        let centers: Rect = slice.iter().fold(Rect::EMPTY, |acc, (_, r)| {
            acc.union_bbox(&Rect::point(r.center()))
        });
        if centers.hi.x - centers.lo.x >= centers.hi.y - centers.lo.y {
            slice.sort_unstable_by_key(|(_, r)| r.center().x);
        } else {
            slice.sort_unstable_by_key(|(_, r)| r.center().y);
        }
        let inner = self.alloc(Node {
            bbox,
            parent,
            left: NONE,
            right: NONE,
            id: 0,
        });
        let mid = start + (end - start) / 2;
        let left = self.build_range(items, start, mid, inner);
        let right = self.build_range(items, mid, end, inner);
        let n = &mut self.nodes[inner as usize];
        n.left = left;
        n.right = right;
        inner
    }

    /// Ids of all live items whose rect overlaps `query`.
    pub fn query(&self, query: &Rect, out: &mut Vec<u64>) {
        let mut stack = Vec::new();
        self.query_with(query, &mut stack, out);
    }

    /// [`query`](Self::query) with a caller-owned traversal stack, so hot
    /// callers (the raycast backward scan) can reuse one buffer across
    /// queries instead of allocating per call.
    pub fn query_with(&self, query: &Rect, stack: &mut Vec<u32>, out: &mut Vec<u64>) {
        if self.root == NONE || query.is_empty() {
            return;
        }
        stack.clear();
        stack.push(self.root);
        while let Some(cur) = stack.pop() {
            let n = &self.nodes[cur as usize];
            if !n.bbox.overlaps(query) {
                continue;
            }
            if n.is_leaf() {
                out.push(n.id);
            } else {
                stack.push(n.left);
                stack.push(n.right);
            }
        }
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn query_vec(&self, query: &Rect) -> Vec<u64> {
        let mut out = Vec::new();
        self.query(query, &mut out);
        out
    }

    /// Iterate all live `(id, rect)` items.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Rect)> + '_ {
        self.leaf_of
            .values()
            .map(|&slot| (self.nodes[slot as usize].id, self.nodes[slot as usize].bbox))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_roundtrip() {
        let mut t = DynamicBvh::new();
        for i in 0..100i64 {
            t.insert(i as u64, Rect::span(i * 10, i * 10 + 9));
        }
        assert_eq!(t.len(), 100);
        let mut hits = t.query_vec(&Rect::span(95, 125));
        hits.sort_unstable();
        assert_eq!(hits, vec![9, 10, 11, 12]);
    }

    #[test]
    fn remove_splices_siblings() {
        let mut t = DynamicBvh::new();
        t.insert(1, Rect::span(0, 9));
        t.insert(2, Rect::span(10, 19));
        t.insert(3, Rect::span(20, 29));
        assert!(t.remove(2));
        assert!(!t.remove(2));
        assert_eq!(t.len(), 2);
        let mut hits = t.query_vec(&Rect::span(0, 29));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 3]);
        assert!(t.remove(1));
        assert!(t.remove(3));
        assert!(t.is_empty());
        assert!(t.query_vec(&Rect::span(0, 100)).is_empty());
    }

    #[test]
    fn refits_dominate_rebuilds_under_churn() {
        let mut t = DynamicBvh::new();
        for i in 0..256i64 {
            t.insert(i as u64, Rect::span(i * 4, i * 4 + 3));
        }
        for i in 0..128u64 {
            assert!(t.remove(i * 2));
        }
        assert!(t.refits() > 0);
        assert!(
            t.refits() > 16 * t.rebuilds().max(1),
            "refits {} rebuilds {}",
            t.refits(),
            t.rebuilds()
        );
    }

    #[test]
    fn adversarial_insertion_order_triggers_rebuild() {
        // Strictly increasing spans make naive insertion a linked list; the
        // degradation heuristic must kick in and restore balance.
        let mut t = DynamicBvh::new();
        for i in 0..4096i64 {
            t.insert(i as u64, Rect::span(i, i));
        }
        assert!(t.rebuilds() > 0, "degenerate chain was never rebuilt");
        let hits = t.query_vec(&Rect::span(100, 103));
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn matches_linear_scan_with_churn() {
        let mut state = 99u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 500) as i64
        };
        let mut t = DynamicBvh::new();
        let mut live: Vec<(u64, Rect)> = Vec::new();
        for i in 0..300u64 {
            let x = rnd();
            let y = rnd();
            let r = Rect::xy(x, x + rnd() % 30, y, y + rnd() % 30);
            t.insert(i, r);
            live.push((i, r));
            if i % 3 == 0 && !live.is_empty() {
                let victim = live.remove((rnd() as usize) % live.len());
                assert!(t.remove(victim.0));
            }
        }
        assert_eq!(t.len(), live.len());
        for _ in 0..40 {
            let x = rnd();
            let y = rnd();
            let q = Rect::xy(x, x + 60, y, y + 60);
            let mut hits = t.query_vec(&q);
            hits.sort_unstable();
            let mut expect: Vec<u64> = live
                .iter()
                .filter(|(_, r)| r.overlaps(&q))
                .map(|(id, _)| *id)
                .collect();
            expect.sort_unstable();
            assert_eq!(hits, expect);
        }
    }
}
