//! A flattened, structure-of-arrays snapshot of a [`DynamicBvh`].
//!
//! The dynamic tree is the right structure for *maintenance* — leaf
//! insert/remove with ancestor refits — but the wrong one for resolving a
//! *batch* of visibility queries: every query pointer-chases heap nodes and
//! allocates a traversal stack. This snapshot re-lays the tree out the way
//! GPU path tracers do before a dispatch:
//!
//! * **Pre-order node array with skip offsets.** Nodes are stored in DFS
//!   pre-order; each carries the index of the first node *past* its subtree.
//!   Traversal is stackless: a hit advances by one, a miss jumps to `skip`.
//! * **Structure-of-arrays bounds.** Node and leaf bounds live in separate
//!   `min_x`/`min_y`/`max_x`/`max_y` arrays, so the inner ray/box test reads
//!   four contiguous streams instead of striding over node structs.
//! * **Contiguous subtree leaves.** Pre-order makes every subtree's leaves a
//!   contiguous run of the leaf arrays. Once traversal reaches a subtree
//!   with at most [`SCAN_CUTOFF`] leaves it stops descending and tests the
//!   whole run with [`LEAF_CHUNK`]-wide unrolled comparisons — the
//!   "4–8 boxes per step" SIMD-friendly sweep the batch API amortizes over
//!   a shard's entire pending query set.
//!
//! A snapshot records the tree's mutation [`DynamicBvh::epoch`]; holders
//! compare epochs to decide when a refinement invalidated it. The layout —
//! flat node array + SoA rect bounds + a flat query list — is exactly the
//! buffer set a future wgpu compute dispatch would upload verbatim.

use crate::dbvh::DynamicBvh;
use crate::rect::Rect;

/// Test boxes per unrolled step of the leaf sweep.
const LEAF_CHUNK: usize = 8;
/// Subtrees at or below this many leaves are swept linearly instead of
/// descended. Four chunks: small enough to keep the sweep cheap on misses,
/// large enough that the branchy traversal loop runs on fat nodes only.
const SCAN_CUTOFF: u32 = 32;

/// Flattened SoA snapshot of a [`DynamicBvh`] with a batched query API.
///
/// Construct with [`FlatBvh::snapshot`]; query one rect with
/// [`FlatBvh::query_into`] or a whole batch with [`FlatBvh::batch_query`].
/// All query paths append into caller-owned buffers and allocate nothing
/// once those buffers have warmed up.
#[derive(Clone, Debug, Default)]
pub struct FlatBvh {
    // ---- nodes, DFS pre-order ----
    /// Index of the first node past this node's subtree (miss target).
    skip: Vec<u32>,
    nmin_x: Vec<i64>,
    nmin_y: Vec<i64>,
    nmax_x: Vec<i64>,
    nmax_y: Vec<i64>,
    /// First entry of this subtree's contiguous run in the leaf arrays.
    leaf_start: Vec<u32>,
    /// Length of that run.
    leaf_count: Vec<u32>,
    // ---- leaves, DFS order ----
    lmin_x: Vec<i64>,
    lmin_y: Vec<i64>,
    lmax_x: Vec<i64>,
    lmax_y: Vec<i64>,
    /// Item id per leaf.
    lid: Vec<u64>,
    /// The [`DynamicBvh::epoch`] this snapshot was taken at.
    epoch: u64,
}

impl FlatBvh {
    /// Flatten the live tree. O(n); allocates the snapshot arrays exactly
    /// once each (sizes are known up front).
    pub fn snapshot(tree: &DynamicBvh) -> FlatBvh {
        let leaves = tree.len();
        // Every DynamicBvh is a full binary tree: n leaves, n - 1 inners.
        let nodes = if leaves == 0 { 0 } else { 2 * leaves - 1 };
        let mut f = FlatBvh {
            skip: Vec::with_capacity(nodes),
            nmin_x: Vec::with_capacity(nodes),
            nmin_y: Vec::with_capacity(nodes),
            nmax_x: Vec::with_capacity(nodes),
            nmax_y: Vec::with_capacity(nodes),
            leaf_start: Vec::with_capacity(nodes),
            leaf_count: Vec::with_capacity(nodes),
            lmin_x: Vec::with_capacity(leaves),
            lmin_y: Vec::with_capacity(leaves),
            lmax_x: Vec::with_capacity(leaves),
            lmax_y: Vec::with_capacity(leaves),
            lid: Vec::with_capacity(leaves),
            epoch: tree.epoch(),
        };
        if leaves == 0 {
            return f;
        }
        // Iterative pre-order with an explicit enter/exit stack, so even a
        // tree the degradation heuristic has not yet rebuilt cannot
        // overflow the call stack.
        enum Walk {
            Enter(u32),
            Exit(u32),
        }
        let mut stack = vec![Walk::Enter(tree.root)];
        while let Some(step) = stack.pop() {
            match step {
                Walk::Enter(idx) => {
                    let n = &tree.nodes[idx as usize];
                    let me = f.skip.len() as u32;
                    f.skip.push(0); // patched on exit
                    f.nmin_x.push(n.bbox.lo.x);
                    f.nmin_y.push(n.bbox.lo.y);
                    f.nmax_x.push(n.bbox.hi.x);
                    f.nmax_y.push(n.bbox.hi.y);
                    f.leaf_start.push(f.lid.len() as u32);
                    f.leaf_count.push(0); // patched on exit
                    stack.push(Walk::Exit(me));
                    if n.is_leaf() {
                        f.lmin_x.push(n.bbox.lo.x);
                        f.lmin_y.push(n.bbox.lo.y);
                        f.lmax_x.push(n.bbox.hi.x);
                        f.lmax_y.push(n.bbox.hi.y);
                        f.lid.push(n.id);
                    } else {
                        // Right first so the left subtree is entered first.
                        stack.push(Walk::Enter(n.right));
                        stack.push(Walk::Enter(n.left));
                    }
                }
                Walk::Exit(me) => {
                    f.skip[me as usize] = f.skip.len() as u32;
                    f.leaf_count[me as usize] = f.lid.len() as u32 - f.leaf_start[me as usize];
                }
            }
        }
        debug_assert_eq!(f.skip.len(), nodes);
        debug_assert_eq!(f.lid.len(), leaves);
        f
    }

    /// The [`DynamicBvh::epoch`] this snapshot reflects.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total nodes in the flattened array.
    pub fn node_count(&self) -> usize {
        self.skip.len()
    }

    /// Live items (leaves) captured by the snapshot.
    pub fn len(&self) -> usize {
        self.lid.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lid.is_empty()
    }

    /// Sweep one contiguous leaf run, [`LEAF_CHUNK`] boxes per step. The
    /// comparisons are written branch-free (`&`, not `&&`) over the four
    /// SoA streams so the compiler can vectorize the chunk body; hits are
    /// extracted from the accumulated mask afterwards.
    #[inline]
    fn scan_leaves(&self, q: &Rect, start: usize, end: usize, out: &mut Vec<u64>) {
        let (qlx, qly, qhx, qhy) = (q.lo.x, q.lo.y, q.hi.x, q.hi.y);
        // Equal-length subslices: one bounds proof up front, none inside
        // the chunk body — the comparisons compile to straight-line
        // vectorizable code over the four streams.
        let lx = &self.lmin_x[start..end];
        let hx = &self.lmax_x[start..end];
        let ly = &self.lmin_y[start..end];
        let hy = &self.lmax_y[start..end];
        let ids = &self.lid[start..end];
        let len = lx.len();
        let mut k = 0;
        while k + LEAF_CHUNK <= len {
            let mut mask = 0u32;
            for j in 0..LEAF_CHUNK {
                let hit = (lx[k + j] <= qhx) as u32
                    & (qlx <= hx[k + j]) as u32
                    & (ly[k + j] <= qhy) as u32
                    & (qly <= hy[k + j]) as u32;
                mask |= hit << j;
            }
            while mask != 0 {
                let j = mask.trailing_zeros() as usize;
                out.push(ids[k + j]);
                mask &= mask - 1;
            }
            k += LEAF_CHUNK;
        }
        for j in k..len {
            if lx[j] <= qhx && qlx <= hx[j] && ly[j] <= qhy && qly <= hy[j] {
                out.push(ids[j]);
            }
        }
    }

    /// Ids of all items whose rect overlaps `query`, appended to `out`.
    /// Stackless skip-offset traversal; small subtrees are swept linearly.
    pub fn query_into(&self, query: &Rect, out: &mut Vec<u64>) {
        if self.skip.is_empty() || query.is_empty() {
            return;
        }
        let (qlx, qly, qhx, qhy) = (query.lo.x, query.lo.y, query.hi.x, query.hi.y);
        let n = self.skip.len();
        // `[..n]` pins every stream to the loop bound, so the `i < n`
        // check is the only one the traversal pays.
        let skip = &self.skip[..n];
        let nmin_x = &self.nmin_x[..n];
        let nmax_x = &self.nmax_x[..n];
        let nmin_y = &self.nmin_y[..n];
        let nmax_y = &self.nmax_y[..n];
        let leaf_start = &self.leaf_start[..n];
        let leaf_count = &self.leaf_count[..n];
        let mut i = 0usize;
        while i < n {
            let miss = nmin_x[i] > qhx || qlx > nmax_x[i] || nmin_y[i] > qhy || qly > nmax_y[i];
            if miss {
                i = skip[i] as usize;
            } else if leaf_count[i] <= SCAN_CUTOFF {
                let start = leaf_start[i] as usize;
                self.scan_leaves(query, start, start + leaf_count[i] as usize, out);
                i = skip[i] as usize;
            } else {
                i += 1;
            }
        }
    }

    /// Resolve a whole batch of queries in one sweep: hit ids are appended
    /// to `hits`, with `offsets[k]..offsets[k + 1]` delimiting query `k`'s
    /// results (`offsets` gets `queries.len() + 1` entries). Both buffers
    /// are cleared first and reused across calls — steady state performs no
    /// allocation once they have grown to the workload's high-water mark.
    pub fn batch_query(&self, queries: &[Rect], hits: &mut Vec<u64>, offsets: &mut Vec<u32>) {
        hits.clear();
        offsets.clear();
        offsets.push(0);
        for q in queries {
            self.query_into(q, hits);
            offsets.push(hits.len() as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checked(tree: &DynamicBvh, live: &[(u64, Rect)], queries: &[Rect]) {
        let snap = FlatBvh::snapshot(tree);
        assert_eq!(snap.len(), live.len());
        assert_eq!(snap.epoch(), tree.epoch());
        let mut hits = Vec::new();
        let mut offsets = Vec::new();
        snap.batch_query(queries, &mut hits, &mut offsets);
        assert_eq!(offsets.len(), queries.len() + 1);
        for (k, q) in queries.iter().enumerate() {
            let mut got: Vec<u64> = hits[offsets[k] as usize..offsets[k + 1] as usize].to_vec();
            got.sort_unstable();
            let mut expect: Vec<u64> = live
                .iter()
                .filter(|(_, r)| r.overlaps(q))
                .map(|(id, _)| *id)
                .collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "query {q:?}");
        }
    }

    #[test]
    fn empty_tree_snapshot() {
        let tree = DynamicBvh::new();
        let snap = FlatBvh::snapshot(&tree);
        assert!(snap.is_empty());
        let mut hits = Vec::new();
        let mut offsets = Vec::new();
        snap.batch_query(&[Rect::span(0, 10)], &mut hits, &mut offsets);
        assert!(hits.is_empty());
        assert_eq!(offsets, vec![0, 0]);
    }

    #[test]
    fn matches_dynamic_tree_across_sizes() {
        // Cover both the pure-sweep regime (≤ SCAN_CUTOFF leaves) and the
        // traversal + chunked-sweep regime.
        for n in [1i64, 2, 7, 16, 17, 63, 200] {
            let mut tree = DynamicBvh::new();
            let mut live = Vec::new();
            for i in 0..n {
                let r = Rect::xy(i * 7 % 97, i * 7 % 97 + 10, i * 13 % 53, i * 13 % 53 + 6);
                tree.insert(i as u64, r);
                live.push((i as u64, r));
            }
            let queries = [
                Rect::xy(0, 96, 0, 58),   // everything
                Rect::xy(40, 45, 20, 25), // somewhere in the middle
                Rect::xy(500, 600, 0, 1), // nothing
                Rect::EMPTY,
            ];
            checked(&tree, &live, &queries);
        }
    }

    #[test]
    fn epoch_detects_staleness() {
        let mut tree = DynamicBvh::new();
        tree.insert(1, Rect::span(0, 9));
        let snap = FlatBvh::snapshot(&tree);
        assert_eq!(snap.epoch(), tree.epoch());
        tree.insert(2, Rect::span(20, 29));
        assert_ne!(snap.epoch(), tree.epoch(), "insert must bump the epoch");
        let snap2 = FlatBvh::snapshot(&tree);
        tree.remove(1);
        assert_ne!(snap2.epoch(), tree.epoch(), "remove must bump the epoch");
    }

    #[test]
    fn survives_churn() {
        let mut tree = DynamicBvh::new();
        let mut live: Vec<(u64, Rect)> = Vec::new();
        let mut state = 7u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 300) as i64
        };
        for i in 0..400u64 {
            let (x, y) = (rnd(), rnd());
            let r = Rect::xy(x, x + rnd() % 20, y, y + rnd() % 20);
            tree.insert(i, r);
            live.push((i, r));
            if i % 4 == 0 {
                let victim = live.remove((rnd() as usize) % live.len());
                assert!(tree.remove(victim.0));
            }
        }
        let queries: Vec<Rect> = (0..30)
            .map(|_| {
                let (x, y) = (rnd(), rnd());
                Rect::xy(x, x + 40, y, y + 40)
            })
            .collect();
        checked(&tree, &live, &queries);
    }
}
