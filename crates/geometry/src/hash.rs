//! A fast, non-cryptographic hasher for the hot analysis paths.
//!
//! The coherence engines hash small integer keys (region ids, task ids,
//! equivalence-set ids) millions of times per run; SipHash is a poor fit.
//! This is the well-known "Fx" multiply-rotate hash used by rustc,
//! re-implemented here so we take no extra dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (the rustc "Fx" hash).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1), h(2));
        assert_ne!(h(0), h(1 << 32));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn unaligned_bytes_hash() {
        let mut a = FxHasher::default();
        a.write(b"hello world"); // 11 bytes: one chunk + remainder
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
