//! Sparse index sets as normalized lists of disjoint rectangles.

use crate::point::Point;
use crate::rect::Rect;
use std::fmt;

/// A set of points in the index space, stored as a list of **disjoint**
/// rectangles sorted by `(lo.y, lo.x)` with adjacent rectangles coalesced
/// where a single normalization pass finds them.
///
/// This is the representation of a region's *domain* in the paper's sense: a
/// set of n-dimensional points. All of the set algebra the visibility
/// algorithms rely on is provided:
///
/// * `X/Y` (points of `X` shared with `Y`) — [`IndexSpace::intersect`]
/// * `X\Y` (points of `X` not in `Y`) — [`IndexSpace::subtract`]
/// * `X ∪ Y` — [`IndexSpace::union`]
///
/// The rectangle list is kept normalized, so structural equality of two
/// spaces is *not* guaranteed for equal point sets built differently; use
/// [`IndexSpace::same_points`] for set equality.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct IndexSpace {
    rects: Vec<Rect>,
}

impl IndexSpace {
    /// The empty set.
    #[inline]
    pub fn empty() -> Self {
        IndexSpace { rects: Vec::new() }
    }

    /// A dense rectangle.
    pub fn from_rect(r: Rect) -> Self {
        if r.is_empty() {
            Self::empty()
        } else {
            IndexSpace { rects: vec![r] }
        }
    }

    /// A dense 1-D span `[lo, hi]`.
    pub fn span(lo: i64, hi: i64) -> Self {
        Self::from_rect(Rect::span(lo, hi))
    }

    /// Build from arbitrary (possibly overlapping, possibly empty)
    /// rectangles.
    pub fn from_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Self {
        let mut acc = Self::empty();
        for r in rects {
            acc.add_rect(r);
        }
        acc.normalize();
        acc
    }

    /// Build from a set of points; consecutive 1-D runs are coalesced.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut pts: Vec<Point> = points.into_iter().collect();
        pts.sort_unstable();
        pts.dedup();
        let mut rects = Vec::new();
        let mut run: Option<Rect> = None;
        for p in pts {
            match run {
                Some(ref mut r) if r.hi.y == p.y && r.hi.x + 1 == p.x => {
                    r.hi.x = p.x;
                }
                _ => {
                    if let Some(r) = run.take() {
                        rects.push(r);
                    }
                    run = Some(Rect::point(p));
                }
            }
        }
        if let Some(r) = run {
            rects.push(r);
        }
        let mut s = IndexSpace { rects };
        s.normalize();
        s
    }

    /// Add a rectangle's points (keeps the disjointness invariant, does not
    /// re-normalize; callers batch adds and call `normalize` once).
    fn add_rect(&mut self, r: Rect) {
        if r.is_empty() {
            return;
        }
        // Insert only the parts of `r` not already covered.
        let mut pending = vec![r];
        for have in &self.rects {
            if pending.is_empty() {
                break;
            }
            let mut next = Vec::with_capacity(pending.len());
            for p in pending {
                if p.overlaps(have) {
                    next.extend(p.subtract(have));
                } else {
                    next.push(p);
                }
            }
            pending = next;
        }
        self.rects.extend(pending);
    }

    /// Restore sorted order and coalesce adjacent rectangles.
    ///
    /// Disjoint rectangles have pairwise-distinct `lo` points, so one sort
    /// establishes a total row-major order, and both merge passes preserve
    /// it: a merge keeps the surviving rectangle's `lo` and only grows its
    /// `hi`. The loop therefore never needs to re-sort, and each pass is
    /// linear — the vertical pass tracks the most recent rectangle per
    /// column band (within a band, row-major order is ascending `lo.y`, so
    /// only band-consecutive rectangles can be y-adjacent).
    fn normalize(&mut self) {
        if self.rects.len() <= 1 {
            return;
        }
        self.rects.sort_unstable_by_key(|r| (r.lo, r.hi));
        loop {
            let mut merged = false;
            // Horizontal merge: same row band, x-adjacent.
            let mut out: Vec<Rect> = Vec::with_capacity(self.rects.len());
            for r in self.rects.drain(..) {
                if let Some(last) = out.last_mut() {
                    if last.lo.y == r.lo.y && last.hi.y == r.hi.y && last.hi.x + 1 == r.lo.x {
                        last.hi.x = r.hi.x;
                        merged = true;
                        continue;
                    }
                }
                out.push(r);
            }
            // Vertical merge: same column band, y-adjacent.
            let mut col: crate::hash::FxHashMap<(i64, i64), usize> =
                crate::hash::FxHashMap::default();
            let mut vout: Vec<Rect> = Vec::with_capacity(out.len());
            for r in out {
                if let Some(&i) = col.get(&(r.lo.x, r.hi.x)) {
                    if vout[i].hi.y + 1 == r.lo.y {
                        vout[i].hi.y = r.hi.y;
                        merged = true;
                        continue;
                    }
                }
                col.insert((r.lo.x, r.hi.x), vout.len());
                vout.push(r);
            }
            self.rects = vout;
            if !merged {
                break;
            }
        }
    }

    /// The disjoint rectangles making up this set.
    #[inline]
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// If every rectangle spans the same single `y` band, return it: the
    /// set is effectively one-dimensional and the set operations can run
    /// as linear interval sweeps instead of pairwise rectangle tests. All
    /// 1-D element-id spaces (graphs, meshes) hit this path.
    fn linear_band(&self) -> Option<(i64, i64)> {
        let first = self.rects.first()?;
        let band = (first.lo.y, first.hi.y);
        self.rects
            .iter()
            .all(|r| (r.lo.y, r.hi.y) == band)
            .then_some(band)
    }

    /// Shared linear band of two sets, if any.
    fn common_band(&self, other: &IndexSpace) -> Option<(i64, i64)> {
        match (self.linear_band(), other.linear_band()) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Number of points in the set.
    pub fn volume(&self) -> u64 {
        self.rects.iter().map(Rect::volume).sum()
    }

    /// The bounding rectangle (empty rect if the set is empty).
    pub fn bbox(&self) -> Rect {
        self.rects
            .iter()
            .fold(Rect::EMPTY, |acc, r| acc.union_bbox(r))
    }

    pub fn contains_point(&self, p: Point) -> bool {
        self.rects.iter().any(|r| r.contains_point(p))
    }

    /// `self ∩ other ≠ ∅`, with a bounding-box early exit: this is the
    /// single hottest predicate in the dependence analysis.
    pub fn overlaps(&self, other: &IndexSpace) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        if !self.bbox().overlaps(&other.bbox()) {
            return false;
        }
        if self.common_band(other).is_some() {
            // Linear sweep over the sorted, disjoint runs.
            let (mut i, mut j) = (0, 0);
            while i < self.rects.len() && j < other.rects.len() {
                let a = &self.rects[i];
                let b = &other.rects[j];
                if a.hi.x < b.lo.x {
                    i += 1;
                } else if b.hi.x < a.lo.x {
                    j += 1;
                } else {
                    return true;
                }
            }
            return false;
        }
        for a in &self.rects {
            for b in &other.rects {
                if a.overlaps(b) {
                    return true;
                }
            }
        }
        false
    }

    /// `X/Y`: the subset of `self` sharing points with `other`.
    pub fn intersect(&self, other: &IndexSpace) -> IndexSpace {
        if self.is_empty() || other.is_empty() || !self.bbox().overlaps(&other.bbox()) {
            return IndexSpace::empty();
        }
        if let Some((ylo, yhi)) = self.common_band(other) {
            // Linear sweep; output runs are sorted and disjoint, and only
            // adjacent-run coalescing is needed.
            let mut rects: Vec<Rect> = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < self.rects.len() && j < other.rects.len() {
                let a = &self.rects[i];
                let b = &other.rects[j];
                let lo = a.lo.x.max(b.lo.x);
                let hi = a.hi.x.min(b.hi.x);
                if lo <= hi {
                    match rects.last_mut() {
                        Some(r) if r.hi.x + 1 == lo => r.hi.x = hi,
                        _ => rects.push(Rect::xy(lo, hi, ylo, yhi)),
                    }
                }
                if a.hi.x <= b.hi.x {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            return IndexSpace { rects };
        }
        let mut rects = Vec::new();
        for a in &self.rects {
            for b in &other.rects {
                let i = a.intersect(b);
                if !i.is_empty() {
                    rects.push(i);
                }
            }
        }
        // Pairwise intersections of two disjoint families are disjoint.
        let mut s = IndexSpace { rects };
        s.normalize();
        s
    }

    /// `X\Y`: the subset of `self` not sharing points with `other`.
    pub fn subtract(&self, other: &IndexSpace) -> IndexSpace {
        if self.is_empty() {
            return IndexSpace::empty();
        }
        if other.is_empty() || !self.bbox().overlaps(&other.bbox()) {
            return self.clone();
        }
        if let Some((ylo, yhi)) = self.common_band(other) {
            // Linear sweep: walk each of our runs, carving out the other's.
            let mut rects = Vec::new();
            let mut j = 0;
            for a in &self.rects {
                let mut cur = a.lo.x;
                let end = a.hi.x;
                while j < other.rects.len() && other.rects[j].hi.x < cur {
                    j += 1;
                }
                let mut k = j;
                while cur <= end {
                    if k >= other.rects.len() || other.rects[k].lo.x > end {
                        rects.push(Rect::xy(cur, end, ylo, yhi));
                        break;
                    }
                    let b = &other.rects[k];
                    if b.lo.x > cur {
                        rects.push(Rect::xy(cur, b.lo.x - 1, ylo, yhi));
                    }
                    cur = cur.max(b.hi.x + 1);
                    k += 1;
                }
            }
            // Runs are sorted & disjoint; coalesce adjacency.
            let mut out: Vec<Rect> = Vec::with_capacity(rects.len());
            for r in rects {
                match out.last_mut() {
                    Some(l) if l.hi.x + 1 == r.lo.x => l.hi.x = r.hi.x,
                    _ => out.push(r),
                }
            }
            return IndexSpace { rects: out };
        }
        let mut pending: Vec<Rect> = self.rects.clone();
        for b in &other.rects {
            if pending.is_empty() {
                break;
            }
            let mut next = Vec::with_capacity(pending.len());
            for a in pending {
                if a.overlaps(b) {
                    next.extend(a.subtract(b));
                } else {
                    next.push(a);
                }
            }
            pending = next;
        }
        let mut s = IndexSpace { rects: pending };
        s.normalize();
        s
    }

    /// `X ∪ Y` as point sets.
    pub fn union(&self, other: &IndexSpace) -> IndexSpace {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        if let Some((ylo, yhi)) = self.common_band(other) {
            // Linear merge of two sorted run lists.
            let mut rects: Vec<Rect> = Vec::with_capacity(self.rects.len() + other.rects.len());
            let (mut i, mut j) = (0, 0);
            while i < self.rects.len() || j < other.rects.len() {
                let next = if j >= other.rects.len()
                    || (i < self.rects.len() && self.rects[i].lo.x <= other.rects[j].lo.x)
                {
                    let r = self.rects[i];
                    i += 1;
                    r
                } else {
                    let r = other.rects[j];
                    j += 1;
                    r
                };
                match rects.last_mut() {
                    Some(l) if l.hi.x + 1 >= next.lo.x => l.hi.x = l.hi.x.max(next.hi.x),
                    _ => rects.push(Rect::xy(next.lo.x, next.hi.x, ylo, yhi)),
                }
            }
            return IndexSpace { rects };
        }
        let mut s = self.clone();
        for r in &other.rects {
            s.add_rect(*r);
        }
        s.normalize();
        s
    }

    /// Does `self` contain every point of `other`?
    pub fn contains(&self, other: &IndexSpace) -> bool {
        if other.is_empty() {
            return true;
        }
        if !self.bbox().contains_rect(&other.bbox()) {
            // Quick accept is impossible, but quick reject is: some point of
            // `other` lies outside our bounding box.
            if !self.bbox().overlaps(&other.bbox()) {
                return false;
            }
        }
        other.subtract(self).is_empty()
    }

    /// Set equality (independent of rectangle decomposition).
    pub fn same_points(&self, other: &IndexSpace) -> bool {
        self.volume() == other.volume() && self.contains(other)
    }

    /// Iterate all points in row-major order of the rectangle list.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.rects.iter().flat_map(|r| r.points())
    }

    /// Number of rectangles (a fragmentation measure used by the
    /// instrumentation counters and the cost model).
    #[inline]
    pub fn rect_count(&self) -> usize {
        self.rects.len()
    }
}

impl fmt::Debug for IndexSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, r) in self.rects.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{r:?}")?;
        }
        write!(f, "}}")
    }
}

impl From<Rect> for IndexSpace {
    fn from(r: Rect) -> Self {
        IndexSpace::from_rect(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(lo: i64, hi: i64) -> IndexSpace {
        IndexSpace::span(lo, hi)
    }

    #[test]
    fn empty_space() {
        let e = IndexSpace::empty();
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0);
        assert!(e.bbox().is_empty());
        assert!(sp(0, 5).contains(&e));
        assert!(e.contains(&e));
    }

    #[test]
    fn from_overlapping_rects_dedups() {
        let s = IndexSpace::from_rects([Rect::span(0, 10), Rect::span(5, 15)]);
        assert_eq!(s.volume(), 16);
        assert_eq!(s.rect_count(), 1, "adjacent spans coalesce: {s:?}");
    }

    #[test]
    fn from_points_builds_runs() {
        let s = IndexSpace::from_points([1, 2, 3, 7, 8, 20].map(Point::p1));
        assert_eq!(s.volume(), 6);
        assert_eq!(s.rect_count(), 3);
        assert!(s.contains_point(Point::p1(2)));
        assert!(!s.contains_point(Point::p1(4)));
    }

    #[test]
    fn intersect_subtract_partition_the_set() {
        let a = IndexSpace::from_rect(Rect::xy(0, 9, 0, 9));
        let b = IndexSpace::from_rect(Rect::xy(5, 14, 5, 14));
        let i = a.intersect(&b);
        let d = a.subtract(&b);
        assert_eq!(i.volume() + d.volume(), a.volume());
        assert!(!i.overlaps(&d));
        assert!(a.contains(&i) && a.contains(&d));
        assert!(i.union(&d).same_points(&a));
    }

    #[test]
    fn union_is_idempotent_and_commutative() {
        let a = IndexSpace::from_rects([Rect::span(0, 4), Rect::span(10, 14)]);
        let b = IndexSpace::from_rects([Rect::span(3, 11)]);
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        assert!(u1.same_points(&u2));
        assert!(u1.union(&a).same_points(&u1));
        assert_eq!(u1.volume(), 15);
        assert_eq!(u1.rect_count(), 1);
    }

    #[test]
    fn subtract_self_is_empty() {
        let a = IndexSpace::from_rect(Rect::xy(3, 9, 2, 4));
        assert!(a.subtract(&a).is_empty());
    }

    #[test]
    fn two_dimensional_coalescing() {
        // Four quadrant tiles reassemble to one rect.
        let s = IndexSpace::from_rects([
            Rect::xy(0, 4, 0, 4),
            Rect::xy(5, 9, 0, 4),
            Rect::xy(0, 4, 5, 9),
            Rect::xy(5, 9, 5, 9),
        ]);
        assert_eq!(s.volume(), 100);
        assert_eq!(s.rect_count(), 1, "{s:?}");
    }

    #[test]
    fn contains_rejects_partial_overlap() {
        let a = sp(0, 10);
        let b = sp(5, 15);
        assert!(!a.contains(&b));
        assert!(!b.contains(&a));
        assert!(a.contains(&sp(2, 8)));
    }

    #[test]
    fn same_points_ignores_decomposition() {
        let a = IndexSpace::from_rects([Rect::span(0, 3), Rect::span(4, 9)]);
        let b = sp(0, 9);
        assert!(a.same_points(&b));
        assert_eq!(a, b, "normalization should coalesce to identical form");
    }

    #[test]
    fn points_iteration_matches_volume() {
        let s = IndexSpace::from_rects([Rect::xy(0, 2, 0, 1), Rect::span(10, 12)]);
        assert_eq!(s.points().count() as u64, s.volume());
        for p in s.points() {
            assert!(s.contains_point(p));
        }
    }

    #[test]
    fn overlaps_early_exit_correct() {
        let a = sp(0, 4);
        let b = sp(100, 104);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&sp(4, 8)));
    }

    /// The old `normalize` re-sorted on every fixpoint iteration and ran an
    /// O(n²) pair scan for vertical merges. This is the reference
    /// implementation; the rewritten single-sort + linear-merge pass must
    /// produce bit-identical rectangle lists.
    fn normalize_oracle(mut rects: Vec<Rect>) -> Vec<Rect> {
        if rects.len() <= 1 {
            return rects;
        }
        loop {
            rects.sort_unstable_by_key(|r| (r.lo, r.hi));
            let mut merged = false;
            let mut out: Vec<Rect> = Vec::with_capacity(rects.len());
            for r in rects.drain(..) {
                if let Some(last) = out.last_mut() {
                    if last.lo.y == r.lo.y && last.hi.y == r.hi.y && last.hi.x + 1 == r.lo.x {
                        last.hi.x = r.hi.x;
                        merged = true;
                        continue;
                    }
                }
                out.push(r);
            }
            let mut i = 0;
            while i < out.len() {
                let mut j = i + 1;
                while j < out.len() {
                    let (a, b) = (out[i], out[j]);
                    if a.lo.x == b.lo.x && a.hi.x == b.hi.x && a.hi.y + 1 == b.lo.y {
                        out[i].hi.y = b.hi.y;
                        out.remove(j);
                        merged = true;
                    } else {
                        j += 1;
                    }
                }
                i += 1;
            }
            rects = out;
            if !merged {
                break;
            }
        }
        rects
    }

    #[test]
    fn normalize_matches_quadratic_oracle() {
        // Random tilings: build via the public API (new normalize), then
        // re-normalize the raw disjoint rect list with the old algorithm.
        let mut state = 0xfeed_beefu64;
        let mut rnd = move |m: i64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as i64).rem_euclid(m)
        };
        for _ in 0..200 {
            let mut raw = Vec::new();
            for _ in 0..12 {
                let x = rnd(40);
                let y = rnd(40);
                raw.push(Rect::xy(x, x + rnd(12), y, y + rnd(12)));
            }
            // Replay from_rects by hand so the oracle sees the same raw
            // disjoint list the new normalize sees.
            let mut s = IndexSpace::empty();
            for r in &raw {
                s.add_rect(*r);
            }
            let expect = normalize_oracle(s.rects.clone());
            s.normalize();
            assert_eq!(s.rects, expect, "normalize diverged from oracle on {raw:?}");
            let direct = IndexSpace::from_points(raw.iter().flat_map(|r| r.points()));
            assert_eq!(s.volume(), direct.volume());
            assert!(s.same_points(&direct));
        }
    }

    #[test]
    fn normalize_worst_case_is_not_quadratic() {
        // 100k isolated points in one row: nothing coalesces, so the old
        // vertical pass compared ~5·10⁹ rect pairs (minutes in debug); the
        // linear pass finishes instantly.
        let n: i64 = 100_000;
        let start = std::time::Instant::now();
        let s = IndexSpace::from_points((0..n).map(|i| Point::p1(i * 2)));
        assert_eq!(s.rect_count(), n as usize);
        assert_eq!(s.volume(), n as u64);
        // Sparse columns stacked with gaps: vertical merging still works.
        let cols = IndexSpace::from_points(
            (0..1000i64).flat_map(|c| [Point::new(c * 2, 0), Point::new(c * 2, 1)]),
        );
        assert_eq!(cols.rect_count(), 1000, "column pairs must merge: {cols:?}");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "normalize worst case regressed to quadratic"
        );
    }

    #[test]
    fn ghost_halo_shape() {
        // The classic stencil halo: a tile's ghost ring.
        let tile = Rect::xy(10, 19, 10, 19);
        let grown = Rect::xy(8, 21, 8, 21);
        let halo = IndexSpace::from_rect(grown).subtract(&IndexSpace::from_rect(tile));
        assert_eq!(halo.volume(), grown.volume() - tile.volume());
        assert!(!halo.overlaps(&IndexSpace::from_rect(tile)));
    }
}
