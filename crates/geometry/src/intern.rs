//! Hash-consed index spaces and memoized set algebra.
//!
//! Every visibility scan bottoms out in [`IndexSpace`] set algebra, and the
//! same handful of domains (partition pieces, ghost halos, equivalence-set
//! domains) meet each other over and over: a stencil that launches the same
//! tiles every timestep recomputes the same intersections millions of times.
//! Legion survives at scale by interning index spaces and caching their
//! pairwise algebra; this module is that layer.
//!
//! * [`SpaceInterner`] stores each distinct (structurally normalized) space
//!   once, content-addressed with the [`crate::hash`] machinery. A
//!   [`SpaceId`] is a handle; id equality is structural space equality.
//! * [`AlgebraCache`] memoizes `(op, lhs, rhs) → result` with a bounded
//!   segmented-LRU eviction policy.
//! * [`SpaceAlgebra`] combines both behind the operation API the engines
//!   use, trying cheap structural fast paths (identical ids, empty operands,
//!   bounding-box disjointness, single-rect pairs, contained-bbox dominance)
//!   before consulting the cache, and only then falling back to the
//!   rectangle sweep.
//!
//! **Structural fidelity invariant:** analysis results are compared with
//! structural (`PartialEq`, rect-list) equality, so every fast path and
//! every cached entry must return a space *structurally identical* to what
//! the direct sweep would produce — not merely the same point set. Each fast
//! path below documents why it is faithful; the property tests in
//! `tests/prop_interned_algebra.rs` check this over random rect sets, and
//! the engine differential tests check it end to end. With
//! [`InternConfig::enabled`] off, every operation takes the direct sweep, so
//! the two modes must (and do) agree byte for byte.

use crate::hash::{FxHashMap, FxHasher};
use crate::index_space::IndexSpace;
use crate::rect::Rect;
use std::hash::{Hash, Hasher};

/// Handle to an interned [`IndexSpace`]. Two ids are equal iff the spaces
/// are structurally equal (same normalized rect list).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SpaceId(u32);

impl SpaceId {
    /// The empty set, pre-interned in every interner.
    pub const EMPTY: SpaceId = SpaceId(0);

    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// Configuration for the interning/memoization layer.
///
/// | env var | default | meaning |
/// |---|---|---|
/// | `VIZ_INTERN` | `1` | `0`/`false`/`off` disables fast paths + cache (direct sweeps) |
/// | `VIZ_ALGEBRA_CACHE_CAP` | `4096` | per-shard algebra-cache capacity (entries) |
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct InternConfig {
    /// When false, every operation runs the direct rectangle sweep:
    /// interning still provides shared storage, but no fast path and no
    /// cached result is ever used.
    pub enabled: bool,
    /// Algebra-cache capacity in entries (0 disables caching only).
    pub cache_cap: usize,
}

pub const DEFAULT_ALGEBRA_CACHE_CAP: usize = 4096;

impl Default for InternConfig {
    fn default() -> Self {
        InternConfig {
            enabled: true,
            cache_cap: DEFAULT_ALGEBRA_CACHE_CAP,
        }
    }
}

impl InternConfig {
    /// Read `VIZ_INTERN` / `VIZ_ALGEBRA_CACHE_CAP` from the environment.
    #[deprecated(
        since = "0.9.0",
        note = "env parsing moved behind the runtime's config front door: \
                use viz_runtime::config::env_intern(), or pin the config \
                explicitly with RuntimeConfig::intern"
    )]
    pub fn from_env() -> Self {
        let enabled = match std::env::var("VIZ_INTERN") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
            Err(_) => true,
        };
        let cache_cap = std::env::var("VIZ_ALGEBRA_CACHE_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_ALGEBRA_CACHE_CAP);
        InternConfig { enabled, cache_cap }
    }

    pub fn disabled() -> Self {
        InternConfig {
            enabled: false,
            ..Self::default()
        }
    }
}

/// Running counters of the interning/memoization layer, exported through
/// viz-profile by the engines.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AlgebraStats {
    /// Cache lookups answered from the memo table.
    pub hits: u64,
    /// Cache lookups that fell through to the rectangle sweep.
    pub misses: u64,
    /// Operations answered by a structural fast path (no sweep, no cache).
    pub fast_hits: u64,
    /// Entries dropped by segmented-LRU eviction.
    pub evictions: u64,
    /// Distinct spaces currently interned.
    pub interned: usize,
    /// Entries currently cached.
    pub cache_entries: usize,
}

impl AlgebraStats {
    /// Counter delta since `prev` (sizes are reported as-is, not diffed).
    pub fn delta_since(&self, prev: &AlgebraStats) -> AlgebraStats {
        AlgebraStats {
            hits: self.hits - prev.hits,
            misses: self.misses - prev.misses,
            fast_hits: self.fast_hits - prev.fast_hits,
            evictions: self.evictions - prev.evictions,
            interned: self.interned,
            cache_entries: self.cache_entries,
        }
    }
}

struct InternedSpace {
    space: IndexSpace,
    /// Cached bounding box (the disjointness fast paths hit this on every
    /// call; recomputing it is a full rect-list fold).
    bbox: Rect,
}

/// Content-addressed store of normalized index spaces.
///
/// Structurally identical spaces share one slot, so equality of interned
/// spaces is id (pointer) equality and the per-space metadata (bounding box)
/// is computed once.
pub struct SpaceInterner {
    spaces: Vec<InternedSpace>,
    /// content hash → candidate slots (collisions resolved structurally).
    by_hash: FxHashMap<u64, Vec<u32>>,
}

impl Default for SpaceInterner {
    fn default() -> Self {
        let mut i = SpaceInterner {
            spaces: Vec::new(),
            by_hash: FxHashMap::default(),
        };
        let id = i.intern(&IndexSpace::empty());
        debug_assert_eq!(id, SpaceId::EMPTY);
        i
    }
}

fn content_hash(space: &IndexSpace) -> u64 {
    let mut h = FxHasher::default();
    space.rects().hash(&mut h);
    h.finish()
}

impl SpaceInterner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct spaces stored.
    pub fn len(&self) -> usize {
        self.spaces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spaces.is_empty()
    }

    /// Intern by reference (clones only on first sight).
    pub fn intern(&mut self, space: &IndexSpace) -> SpaceId {
        let h = content_hash(space);
        let bucket = self.by_hash.entry(h).or_default();
        for &slot in bucket.iter() {
            if self.spaces[slot as usize].space == *space {
                return SpaceId(slot);
            }
        }
        let slot = self.spaces.len() as u32;
        bucket.push(slot);
        self.spaces.push(InternedSpace {
            bbox: space.bbox(),
            space: space.clone(),
        });
        SpaceId(slot)
    }

    /// Intern an owned space (no clone on first sight).
    pub fn intern_owned(&mut self, space: IndexSpace) -> SpaceId {
        let h = content_hash(&space);
        let bucket = self.by_hash.entry(h).or_default();
        for &slot in bucket.iter() {
            if self.spaces[slot as usize].space == space {
                return SpaceId(slot);
            }
        }
        let slot = self.spaces.len() as u32;
        bucket.push(slot);
        self.spaces.push(InternedSpace {
            bbox: space.bbox(),
            space,
        });
        SpaceId(slot)
    }

    /// Resolve an id.
    #[inline]
    pub fn get(&self, id: SpaceId) -> &IndexSpace {
        &self.spaces[id.0 as usize].space
    }

    /// Cached bounding box of an interned space.
    #[inline]
    pub fn bbox(&self, id: SpaceId) -> Rect {
        self.spaces[id.0 as usize].bbox
    }
}

/// Cached operation kinds. `Contains` is `lhs ⊇ rhs`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum AlgebraOp {
    Intersect,
    Subtract,
    Union,
    Overlaps,
    Contains,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum CacheVal {
    Space(SpaceId),
    Flag(bool),
}

type CacheKey = (AlgebraOp, SpaceId, SpaceId);

/// Bounded memo table for pairwise algebra results.
///
/// Eviction is segmented LRU: entries start in the *hot* generation; when
/// the hot generation fills to half the capacity it is demoted wholesale to
/// *cold* and the previous cold generation (entries not touched for a full
/// generation) is dropped. Lookups promote cold entries back to hot. This
/// keeps every operation O(1) while approximating LRU closely enough for
/// the loop-shaped reuse the engines exhibit.
pub struct AlgebraCache {
    hot: FxHashMap<CacheKey, CacheVal>,
    cold: FxHashMap<CacheKey, CacheVal>,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl AlgebraCache {
    pub fn new(cap: usize) -> Self {
        AlgebraCache {
            hot: FxHashMap::default(),
            cold: FxHashMap::default(),
            cap,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hot.is_empty() && self.cold.is_empty()
    }

    fn get(&mut self, key: &CacheKey) -> Option<CacheVal> {
        if let Some(v) = self.hot.get(key) {
            self.hits += 1;
            return Some(*v);
        }
        if let Some(v) = self.cold.remove(key) {
            self.hits += 1;
            self.promote(*key, v);
            return Some(v);
        }
        self.misses += 1;
        None
    }

    fn insert(&mut self, key: CacheKey, val: CacheVal) {
        if self.cap == 0 {
            return;
        }
        self.promote(key, val);
    }

    fn promote(&mut self, key: CacheKey, val: CacheVal) {
        if self.hot.len() >= self.cap.div_ceil(2) {
            let demoted = std::mem::take(&mut self.hot);
            self.evictions += self.cold.len() as u64;
            self.cold = demoted;
        }
        self.hot.insert(key, val);
    }
}

/// The engines' view of the layer: an interner plus a memo table plus the
/// structural fast paths, behind the same operation vocabulary as
/// [`IndexSpace`] itself.
pub struct SpaceAlgebra {
    interner: SpaceInterner,
    cache: AlgebraCache,
    enabled: bool,
    fast_hits: u64,
}

impl Default for SpaceAlgebra {
    fn default() -> Self {
        Self::new(InternConfig::default())
    }
}

impl SpaceAlgebra {
    pub fn new(config: InternConfig) -> Self {
        SpaceAlgebra {
            interner: SpaceInterner::new(),
            cache: AlgebraCache::new(if config.enabled { config.cache_cap } else { 0 }),
            enabled: config.enabled,
            fast_hits: 0,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Intern a space (see [`SpaceInterner::intern`]).
    #[inline]
    pub fn intern(&mut self, space: &IndexSpace) -> SpaceId {
        self.interner.intern(space)
    }

    #[inline]
    pub fn intern_owned(&mut self, space: IndexSpace) -> SpaceId {
        self.interner.intern_owned(space)
    }

    /// Resolve an id.
    #[inline]
    pub fn space(&self, id: SpaceId) -> &IndexSpace {
        self.interner.get(id)
    }

    /// Cached bounding box.
    #[inline]
    pub fn bbox(&self, id: SpaceId) -> Rect {
        self.interner.bbox(id)
    }

    #[inline]
    pub fn is_empty_space(&self, id: SpaceId) -> bool {
        id == SpaceId::EMPTY || self.interner.get(id).is_empty()
    }

    pub fn stats(&self) -> AlgebraStats {
        AlgebraStats {
            hits: self.cache.hits,
            misses: self.cache.misses,
            fast_hits: self.fast_hits,
            evictions: self.cache.evictions,
            interned: self.interner.len(),
            cache_entries: self.cache.len(),
        }
    }

    /// Single-rect view of an interned space, if it has exactly one rect.
    #[inline]
    fn single_rect(&self, id: SpaceId) -> Option<Rect> {
        let s = self.interner.get(id);
        match s.rects() {
            [r] => Some(*r),
            _ => None,
        }
    }

    /// `lhs ∩ rhs` (the paper's `X/Y`).
    pub fn intersect(&mut self, a: SpaceId, b: SpaceId) -> SpaceId {
        if !self.enabled {
            let r = self.interner.get(a).intersect(self.interner.get(b));
            return self.interner.intern_owned(r);
        }
        // Fast paths. Each returns exactly what the direct sweep returns:
        // * a ∩ a: pairwise intersections of a disjoint family with itself
        //   are the family itself; normalization of a normalized list is the
        //   identity. Ditto the linear-band sweep.
        // * empty / bbox-disjoint operands: the sweep's own early exits.
        // * single-rect pairs: the sweep computes the one rect intersection.
        // * b a single rect covering a's bbox: every rect of a survives
        //   unchanged, so the result is a itself (and symmetrically).
        if a == b {
            self.fast_hits += 1;
            return a;
        }
        if self.is_empty_space(a) || self.is_empty_space(b) {
            self.fast_hits += 1;
            return SpaceId::EMPTY;
        }
        let (ba, bb) = (self.interner.bbox(a), self.interner.bbox(b));
        if !ba.overlaps(&bb) {
            self.fast_hits += 1;
            return SpaceId::EMPTY;
        }
        match (self.single_rect(a), self.single_rect(b)) {
            (Some(ra), Some(rb)) => {
                self.fast_hits += 1;
                let r = IndexSpace::from_rect(ra.intersect(&rb));
                return self.interner.intern_owned(r);
            }
            (_, Some(rb)) if rb.contains_rect(&ba) => {
                self.fast_hits += 1;
                return a;
            }
            (Some(ra), _) if ra.contains_rect(&bb) => {
                self.fast_hits += 1;
                return b;
            }
            _ => {}
        }
        let key = (AlgebraOp::Intersect, a, b);
        if let Some(CacheVal::Space(r)) = self.cache.get(&key) {
            return r;
        }
        let r = self.interner.get(a).intersect(self.interner.get(b));
        let r = self.interner.intern_owned(r);
        self.cache.insert(key, CacheVal::Space(r));
        r
    }

    /// `lhs \ rhs` (the paper's `X\Y`).
    pub fn subtract(&mut self, a: SpaceId, b: SpaceId) -> SpaceId {
        if !self.enabled {
            let r = self.interner.get(a).subtract(self.interner.get(b));
            return self.interner.intern_owned(r);
        }
        // Fast paths, each matching the sweep structurally:
        // * a \ a = ∅; empty minuend = ∅; empty/bbox-disjoint subtrahend
        //   returns a clone of a (≡ a's own interned storage).
        // * b a single rect covering a's bbox removes everything.
        if a == b || self.is_empty_space(a) {
            self.fast_hits += 1;
            return SpaceId::EMPTY;
        }
        if self.is_empty_space(b) {
            self.fast_hits += 1;
            return a;
        }
        let (ba, bb) = (self.interner.bbox(a), self.interner.bbox(b));
        if !ba.overlaps(&bb) {
            self.fast_hits += 1;
            return a;
        }
        if let Some(rb) = self.single_rect(b) {
            if rb.contains_rect(&ba) {
                self.fast_hits += 1;
                return SpaceId::EMPTY;
            }
        }
        let key = (AlgebraOp::Subtract, a, b);
        if let Some(CacheVal::Space(r)) = self.cache.get(&key) {
            return r;
        }
        let r = self.interner.get(a).subtract(self.interner.get(b));
        let r = self.interner.intern_owned(r);
        self.cache.insert(key, CacheVal::Space(r));
        r
    }

    /// `lhs ∪ rhs`. No structural fast path beyond the empty operands —
    /// union's decomposition depends on argument order, so everything else
    /// goes through the cache keyed on the exact (lhs, rhs) pair.
    pub fn union(&mut self, a: SpaceId, b: SpaceId) -> SpaceId {
        if !self.enabled {
            let r = self.interner.get(a).union(self.interner.get(b));
            return self.interner.intern_owned(r);
        }
        if self.is_empty_space(a) {
            self.fast_hits += 1;
            return b;
        }
        if self.is_empty_space(b) {
            self.fast_hits += 1;
            return a;
        }
        let key = (AlgebraOp::Union, a, b);
        if let Some(CacheVal::Space(r)) = self.cache.get(&key) {
            return r;
        }
        let r = self.interner.get(a).union(self.interner.get(b));
        let r = self.interner.intern_owned(r);
        self.cache.insert(key, CacheVal::Space(r));
        r
    }

    /// `lhs ∩ rhs ≠ ∅` — the hottest predicate in the analysis.
    pub fn overlaps(&mut self, a: SpaceId, b: SpaceId) -> bool {
        if !self.enabled {
            return self.interner.get(a).overlaps(self.interner.get(b));
        }
        if self.is_empty_space(a) || self.is_empty_space(b) {
            self.fast_hits += 1;
            return false;
        }
        if a == b {
            self.fast_hits += 1;
            return true;
        }
        let (ba, bb) = (self.interner.bbox(a), self.interner.bbox(b));
        if !ba.overlaps(&bb) {
            self.fast_hits += 1;
            return false;
        }
        match (self.single_rect(a), self.single_rect(b)) {
            (Some(ra), Some(rb)) => {
                self.fast_hits += 1;
                return ra.overlaps(&rb);
            }
            (_, Some(rb)) if rb.contains_rect(&ba) => {
                self.fast_hits += 1;
                return true;
            }
            (Some(ra), _) if ra.contains_rect(&bb) => {
                self.fast_hits += 1;
                return true;
            }
            _ => {}
        }
        let key = (AlgebraOp::Overlaps, a, b);
        if let Some(CacheVal::Flag(v)) = self.cache.get(&key) {
            return v;
        }
        let v = self.interner.get(a).overlaps(self.interner.get(b));
        self.cache.insert(key, CacheVal::Flag(v));
        v
    }

    /// Does `lhs` contain every point of `rhs`?
    pub fn contains(&mut self, a: SpaceId, b: SpaceId) -> bool {
        if !self.enabled {
            return self.interner.get(a).contains(self.interner.get(b));
        }
        if self.is_empty_space(b) {
            self.fast_hits += 1;
            return true;
        }
        if a == b {
            self.fast_hits += 1;
            return true;
        }
        if self.is_empty_space(a) {
            self.fast_hits += 1;
            return false;
        }
        let (ba, bb) = (self.interner.bbox(a), self.interner.bbox(b));
        if !ba.overlaps(&bb) {
            self.fast_hits += 1;
            return false;
        }
        if let Some(ra) = self.single_rect(a) {
            // A single rect contains b iff it contains b's bbox.
            self.fast_hits += 1;
            return ra.contains_rect(&bb);
        }
        if !ba.contains_rect(&bb) {
            // Some point of b lies outside a's bounds.
            self.fast_hits += 1;
            return false;
        }
        let key = (AlgebraOp::Contains, a, b);
        if let Some(CacheVal::Flag(v)) = self.cache.get(&key) {
            return v;
        }
        let v = self.interner.get(a).contains(self.interner.get(b));
        self.cache.insert(key, CacheVal::Flag(v));
        v
    }

    // Convenience forms for call sites holding plain spaces (the painter
    // engines): intern on the fly, then go through the id-keyed paths. With
    // interning disabled these skip the interner entirely.

    pub fn contains_spaces(&mut self, a: &IndexSpace, b: &IndexSpace) -> bool {
        if !self.enabled {
            return a.contains(b);
        }
        let (a, b) = (self.intern(a), self.intern(b));
        self.contains(a, b)
    }

    pub fn overlaps_spaces(&mut self, a: &IndexSpace, b: &IndexSpace) -> bool {
        if !self.enabled {
            return a.overlaps(b);
        }
        let (a, b) = (self.intern(a), self.intern(b));
        self.overlaps(a, b)
    }

    pub fn intersect_spaces(&mut self, a: &IndexSpace, b: &IndexSpace) -> IndexSpace {
        if !self.enabled {
            return a.intersect(b);
        }
        let (a, b) = (self.intern(a), self.intern(b));
        let r = self.intersect(a, b);
        self.space(r).clone()
    }

    pub fn subtract_spaces(&mut self, a: &IndexSpace, b: &IndexSpace) -> IndexSpace {
        if !self.enabled {
            return a.subtract(b);
        }
        let (a, b) = (self.intern(a), self.intern(b));
        let r = self.subtract(a, b);
        self.space(r).clone()
    }

    pub fn union_spaces(&mut self, a: &IndexSpace, b: &IndexSpace) -> IndexSpace {
        if !self.enabled {
            return a.union(b);
        }
        let (a, b) = (self.intern(a), self.intern(b));
        let r = self.union(a, b);
        self.space(r).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(lo: i64, hi: i64) -> IndexSpace {
        IndexSpace::span(lo, hi)
    }

    #[test]
    fn interning_dedups_structurally() {
        let mut i = SpaceInterner::new();
        let a = i.intern(&sp(0, 9));
        let b = i.intern(&IndexSpace::from_rect(Rect::span(0, 9)));
        let c = i.intern(&sp(0, 8));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.get(a), &sp(0, 9));
        assert_eq!(i.bbox(a), Rect::span(0, 9));
        // empty pre-interned
        assert_eq!(i.intern(&IndexSpace::empty()), SpaceId::EMPTY);
    }

    #[test]
    fn ops_match_direct_algebra() {
        let mut alg = SpaceAlgebra::default();
        let shapes = [
            IndexSpace::empty(),
            sp(0, 31),
            sp(16, 47),
            IndexSpace::from_rect(Rect::xy(0, 9, 0, 9)),
            IndexSpace::from_rect(Rect::xy(5, 14, 5, 14)),
            IndexSpace::from_rects([Rect::span(0, 4), Rect::span(10, 14)]),
            IndexSpace::from_rect(Rect::xy(-100, 100, -100, 100)),
        ];
        // Run twice so the second round is answered from the cache.
        for _ in 0..2 {
            for a in &shapes {
                for b in &shapes {
                    let (ia, ib) = (alg.intern(a), alg.intern(b));
                    let i = alg.intersect(ia, ib);
                    assert_eq!(alg.space(i), &a.intersect(b));
                    let s = alg.subtract(ia, ib);
                    assert_eq!(alg.space(s), &a.subtract(b));
                    let u = alg.union(ia, ib);
                    assert_eq!(alg.space(u), &a.union(b));
                    assert_eq!(alg.overlaps(ia, ib), a.overlaps(b));
                    assert_eq!(alg.contains(ia, ib), a.contains(b));
                }
            }
        }
        let s = alg.stats();
        assert!(s.hits > 0, "second round should hit: {s:?}");
    }

    #[test]
    fn disabled_mode_matches_too() {
        let mut alg = SpaceAlgebra::new(InternConfig::disabled());
        let a = alg.intern(&sp(0, 20));
        let b = alg.intern(&sp(10, 30));
        let i = alg.intersect(a, b);
        assert_eq!(alg.space(i), &sp(10, 20));
        let s = alg.subtract(a, b);
        assert_eq!(alg.space(s), &sp(0, 9));
        assert!(alg.overlaps(a, b));
        assert!(!alg.contains(a, b));
        assert_eq!(alg.stats().hits, 0);
        assert_eq!(alg.stats().fast_hits, 0);
    }

    #[test]
    fn cache_eviction_is_bounded() {
        let mut alg = SpaceAlgebra::new(InternConfig {
            enabled: true,
            cache_cap: 8,
        });
        // Multi-rect spaces so lookups miss the fast paths and hit the cache.
        let mk = |i: i64| {
            IndexSpace::from_rects([
                Rect::span(i * 10, i * 10 + 3),
                Rect::span(i * 10 + 5, i * 10 + 8),
            ])
        };
        let big = alg.intern(&IndexSpace::from_rects([
            Rect::span(0, 400),
            Rect::span(402, 500),
        ]));
        for i in 0..40 {
            let a = alg.intern(&mk(i));
            let _ = alg.intersect(a, big);
        }
        let s = alg.stats();
        assert!(s.cache_entries <= 8, "cache grew past cap: {s:?}");
        assert!(s.evictions > 0);
    }

    #[test]
    fn identical_id_fast_paths() {
        let mut alg = SpaceAlgebra::default();
        let a = alg.intern(&IndexSpace::from_rects([
            Rect::xy(0, 4, 0, 4),
            Rect::xy(10, 14, 10, 14),
        ]));
        assert_eq!(alg.intersect(a, a), a);
        assert_eq!(alg.subtract(a, a), SpaceId::EMPTY);
        assert!(alg.overlaps(a, a));
        assert!(alg.contains(a, a));
        assert_eq!(alg.stats().misses, 0, "no sweep should have run");
    }
}
