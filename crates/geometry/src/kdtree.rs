//! A dynamic K-d tree (paper §7.1).
//!
//! The ray-casting engine keeps its equivalence sets in a structure derived
//! from a disjoint-and-complete partition of the root region. "In rare cases
//! when no subtree with disjoint-complete partitions exists, the runtime
//! creates a K-d tree" — this is that K-d tree. Unlike the static
//! [`crate::Bvh`], it supports insertion and removal, because ray casting's
//! dominating writes both create and destroy equivalence sets.
//!
//! Removal is by tombstone; the tree is rebuilt once more than half of its
//! nodes are dead, keeping amortized costs logarithmic.

use crate::rect::Rect;

#[derive(Clone, Debug)]
struct KdNode {
    id: u64,
    rect: Rect,
    /// Split axis: even depth splits on x, odd on y.
    axis: u8,
    /// Splitting coordinate (the rect's center on `axis` at insert time).
    split: i64,
    dead: bool,
    left: Option<u32>,
    right: Option<u32>,
}

/// Dynamic K-d tree over `(id, rect)` items.
#[derive(Clone, Debug, Default)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    root: Option<u32>,
    live: usize,
    dead: usize,
}

impl KdTree {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live items.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Insert an item. `id`s are caller-managed; duplicates are allowed and
    /// both copies will be reported by queries.
    pub fn insert(&mut self, id: u64, rect: Rect) {
        if rect.is_empty() {
            return;
        }
        let (axis, split) = match self.root {
            None => (0u8, rect.center().x),
            Some(_) => (0u8, rect.center().x), // fixed up during descent
        };
        let new = KdNode {
            id,
            rect,
            axis,
            split,
            dead: false,
            left: None,
            right: None,
        };
        self.live += 1;
        let Some(mut cur) = self.root else {
            self.nodes.push(new);
            self.root = Some((self.nodes.len() - 1) as u32);
            return;
        };
        loop {
            let node = &self.nodes[cur as usize];
            let key = if node.axis == 0 {
                rect.center().x
            } else {
                rect.center().y
            };
            let go_left = key < node.split;
            let child = if go_left { node.left } else { node.right };
            match child {
                Some(c) => cur = c,
                None => {
                    let child_axis = (node.axis + 1) % 2;
                    let child_split = if child_axis == 0 {
                        rect.center().x
                    } else {
                        rect.center().y
                    };
                    let mut n = new;
                    n.axis = child_axis;
                    n.split = child_split;
                    self.nodes.push(n);
                    let idx = (self.nodes.len() - 1) as u32;
                    let node = &mut self.nodes[cur as usize];
                    if go_left {
                        node.left = Some(idx);
                    } else {
                        node.right = Some(idx);
                    }
                    return;
                }
            }
        }
    }

    /// Remove the first live item with this id (tombstoned; the structure is
    /// rebuilt when half the nodes are dead). Returns whether an item was
    /// removed.
    pub fn remove(&mut self, id: u64) -> bool {
        let mut found = false;
        for n in &mut self.nodes {
            if !n.dead && n.id == id {
                n.dead = true;
                found = true;
                break;
            }
        }
        if found {
            self.live -= 1;
            self.dead += 1;
            if self.dead > self.live.max(8) {
                self.rebuild();
            }
        }
        found
    }

    fn rebuild(&mut self) {
        let items: Vec<(u64, Rect)> = self
            .nodes
            .iter()
            .filter(|n| !n.dead)
            .map(|n| (n.id, n.rect))
            .collect();
        self.nodes.clear();
        self.root = None;
        self.live = 0;
        self.dead = 0;
        // Re-insert in a balanced order: recursively insert medians.
        fn insert_balanced(tree: &mut KdTree, mut items: Vec<(u64, Rect)>, axis: u8) {
            if items.is_empty() {
                return;
            }
            if axis == 0 {
                items.sort_unstable_by_key(|(_, r)| r.center().x);
            } else {
                items.sort_unstable_by_key(|(_, r)| r.center().y);
            }
            let mid = items.len() / 2;
            let right = items.split_off(mid + 1);
            let (id, rect) = items.pop().unwrap();
            tree.insert(id, rect);
            insert_balanced(tree, items, (axis + 1) % 2);
            insert_balanced(tree, right, (axis + 1) % 2);
        }
        insert_balanced(self, items, 0);
    }

    /// Ids of all live items whose rect overlaps `query`.
    ///
    /// A K-d tree stores *points* (rect centers) but our items are rects, so
    /// the descent cannot prune purely on the split plane: an item inserted
    /// left of the plane may still straddle it. We track, per subtree, the
    /// loose bound that items in the left subtree have centers `< split`;
    /// pruning uses the query rect expanded by the maximum item half-extent.
    /// For simplicity and correctness we descend both children whenever the
    /// query is within `max_extent` of the plane.
    pub fn query(&self, query: &Rect, out: &mut Vec<u64>) {
        let Some(root) = self.root else { return };
        if query.is_empty() {
            return;
        }
        let max_half = self.max_half_extent();
        let mut stack = vec![root];
        while let Some(cur) = stack.pop() {
            let n = &self.nodes[cur as usize];
            if !n.dead && n.rect.overlaps(query) {
                out.push(n.id);
            }
            let (qlo, qhi) = if n.axis == 0 {
                (query.lo.x, query.hi.x)
            } else {
                (query.lo.y, query.hi.y)
            };
            if let Some(l) = n.left {
                // Left subtree holds centers < split; an item's rect can
                // extend at most max_half beyond its center.
                if qlo < n.split + max_half {
                    stack.push(l);
                }
            }
            if let Some(r) = n.right {
                if qhi >= n.split - max_half {
                    stack.push(r);
                }
            }
        }
    }

    /// Convenience wrapper returning a fresh vector.
    pub fn query_vec(&self, query: &Rect) -> Vec<u64> {
        let mut out = Vec::new();
        self.query(query, &mut out);
        out
    }

    fn max_half_extent(&self) -> i64 {
        self.nodes
            .iter()
            .filter(|n| !n.dead)
            .map(|n| {
                let w = (n.rect.hi.x - n.rect.lo.x + 1) / 2 + 1;
                let h = (n.rect.hi.y - n.rect.lo.y + 1) / 2 + 1;
                w.max(h)
            })
            .max()
            .unwrap_or(0)
    }

    /// Iterate all live `(id, rect)` items.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Rect)> + '_ {
        self.nodes
            .iter()
            .filter(|n| !n.dead)
            .map(|n| (n.id, n.rect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_roundtrip() {
        let mut t = KdTree::new();
        for i in 0..100i64 {
            t.insert(i as u64, Rect::span(i * 10, i * 10 + 9));
        }
        assert_eq!(t.len(), 100);
        let mut hits = t.query_vec(&Rect::span(95, 125));
        hits.sort_unstable();
        assert_eq!(hits, vec![9, 10, 11, 12]);
    }

    #[test]
    fn remove_hides_items() {
        let mut t = KdTree::new();
        t.insert(1, Rect::span(0, 9));
        t.insert(2, Rect::span(10, 19));
        assert!(t.remove(1));
        assert!(!t.remove(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_vec(&Rect::span(0, 19)), vec![2]);
    }

    #[test]
    fn rebuild_preserves_contents() {
        let mut t = KdTree::new();
        for i in 0..64i64 {
            t.insert(i as u64, Rect::span(i, i));
        }
        // Remove enough to trigger a rebuild.
        for i in 0..40u64 {
            assert!(t.remove(i));
        }
        assert_eq!(t.len(), 24);
        let mut hits = t.query_vec(&Rect::span(0, 63));
        hits.sort_unstable();
        assert_eq!(hits, (40..64).collect::<Vec<u64>>());
    }

    #[test]
    fn matches_linear_scan_with_churn() {
        let mut state = 99u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 500) as i64
        };
        let mut t = KdTree::new();
        let mut live: Vec<(u64, Rect)> = Vec::new();
        for i in 0..300u64 {
            let x = rnd();
            let y = rnd();
            let r = Rect::xy(x, x + rnd() % 30, y, y + rnd() % 30);
            t.insert(i, r);
            live.push((i, r));
            if i % 3 == 0 && !live.is_empty() {
                let victim = live.remove((rnd() as usize) % live.len());
                assert!(t.remove(victim.0));
            }
        }
        for _ in 0..40 {
            let x = rnd();
            let y = rnd();
            let q = Rect::xy(x, x + 60, y, y + 60);
            let mut hits = t.query_vec(&q);
            hits.sort_unstable();
            let mut expect: Vec<u64> = live
                .iter()
                .filter(|(_, r)| r.overlaps(&q))
                .map(|(id, _)| *id)
                .collect();
            expect.sort_unstable();
            assert_eq!(hits, expect);
        }
    }

    #[test]
    fn two_dimensional_queries() {
        let mut t = KdTree::new();
        let mut id = 0u64;
        for ty in 0..10i64 {
            for tx in 0..10i64 {
                t.insert(id, Rect::xy(tx * 5, tx * 5 + 4, ty * 5, ty * 5 + 4));
                id += 1;
            }
        }
        let hits = t.query_vec(&Rect::xy(12, 13, 12, 13));
        assert_eq!(hits, vec![22]);
        let hits = t.query_vec(&Rect::xy(4, 5, 4, 5));
        assert_eq!(hits.len(), 4);
    }
}
