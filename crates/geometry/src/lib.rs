//! # viz-geometry
//!
//! Index-space geometry for the visibility-based coherence runtime.
//!
//! Regions in the runtime (see `viz-region`) name *arbitrary subsets* of a
//! collection's index space. This crate provides the machinery those subsets
//! are made of:
//!
//! * [`Point`] — an integer point in a (up to) 2-D index space. One
//!   dimensional spaces are embedded at `y == 0`; two dimensions are
//!   sufficient for every benchmark in the paper (stencil is 2-D, circuit and
//!   Pennant use 1-D element id spaces).
//! * [`Rect`] — a dense, inclusive rectangle of points.
//! * [`IndexSpace`] — a sparse set of points represented as a normalized list
//!   of disjoint rectangles, with the full set algebra the visibility
//!   algorithms need: intersection, difference, union, covering tests.
//! * [`Bvh`] — a static bounding-volume hierarchy used to find overlapping
//!   partition children quickly.
//! * [`DynamicBvh`] — an incrementally maintained BVH (leaf insert/remove
//!   with ancestor refits, rebuild on degradation) for equivalence-set
//!   indexes that churn under refinement.
//! * [`FlatBvh`] — a flattened structure-of-arrays snapshot of a
//!   [`DynamicBvh`] (pre-order nodes with skip offsets, SoA bounds) with a
//!   stackless batched query API for resolving whole shards' candidate
//!   sets in one SIMD-friendly sweep.
//! * [`KdTree`] — a dynamic K-d tree used by the ray-casting engine when no
//!   disjoint-and-complete partition subtree exists (paper §7.1).
//! * [`intern`] — hash-consed index spaces ([`SpaceId`]/[`SpaceInterner`])
//!   and the memoized set algebra ([`SpaceAlgebra`]) the engines route
//!   their hottest domain operations through.
//! * [`hash`] — a fast, non-cryptographic hasher (`FxHashMap`/`FxHashSet`)
//!   for the hot analysis paths.
//!
//! The set operations mirror the auxiliary functions of the paper (§5):
//! `X/Y` is [`IndexSpace::intersect`], `X\Y` is [`IndexSpace::subtract`], and
//! `X ⊕ Y` (union preferring `Y`'s values) is realized at the value layer in
//! `viz-runtime` on top of these domain operations.

pub mod bvh;
pub mod dbvh;
pub mod flat_bvh;
pub mod hash;
pub mod index_space;
pub mod intern;
pub mod kdtree;
pub mod point;
pub mod rect;

pub use bvh::Bvh;
pub use dbvh::DynamicBvh;
pub use flat_bvh::FlatBvh;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use index_space::IndexSpace;
pub use intern::{AlgebraStats, InternConfig, SpaceAlgebra, SpaceId, SpaceInterner};
pub use kdtree::KdTree;
pub use point::Point;
pub use rect::Rect;
