//! Integer points in an index space.

use std::fmt;

/// A point in a (up to) 2-D integer index space.
///
/// One-dimensional index spaces (element-id spaces for graphs and meshes)
/// are embedded on the `y == 0` line; see [`Point::p1`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    /// Row-major ordering sorts on `y` first, so `y` is declared first.
    pub y: i64,
    pub x: i64,
}

impl Point {
    /// A 2-D point.
    #[inline]
    pub const fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }

    /// A 1-D point embedded at `y == 0`.
    #[inline]
    pub const fn p1(x: i64) -> Self {
        Point { x, y: 0 }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Component-wise translation.
    #[inline]
    pub fn offset(self, dx: i64, dy: i64) -> Self {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point::new(x, y)
    }
}

impl From<i64> for Point {
    fn from(x: i64) -> Self {
        Point::p1(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_row_major() {
        // Points sort by row (y) first, then column (x): the order in which
        // normalized rectangle lists are kept.
        let a = Point::new(5, 0);
        let b = Point::new(0, 1);
        assert!(a < b);
        assert!(Point::new(0, 1) < Point::new(1, 1));
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1, 9);
        let b = Point::new(4, 2);
        assert_eq!(a.min(b), Point::new(1, 2));
        assert_eq!(a.max(b), Point::new(4, 9));
    }

    #[test]
    fn one_dimensional_embedding() {
        assert_eq!(Point::p1(7), Point::new(7, 0));
        assert_eq!(Point::from(7), Point::p1(7));
    }

    #[test]
    fn offset_translates() {
        assert_eq!(Point::new(1, 2).offset(3, -4), Point::new(4, -2));
    }
}
