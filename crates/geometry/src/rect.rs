//! Dense rectangles of points (inclusive bounds).

use crate::point::Point;
use std::fmt;

/// An axis-aligned rectangle of points with *inclusive* bounds.
///
/// A rectangle is empty when `lo.x > hi.x` or `lo.y > hi.y`; all empty
/// rectangles are considered equal by the set layer and are never stored in a
/// normalized [`crate::IndexSpace`].
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Rect {
    pub lo: Point,
    pub hi: Point,
}

impl Rect {
    /// The canonical empty rectangle.
    pub const EMPTY: Rect = Rect {
        lo: Point { x: 0, y: 0 },
        hi: Point { x: -1, y: -1 },
    };

    /// Rectangle spanning `lo..=hi` in both dimensions.
    #[inline]
    pub const fn new(lo: Point, hi: Point) -> Self {
        Rect { lo, hi }
    }

    /// 2-D rectangle `[x0, x1] × [y0, y1]`.
    #[inline]
    pub const fn xy(x0: i64, x1: i64, y0: i64, y1: i64) -> Self {
        Rect {
            lo: Point { x: x0, y: y0 },
            hi: Point { x: x1, y: y1 },
        }
    }

    /// 1-D span `[lo, hi]` embedded at `y == 0`.
    #[inline]
    pub const fn span(lo: i64, hi: i64) -> Self {
        Rect::xy(lo, hi, 0, 0)
    }

    /// A single point.
    #[inline]
    pub const fn point(p: Point) -> Self {
        Rect { lo: p, hi: p }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Number of points contained.
    #[inline]
    pub fn volume(&self) -> u64 {
        if self.is_empty() {
            return 0;
        }
        ((self.hi.x - self.lo.x + 1) as u64) * ((self.hi.y - self.lo.y + 1) as u64)
    }

    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Does `self` contain every point of `other`? (Empty rectangles are
    /// contained in everything.)
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty() || (self.contains_point(other.lo) && self.contains_point(other.hi))
    }

    /// Do the two rectangles share at least one point?
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Intersection (possibly empty).
    #[inline]
    pub fn intersect(&self, other: &Rect) -> Rect {
        if !self.overlaps(other) {
            return Rect::EMPTY;
        }
        Rect {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// The smallest rectangle containing both (the BVH merge operation).
    #[inline]
    pub fn union_bbox(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// `self` minus `other`, as up to four disjoint rectangles (a guillotine
    /// split: full-height left/right slabs, then middle top/bottom slabs).
    pub fn subtract(&self, other: &Rect) -> impl Iterator<Item = Rect> {
        let mut out = [Rect::EMPTY; 4];
        if self.is_empty() {
            // nothing
        } else if !self.overlaps(other) {
            out[0] = *self;
        } else {
            let i = self.intersect(other);
            // Left slab.
            if self.lo.x < i.lo.x {
                out[0] = Rect::xy(self.lo.x, i.lo.x - 1, self.lo.y, self.hi.y);
            }
            // Right slab.
            if i.hi.x < self.hi.x {
                out[1] = Rect::xy(i.hi.x + 1, self.hi.x, self.lo.y, self.hi.y);
            }
            // Bottom middle.
            if self.lo.y < i.lo.y {
                out[2] = Rect::xy(i.lo.x, i.hi.x, self.lo.y, i.lo.y - 1);
            }
            // Top middle.
            if i.hi.y < self.hi.y {
                out[3] = Rect::xy(i.lo.x, i.hi.x, i.hi.y + 1, self.hi.y);
            }
        }
        out.into_iter().filter(|r| !r.is_empty())
    }

    /// Center point, used for spatial-median splits in the BVH and K-d tree.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            self.lo.x + (self.hi.x - self.lo.x) / 2,
            self.lo.y + (self.hi.y - self.lo.y) / 2,
        )
    }

    /// Iterate the contained points in row-major order.
    pub fn points(&self) -> RectPoints {
        RectPoints {
            rect: *self,
            next: if self.is_empty() { None } else { Some(self.lo) },
        }
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty]")
        } else if self.lo.y == 0 && self.hi.y == 0 {
            write!(f, "[{}..{}]", self.lo.x, self.hi.x)
        } else {
            write!(
                f,
                "[{}..{} x {}..{}]",
                self.lo.x, self.hi.x, self.lo.y, self.hi.y
            )
        }
    }
}

/// Row-major point iterator over a rectangle.
pub struct RectPoints {
    rect: Rect,
    next: Option<Point>,
}

impl Iterator for RectPoints {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        let p = self.next?;
        let mut n = p;
        n.x += 1;
        if n.x > self.rect.hi.x {
            n.x = self.rect.lo.x;
            n.y += 1;
        }
        self.next = if n.y > self.rect.hi.y { None } else { Some(n) };
        Some(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rect_properties() {
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.volume(), 0);
        assert!(!Rect::EMPTY.overlaps(&Rect::span(0, 10)));
        assert!(Rect::span(0, 10).contains_rect(&Rect::EMPTY));
    }

    #[test]
    fn volume_counts_inclusive_points() {
        assert_eq!(Rect::span(3, 3).volume(), 1);
        assert_eq!(Rect::span(0, 9).volume(), 10);
        assert_eq!(Rect::xy(0, 9, 0, 4).volume(), 50);
    }

    #[test]
    fn intersection_basic() {
        let a = Rect::xy(0, 10, 0, 10);
        let b = Rect::xy(5, 15, 5, 15);
        assert_eq!(a.intersect(&b), Rect::xy(5, 10, 5, 10));
        assert_eq!(b.intersect(&a), a.intersect(&b));
        let c = Rect::xy(11, 12, 0, 10);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn touching_rects_overlap_only_when_sharing_points() {
        // Inclusive bounds: [0,5] and [5,9] share x == 5.
        assert!(Rect::span(0, 5).overlaps(&Rect::span(5, 9)));
        assert!(!Rect::span(0, 5).overlaps(&Rect::span(6, 9)));
    }

    #[test]
    fn subtract_produces_disjoint_cover() {
        let a = Rect::xy(0, 9, 0, 9);
        let b = Rect::xy(3, 6, 3, 6);
        let pieces: Vec<Rect> = a.subtract(&b).collect();
        assert_eq!(pieces.len(), 4);
        let vol: u64 = pieces.iter().map(Rect::volume).sum();
        assert_eq!(vol, a.volume() - b.volume());
        for (i, p) in pieces.iter().enumerate() {
            assert!(!p.overlaps(&b), "piece {p:?} overlaps subtrahend");
            for q in &pieces[i + 1..] {
                assert!(!p.overlaps(q), "pieces {p:?} and {q:?} overlap");
            }
        }
    }

    #[test]
    fn subtract_disjoint_returns_self() {
        let a = Rect::span(0, 4);
        let b = Rect::span(10, 12);
        assert_eq!(a.subtract(&b).collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn subtract_covered_returns_nothing() {
        let a = Rect::span(2, 4);
        let b = Rect::span(0, 10);
        assert_eq!(a.subtract(&b).count(), 0);
    }

    #[test]
    fn subtract_partial_overlap_1d() {
        let a = Rect::span(0, 10);
        let b = Rect::span(5, 20);
        assert_eq!(a.subtract(&b).collect::<Vec<_>>(), vec![Rect::span(0, 4)]);
    }

    #[test]
    fn point_iteration_row_major() {
        let r = Rect::xy(0, 1, 0, 1);
        let pts: Vec<Point> = r.points().collect();
        assert_eq!(
            pts,
            vec![
                Point::new(0, 0),
                Point::new(1, 0),
                Point::new(0, 1),
                Point::new(1, 1)
            ]
        );
        assert_eq!(Rect::EMPTY.points().count(), 0);
    }

    #[test]
    fn union_bbox_handles_empties() {
        let a = Rect::span(0, 3);
        assert_eq!(Rect::EMPTY.union_bbox(&a), a);
        assert_eq!(a.union_bbox(&Rect::EMPTY), a);
        assert_eq!(a.union_bbox(&Rect::span(10, 12)), Rect::span(0, 12));
    }
}
