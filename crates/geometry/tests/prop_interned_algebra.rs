//! Property tests for the interned/memoized set algebra.
//!
//! The engines compare analysis results *structurally* (rect-list
//! equality), so [`SpaceAlgebra`] must return spaces structurally identical
//! to the direct sweeps — a fast path or cached entry returning a merely
//! point-equal space would silently change materialization plans. These
//! tests drive one long-lived algebra (so the interner and cache accumulate
//! state across operations, exercising hits, promotions and evictions) and
//! check every result against the uncached [`IndexSpace`] operation.

use proptest::prelude::*;
use viz_geometry::{IndexSpace, InternConfig, Rect, SpaceAlgebra};

/// A small random index space out of up to 4 random rects in a 64x64
/// universe; duplicates across cases are likely, which is exactly what the
/// interner and cache exist for.
fn space() -> impl Strategy<Value = IndexSpace> {
    prop::collection::vec(
        (0i64..64, 0i64..16, 0i64..64, 0i64..16)
            .prop_map(|(x, w, y, h)| Rect::xy(x, x + w, y, y + h)),
        0..4,
    )
    .prop_map(IndexSpace::from_rects)
}

fn check_all_ops(alg: &mut SpaceAlgebra, a: &IndexSpace, b: &IndexSpace) {
    let (ia, ib) = (alg.intern(a), alg.intern(b));
    // Interning round-trips exactly.
    prop_assert_eq!(alg.space(ia), a);
    prop_assert_eq!(alg.space(ib), b);
    prop_assert_eq!(alg.bbox(ia), a.bbox());

    let i = alg.intersect(ia, ib);
    prop_assert_eq!(alg.space(i), &a.intersect(b), "intersect diverged");
    let s = alg.subtract(ia, ib);
    prop_assert_eq!(alg.space(s), &a.subtract(b), "subtract diverged");
    let u = alg.union(ia, ib);
    prop_assert_eq!(alg.space(u), &a.union(b), "union diverged");
    prop_assert_eq!(alg.overlaps(ia, ib), a.overlaps(b), "overlaps diverged");
    prop_assert_eq!(alg.contains(ia, ib), a.contains(b), "contains diverged");

    // Convenience forms must agree with the id-keyed paths.
    prop_assert_eq!(&alg.intersect_spaces(a, b), &a.intersect(b));
    prop_assert_eq!(&alg.subtract_spaces(a, b), &a.subtract(b));
    prop_assert_eq!(&alg.union_spaces(a, b), &a.union(b));
    prop_assert_eq!(alg.overlaps_spaces(a, b), a.overlaps(b));
    prop_assert_eq!(alg.contains_spaces(a, b), a.contains(b));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Enabled algebra (fast paths + cache) ≡ direct sweeps, structurally,
    /// over a sequence of pairs sharing one algebra. Running every pair
    /// twice forces the second round through the memo table.
    #[test]
    fn interned_algebra_matches_direct(pairs in prop::collection::vec((space(), space()), 1..12)) {
        let mut alg = SpaceAlgebra::new(InternConfig::default());
        for _ in 0..2 {
            for (a, b) in &pairs {
                check_all_ops(&mut alg, a, b);
            }
        }
    }

    /// A tiny cache capacity forces constant eviction; results must not
    /// change (only hit rates may).
    #[test]
    fn eviction_never_changes_results(pairs in prop::collection::vec((space(), space()), 1..12)) {
        let mut alg = SpaceAlgebra::new(InternConfig { enabled: true, cache_cap: 2 });
        for _ in 0..2 {
            for (a, b) in &pairs {
                check_all_ops(&mut alg, a, b);
            }
        }
        prop_assert!(alg.stats().cache_entries <= 2);
    }

    /// Disabled mode (the `VIZ_INTERN=0` path) also matches direct sweeps.
    #[test]
    fn disabled_algebra_matches_direct(pairs in prop::collection::vec((space(), space()), 1..8)) {
        let mut alg = SpaceAlgebra::new(InternConfig::disabled());
        for (a, b) in &pairs {
            check_all_ops(&mut alg, a, b);
        }
        prop_assert_eq!(alg.stats().hits, 0);
        prop_assert_eq!(alg.stats().fast_hits, 0);
    }

    /// Self-operations hit the identical-id fast paths and must still be
    /// structurally exact (a ∩ a = a, a \ a = ∅).
    #[test]
    fn self_ops_are_structural_identities(a in space()) {
        let mut alg = SpaceAlgebra::new(InternConfig::default());
        let ia = alg.intern(&a);
        let i = alg.intersect(ia, ia);
        prop_assert_eq!(i, ia);
        prop_assert_eq!(alg.space(i), &a.intersect(&a));
        let s = alg.subtract(ia, ia);
        prop_assert!(alg.space(s).is_empty());
        prop_assert_eq!(alg.space(s), &a.subtract(&a));
    }
}
