//! Property tests pinning the linear (1-D) fast paths of the set algebra
//! against brute-force point sets. Sparse element-id spaces (the circuit's
//! ghost node sets, Pennant's point columns) exercise exactly these paths,
//! so they get their own coverage in addition to the generic 2-D laws.

use proptest::prelude::*;
use std::collections::BTreeSet;
use viz_geometry::{IndexSpace, Point};

const N: i64 = 200;

/// A sparse 1-D set built from random points (worst-case fragmentation).
fn sparse() -> impl Strategy<Value = IndexSpace> {
    prop::collection::btree_set(0i64..N, 0..60)
        .prop_map(|pts| IndexSpace::from_points(pts.into_iter().map(Point::p1)))
}

fn points_of(s: &IndexSpace) -> BTreeSet<i64> {
    s.points().map(|p| p.x).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn linear_intersect(a in sparse(), b in sparse()) {
        let expect: BTreeSet<i64> =
            points_of(&a).intersection(&points_of(&b)).copied().collect();
        prop_assert_eq!(points_of(&a.intersect(&b)), expect);
    }

    #[test]
    fn linear_subtract(a in sparse(), b in sparse()) {
        let expect: BTreeSet<i64> =
            points_of(&a).difference(&points_of(&b)).copied().collect();
        prop_assert_eq!(points_of(&a.subtract(&b)), expect);
    }

    #[test]
    fn linear_union(a in sparse(), b in sparse()) {
        let expect: BTreeSet<i64> =
            points_of(&a).union(&points_of(&b)).copied().collect();
        prop_assert_eq!(points_of(&a.union(&b)), expect);
    }

    #[test]
    fn linear_overlaps(a in sparse(), b in sparse()) {
        let expect = points_of(&a).intersection(&points_of(&b)).next().is_some();
        prop_assert_eq!(a.overlaps(&b), expect);
    }

    #[test]
    fn linear_results_stay_normalized(a in sparse(), b in sparse()) {
        // Fast-path outputs must preserve the invariant: sorted, disjoint,
        // maximal runs (no two adjacent runs uncoalesced).
        for s in [a.intersect(&b), a.subtract(&b), a.union(&b)] {
            let rects = s.rects();
            for w in rects.windows(2) {
                prop_assert!(w[0].hi.x + 1 < w[1].lo.x,
                    "runs {:?} and {:?} should have been coalesced or ordered",
                    w[0], w[1]);
            }
        }
    }

    /// Mixed-dimensionality operands (one 1-D, one 2-D) must fall back to
    /// the general path and still obey the laws.
    #[test]
    fn mixed_band_falls_back(a in sparse(), y in 1i64..4) {
        let b = IndexSpace::from_rect(viz_geometry::Rect::xy(0, N, 0, y));
        let i = a.intersect(&b);
        prop_assert!(i.same_points(&a), "a is contained in the tall rect");
        let d = a.subtract(&b);
        prop_assert!(d.is_empty());
    }
}
