//! Property tests for the index-space set algebra.
//!
//! The coherence algorithms' correctness rests entirely on these laws: the
//! paper's `X/Y`, `X\Y`, and `X ⊕ Y` operators must behave as genuine set
//! operations for the histories and equivalence sets to mean anything.

use proptest::prelude::*;
use viz_geometry::{IndexSpace, Point, Rect};

/// Strategy: a small random index space out of up to 4 random rects in a
/// 64x64 universe (small enough that brute-force point checks are cheap).
fn space() -> impl Strategy<Value = IndexSpace> {
    prop::collection::vec(
        (0i64..64, 0i64..16, 0i64..64, 0i64..16)
            .prop_map(|(x, w, y, h)| Rect::xy(x, x + w, y, y + h)),
        0..4,
    )
    .prop_map(IndexSpace::from_rects)
}

/// Brute-force membership set for cross-checking.
fn points_of(s: &IndexSpace) -> std::collections::BTreeSet<Point> {
    s.points().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intersect_matches_pointwise(a in space(), b in space()) {
        let i = a.intersect(&b);
        let pa = points_of(&a);
        let pb = points_of(&b);
        let expect: std::collections::BTreeSet<Point> =
            pa.intersection(&pb).copied().collect();
        prop_assert_eq!(points_of(&i), expect);
    }

    #[test]
    fn subtract_matches_pointwise(a in space(), b in space()) {
        let d = a.subtract(&b);
        let pa = points_of(&a);
        let pb = points_of(&b);
        let expect: std::collections::BTreeSet<Point> =
            pa.difference(&pb).copied().collect();
        prop_assert_eq!(points_of(&d), expect);
    }

    #[test]
    fn union_matches_pointwise(a in space(), b in space()) {
        let u = a.union(&b);
        let pa = points_of(&a);
        let pb = points_of(&b);
        let expect: std::collections::BTreeSet<Point> =
            pa.union(&pb).copied().collect();
        prop_assert_eq!(points_of(&u), expect);
    }

    #[test]
    fn normalized_rects_are_disjoint(a in space()) {
        let rects = a.rects();
        for (i, r) in rects.iter().enumerate() {
            prop_assert!(!r.is_empty());
            for q in &rects[i + 1..] {
                prop_assert!(!r.overlaps(q), "rects {:?} and {:?} overlap", r, q);
            }
        }
    }

    #[test]
    fn volume_is_point_count(a in space()) {
        prop_assert_eq!(a.volume(), points_of(&a).len() as u64);
    }

    #[test]
    fn overlaps_iff_nonempty_intersection(a in space(), b in space()) {
        prop_assert_eq!(a.overlaps(&b), !a.intersect(&b).is_empty());
    }

    #[test]
    fn contains_iff_subtract_empty(a in space(), b in space()) {
        prop_assert_eq!(a.contains(&b), b.subtract(&a).is_empty());
    }

    #[test]
    fn partition_law(a in space(), b in space()) {
        // X = (X/Y) ∪ (X\Y), disjointly — the refinement step of Warnock's
        // algorithm (Fig 9, line 11) depends on exactly this.
        let i = a.intersect(&b);
        let d = a.subtract(&b);
        prop_assert!(!i.overlaps(&d));
        prop_assert!(i.union(&d).same_points(&a));
    }

    #[test]
    fn same_points_is_equivalence(a in space(), b in space()) {
        prop_assert!(a.same_points(&a));
        if a.same_points(&b) {
            prop_assert!(b.same_points(&a));
            prop_assert_eq!(points_of(&a), points_of(&b));
        }
    }

    #[test]
    fn bbox_contains_all_points(a in space()) {
        let bb = a.bbox();
        for p in a.points() {
            prop_assert!(bb.contains_point(p));
        }
    }
}
