//! Property tests: the BVH and the dynamic K-d tree must agree with brute
//! force on arbitrary rectangle sets and query patterns (including
//! degenerate shapes: points, lines, heavy overlap, churn).

use proptest::prelude::*;
use viz_geometry::{Bvh, DynamicBvh, FlatBvh, KdTree, Rect};

fn rect() -> impl Strategy<Value = Rect> {
    (0i64..500, 0i64..60, 0i64..500, 0i64..60).prop_map(|(x, w, y, h)| Rect::xy(x, x + w, y, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bvh_matches_brute_force(
        items in prop::collection::vec(rect(), 0..60),
        queries in prop::collection::vec(rect(), 1..10),
    ) {
        let tagged: Vec<(u32, Rect)> = items
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u32, *r))
            .collect();
        let bvh = Bvh::build(tagged.clone());
        prop_assert_eq!(bvh.len(), items.len());
        for q in &queries {
            let mut got = bvh.query_vec(q);
            got.sort_unstable();
            let mut expect: Vec<u32> = tagged
                .iter()
                .filter(|(_, r)| r.overlaps(q))
                .map(|(i, _)| *i)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn kdtree_matches_brute_force_under_churn(
        inserts in prop::collection::vec(rect(), 1..60),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..20),
        queries in prop::collection::vec(rect(), 1..8),
    ) {
        let mut tree = KdTree::new();
        let mut live: Vec<(u64, Rect)> = Vec::new();
        for (i, r) in inserts.iter().enumerate() {
            tree.insert(i as u64, *r);
            live.push((i as u64, *r));
        }
        for idx in &removals {
            if live.is_empty() {
                break;
            }
            let k = idx.index(live.len());
            let (id, _) = live.remove(k);
            prop_assert!(tree.remove(id));
        }
        prop_assert_eq!(tree.len(), live.len());
        for q in &queries {
            let mut got = tree.query_vec(q);
            got.sort_unstable();
            let mut expect: Vec<u64> = live
                .iter()
                .filter(|(_, r)| r.overlaps(q))
                .map(|(i, _)| *i)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    /// Audit of `DynamicBvh::remove`'s sibling-splice + ancestor-refit
    /// early break: after *every* remove, every inner node's stored bbox
    /// must equal the exact union of its children — as tight as a freshly
    /// rebuilt tree's, never a stale superset left by a refit that broke
    /// too early. Checked after each mutation (not just at the end) so a
    /// transiently-stale ancestor cannot hide behind a later rebuild.
    #[test]
    fn dynamic_bvh_remove_keeps_bboxes_exactly_tight(
        inserts in prop::collection::vec(rect(), 1..60),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..40),
        queries in prop::collection::vec(rect(), 1..8),
    ) {
        let mut tree = DynamicBvh::new();
        let mut live: Vec<(u64, Rect)> = Vec::new();
        for (i, r) in inserts.iter().enumerate() {
            tree.insert(i as u64, *r);
            live.push((i as u64, *r));
        }
        prop_assert!(tree.validate_tight().is_ok(), "{:?}", tree.validate_tight());
        for idx in &removals {
            if live.is_empty() {
                break;
            }
            let k = idx.index(live.len());
            let (id, _) = live.remove(k);
            prop_assert!(tree.remove(id));
            prop_assert!(tree.validate_tight().is_ok(), "{:?}", tree.validate_tight());
        }
        // Tight bboxes must also mean exact queries: agree with a freshly
        // rebuilt tree over the same live items.
        let mut fresh = DynamicBvh::new();
        for (id, r) in &live {
            fresh.insert(*id, *r);
        }
        for q in &queries {
            let mut got = tree.query_vec(q);
            got.sort_unstable();
            let mut expect = fresh.query_vec(q);
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    /// The flattened SoA snapshot answers exactly like the dynamic tree it
    /// was taken from, across churn, batch layouts, and epochs.
    #[test]
    fn flat_snapshot_matches_dynamic_tree(
        inserts in prop::collection::vec(rect(), 1..80),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..30),
        queries in prop::collection::vec(rect(), 1..10),
    ) {
        let mut tree = DynamicBvh::new();
        let mut live: Vec<(u64, Rect)> = Vec::new();
        for (i, r) in inserts.iter().enumerate() {
            tree.insert(i as u64, *r);
            live.push((i as u64, *r));
        }
        for idx in &removals {
            if live.is_empty() {
                break;
            }
            let k = idx.index(live.len());
            let (id, _) = live.remove(k);
            prop_assert!(tree.remove(id));
        }
        let snap = FlatBvh::snapshot(&tree);
        prop_assert_eq!(snap.len(), live.len());
        prop_assert_eq!(snap.epoch(), tree.epoch());
        let (mut hits, mut offsets) = (Vec::new(), Vec::new());
        snap.batch_query(&queries, &mut hits, &mut offsets);
        prop_assert_eq!(offsets.len(), queries.len() + 1);
        for (k, q) in queries.iter().enumerate() {
            let mut got: Vec<u64> =
                hits[offsets[k] as usize..offsets[k + 1] as usize].to_vec();
            got.sort_unstable();
            let mut expect = tree.query_vec(q);
            expect.sort_unstable();
            prop_assert_eq!(&got, &expect, "query {}: flat != dynamic", k);
            let mut brute: Vec<u64> = live
                .iter()
                .filter(|(_, r)| r.overlaps(q))
                .map(|(i, _)| *i)
                .collect();
            brute.sort_unstable();
            prop_assert_eq!(&got, &brute, "query {}: flat != brute force", k);
        }
    }

    /// Degenerate single-point items still index correctly.
    #[test]
    fn point_items(xs in prop::collection::vec((0i64..100, 0i64..100), 1..40)) {
        let items: Vec<(u32, Rect)> = xs
            .iter()
            .enumerate()
            .map(|(i, (x, y))| (i as u32, Rect::xy(*x, *x, *y, *y)))
            .collect();
        let bvh = Bvh::build(items.clone());
        for (i, (x, y)) in xs.iter().enumerate() {
            let hits = bvh.query_vec(&Rect::xy(*x, *x, *y, *y));
            prop_assert!(hits.contains(&(i as u32)));
        }
    }
}
