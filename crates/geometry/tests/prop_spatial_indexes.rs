//! Property tests: the BVH and the dynamic K-d tree must agree with brute
//! force on arbitrary rectangle sets and query patterns (including
//! degenerate shapes: points, lines, heavy overlap, churn).

use proptest::prelude::*;
use viz_geometry::{Bvh, KdTree, Rect};

fn rect() -> impl Strategy<Value = Rect> {
    (0i64..500, 0i64..60, 0i64..500, 0i64..60).prop_map(|(x, w, y, h)| Rect::xy(x, x + w, y, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bvh_matches_brute_force(
        items in prop::collection::vec(rect(), 0..60),
        queries in prop::collection::vec(rect(), 1..10),
    ) {
        let tagged: Vec<(u32, Rect)> = items
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u32, *r))
            .collect();
        let bvh = Bvh::build(tagged.clone());
        prop_assert_eq!(bvh.len(), items.len());
        for q in &queries {
            let mut got = bvh.query_vec(q);
            got.sort_unstable();
            let mut expect: Vec<u32> = tagged
                .iter()
                .filter(|(_, r)| r.overlaps(q))
                .map(|(i, _)| *i)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn kdtree_matches_brute_force_under_churn(
        inserts in prop::collection::vec(rect(), 1..60),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..20),
        queries in prop::collection::vec(rect(), 1..8),
    ) {
        let mut tree = KdTree::new();
        let mut live: Vec<(u64, Rect)> = Vec::new();
        for (i, r) in inserts.iter().enumerate() {
            tree.insert(i as u64, *r);
            live.push((i as u64, *r));
        }
        for idx in &removals {
            if live.is_empty() {
                break;
            }
            let k = idx.index(live.len());
            let (id, _) = live.remove(k);
            prop_assert!(tree.remove(id));
        }
        prop_assert_eq!(tree.len(), live.len());
        for q in &queries {
            let mut got = tree.query_vec(q);
            got.sort_unstable();
            let mut expect: Vec<u64> = live
                .iter()
                .filter(|(_, r)| r.overlaps(q))
                .map(|(i, _)| *i)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    /// Degenerate single-point items still index correctly.
    #[test]
    fn point_items(xs in prop::collection::vec((0i64..100, 0i64..100), 1..40)) {
        let items: Vec<(u32, Rect)> = xs
            .iter()
            .enumerate()
            .map(|(i, (x, y))| (i as u32, Rect::xy(*x, *x, *y, *y)))
            .collect();
        let bvh = Bvh::build(items.clone());
        for (i, (x, y)) in xs.iter().enumerate() {
            let hits = bvh.query_vec(&Rect::xy(*x, *x, *y, *y));
            prop_assert!(hits.contains(&(i as u32)));
        }
    }
}
