//! Adversarial fuzz sweep: generated programs × the full execution
//! matrix, every resulting history judged by the saturation checker.
//!
//! ```text
//! oracle_fuzz [--programs N] [--seed S] [--launches L] [--nodes M]
//!             [--out PATH] [--matrix full|quick] [--producers P]
//! ```
//!
//! Writes a TSV summary (default `results/oracle_fuzz.tsv`) with one row
//! per (program, configuration) and exits nonzero if any violation was
//! found — CI runs this with fixed seeds.

use std::io::Write as _;
use viz_oracle::{check, drive_matrix, generate, run_program, Mode, ALL_MODES};

struct Args {
    programs: usize,
    seed: u64,
    launches: usize,
    nodes: usize,
    out: String,
    quick: bool,
    producers: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        programs: 200,
        seed: 0xC0FFEE,
        launches: 28,
        nodes: 2,
        out: "results/oracle_fuzz.tsv".into(),
        quick: false,
        producers: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--programs" => args.programs = val().parse().expect("--programs N"),
            "--seed" => args.seed = val().parse().expect("--seed S"),
            "--launches" => args.launches = val().parse().expect("--launches L"),
            "--nodes" => args.nodes = val().parse().expect("--nodes M"),
            "--out" => args.out = val(),
            "--matrix" => args.quick = val() == "quick",
            "--producers" => args.producers = val().parse::<usize>().expect("--producers P").max(1),
            "--help" | "-h" => {
                eprintln!(
                    "usage: oracle_fuzz [--programs N] [--seed S] [--launches L] \
                     [--nodes M] [--out PATH] [--matrix full|quick] [--producers P]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut matrix = drive_matrix();
    for cfg in &mut matrix {
        cfg.producers = args.producers;
    }
    if let Some(dir) = std::path::Path::new(&args.out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let mut tsv = std::fs::File::create(&args.out).expect("create summary");
    writeln!(
        tsv,
        "seed\tmode\tengine\tthreads\tpipeline\tauto_trace\tproducers\tlaunches\tpairs\tedges\tviolations"
    )
    .unwrap();

    let mut total_runs = 0u64;
    let mut total_violations = 0u64;
    let mut first_failure: Option<String> = None;
    for p in 0..args.programs {
        let seed = args.seed.wrapping_add(p as u64);
        let mode: Mode = ALL_MODES[p % ALL_MODES.len()];
        let prog = generate(seed, mode, args.launches, args.nodes);
        for (ci, cfg) in matrix.iter().enumerate() {
            // Quick matrix: rotate through the configurations instead of
            // running all 32 per program (CI smoke tier).
            if args.quick && ci % matrix.len() != p % matrix.len() && ci != 0 {
                continue;
            }
            let history = run_program(&prog, *cfg);
            let report = check(&history);
            total_runs += 1;
            total_violations += report.violations.len() as u64;
            writeln!(
                tsv,
                "{seed}\t{}\t{:?}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                mode.name(),
                cfg.engine,
                cfg.analysis_threads,
                cfg.pipeline,
                cfg.auto_trace,
                cfg.producers,
                report.launches,
                report.pairs_checked,
                report.edges_checked,
                report.violations.len(),
            )
            .unwrap();
            if !report.ok() && first_failure.is_none() {
                first_failure = Some(format!(
                    "seed {seed} mode {} config {}: {}",
                    mode.name(),
                    cfg.label(),
                    report.violations[0]
                ));
            }
        }
        if (p + 1) % 25 == 0 {
            eprintln!(
                "[oracle_fuzz] {}/{} programs, {} runs, {} violations",
                p + 1,
                args.programs,
                total_runs,
                total_violations
            );
        }
    }
    println!(
        "oracle_fuzz: {} programs x matrix -> {} runs, {} violations (summary: {})",
        args.programs, total_runs, total_violations, args.out
    );
    if total_violations > 0 {
        if let Some(f) = first_failure {
            eprintln!("first failure: {f}");
        }
        std::process::exit(1);
    }
}
