//! The saturation checker: an independent polynomial judge for recorded
//! histories.
//!
//! Given only the *claims* in a [`History`] — submitted requirements,
//! emitted dependence edges, retirement order — the checker re-derives
//! from sequential semantics which precedences are **required** (every
//! interfering pair must be ordered: RAW, WAR, WAW, and cross-operator
//! reductions over overlapping domains of one (root, field)) and which
//! edges are **forbidden** (forward or self edges — program order is the
//! topological order), then saturates the claimed edges into a full
//! happens-before relation ([`Precedence`]) and verifies:
//!
//! 1. every required pair is covered by the claimed closure,
//! 2. no forbidden edge exists (which also forces acyclicity),
//! 3. fences follow everything earlier,
//! 4. the retirement order is a linear extension of the claimed DAG.
//!
//! Violations carry a minimal witness: the offending launch pair, the
//! (root, field), and the intersection of the interfering domains.

use crate::depa::Precedence;
use crate::history::{History, CTX_GLOBAL};
use viz_geometry::{FxHashMap, IndexSpace};

/// One verdict against a history, with a minimal witness.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Launches `earlier` and `later` interfere on `(root, field)` over
    /// `overlap`, but the claimed edges do not order them.
    MissingDependence {
        earlier: u32,
        later: u32,
        root: u32,
        field: u32,
        /// The interfering footprint: intersection of the two domains.
        overlap: IndexSpace,
    },
    /// Launch `succ` claims a dependence on `pred`, but `pred` is not an
    /// earlier task (forward, self, or out-of-range edge). Backward-only
    /// edges are what make the claimed relation acyclic by construction,
    /// so this also covers cycle detection.
    ForbiddenEdge { pred: u32, succ: u32 },
    /// The fence `fence` is not ordered after earlier launch `earlier`.
    MissingFenceOrder { earlier: u32, fence: u32 },
    /// The retirement log is not a DAG-respecting permutation of the
    /// launches: `task` retired before its predecessor `pred` (or the log
    /// is not a permutation at all — then `pred == u32::MAX`).
    RetirementOrder { task: u32, pred: u32 },
    /// The history is internally inconsistent (ids out of order, length
    /// mismatches) — nothing further can be judged.
    MalformedHistory { reason: String },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MissingDependence {
                earlier,
                later,
                root,
                field,
                overlap,
            } => write!(
                f,
                "missing dependence: launches {earlier} -> {later} interfere on \
                 (root {root}, field {field}) over {:?} but are unordered",
                overlap.rects()
            ),
            Violation::ForbiddenEdge { pred, succ } => {
                write!(f, "forbidden edge: launch {succ} depends on {pred}")
            }
            Violation::MissingFenceOrder { earlier, fence } => {
                write!(f, "fence {fence} is not ordered after launch {earlier}")
            }
            Violation::RetirementOrder { task, pred } => {
                if *pred == u32::MAX {
                    write!(f, "retirement log is not a permutation (task {task})")
                } else {
                    write!(f, "task {task} retired before its predecessor {pred}")
                }
            }
            Violation::MalformedHistory { reason } => {
                write!(f, "malformed history: {reason}")
            }
        }
    }
}

/// Outcome of one check run.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    pub launches: usize,
    /// Interfering (ordered-required) pairs examined.
    pub pairs_checked: u64,
    /// Claimed edges examined (direct, pre-closure).
    pub edges_checked: u64,
    pub violations: Vec<Violation>,
}

impl CheckReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Do two requirements interfere? Same tree and field, privileges that do
/// not commute, and overlapping footprints.
fn reqs_interfere(a: &crate::history::HRequirement, b: &crate::history::HRequirement) -> bool {
    a.root == b.root
        && a.field == b.field
        && a.privilege.interferes(b.privilege)
        && a.domain.overlaps(&b.domain)
}

/// Judge a history. Runs in polynomial time (O(n²) pair scan within each
/// (root, field) group plus the O(E·n/64) closure) and touches nothing
/// but the history itself.
pub fn check(history: &History) -> CheckReport {
    let n = history.launches.len();
    let mut report = CheckReport {
        launches: n,
        ..CheckReport::default()
    };

    // -- Structural validity: ids must be 0..n in program order. --------
    for (k, l) in history.launches.iter().enumerate() {
        if l.id as usize != k {
            report.violations.push(Violation::MalformedHistory {
                reason: format!("launch at position {k} has id {}", l.id),
            });
            return report;
        }
    }

    // -- Forbidden edges: every claimed edge must point strictly back. --
    let mut deps: Vec<Vec<u32>> = Vec::with_capacity(n);
    for l in &history.launches {
        let mut clean = Vec::with_capacity(l.deps.len());
        for &d in &l.deps {
            report.edges_checked += 1;
            if d >= l.id {
                report.violations.push(Violation::ForbiddenEdge {
                    pred: d,
                    succ: l.id,
                });
            } else {
                clean.push(d);
            }
        }
        deps.push(clean);
    }

    // -- Saturate the claimed edges into happens-before. ----------------
    let prec = Precedence::build(&deps);

    // -- Required edges: every interfering pair must be ordered. --------
    // Group requirements by (root, field) so only plausibly-conflicting
    // pairs are enumerated.
    let mut groups: FxHashMap<(u32, u32), Vec<(u32, usize)>> = FxHashMap::default();
    for l in &history.launches {
        for (qi, q) in l.reqs.iter().enumerate() {
            groups
                .entry((q.root, q.field))
                .or_default()
                .push((l.id, qi));
        }
    }
    let mut flagged: Vec<(u32, u32)> = Vec::new();
    for ((root, field), members) in &groups {
        for (ai, &(ia, qa)) in members.iter().enumerate() {
            for &(ib, qb) in &members[ai + 1..] {
                if ia == ib {
                    continue; // §4 forbids intra-task interference; validated at submit.
                }
                let (earlier, later, qe, ql) = if ia < ib {
                    (ia, ib, qa, qb)
                } else {
                    (ib, ia, qb, qa)
                };
                let a = &history.launches[earlier as usize].reqs[qe];
                let b = &history.launches[later as usize].reqs[ql];
                if !reqs_interfere(a, b) {
                    continue;
                }
                report.pairs_checked += 1;
                if !prec.precedes(earlier, later) && !flagged.contains(&(earlier, later)) {
                    flagged.push((earlier, later));
                    report.violations.push(Violation::MissingDependence {
                        earlier,
                        later,
                        root: *root,
                        field: *field,
                        overlap: a.domain.intersect(&b.domain),
                    });
                }
            }
        }
    }

    // -- Fences: ordered after everything earlier in their scope. -------
    // A global fence (ctx == CTX_GLOBAL) must follow every earlier launch;
    // a scoped fence (PR 7 multi-producer contexts) only the earlier
    // launches of its own context. Earlier scoped/global fences still
    // bind a global fence, whatever context they carry.
    for l in &history.launches {
        if !l.fence {
            continue;
        }
        for i in 0..l.id {
            if l.ctx != CTX_GLOBAL && history.launches[i as usize].ctx != l.ctx {
                continue; // another producer's launch: out of fence scope
            }
            report.pairs_checked += 1;
            if !prec.precedes(i, l.id) {
                report.violations.push(Violation::MissingFenceOrder {
                    earlier: i,
                    fence: l.id,
                });
            }
        }
    }

    // -- Retirement: a linear extension of the claimed DAG. -------------
    if history.retirement.len() != n {
        report.violations.push(Violation::MalformedHistory {
            reason: format!(
                "retirement log has {} entries for {n} launches",
                history.retirement.len()
            ),
        });
    } else {
        let mut position = vec![u32::MAX; n];
        for (pos, &t) in history.retirement.iter().enumerate() {
            if (t as usize) < n && position[t as usize] == u32::MAX {
                position[t as usize] = pos as u32;
            } else {
                report.violations.push(Violation::RetirementOrder {
                    task: t,
                    pred: u32::MAX,
                });
            }
        }
        if !report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::RetirementOrder { pred: u32::MAX, .. }))
        {
            for l in &history.launches {
                for &p in &deps[l.id as usize] {
                    if position[p as usize] > position[l.id as usize] {
                        report.violations.push(Violation::RetirementOrder {
                            task: l.id,
                            pred: p,
                        });
                    }
                }
            }
        }
    }

    viz_profile::instant(viz_profile::EventKind::OracleCheck {
        pairs: report.pairs_checked,
        edges: report.edges_checked,
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HLaunch, HPrivilege, HRequirement};

    fn req(root: u32, field: u32, privilege: HPrivilege, lo: i64, hi: i64) -> HRequirement {
        HRequirement {
            root,
            region: root,
            field,
            privilege,
            domain: IndexSpace::span(lo, hi),
        }
    }

    fn launch(id: u32, reqs: Vec<HRequirement>, deps: Vec<u32>) -> HLaunch {
        HLaunch {
            id,
            name: format!("t{id}"),
            node: 0,
            ctx: 0,
            signature: id as u64,
            reqs,
            deps,
            replayed: false,
            fence: false,
        }
    }

    fn history(launches: Vec<HLaunch>) -> History {
        let retirement = (0..launches.len() as u32).collect();
        History {
            engine: "test".into(),
            launches,
            retirement,
        }
    }

    #[test]
    fn clean_write_read_chain_passes() {
        let h = history(vec![
            launch(0, vec![req(0, 0, HPrivilege::ReadWrite, 0, 10)], vec![]),
            launch(1, vec![req(0, 0, HPrivilege::Read, 0, 10)], vec![0]),
            launch(2, vec![req(0, 0, HPrivilege::Read, 0, 10)], vec![0]),
        ]);
        let r = check(&h);
        assert!(r.ok(), "{:?}", r.violations);
        assert_eq!(r.pairs_checked, 2, "read/read pair does not interfere");
    }

    #[test]
    fn transitive_coverage_suffices() {
        // 0 -> 1 -> 2 claimed; the required (0, 2) WAW edge is covered
        // transitively, not directly.
        let h = history(vec![
            launch(0, vec![req(0, 0, HPrivilege::ReadWrite, 0, 10)], vec![]),
            launch(1, vec![req(0, 0, HPrivilege::ReadWrite, 0, 10)], vec![0]),
            launch(2, vec![req(0, 0, HPrivilege::ReadWrite, 0, 10)], vec![1]),
        ]);
        assert!(check(&h).ok());
    }

    #[test]
    fn disjoint_and_commuting_accesses_need_no_order() {
        let h = history(vec![
            launch(0, vec![req(0, 0, HPrivilege::ReadWrite, 0, 9)], vec![]),
            launch(1, vec![req(0, 0, HPrivilege::ReadWrite, 10, 19)], vec![]),
            launch(2, vec![req(0, 0, HPrivilege::Reduce(0), 0, 19)], vec![0, 1]),
            launch(3, vec![req(0, 0, HPrivilege::Reduce(0), 0, 19)], vec![0, 1]),
            launch(4, vec![req(0, 1, HPrivilege::ReadWrite, 0, 19)], vec![]),
        ]);
        let r = check(&h);
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn missing_dependence_yields_minimal_witness() {
        let h = history(vec![
            launch(0, vec![req(0, 0, HPrivilege::ReadWrite, 0, 10)], vec![]),
            launch(1, vec![req(0, 0, HPrivilege::Read, 5, 15)], vec![]),
        ]);
        let r = check(&h);
        assert_eq!(r.violations.len(), 1);
        match &r.violations[0] {
            Violation::MissingDependence {
                earlier,
                later,
                root,
                field,
                overlap,
            } => {
                assert_eq!((*earlier, *later), (0, 1));
                assert_eq!((*root, *field), (0, 0));
                assert!(overlap.same_points(&IndexSpace::span(5, 10)));
            }
            v => panic!("wrong violation {v:?}"),
        }
    }

    #[test]
    fn forward_and_self_edges_are_forbidden() {
        let h = history(vec![
            launch(0, vec![], vec![0]),
            launch(1, vec![], vec![2]),
            launch(2, vec![], vec![]),
        ]);
        let r = check(&h);
        assert_eq!(
            r.violations,
            vec![
                Violation::ForbiddenEdge { pred: 0, succ: 0 },
                Violation::ForbiddenEdge { pred: 2, succ: 1 },
            ]
        );
    }

    #[test]
    fn fence_must_follow_everything() {
        let mut f = launch(2, vec![], vec![1]); // missing edge to 0
        f.fence = true;
        f.ctx = CTX_GLOBAL;
        let h = history(vec![
            launch(0, vec![], vec![]),
            launch(1, vec![], vec![]),
            f,
        ]);
        let r = check(&h);
        assert_eq!(
            r.violations,
            vec![Violation::MissingFenceOrder {
                earlier: 0,
                fence: 2
            }]
        );
    }

    #[test]
    fn scoped_fence_binds_only_its_context() {
        // Context 1 submitted launches 0 and 2; context 2 submitted
        // launch 1. A ctx-1 fence must follow 0 and 2 but may float
        // relative to 1.
        let mut a = launch(0, vec![], vec![]);
        a.ctx = 1;
        let mut b = launch(1, vec![], vec![]);
        b.ctx = 2;
        let mut c = launch(2, vec![], vec![]);
        c.ctx = 1;
        let mut f = launch(3, vec![], vec![0, 2]); // no edge to 1: fine
        f.fence = true;
        f.ctx = 1;
        let h = history(vec![a, b, c, f]);
        let r = check(&h);
        assert!(r.ok(), "{:?}", r.violations);

        // Dropping the edge to its own launch 2 is a violation.
        let mut a = launch(0, vec![], vec![]);
        a.ctx = 1;
        let mut b = launch(1, vec![], vec![]);
        b.ctx = 2;
        let mut c = launch(2, vec![], vec![]);
        c.ctx = 1;
        let mut f = launch(3, vec![], vec![0]);
        f.fence = true;
        f.ctx = 1;
        let h = history(vec![a, b, c, f]);
        let r = check(&h);
        assert_eq!(
            r.violations,
            vec![Violation::MissingFenceOrder {
                earlier: 2,
                fence: 3
            }]
        );
    }

    #[test]
    fn retirement_must_respect_claimed_edges() {
        let mut h = history(vec![launch(0, vec![], vec![]), launch(1, vec![], vec![0])]);
        h.retirement = vec![1, 0];
        let r = check(&h);
        assert_eq!(
            r.violations,
            vec![Violation::RetirementOrder { task: 1, pred: 0 }]
        );
    }

    #[test]
    fn independent_retirement_reorder_is_fine() {
        let mut h = history(vec![launch(0, vec![], vec![]), launch(1, vec![], vec![])]);
        h.retirement = vec![1, 0];
        assert!(check(&h).ok());
    }
}
