//! Order maintenance over the engine's claimed DAG.
//!
//! The checker needs many happens-before queries ("is `i` ordered before
//! `j`?") against the dependence edges the engine emitted. Task ids are
//! assigned in program order, so the claimed DAG's edges all point
//! backward and program order is already a topological order — the closure
//! can be built in one left-to-right pass.
//!
//! Two layers, DePa-style (compact per-task tags backed by an exact
//! structure):
//!
//! * **Tags** — each task carries `(depth, min_anc)`: its longest-path
//!   depth and the smallest ancestor id. Both are O(1) negative filters:
//!   `i < min_anc(j)` or `depth(i) >= depth(j)` proves `i` cannot precede
//!   `j` without touching the closure.
//! * **Ancestor bitsets** — `anc(j) = ∪_{p ∈ deps(j)} anc(p) ∪ {p}`, one
//!   bit per earlier task. Exact queries are one word lookup; building is
//!   O(E · n/64), comfortably polynomial at fuzz scale.

/// Transitive-closure index over a claimed dependence DAG.
pub struct Precedence {
    words: usize,
    /// `n` rows of `words` u64s; bit `i` of row `j` ⇔ `i` precedes `j`.
    anc: Vec<u64>,
    depth: Vec<u32>,
    min_anc: Vec<u32>,
}

impl Precedence {
    /// Build from per-task predecessor lists (edges must point backward;
    /// the checker validates that before calling).
    pub fn build(deps: &[Vec<u32>]) -> Precedence {
        let n = deps.len();
        let words = n.div_ceil(64);
        let mut anc = vec![0u64; n * words];
        let mut depth = vec![0u32; n];
        let mut min_anc = vec![u32::MAX; n];
        for (j, preds) in deps.iter().enumerate() {
            // Union each predecessor's row into ours, then set its bit.
            for &p in preds {
                let p = p as usize;
                debug_assert!(p < j);
                let (lo, hi) = (p * words, j * words);
                // Split borrow: predecessor rows are strictly earlier.
                let (head, tail) = anc.split_at_mut(hi);
                let src = &head[lo..lo + words];
                let dst = &mut tail[..words];
                for (d, s) in dst.iter_mut().zip(src) {
                    *d |= s;
                }
                dst[p / 64] |= 1 << (p % 64);
                depth[j] = depth[j].max(depth[p] + 1);
                min_anc[j] = min_anc[j].min(min_anc[p]).min(p as u32);
            }
        }
        Precedence {
            words,
            anc,
            depth,
            min_anc,
        }
    }

    /// Does task `i` happen before task `j` under the claimed edges?
    #[inline]
    pub fn precedes(&self, i: u32, j: u32) -> bool {
        if i >= j {
            return false;
        }
        // DePa tag pruning: both are exact negatives.
        if i < self.min_anc[j as usize] || self.depth[i as usize] >= self.depth[j as usize] {
            return false;
        }
        let (i, j) = (i as usize, j as usize);
        self.anc[j * self.words + i / 64] >> (i % 64) & 1 != 0
    }

    /// Number of ancestors of `j` (reachable predecessors).
    pub fn ancestor_count(&self, j: u32) -> usize {
        let j = j as usize;
        self.anc[j * self.words..(j + 1) * self.words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_is_transitive_and_tags_prune() {
        // 0 <- 1 <- 2, 3 independent, 4 <- {2, 3}
        let deps = vec![vec![], vec![0], vec![1], vec![], vec![2, 3]];
        let p = Precedence::build(&deps);
        assert!(p.precedes(0, 1));
        assert!(p.precedes(0, 2), "transitive through 1");
        assert!(p.precedes(1, 4), "transitive through 2");
        assert!(p.precedes(3, 4));
        assert!(!p.precedes(0, 3));
        assert!(!p.precedes(3, 2));
        assert!(!p.precedes(2, 2));
        assert!(!p.precedes(4, 1), "never forward");
        assert_eq!(p.ancestor_count(4), 4);
        assert_eq!(p.ancestor_count(3), 0);
    }

    #[test]
    fn wide_graphs_cross_word_boundaries() {
        // 130 tasks in a chain: bit indices span three u64 words.
        let deps: Vec<Vec<u32>> = (0..130u32)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let p = Precedence::build(&deps);
        assert!(p.precedes(0, 129));
        assert!(p.precedes(64, 129));
        assert!(p.precedes(63, 64));
        assert!(!p.precedes(129, 0));
        assert_eq!(p.ancestor_count(129), 129);
    }
}
