//! The adversarial program generator and the driver that runs generated
//! programs against the engines under every execution strategy.
//!
//! Programs are generated seed-deterministically as plain data
//! ([`GenProgram`]), so one program can be driven through all four engines
//! × serial/sharded analysis × synchronous/pipelined submission ×
//! auto-trace on/off and the resulting histories judged independently.
//! Generation is biased by [`Mode`] toward the runtime's historical soft
//! spots: aliased (non-disjoint) partitions, deep region trees, reduction
//! storms with mixed operators, near-repeating launch sequences with a
//! single mutated instance (speculation stress for the auto-tracer), and
//! mid-run repartitioning.
//!
//! The driver submits with validation on and *skips* launches the §4
//! intra-task aliasing rule rejects. Rejection depends only on the spec
//! and the forest — both identical across configurations — so every
//! configuration sees the same effective program.

use crate::history::History;
use rand::{rngs::StdRng, RngExt, SeedableRng};
use viz_region::{Privilege, RedOpRegistry, RegionId};
use viz_runtime::{EngineKind, LaunchSpec, RegionRequirement, Runtime, RuntimeConfig};

/// What the generator stresses. `Mixed` draws from all of them.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Partitions whose pieces overlap each other (aliased trees).
    AliasedPartitions,
    /// Partitions of partitions, several levels deep.
    DeepTrees,
    /// Many reductions with mixed operators, punctuated by readers.
    ReductionStorms,
    /// A block of launches repeated many times with one mutated instance
    /// (near-repeat): auto-trace promotion, replay, and demotion stress.
    TraceRepeats,
    /// New partitions appear mid-stream and later launches use them.
    Repartition,
    Mixed,
}

pub const ALL_MODES: [Mode; 6] = [
    Mode::AliasedPartitions,
    Mode::DeepTrees,
    Mode::ReductionStorms,
    Mode::TraceRepeats,
    Mode::Repartition,
    Mode::Mixed,
];

impl Mode {
    pub fn name(self) -> &'static str {
        match self {
            Mode::AliasedPartitions => "aliased",
            Mode::DeepTrees => "deep-trees",
            Mode::ReductionStorms => "reduction-storms",
            Mode::TraceRepeats => "trace-repeats",
            Mode::Repartition => "repartition",
            Mode::Mixed => "mixed",
        }
    }
}

/// A region reference inside a generated program, resolved by the driver
/// once the corresponding forest objects exist.
#[derive(Copy, Clone, Debug)]
pub enum GenRegion {
    Root(usize),
    /// Piece `k` of generated partition `p`.
    Piece(usize, usize),
}

/// One generated partition: `parent` must already exist when the
/// program's `Partition(idx)` op runs; pieces are 1-d spans of the
/// parent's domain, possibly overlapping (aliased).
#[derive(Clone, Debug)]
pub struct GenPartition {
    pub parent: GenRegion,
    pub pieces: Vec<(i64, i64)>,
}

/// One requirement of a generated launch.
#[derive(Copy, Clone, Debug)]
pub struct GenReq {
    pub region: GenRegion,
    pub field: usize,
    pub privilege: Privilege,
}

/// The linear op stream the driver replays.
#[derive(Clone, Debug)]
pub enum GenOp {
    /// Create generated partition `idx` (mid-run repartitioning when this
    /// appears after launches).
    Partition(usize),
    Launch {
        node: usize,
        reqs: Vec<GenReq>,
    },
    Fence,
    BeginTrace(u32),
    EndTrace(u32),
}

/// A complete generated program.
#[derive(Clone, Debug)]
pub struct GenProgram {
    pub seed: u64,
    pub mode: Mode,
    pub nodes: usize,
    /// Root sizes (1-d element counts); every root gets `fields` fields.
    pub roots: Vec<i64>,
    pub fields: usize,
    pub partitions: Vec<GenPartition>,
    pub ops: Vec<GenOp>,
}

/// Pick spans for a partition of `[0, n)`: `pieces` spans, aliased
/// (overlapping) with probability ~1/2 when `alias` is set.
fn gen_pieces(rng: &mut StdRng, n: i64, pieces: usize, alias: bool) -> Vec<(i64, i64)> {
    let mut out = Vec::with_capacity(pieces);
    let w = (n / pieces as i64).max(1);
    for k in 0..pieces as i64 {
        let (mut lo, mut hi) = (k * w, ((k + 1) * w).min(n));
        if alias && rng.random_bool() {
            // Stretch into the neighbors: aliasing the tree.
            lo = (lo - rng.random_range(0..w.max(2))).max(0);
            hi = (hi + rng.random_range(0..w.max(2))).min(n);
        }
        if lo < hi {
            out.push((lo, hi));
        }
    }
    if out.is_empty() {
        out.push((0, n));
    }
    out
}

/// Generate one program. Deterministic in `(seed, mode, launches)`.
pub fn generate(seed: u64, mode: Mode, launches: usize, nodes: usize) -> GenProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prog = GenProgram {
        seed,
        mode,
        nodes,
        roots: Vec::new(),
        fields: 1 + rng.random_range(0..2usize),
        partitions: Vec::new(),
        ops: Vec::new(),
    };
    let nroots = match mode {
        Mode::DeepTrees => 1,
        _ => 1 + rng.random_range(0..2usize),
    };
    for _ in 0..nroots {
        prog.roots.push(32 + rng.random_range(0..97i64));
    }
    // Region pool the launches draw from: roots plus partition pieces.
    let mut pool: Vec<GenRegion> = (0..nroots).map(GenRegion::Root).collect();
    // Spans for nesting decisions (index-parallel with the pool).
    let mut spans: Vec<(usize, i64, i64)> = (0..nroots).map(|r| (r, 0, prog.roots[r])).collect();

    let add_partition = |prog: &mut GenProgram,
                         rng: &mut StdRng,
                         pool: &mut Vec<GenRegion>,
                         spans: &mut Vec<(usize, i64, i64)>,
                         parent_idx: usize,
                         alias: bool| {
        let (root, lo, hi) = spans[parent_idx];
        let n = hi - lo;
        if n < 4 {
            return;
        }
        let npieces = 2 + rng.random_range(0..4usize);
        let pieces = gen_pieces(rng, n, npieces, alias)
            .into_iter()
            .map(|(a, b)| (lo + a, lo + b))
            .collect::<Vec<_>>();
        let pidx = prog.partitions.len();
        prog.partitions.push(GenPartition {
            parent: pool[parent_idx],
            pieces: pieces.clone(),
        });
        prog.ops.push(GenOp::Partition(pidx));
        for (k, (a, b)) in pieces.iter().enumerate() {
            pool.push(GenRegion::Piece(pidx, k));
            spans.push((root, *a, *b));
        }
    };

    // Initial partitions.
    let alias = matches!(mode, Mode::AliasedPartitions | Mode::Mixed);
    let depth = if mode == Mode::DeepTrees {
        3 + rng.random_range(0..3usize)
    } else {
        1
    };
    for _ in 0..depth {
        let parent = rng.random_range(0..pool.len());
        add_partition(&mut prog, &mut rng, &mut pool, &mut spans, parent, alias);
    }

    let gen_req = |rng: &mut StdRng, pool: &[GenRegion], fields: usize| -> GenReq {
        let region = pool[rng.random_range(0..pool.len())];
        let field = rng.random_range(0..fields);
        let privilege = match rng.random_range(0..10u32) {
            0..=3 => Privilege::Read,
            4..=6 => Privilege::ReadWrite,
            _ => Privilege::Reduce(match rng.random_range(0..4u32) {
                0 => RedOpRegistry::SUM,
                1 => RedOpRegistry::PROD,
                2 => RedOpRegistry::MIN,
                _ => RedOpRegistry::MAX,
            }),
        };
        GenReq {
            region,
            field,
            privilege,
        }
    };

    match mode {
        Mode::TraceRepeats => {
            // A block repeated `m` times; one instance gets a mutation.
            let block = 2 + rng.random_range(0..4usize);
            let m = (launches / block).max(4);
            let annotated = rng.random_bool();
            let mutated_instance = 2 + rng.random_range(0..(m - 2).max(1));
            let template: Vec<Vec<GenReq>> = (0..block)
                .map(|_| {
                    let nreqs = 1 + rng.random_range(0..2usize);
                    (0..nreqs)
                        .map(|_| gen_req(&mut rng, &pool, prog.fields))
                        .collect()
                })
                .collect();
            for inst in 0..m {
                if annotated {
                    prog.ops.push(GenOp::BeginTrace(7));
                }
                for (b, reqs) in template.iter().enumerate() {
                    let mut reqs = reqs.clone();
                    if inst == mutated_instance && b == 0 {
                        // The near-repeat: one launch differs.
                        reqs[0] = gen_req(&mut rng, &pool, prog.fields);
                    }
                    prog.ops.push(GenOp::Launch {
                        node: rng.random_range(0..nodes),
                        reqs,
                    });
                }
                if annotated {
                    prog.ops.push(GenOp::EndTrace(7));
                }
            }
        }
        _ => {
            let mut emitted = 0usize;
            while emitted < launches {
                let roll = rng.random_range(0..100u32);
                if mode == Mode::Repartition && roll < 6 {
                    let parent = rng.random_range(0..pool.len());
                    add_partition(&mut prog, &mut rng, &mut pool, &mut spans, parent, true);
                    continue;
                }
                if roll < 4 && !matches!(mode, Mode::ReductionStorms) {
                    prog.ops.push(GenOp::Fence);
                    emitted += 1;
                    continue;
                }
                let nreqs = 1 + rng.random_range(0..3usize);
                let reqs: Vec<GenReq> = (0..nreqs)
                    .map(|_| {
                        let mut r = gen_req(&mut rng, &pool, prog.fields);
                        if mode == Mode::ReductionStorms && rng.random_range(0..10u32) < 8 {
                            r.privilege = Privilege::Reduce(match rng.random_range(0..3u32) {
                                0 => RedOpRegistry::SUM,
                                1 => RedOpRegistry::MIN,
                                _ => RedOpRegistry::MAX,
                            });
                        }
                        r
                    })
                    .collect();
                prog.ops.push(GenOp::Launch {
                    node: rng.random_range(0..nodes),
                    reqs,
                });
                emitted += 1;
            }
        }
    }
    prog
}

/// One execution strategy a program is driven under.
#[derive(Copy, Clone, Debug)]
pub struct DriveConfig {
    pub engine: EngineKind,
    pub analysis_threads: usize,
    pub pipeline: bool,
    pub auto_trace: bool,
    /// Number of concurrent producer contexts the driver fans launches
    /// across. `1` drives everything through the facade (the historical
    /// single-producer path); `>1` splits each contiguous launch run
    /// round-robin over that many [`viz_runtime::Context`]s submitting
    /// from their own threads.
    pub producers: usize,
}

impl DriveConfig {
    pub fn label(&self) -> String {
        format!(
            "{:?}/t{}{}{}{}",
            self.engine,
            self.analysis_threads,
            if self.pipeline { "/pipe" } else { "" },
            if self.auto_trace { "/auto" } else { "" },
            if self.producers > 1 {
                format!("/mp{}", self.producers)
            } else {
                String::new()
            },
        )
    }
}

/// The full matrix the fuzzer sweeps: 4 engines × serial/sharded ×
/// {plain, pipeline, auto-trace, pipeline+auto-trace}.
pub fn drive_matrix() -> Vec<DriveConfig> {
    let mut out = Vec::new();
    for engine in [
        EngineKind::PaintNaive,
        EngineKind::Paint,
        EngineKind::Warnock,
        EngineKind::RayCast,
    ] {
        for analysis_threads in [1, 4] {
            for (pipeline, auto_trace) in
                [(false, false), (true, false), (false, true), (true, true)]
            {
                out.push(DriveConfig {
                    engine,
                    analysis_threads,
                    pipeline,
                    auto_trace,
                    producers: 1,
                });
            }
        }
    }
    out
}

/// Run a generated program under one strategy and capture its history.
pub fn run_program(prog: &GenProgram, cfg: DriveConfig) -> History {
    let producers = cfg.producers.max(1);
    let rc = RuntimeConfig::new(cfg.engine)
        .nodes(prog.nodes)
        .dcr(prog.nodes > 1)
        .analysis_threads(cfg.analysis_threads)
        .pipeline(cfg.pipeline)
        .auto_trace(cfg.auto_trace)
        .submit_rings(producers + 1)
        .record_history(true)
        .validate(true);
    let mut rt = Runtime::new(rc);
    let mut roots: Vec<RegionId> = Vec::with_capacity(prog.roots.len());
    let mut fields = Vec::with_capacity(prog.roots.len());
    for (ri, n) in prog.roots.iter().enumerate() {
        let r = rt.forest_mut().create_root_1d(format!("R{ri}"), *n);
        let fs: Vec<_> = (0..prog.fields)
            .map(|fi| rt.forest_mut().add_field(r, format!("f{fi}")))
            .collect();
        roots.push(r);
        fields.push(fs);
    }
    // Partition piece regions, filled in as Partition ops run.
    let mut pieces: Vec<Vec<RegionId>> = vec![Vec::new(); prog.partitions.len()];
    let resolve = |roots: &[RegionId], pieces: &[Vec<RegionId>], g: GenRegion| match g {
        GenRegion::Root(r) => roots[r],
        GenRegion::Piece(p, k) => pieces[p][k],
    };
    let root_index = |g: GenRegion, parts: &[GenPartition]| -> usize {
        let mut g = g;
        loop {
            match g {
                GenRegion::Root(r) => return r,
                GenRegion::Piece(p, _) => g = parts[p].parent,
            }
        }
    };
    // Explicit trace spans must keep their launches on the primary
    // stream: a recording span expects the trace body verbatim.
    let mut in_trace = false;
    let mut i = 0usize;
    while i < prog.ops.len() {
        if producers > 1 && !in_trace && matches!(prog.ops[i], GenOp::Launch { .. }) {
            // Fan a contiguous launch run out round-robin across
            // `producers` tenant contexts, each submitting from its own
            // thread. Interleaving is nondeterministic by design — the
            // checker judges whatever history the engine committed.
            let start = i;
            while i < prog.ops.len() && matches!(prog.ops[i], GenOp::Launch { .. }) {
                i += 1;
            }
            let mut lanes: Vec<Vec<LaunchSpec>> = (0..producers).map(|_| Vec::new()).collect();
            for (k, op) in prog.ops[start..i].iter().enumerate() {
                let GenOp::Launch { node, reqs } = op else {
                    unreachable!()
                };
                let rr: Vec<RegionRequirement> = reqs
                    .iter()
                    .map(|q| RegionRequirement {
                        region: resolve(&roots, &pieces, q.region),
                        field: fields[root_index(q.region, &prog.partitions)][q.field],
                        privilege: q.privilege,
                    })
                    .collect();
                lanes[k % producers].push(LaunchSpec::new("gen", *node, rr, 10, None));
            }
            let mut ctxs = Vec::with_capacity(producers);
            for _ in 0..producers {
                ctxs.push(
                    rt.new_context()
                        .expect("submit_rings covers every producer"),
                );
            }
            std::thread::scope(|s| {
                for (j, (ctx, specs)) in ctxs.iter_mut().zip(lanes).enumerate() {
                    s.spawn(move || {
                        for spec in specs {
                            // §4 rejections are skipped, as on the facade.
                            let _ = ctx.submit(spec);
                        }
                        // Half the producers close their run with a scoped
                        // fence, exercising per-context fence deps.
                        if j % 2 == 0 {
                            let _ = ctx.fence();
                        }
                    });
                }
            });
            drop(ctxs);
            continue;
        }
        match &prog.ops[i] {
            GenOp::Partition(pidx) => {
                let spec = &prog.partitions[*pidx];
                let parent = resolve(&roots, &pieces, spec.parent);
                // Generator spans are half-open; the geometry layer's
                // bounds are inclusive.
                let subdomains = spec
                    .pieces
                    .iter()
                    .map(|(a, b)| viz_geometry::IndexSpace::span(*a, *b - 1))
                    .collect();
                let pid = rt
                    .forest_mut()
                    .create_partition(parent, format!("P{pidx}"), subdomains);
                pieces[*pidx] = rt.forest().children(pid).to_vec();
            }
            GenOp::Launch { node, reqs } => {
                let rr: Vec<RegionRequirement> = reqs
                    .iter()
                    .map(|q| RegionRequirement {
                        region: resolve(&roots, &pieces, q.region),
                        field: fields[root_index(q.region, &prog.partitions)][q.field],
                        privilege: q.privilege,
                    })
                    .collect();
                // §4 rejections are deterministic across configs: skip.
                let _ = rt.submit(LaunchSpec::new("gen", *node, rr, 10, None));
            }
            GenOp::Fence => {
                rt.fence();
            }
            GenOp::BeginTrace(id) => {
                in_trace = rt.try_begin_trace(*id).is_ok();
            }
            GenOp::EndTrace(id) => {
                let _ = rt.try_end_trace(*id);
                in_trace = false;
            }
        }
        i += 1;
    }
    crate::record::capture(&rt).expect("record_history was enabled")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, Mode::Mixed, 30, 2);
        let b = generate(42, Mode::Mixed, 30, 2);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = generate(43, Mode::Mixed, 30, 2);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn every_mode_runs_clean_on_one_engine() {
        for (i, mode) in ALL_MODES.iter().enumerate() {
            let prog = generate(1000 + i as u64, *mode, 24, 2);
            let h = run_program(
                &prog,
                DriveConfig {
                    engine: EngineKind::RayCast,
                    analysis_threads: 1,
                    pipeline: false,
                    auto_trace: *mode == Mode::TraceRepeats,
                    producers: 1,
                },
            );
            let report = crate::checker::check(&h);
            assert!(
                report.ok(),
                "mode {:?}: {:?}",
                mode,
                report.violations.first()
            );
        }
    }

    #[test]
    fn multi_producer_histories_pass_the_checker() {
        for pipeline in [false, true] {
            let prog = generate(77, Mode::Mixed, 24, 2);
            let h = run_program(
                &prog,
                DriveConfig {
                    engine: EngineKind::RayCast,
                    analysis_threads: 2,
                    pipeline,
                    auto_trace: false,
                    producers: 4,
                },
            );
            let report = crate::checker::check(&h);
            assert!(
                report.ok(),
                "pipeline {pipeline}: {:?}",
                report.violations.first()
            );
            // The fan-out actually happened: tenant contexts appear.
            assert!(
                h.launches
                    .iter()
                    .any(|l| l.ctx != 0 && l.ctx != crate::history::CTX_GLOBAL),
                "expected tenant-context launches in the history"
            );
        }
    }
}
