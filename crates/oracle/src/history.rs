//! The portable history model the oracle judges, plus its binary codec.
//!
//! A [`History`] is self-contained: every requirement carries its root
//! tree, field, privilege, and the region's *domain geometry* (the rect
//! union), so the checker never needs the region forest or any runtime
//! state — dbcop-style, the history is the complete court record.
//!
//! # Binary format (`VZH2`)
//!
//! The workspace deliberately avoids serde (DESIGN.md §8), so the codec is
//! a hand-rolled byte stream: magic `VZH2` (`VZH1` plus a per-launch
//! producer-context id, PR 7), then LEB128 varints for
//! unsigned integers, zigzag+varint for signed coordinates, and
//! length-prefixed UTF-8 for strings. Everything is little-endian-free
//! (varints have no endianness), so files are portable across hosts.

use viz_geometry::{IndexSpace, Point, Rect};

/// Privilege, re-modeled locally so the judging path does not depend on
/// engine-adjacent semantics. Interference is re-derived in the checker
/// from sequential semantics: only read/read and same-op reduce/reduce
/// commute.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum HPrivilege {
    Read,
    ReadWrite,
    Reduce(u32),
}

impl HPrivilege {
    /// §4 interference: may two accesses with these privileges be
    /// reordered without changing sequential semantics?
    pub fn interferes(self, other: HPrivilege) -> bool {
        match (self, other) {
            (HPrivilege::Read, HPrivilege::Read) => false,
            (HPrivilege::Reduce(f), HPrivilege::Reduce(g)) => f != g,
            _ => true,
        }
    }
}

/// One region requirement of a recorded launch, with the geometry
/// resolved: `domain` is the region's rect union at record time.
#[derive(Clone, Debug)]
pub struct HRequirement {
    /// Root region id of the tree this requirement lives in.
    pub root: u32,
    /// The concrete region named by the launch (for witnesses only).
    pub region: u32,
    pub field: u32,
    pub privilege: HPrivilege,
    pub domain: IndexSpace,
}

/// One committed launch as the engine claimed it.
#[derive(Clone, Debug)]
pub struct HLaunch {
    pub id: u32,
    pub name: String,
    pub node: u32,
    /// Producer context that submitted this launch. `u32::MAX`
    /// ([`CTX_GLOBAL`]) marks a *global* fence, ordered after every
    /// context; a fence carrying a real context id is scoped to that
    /// context's own launches.
    pub ctx: u32,
    /// Canonical fingerprint of `(node, reqs)` (the auto-tracer's
    /// signature); replay corruption shows up as signature drift between
    /// instances of one template.
    pub signature: u64,
    pub reqs: Vec<HRequirement>,
    /// Dependence edges the engine emitted (must all point backward).
    pub deps: Vec<u32>,
    /// Analysis synthesized from a trace template instead of the engine.
    pub replayed: bool,
    /// An execution fence: must be ordered after every earlier launch.
    pub fence: bool,
}

/// A complete run: the launches in program order plus the retirement
/// order the driver committed them in.
#[derive(Clone, Debug, Default)]
pub struct History {
    pub engine: String,
    pub launches: Vec<HLaunch>,
    pub retirement: Vec<u32>,
}

impl History {
    pub fn len(&self) -> usize {
        self.launches.len()
    }

    pub fn is_empty(&self) -> bool {
        self.launches.is_empty()
    }
}

// ----------------------------------------------------------------------
// Codec
// ----------------------------------------------------------------------

/// The pseudo context id of global fences (mirrors
/// `viz_runtime::CTX_GLOBAL`).
pub const CTX_GLOBAL: u32 = u32::MAX;

const MAGIC: &[u8; 4] = b"VZH2";

fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    // zigzag
    put_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Decode-side errors: truncated input, bad magic, or malformed values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    BadMagic,
    Truncated,
    /// A varint ran past 10 bytes (not produced by this encoder).
    Overlong,
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a VZH2 history file"),
            DecodeError::Truncated => write!(f, "truncated history file"),
            DecodeError::Overlong => write!(f, "overlong varint"),
            DecodeError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        for shift in (0..).step_by(7) {
            if shift >= 70 {
                return Err(DecodeError::Overlong);
            }
            let byte = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
            self.pos += 1;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!()
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(self.u64()? as u32)
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        let z = self.u64()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u64()? as usize;
        let end = self.pos.checked_add(len).ok_or(DecodeError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Truncated)?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

fn put_space(out: &mut Vec<u8>, s: &IndexSpace) {
    let rects = s.rects();
    put_u64(out, rects.len() as u64);
    for r in rects {
        put_i64(out, r.lo.x);
        put_i64(out, r.lo.y);
        put_i64(out, r.hi.x);
        put_i64(out, r.hi.y);
    }
}

fn get_space(r: &mut Reader<'_>) -> Result<IndexSpace, DecodeError> {
    let n = r.u64()? as usize;
    let mut rects = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let lx = r.i64()?;
        let ly = r.i64()?;
        let hx = r.i64()?;
        let hy = r.i64()?;
        rects.push(Rect {
            lo: Point { x: lx, y: ly },
            hi: Point { x: hx, y: hy },
        });
    }
    Ok(IndexSpace::from_rects(rects))
}

impl History {
    /// Serialize to the `VZH2` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.launches.len() * 32);
        out.extend_from_slice(MAGIC);
        put_str(&mut out, &self.engine);
        put_u64(&mut out, self.launches.len() as u64);
        for l in &self.launches {
            put_u64(&mut out, l.id as u64);
            put_str(&mut out, &l.name);
            put_u64(&mut out, l.node as u64);
            put_u64(&mut out, l.ctx as u64);
            put_u64(&mut out, l.signature);
            put_u64(&mut out, l.reqs.len() as u64);
            for q in &l.reqs {
                put_u64(&mut out, q.root as u64);
                put_u64(&mut out, q.region as u64);
                put_u64(&mut out, q.field as u64);
                match q.privilege {
                    HPrivilege::Read => put_u64(&mut out, 0),
                    HPrivilege::ReadWrite => put_u64(&mut out, 1),
                    HPrivilege::Reduce(op) => {
                        put_u64(&mut out, 2);
                        put_u64(&mut out, op as u64);
                    }
                }
                put_space(&mut out, &q.domain);
            }
            put_u64(&mut out, l.deps.len() as u64);
            for d in &l.deps {
                put_u64(&mut out, *d as u64);
            }
            put_u64(&mut out, (l.replayed as u64) | ((l.fence as u64) << 1));
        }
        put_u64(&mut out, self.retirement.len() as u64);
        for t in &self.retirement {
            put_u64(&mut out, *t as u64);
        }
        out
    }

    /// Parse the `VZH2` byte format.
    pub fn decode(buf: &[u8]) -> Result<History, DecodeError> {
        if buf.len() < 4 || &buf[..4] != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let mut r = Reader { buf, pos: 4 };
        let engine = r.string()?;
        let n = r.u64()? as usize;
        let mut launches = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let id = r.u32()?;
            let name = r.string()?;
            let node = r.u32()?;
            let ctx = r.u32()?;
            let signature = r.u64()?;
            let nreqs = r.u64()? as usize;
            let mut reqs = Vec::with_capacity(nreqs.min(1 << 16));
            for _ in 0..nreqs {
                let root = r.u32()?;
                let region = r.u32()?;
                let field = r.u32()?;
                let privilege = match r.u64()? {
                    0 => HPrivilege::Read,
                    1 => HPrivilege::ReadWrite,
                    _ => HPrivilege::Reduce(r.u32()?),
                };
                let domain = get_space(&mut r)?;
                reqs.push(HRequirement {
                    root,
                    region,
                    field,
                    privilege,
                    domain,
                });
            }
            let ndeps = r.u64()? as usize;
            let mut deps = Vec::with_capacity(ndeps.min(1 << 20));
            for _ in 0..ndeps {
                deps.push(r.u32()?);
            }
            let flags = r.u64()?;
            launches.push(HLaunch {
                id,
                name,
                node,
                ctx,
                signature,
                reqs,
                deps,
                replayed: flags & 1 != 0,
                fence: flags & 2 != 0,
            });
        }
        let nret = r.u64()? as usize;
        let mut retirement = Vec::with_capacity(nret.min(1 << 20));
        for _ in 0..nret {
            retirement.push(r.u32()?);
        }
        Ok(History {
            engine,
            launches,
            retirement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> History {
        History {
            engine: "raycast".into(),
            launches: vec![
                HLaunch {
                    id: 0,
                    name: "w".into(),
                    node: 0,
                    ctx: 0,
                    signature: 0xdead_beef_cafe_f00d,
                    reqs: vec![HRequirement {
                        root: 0,
                        region: 0,
                        field: 0,
                        privilege: HPrivilege::ReadWrite,
                        domain: IndexSpace::span(0, 100),
                    }],
                    deps: vec![],
                    replayed: false,
                    fence: false,
                },
                HLaunch {
                    id: 1,
                    name: "r".into(),
                    node: 3,
                    ctx: 2,
                    signature: 7,
                    reqs: vec![HRequirement {
                        root: 0,
                        region: 2,
                        field: 0,
                        privilege: HPrivilege::Reduce(1),
                        domain: IndexSpace::from_rects(vec![
                            Rect::span(-5, 10),
                            Rect {
                                lo: Point { x: 20, y: 2 },
                                hi: Point { x: 30, y: 9 },
                            },
                        ]),
                    }],
                    deps: vec![0],
                    replayed: true,
                    fence: false,
                },
                HLaunch {
                    id: 2,
                    name: "fence".into(),
                    node: 0,
                    ctx: CTX_GLOBAL,
                    signature: 0,
                    reqs: vec![],
                    deps: vec![0, 1],
                    replayed: false,
                    fence: true,
                },
            ],
            retirement: vec![0, 1, 2],
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let bytes = h.encode();
        let back = History::decode(&bytes).unwrap();
        assert_eq!(back.engine, h.engine);
        assert_eq!(back.len(), h.len());
        assert_eq!(back.retirement, h.retirement);
        for (a, b) in h.launches.iter().zip(&back.launches) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.node, b.node);
            assert_eq!(a.ctx, b.ctx);
            assert_eq!(a.signature, b.signature);
            assert_eq!(a.deps, b.deps);
            assert_eq!(a.replayed, b.replayed);
            assert_eq!(a.fence, b.fence);
            assert_eq!(a.reqs.len(), b.reqs.len());
            for (x, y) in a.reqs.iter().zip(&b.reqs) {
                assert_eq!(x.root, y.root);
                assert_eq!(x.region, y.region);
                assert_eq!(x.field, y.field);
                assert_eq!(x.privilege, y.privilege);
                assert!(x.domain.same_points(&y.domain));
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(History::decode(b"nope").unwrap_err(), DecodeError::BadMagic);
        let mut bytes = sample().encode();
        bytes.truncate(bytes.len() - 3);
        assert_eq!(History::decode(&bytes).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn interference_matches_sequential_semantics() {
        use HPrivilege::*;
        assert!(!Read.interferes(Read));
        assert!(!Reduce(0).interferes(Reduce(0)));
        assert!(Reduce(0).interferes(Reduce(1)));
        assert!(Read.interferes(ReadWrite));
        assert!(ReadWrite.interferes(Reduce(0)));
        assert!(ReadWrite.interferes(ReadWrite));
    }
}
