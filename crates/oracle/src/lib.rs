//! # viz-oracle
//!
//! An external consistency oracle for the visibility engines, in the
//! spirit of black-box database checkers (dbcop): the runtime records
//! what it *claimed* — submitted requirements, emitted dependence edges,
//! retirement order — and an independent polynomial judge re-derives the
//! required precedence relation from sequential semantics and verifies
//! the claims, with no access to the engines' internal analysis state.
//!
//! Three layers:
//!
//! * [`history`] — the portable [`history::History`] model plus a
//!   hand-rolled `VZH1` binary codec (the workspace has no serde;
//!   DESIGN.md §8).
//! * [`checker`] + [`depa`] — the saturation judge: required edges
//!   (interfering pairs per (root, field), fences), forbidden edges
//!   (forward/self), retirement as a linear extension; happens-before
//!   queries answered by DePa-style order-maintenance tags over ancestor
//!   bitsets. Violations return a minimal witness. This path imports only
//!   `viz-geometry` — **never** the runtime or its analysis modules.
//! * [`gen`] + [`record`] — the adversarial side: a seedable generator
//!   biased toward aliased partitions, deep trees, reduction storms,
//!   trace near-repeats and mid-run repartitioning, and the driver that
//!   sweeps generated programs across all four engines × serial/sharded ×
//!   pipeline × auto-trace (the only modules that touch `viz-runtime`).

pub mod checker;
pub mod depa;
pub mod gen;
pub mod history;
pub mod record;

pub use checker::{check, CheckReport, Violation};
pub use depa::Precedence;
pub use gen::{drive_matrix, generate, run_program, DriveConfig, GenProgram, Mode, ALL_MODES};
pub use history::{DecodeError, HLaunch, HPrivilege, HRequirement, History};
pub use record::{capture, resolve};
