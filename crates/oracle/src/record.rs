//! Capture: convert a runtime's recorded launch history into the
//! self-contained [`History`] the checker judges.
//!
//! This is the only module (besides the fuzz driver in [`crate::gen`])
//! allowed to import `viz-runtime`: it resolves each requirement's region
//! to its root tree and domain geometry through the region forest, after
//! which the history stands on its own — the judging path
//! ([`crate::history`] / [`crate::depa`] / [`crate::checker`]) never looks
//! back at the runtime.

use crate::history::{HLaunch, HPrivilege, HRequirement, History};
use viz_region::{Privilege, RegionForest};
use viz_runtime::{RecordedHistory, Runtime};

fn convert_privilege(p: Privilege) -> HPrivilege {
    match p {
        Privilege::Read => HPrivilege::Read,
        Privilege::ReadWrite => HPrivilege::ReadWrite,
        Privilege::Reduce(op) => HPrivilege::Reduce(op.0),
    }
}

/// Resolve a recorded history against the forest it ran under. The forest
/// only grows, so the snapshot taken at export time covers every region
/// any launch named.
pub fn resolve(recorded: &RecordedHistory, forest: &RegionForest) -> History {
    let launches = recorded
        .launches
        .iter()
        .map(|l| HLaunch {
            id: l.id.0,
            name: l.name.clone(),
            node: l.node as u32,
            ctx: l.ctx,
            signature: l.signature,
            reqs: l
                .reqs
                .iter()
                .map(|r| HRequirement {
                    root: forest.root_of(r.region).0,
                    region: r.region.0,
                    field: r.field.0,
                    privilege: convert_privilege(r.privilege),
                    domain: forest.domain(r.region).clone(),
                })
                .collect(),
            deps: l.deps.iter().map(|d| d.0).collect(),
            replayed: l.replayed,
            fence: l.fence,
        })
        .collect();
    History {
        engine: recorded.engine.clone(),
        launches,
        retirement: recorded.retirement.iter().map(|t| t.0).collect(),
    }
}

/// Drain the runtime and capture its full history (`None` when the
/// runtime was built without [`viz_runtime::RuntimeConfig::record_history`]).
pub fn capture(rt: &Runtime) -> Option<History> {
    let recorded = rt.recorded_history()?;
    Some(resolve(&recorded, &rt.forest()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_runtime::{EngineKind, RuntimeConfig};

    #[test]
    fn capture_resolves_geometry_and_roots() {
        let cfg = RuntimeConfig::new(EngineKind::RayCast).record_history(true);
        let mut rt = Runtime::new(cfg);
        let root = rt.forest_mut().create_root_1d("A", 40);
        let f = rt.forest_mut().add_field(root, "v");
        let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
        let piece = rt.forest().subregion(p, 2);
        rt.task("w").write(piece, f).submit().unwrap();
        rt.task("r").read(root, f).submit().unwrap();
        let h = capture(&rt).expect("recording on");
        assert_eq!(h.len(), 2);
        assert_eq!(h.launches[0].reqs[0].root, root.0);
        assert_eq!(h.launches[0].reqs[0].region, piece.0);
        assert_eq!(h.launches[0].reqs[0].domain.volume(), 10);
        assert_eq!(h.launches[1].reqs[0].domain.volume(), 40);
        assert_eq!(h.launches[1].deps, vec![0]);
        // And the checker accepts what the engine produced.
        assert!(crate::checker::check(&h).ok());
    }
}
