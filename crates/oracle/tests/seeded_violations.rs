//! Seeded-violation tests: corrupt *real* engine histories in the four
//! ways the checker is supposed to catch, and assert the minimal witness
//! comes back exact — not just "some violation somewhere".

use std::sync::Arc;
use viz_oracle::{capture, check, History, Violation};
use viz_runtime::{
    EngineKind, LaunchSpec, PhysicalRegion, RegionRequirement, Runtime, RuntimeConfig,
};

/// A small recorded program with a known shape:
///
/// ```text
/// t0: RW piece0         deps []
/// t1: RW piece0         deps [0]        (WAW)
/// t2: Read root         deps [1, ...]   (RAW on piece0's cells)
/// ```
fn recorded_chain() -> History {
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .record_history(true)
            .auto_trace(false),
    );
    let root = rt.forest_mut().create_root_1d("A", 40);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
    let piece0 = rt.forest().subregion(p, 0);
    let body = || {
        Some(Arc::new(|rs: &mut [PhysicalRegion]| {
            rs[0].update_all(|_, v| v + 1.0);
        }) as _)
    };
    rt.submit(LaunchSpec::new(
        "w0",
        0,
        vec![RegionRequirement::read_write(piece0, f)],
        1_000,
        body(),
    ))
    .unwrap();
    rt.submit(LaunchSpec::new(
        "w1",
        0,
        vec![RegionRequirement::read_write(piece0, f)],
        1_000,
        body(),
    ))
    .unwrap();
    rt.submit(LaunchSpec::new(
        "r",
        0,
        vec![RegionRequirement::read(root, f)],
        1_000,
        None,
    ))
    .unwrap();
    rt.execute_values();
    capture(&rt).expect("recording was enabled")
}

/// A recorded annotated-trace program whose third instance replays.
fn recorded_trace() -> History {
    let mut rt = Runtime::new(
        RuntimeConfig::new(EngineKind::RayCast)
            .record_history(true)
            .auto_trace(false),
    );
    let root = rt.forest_mut().create_root_1d("A", 40);
    let f = rt.forest_mut().add_field(root, "v");
    let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
    for _ in 0..3 {
        rt.try_begin_trace(1).unwrap();
        for i in 0..2 {
            let piece = rt.forest().subregion(p, i);
            rt.submit(LaunchSpec::new(
                "w",
                0,
                vec![RegionRequirement::read_write(piece, f)],
                1_000,
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|_, v| v + 1.0);
                })),
            ))
            .unwrap();
        }
        rt.try_end_trace(1).unwrap();
    }
    rt.execute_values();
    capture(&rt).expect("recording was enabled")
}

#[test]
fn clean_history_passes() {
    let h = recorded_chain();
    let report = check(&h);
    assert!(report.ok(), "{:?}", report.violations);
    assert!(report.pairs_checked > 0);
}

#[test]
fn dropped_required_edge_yields_exact_witness() {
    let mut h = recorded_chain();
    // Sever the WAW edge t0 -> t1. t2 still depends on t1 only, so the
    // pair (0, 1) is now unordered even through the closure.
    h.launches[1].deps.retain(|d| *d != 0);
    let report = check(&h);
    let expected_overlap = h.launches[0].reqs[0].domain.clone();
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::MissingDependence { earlier: 0, later: 1, root: 0, field: 0, overlap }
                if overlap.same_points(&expected_overlap)
        )),
        "want MissingDependence(0 -> 1) over piece0, got {:?}",
        report.violations
    );
    // Severing 0 -> 1 also transitively unorders (0, 2); the pair (1, 2)
    // stays covered by t2's surviving direct edge and must NOT be flagged.
    assert!(report
        .violations
        .iter()
        .all(|v| matches!(v, Violation::MissingDependence { earlier: 0, .. })));
}

#[test]
fn forward_and_self_edges_are_forbidden() {
    let mut h = recorded_chain();
    h.launches[1].deps.push(2); // forward
    let report = check(&h);
    assert!(
        report
            .violations
            .contains(&Violation::ForbiddenEdge { pred: 2, succ: 1 }),
        "got {:?}",
        report.violations
    );

    let mut h = recorded_chain();
    h.launches[2].deps.push(2); // self
    let report = check(&h);
    assert!(
        report
            .violations
            .contains(&Violation::ForbiddenEdge { pred: 2, succ: 2 }),
        "got {:?}",
        report.violations
    );
}

#[test]
fn reordered_dependent_retirement_is_caught() {
    let mut h = recorded_chain();
    // Retire t1 before its predecessor t0.
    let (a, b) = (
        h.retirement.iter().position(|t| *t == 0).unwrap(),
        h.retirement.iter().position(|t| *t == 1).unwrap(),
    );
    h.retirement.swap(a, b);
    let report = check(&h);
    assert!(
        report
            .violations
            .contains(&Violation::RetirementOrder { task: 1, pred: 0 }),
        "got {:?}",
        report.violations
    );

    // A non-permutation log is its own violation.
    let mut h = recorded_chain();
    h.retirement[0] = h.retirement[1];
    let report = check(&h);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::RetirementOrder { pred: u32::MAX, .. })),
        "got {:?}",
        report.violations
    );
}

#[test]
fn corrupted_replay_instance_is_caught() {
    let h = recorded_trace();
    // The third instance (tasks 4, 5) replayed from the template.
    let replayed: Vec<u32> = h
        .launches
        .iter()
        .filter(|l| l.replayed)
        .map(|l| l.id)
        .collect();
    assert_eq!(replayed, vec![4, 5], "third instance replays");
    assert!(check(&h).ok());

    // Corrupt the replay: drop the synthesized WAW edge 2 -> 4 (the
    // capture instance's write of piece0 to its replayed successor).
    let mut h = recorded_trace();
    let victim = h.launches.iter_mut().find(|l| l.replayed).unwrap();
    let dropped = victim.deps.clone();
    let victim_id = victim.id;
    victim.deps.clear();
    let report = check(&h);
    assert!(
        report.violations.iter().any(|v| matches!(
            v,
            Violation::MissingDependence { later, .. } if *later == victim_id
        )),
        "dropped deps {dropped:?} of replayed launch {victim_id} must surface, got {:?}",
        report.violations
    );
}
