//! Renderers for a drained [`Profile`]: Chrome trace-event JSON, folded
//! flamegraph stacks, and a metrics TSV. All output is deterministic for a
//! given event list (stable ordering, fixed number formatting), so golden
//! tests can compare exact strings.

use crate::{Event, EventKind, Profile, Track};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Chrome `pid` for the host process; simulated nodes get `SIM_PID_BASE + n`.
const HOST_PID: u32 = 1;
const SIM_PID_BASE: u32 = 1000;

fn track_pid_tid(track: Track) -> (u32, u32) {
    match track {
        Track::Host { thread } => (HOST_PID, thread),
        Track::SimProgram { node } => (SIM_PID_BASE + node, 0),
        Track::SimService { node } => (SIM_PID_BASE + node, 1),
        Track::SimGpu { node } => (SIM_PID_BASE + node, 2),
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Trace-event `ts`/`dur` are microseconds; keep nanosecond precision as a
/// fixed three-decimal fraction so output is deterministic.
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn push_args(out: &mut String, kind: &EventKind) {
    match *kind {
        EventKind::Span { .. } => out.push_str("{}"),
        EventKind::LaunchAnalyzed { engine, task } => {
            out.push_str("{\"engine\":");
            push_json_str(out, engine);
            let _ = write!(out, ",\"task\":{task}}}");
        }
        EventKind::HistoryScan { entries } => {
            let _ = write!(out, "{{\"entries\":{entries}}}");
        }
        EventKind::EqSetCreated { count }
        | EventKind::EqSetRefined { count }
        | EventKind::EqSetCoalesced { count } => {
            let _ = write!(out, "{{\"count\":{count}}}");
        }
        EventKind::CompositeView { entries } => {
            let _ = write!(out, "{{\"entries\":{entries}}}");
        }
        EventKind::BvhTraversal { nodes } | EventKind::KdTraversal { nodes } => {
            let _ = write!(out, "{{\"nodes\":{nodes}}}");
        }
        EventKind::MsgSend { from, to, bytes } => {
            let _ = write!(out, "{{\"from\":{from},\"to\":{to},\"bytes\":{bytes}}}");
        }
        EventKind::MsgServe {
            from,
            to,
            queued_ns,
        } => {
            let _ = write!(
                out,
                "{{\"from\":{from},\"to\":{to},\"queued_ns\":{queued_ns}}}"
            );
        }
        EventKind::GpuTask { task } => {
            let _ = write!(out, "{{\"task\":{task}}}");
        }
        EventKind::TraceDetect { trace, len } => {
            let _ = write!(out, "{{\"trace\":{trace},\"len\":{len}}}");
        }
        EventKind::TraceReplay { trace, launches } => {
            let _ = write!(out, "{{\"trace\":{trace},\"launches\":{launches}}}");
        }
        EventKind::PipelineDepth { depth } => {
            let _ = write!(out, "{{\"depth\":{depth}}}");
        }
        EventKind::PipelineStall { waited_ns } => {
            let _ = write!(out, "{{\"waited_ns\":{waited_ns}}}");
        }
        EventKind::SubmitCombine { rings, specs } => {
            let _ = write!(out, "{{\"rings\":{rings},\"specs\":{specs}}}");
        }
        EventKind::AlgebraCache { hits, misses } => {
            let _ = write!(out, "{{\"hits\":{hits},\"misses\":{misses}}}");
        }
        EventKind::BvhMaintain { refits, rebuilds } => {
            let _ = write!(out, "{{\"refits\":{refits},\"rebuilds\":{rebuilds}}}");
        }
        EventKind::FlatSnapshot { nodes } => {
            let _ = write!(out, "{{\"nodes\":{nodes}}}");
        }
        EventKind::BatchQuery { queries, hits } => {
            let _ = write!(out, "{{\"queries\":{queries},\"hits\":{hits}}}");
        }
        EventKind::HistoryRecord { launches } => {
            let _ = write!(out, "{{\"launches\":{launches}}}");
        }
        EventKind::OracleCheck { pairs, edges } => {
            let _ = write!(out, "{{\"pairs\":{pairs},\"edges\":{edges}}}");
        }
        EventKind::GcSweep {
            watermark,
            retired,
            freed_words,
            dropped,
            coarsened,
        } => {
            let _ = write!(
                out,
                "{{\"watermark\":{watermark},\"retired\":{retired},\
                 \"freed_words\":{freed_words},\"dropped\":{dropped},\
                 \"coarsened\":{coarsened}}}"
            );
        }
        EventKind::ScanSweep { candidates, swept } => {
            let _ = write!(out, "{{\"candidates\":{candidates},\"swept\":{swept}}}");
        }
    }
}

fn push_metadata(out: &mut String, name: &str, pid: u32, tid: u32, arg_name: &str, value: &str) {
    let _ = write!(out, "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":");
    push_json_str(out, name);
    out.push_str(",\"args\":{");
    push_json_str(out, arg_name);
    out.push(':');
    push_json_str(out, value);
    out.push_str("}}");
}

/// Render the profile in Chrome's trace-event JSON format (load in
/// `chrome://tracing` or Perfetto). The host process is `pid 1` with one
/// row per OS thread; each simulated node is its own process
/// (`pid 1000+n`) with `program` / `service` / `gpu` rows carrying
/// simulated-time events.
pub fn chrome_trace(profile: &Profile) -> String {
    let mut out = String::with_capacity(128 + profile.events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
    };

    // Process/thread naming metadata.
    sep(&mut out);
    push_metadata(&mut out, "process_name", HOST_PID, 0, "name", "host");
    for (tid, name) in &profile.threads {
        sep(&mut out);
        push_metadata(&mut out, "thread_name", HOST_PID, *tid, "name", name);
    }
    let mut sim_nodes: Vec<u32> = profile
        .events
        .iter()
        .filter_map(|e| match e.track {
            Track::SimProgram { node } | Track::SimService { node } | Track::SimGpu { node } => {
                Some(node)
            }
            Track::Host { .. } => None,
        })
        .collect();
    sim_nodes.sort_unstable();
    sim_nodes.dedup();
    for node in &sim_nodes {
        let pid = SIM_PID_BASE + node;
        sep(&mut out);
        push_metadata(
            &mut out,
            "process_name",
            pid,
            0,
            "name",
            &format!("sim node {node}"),
        );
        for (tid, label) in [(0, "program"), (1, "service"), (2, "gpu")] {
            sep(&mut out);
            push_metadata(&mut out, "thread_name", pid, tid, "name", label);
        }
    }

    for event in &profile.events {
        let (pid, tid) = track_pid_tid(event.track);
        sep(&mut out);
        out.push_str("{\"name\":");
        push_json_str(&mut out, event.kind.name());
        let ph = if event.dur > 0 { "X" } else { "i" };
        let _ = write!(out, ",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":");
        push_us(&mut out, event.ts);
        if event.dur > 0 {
            out.push_str(",\"dur\":");
            push_us(&mut out, event.dur);
        } else {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":");
        push_args(&mut out, &event.kind);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Render host-track spans as folded stacks (`inferno` / `flamegraph.pl`
/// input): one line per unique stack, `root;child;leaf self_time_ns`.
/// Nesting is reconstructed from interval containment per thread; the
/// reported value is *self* time (span minus its children).
pub fn folded_stacks(profile: &Profile) -> String {
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    let mut threads: Vec<u32> = profile
        .events
        .iter()
        .filter_map(|e| match e.track {
            Track::Host { thread } => Some(thread),
            _ => None,
        })
        .collect();
    threads.sort_unstable();
    threads.dedup();

    for thread in threads {
        let root = profile
            .threads
            .iter()
            .find(|(tid, _)| *tid == thread)
            .map(|(_, name)| name.clone())
            .unwrap_or_else(|| format!("thread-{thread}"));
        let mut spans: Vec<&Event> = profile
            .on_track(Track::Host { thread })
            .filter(|e| matches!(e.kind, EventKind::Span { .. }))
            .collect();
        // Parents before children: earlier start first, longer span first
        // on ties.
        spans.sort_by(|a, b| a.ts.cmp(&b.ts).then(b.dur.cmp(&a.dur)));

        // Open frames: (name, end, self_time_remaining). A child's duration
        // is subtracted from its parent's self time when the child opens.
        let mut stack2: Vec<(&'static str, u64, u64)> = Vec::new();
        let emit = |stack2: &mut Vec<(&'static str, u64, u64)>,
                    lines: &mut BTreeMap<String, u64>,
                    up_to: u64| {
            while let Some(&(name, end, self_ns)) = stack2.last() {
                if up_to < end {
                    break;
                }
                stack2.pop();
                let mut key = root.clone();
                for (frame, _, _) in stack2.iter() {
                    key.push(';');
                    key.push_str(frame);
                }
                key.push(';');
                key.push_str(name);
                *lines.entry(key).or_insert(0) += self_ns;
            }
        };
        for span in spans {
            let (name, end) = match span.kind {
                EventKind::Span { name } => (name, span.ts + span.dur),
                _ => unreachable!("filtered to spans"),
            };
            emit(&mut stack2, &mut lines, span.ts);
            // This span's duration is no longer its parent's self time.
            if let Some(parent) = stack2.last_mut() {
                parent.2 = parent.2.saturating_sub(span.dur);
            }
            stack2.push((name, end, span.dur));
        }
        emit(&mut stack2, &mut lines, u64::MAX);
    }

    let mut out = String::new();
    for (stack, self_ns) in lines {
        let _ = writeln!(out, "{stack} {self_ns}");
    }
    out
}

/// Aggregate the profile into a TSV: one row per metric (event kind, with
/// per-engine rows for launches), with event count, summed duration and
/// summed payload units. Rows are sorted by metric name.
pub fn metrics_tsv(profile: &Profile) -> String {
    #[derive(Default)]
    struct Agg {
        count: u64,
        dur_ns: u64,
        units: u64,
    }
    let mut rows: BTreeMap<String, Agg> = BTreeMap::new();
    for event in &profile.events {
        let key = match event.kind {
            EventKind::LaunchAnalyzed { engine, .. } => format!("launch_analyzed/{engine}"),
            EventKind::Span { name } => format!("span/{name}"),
            ref k => k.name().to_string(),
        };
        let agg = rows.entry(key).or_default();
        agg.count += 1;
        agg.dur_ns += event.dur;
        agg.units += event.kind.units();
    }
    let mut out = String::from("metric\tcount\ttotal_dur_ns\ttotal_units\n");
    for (metric, agg) in rows {
        let _ = writeln!(
            out,
            "{metric}\t{}\t{}\t{}",
            agg.count, agg.dur_ns, agg.units
        );
    }
    if profile.dropped > 0 {
        let _ = writeln!(out, "dropped_events\t{}\t0\t0", profile.dropped);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Profile {
        Profile {
            events: vec![
                Event {
                    ts: 1_000,
                    dur: 10_000,
                    track: Track::Host { thread: 0 },
                    kind: EventKind::Span {
                        name: "analyze:Paint",
                    },
                },
                Event {
                    ts: 2_000,
                    dur: 3_000,
                    track: Track::Host { thread: 0 },
                    kind: EventKind::Span { name: "flush" },
                },
                Event {
                    ts: 2_500,
                    dur: 0,
                    track: Track::Host { thread: 0 },
                    kind: EventKind::EqSetCreated { count: 2 },
                },
                Event {
                    ts: 500,
                    dur: 0,
                    track: Track::SimProgram { node: 1 },
                    kind: EventKind::MsgSend {
                        from: 1,
                        to: 0,
                        bytes: 64,
                    },
                },
                Event {
                    ts: 900,
                    dur: 150,
                    track: Track::SimService { node: 0 },
                    kind: EventKind::MsgServe {
                        from: 1,
                        to: 0,
                        queued_ns: 40,
                    },
                },
            ],
            dropped: 0,
            threads: vec![(0, "main".to_string())],
        }
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace(&fixture());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        // Host span with microsecond conversion (1000 ns = 1.000 us).
        assert!(json.contains(
            "{\"name\":\"analyze:Paint\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1.000,\"dur\":10.000,\"args\":{}}"
        ));
        // Sim node processes are named and events land on them.
        assert!(json.contains("\"name\":\"process_name\",\"args\":{\"name\":\"sim node 0\"}")
            || json.contains("{\"ph\":\"M\",\"pid\":1000,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"sim node 0\"}}"));
        assert!(json.contains("\"pid\":1001"));
        assert!(json.contains("\"queued_ns\":40"));
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        assert_eq!(chrome_trace(&fixture()), chrome_trace(&fixture()));
    }

    #[test]
    fn folded_stacks_nest_and_report_self_time() {
        let folded = folded_stacks(&fixture());
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort();
        assert_eq!(
            lines,
            vec![
                // outer span: 10_000 minus the nested 3_000
                "main;analyze:Paint 7000",
                "main;analyze:Paint;flush 3000",
            ]
        );
    }

    #[test]
    fn metrics_aggregate_by_kind() {
        let tsv = metrics_tsv(&fixture());
        assert!(tsv.starts_with("metric\tcount\ttotal_dur_ns\ttotal_units\n"));
        assert!(tsv.contains("eqset_created\t1\t0\t2\n"));
        assert!(tsv.contains("msg_send\t1\t0\t64\n"));
        assert!(tsv.contains("msg_serve\t1\t150\t40\n"));
        assert!(tsv.contains("span/analyze:Paint\t1\t10000\t0\n"));
    }
}
