//! Structured tracing & metrics for the visibility engines and simulator.
//!
//! The recorder is built for the measurement loops in `viz-bench`: the
//! instrumented code (engines, `viz_sim::Machine`, the executor) calls the
//! free functions here unconditionally, and they cost one relaxed atomic
//! load while profiling is disabled — or nothing at all when the crate is
//! built without the `enabled` feature. When enabled, each thread records
//! into its own fixed-capacity ring buffer (oldest events are overwritten
//! and counted, never reallocated), so recording never blocks another
//! thread and never grows without bound inside a benchmark loop.
//!
//! Events live on one of four kinds of **track**:
//!
//! * [`Track::Host`] — real wall-clock spans/instants on an OS thread
//!   (engine `analyze` calls, executor phases). Timestamps come from a
//!   process-wide monotonic epoch.
//! * [`Track::SimProgram`], [`Track::SimService`], [`Track::SimGpu`] — the
//!   three per-node timelines of the simulated machine. Timestamps are
//!   *simulated* nanoseconds supplied by the caller.
//!
//! [`take()`] drains every thread's buffer into a [`Profile`], which the
//! [`export`] module renders as a Chrome trace-event JSON (host process +
//! one process per simulated node), a folded-stack flamegraph text, and a
//! metrics TSV.

pub mod export;

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Where an event is rendered: a real host thread or one of a simulated
/// node's three timelines.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// A host OS thread (id assigned at first record; see [`Profile::threads`]).
    Host { thread: u32 },
    /// A simulated node's program (analysis) clock.
    SimProgram { node: u32 },
    /// A simulated node's message-service clock.
    SimService { node: u32 },
    /// A simulated node's GPU timeline.
    SimGpu { node: u32 },
}

/// The typed payload of one event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A named host-side phase (engine analyze, executor stage, ...).
    Span { name: &'static str },
    /// One task launch fully analyzed by `engine`.
    LaunchAnalyzed { engine: &'static str, task: u64 },
    /// A visibility traversal scanned `entries` history entries.
    HistoryScan { entries: u64 },
    /// `count` equivalence sets created.
    EqSetCreated { count: u64 },
    /// `count` equivalence sets refined (split).
    EqSetRefined { count: u64 },
    /// `count` equivalence sets coalesced / retired (dominating writes).
    EqSetCoalesced { count: u64 },
    /// A composite view built capturing `entries` entries.
    CompositeView { entries: u64 },
    /// A refinement-tree (BVH) traversal touching `nodes` nodes.
    BvhTraversal { nodes: u64 },
    /// A K-d tree traversal touching `nodes` nodes.
    KdTraversal { nodes: u64 },
    /// A message injected by `from` toward `to` (sender-side overhead).
    MsgSend { from: u32, to: u32, bytes: u64 },
    /// A message from `from` served on `to`'s service clock after waiting
    /// `queued_ns` behind earlier messages (the §8.1 bottleneck signal).
    MsgServe { from: u32, to: u32, queued_ns: u64 },
    /// A task occupying a node's GPU.
    GpuTask { task: u64 },
    /// The auto-tracer promoted a repeating launch pattern of `len`
    /// launches into trace `trace`.
    TraceDetect { trace: u32, len: u64 },
    /// Trace `trace` replayed an instance of `launches` launches without
    /// re-analysis.
    TraceReplay { trace: u32, launches: u64 },
    /// The pipeline driver drained `depth` queued launches in one wakeup
    /// (the submission queue depth it observed).
    PipelineDepth { depth: u64 },
    /// A submission blocked `waited_ns` on a full pipeline queue
    /// (backpressure: the application ran a full queue ahead of analysis).
    PipelineStall { waited_ns: u64 },
    /// The combining dispatcher committed `specs` launches drained from
    /// `rings` submission rings under one core lock acquisition.
    SubmitCombine { rings: u64, specs: u64 },
    /// Memoized set-algebra activity on one shard since the last report:
    /// `hits` lookups answered from the cache, `misses` recomputed.
    AlgebraCache { hits: u64, misses: u64 },
    /// Incremental BVH maintenance on one shard since the last report:
    /// `refits` ancestor-refit passes vs `rebuilds` full rebuilds.
    BvhMaintain { refits: u64, rebuilds: u64 },
    /// A shard's `DynamicBvh` was flattened into a `FlatBvh` snapshot of
    /// `nodes` SoA nodes (batched visibility backend).
    FlatSnapshot { nodes: u64 },
    /// One batched candidate-resolution sweep answered `queries` queries
    /// producing `hits` candidate ids (batch-size histogram source).
    BatchQuery { queries: u64, hits: u64 },
    /// A launch history snapshot of `launches` launches was exported for
    /// the consistency oracle.
    HistoryRecord { launches: u64 },
    /// The oracle's saturation checker judged one history: `pairs`
    /// interfering launch pairs verified against `edges` engine edges.
    OracleCheck { pairs: u64, edges: u64 },
    /// One history-GC sweep: the watermark reached `watermark`, `retired`
    /// ledger entries and `freed_words` precedence-tag words were
    /// reclaimed, engines dropped `dropped` dead state entries, and
    /// coarsening performed `coarsened` sibling merges.
    GcSweep {
        watermark: u64,
        retired: u64,
        freed_words: u64,
        dropped: u64,
        coarsened: u64,
    },
    /// One launch-analysis scan: the locality index produced `candidates`
    /// candidate sets and the refine loop swept `swept` of them (the
    /// bounded-scan signal — tracks requirement overlap, not live sets).
    ScanSweep { candidates: u64, swept: u64 },
}

impl EventKind {
    /// Short stable name, used for Chrome event names and metric keys.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Span { name } => name,
            EventKind::LaunchAnalyzed { .. } => "launch_analyzed",
            EventKind::HistoryScan { .. } => "history_scan",
            EventKind::EqSetCreated { .. } => "eqset_created",
            EventKind::EqSetRefined { .. } => "eqset_refined",
            EventKind::EqSetCoalesced { .. } => "eqset_coalesced",
            EventKind::CompositeView { .. } => "composite_view",
            EventKind::BvhTraversal { .. } => "bvh_traversal",
            EventKind::KdTraversal { .. } => "kd_traversal",
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::MsgServe { .. } => "msg_serve",
            EventKind::GpuTask { .. } => "gpu_task",
            EventKind::TraceDetect { .. } => "trace_detect",
            EventKind::TraceReplay { .. } => "trace_replay",
            EventKind::PipelineDepth { .. } => "pipeline_depth",
            EventKind::PipelineStall { .. } => "pipeline_stall",
            EventKind::SubmitCombine { .. } => "submit_combine",
            EventKind::AlgebraCache { .. } => "algebra_cache",
            EventKind::BvhMaintain { .. } => "bvh_maintain",
            EventKind::FlatSnapshot { .. } => "flat_snapshot",
            EventKind::BatchQuery { .. } => "batch_query",
            EventKind::HistoryRecord { .. } => "history_record",
            EventKind::OracleCheck { .. } => "oracle_check",
            EventKind::GcSweep { .. } => "gc_sweep",
            EventKind::ScanSweep { .. } => "scan_sweep",
        }
    }

    /// The "how much" payload (entries scanned, nodes touched, bytes sent,
    /// sets changed), summed per metric by the TSV exporter.
    pub fn units(&self) -> u64 {
        match *self {
            EventKind::Span { .. } => 0,
            EventKind::LaunchAnalyzed { .. } => 1,
            EventKind::HistoryScan { entries } => entries,
            EventKind::EqSetCreated { count } => count,
            EventKind::EqSetRefined { count } => count,
            EventKind::EqSetCoalesced { count } => count,
            EventKind::CompositeView { entries } => entries,
            EventKind::BvhTraversal { nodes } => nodes,
            EventKind::KdTraversal { nodes } => nodes,
            EventKind::MsgSend { bytes, .. } => bytes,
            EventKind::MsgServe { queued_ns, .. } => queued_ns,
            EventKind::GpuTask { .. } => 1,
            EventKind::TraceDetect { len, .. } => len,
            EventKind::TraceReplay { launches, .. } => launches,
            EventKind::PipelineDepth { depth } => depth,
            EventKind::PipelineStall { waited_ns } => waited_ns,
            // A combine report counts the specs it committed.
            EventKind::SubmitCombine { specs, .. } => specs,
            // A cache report counts lookups; maintenance counts operations.
            EventKind::AlgebraCache { hits, misses } => hits + misses,
            EventKind::BvhMaintain { refits, rebuilds } => refits + rebuilds,
            EventKind::FlatSnapshot { nodes } => nodes,
            // A batch report counts the queries it resolved in one sweep.
            EventKind::BatchQuery { queries, .. } => queries,
            EventKind::HistoryRecord { launches } => launches,
            // A check report counts the precedence pairs it proved.
            EventKind::OracleCheck { pairs, .. } => pairs,
            // A sweep report counts the state entries it reclaimed.
            EventKind::GcSweep {
                retired, dropped, ..
            } => retired + dropped,
            // A scan report counts the sets it actually swept.
            EventKind::ScanSweep { swept, .. } => swept,
        }
    }
}

/// One recorded event. `ts`/`dur` are nanoseconds — wall-clock since the
/// process profiling epoch for host tracks, simulated time for sim tracks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    pub ts: u64,
    pub dur: u64,
    pub track: Track,
    pub kind: EventKind,
}

/// A drained snapshot of everything recorded so far.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// All events, sorted by (`track`, `ts`).
    pub events: Vec<Event>,
    /// Events overwritten because a thread's ring buffer filled.
    pub dropped: u64,
    /// Host thread id → OS thread name, for trace labeling.
    pub threads: Vec<(u32, String)>,
}

impl Profile {
    /// Events on a given track, in time order.
    pub fn on_track(&self, track: Track) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.track == track)
    }
}

// ---------------------------------------------------------------------------
// Recorder internals
// ---------------------------------------------------------------------------

const DEFAULT_RING_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_RING_CAPACITY);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

struct RingBuf {
    thread: u32,
    name: String,
    cap: usize,
    buf: Vec<Event>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl RingBuf {
    fn push(&mut self, event: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> (Vec<Event>, u64) {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        let dropped = std::mem::take(&mut self.dropped);
        (out, dropped)
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Mutex<RingBuf>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<RingBuf>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: OnceLock<Arc<Mutex<RingBuf>>> = const { OnceLock::new() };
}

fn with_local(f: impl FnOnce(&mut RingBuf)) {
    LOCAL.with(|cell| {
        let arc = cell.get_or_init(|| {
            let thread = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{thread}"));
            let buf = Arc::new(Mutex::new(RingBuf {
                thread,
                name,
                cap: RING_CAPACITY.load(Ordering::Relaxed).max(1),
                buf: Vec::new(),
                head: 0,
                dropped: 0,
            }));
            registry().lock().unwrap().push(Arc::clone(&buf));
            buf
        });
        f(&mut arc.lock().unwrap());
    });
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process profiling epoch (first use wins).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Public recording API
// ---------------------------------------------------------------------------

/// Whether events are currently being recorded. This is the hot-path guard:
/// a single relaxed load, constant `false` without the `enabled` feature.
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && ENABLED.load(Ordering::Relaxed)
}

/// Start recording. Also pins the host-time epoch on first call. No-op
/// without the `enabled` feature.
pub fn enable() {
    if cfg!(feature = "enabled") {
        epoch();
        ENABLED.store(true, Ordering::Relaxed);
    }
}

/// Stop recording (already-buffered events are kept until [`take`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Per-thread ring-buffer capacity for buffers created *after* this call.
pub fn set_ring_capacity(events: usize) {
    RING_CAPACITY.store(events.max(1), Ordering::Relaxed);
}

/// Record an instantaneous host-time event on the calling thread.
#[inline]
pub fn instant(kind: EventKind) {
    if !enabled() {
        return;
    }
    let ts = now_ns();
    with_local(|ring| {
        let track = Track::Host {
            thread: ring.thread,
        };
        ring.push(Event {
            ts,
            dur: 0,
            track,
            kind,
        });
    });
}

/// Record an event with explicit timing on an explicit track (used by the
/// simulator, whose timestamps are simulated nanoseconds).
#[inline]
pub fn sim_event(ts: u64, dur: u64, track: Track, kind: EventKind) {
    if !enabled() {
        return;
    }
    with_local(|ring| {
        ring.push(Event {
            ts,
            dur,
            track,
            kind,
        })
    });
}

/// Open a host-time span; it is recorded when the guard drops. When
/// profiling is disabled at open time this is free and records nothing.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: if enabled() { Some(now_ns()) } else { None },
    }
}

/// RAII guard for a host-time span (see [`span`]).
pub struct SpanGuard {
    name: &'static str,
    start: Option<u64>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            if !enabled() {
                return;
            }
            let dur = now_ns().saturating_sub(start);
            with_local(|ring| {
                let track = Track::Host {
                    thread: ring.thread,
                };
                ring.push(Event {
                    ts: start,
                    dur,
                    track,
                    kind: EventKind::Span { name: self.name },
                });
            });
        }
    }
}

/// Drain every thread's buffer into a [`Profile`]. Buffers stay registered
/// (threads keep recording into them afterwards); call [`disable`] first
/// for a quiescent snapshot.
pub fn take() -> Profile {
    let mut profile = Profile::default();
    let registry = registry().lock().unwrap();
    for buf in registry.iter() {
        let mut ring = buf.lock().unwrap();
        let (events, dropped) = ring.drain();
        profile.dropped += dropped;
        if !events.is_empty() || ring.dropped > 0 {
            profile.threads.push((ring.thread, ring.name.clone()));
        }
        profile.events.extend(events);
    }
    drop(registry);
    profile.threads.sort();
    profile.threads.dedup();
    // Stable: events from one thread are already in record order, and ties
    // across tracks keep a deterministic order for the exporters.
    profile.events.sort_by_key(|e| (e.track, e.ts));
    profile
}

/// Discard everything recorded so far.
pub fn clear() {
    let _ = take();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that toggle it must not
    /// interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        clear();
        disable();
        instant(EventKind::EqSetCreated { count: 1 });
        let _s = span("dead");
        drop(_s);
        sim_event(
            0,
            5,
            Track::SimProgram { node: 0 },
            EventKind::MsgSend {
                from: 0,
                to: 1,
                bytes: 8,
            },
        );
        let p = take();
        assert!(p.events.is_empty(), "disabled recorder must stay empty");
        assert_eq!(p.dropped, 0);
    }

    #[test]
    fn spans_and_instants_round_trip() {
        let _g = lock();
        clear();
        enable();
        {
            let _s = span("outer");
            instant(EventKind::EqSetRefined { count: 2 });
        }
        disable();
        let p = take();
        assert_eq!(p.events.len(), 2);
        let span_ev = p
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Span { name: "outer" }))
            .expect("span recorded");
        let inst = p
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::EqSetRefined { count: 2 }))
            .expect("instant recorded");
        assert!(span_ev.ts <= inst.ts, "span opens before its contents");
        assert!(
            span_ev.ts + span_ev.dur >= inst.ts,
            "span covers its contents"
        );
        assert!(matches!(inst.track, Track::Host { .. }));
    }

    #[test]
    fn ring_overflow_keeps_newest_and_counts_drops() {
        let _g = lock();
        clear();
        enable();
        // A fresh thread so the small capacity applies to a new buffer.
        set_ring_capacity(4);
        std::thread::spawn(|| {
            for i in 0..10u64 {
                instant(EventKind::HistoryScan { entries: i });
            }
        })
        .join()
        .unwrap();
        set_ring_capacity(DEFAULT_RING_CAPACITY);
        disable();
        let p = take();
        let scans: Vec<u64> = p
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::HistoryScan { entries } => Some(entries),
                _ => None,
            })
            .collect();
        assert_eq!(
            scans,
            vec![6, 7, 8, 9],
            "oldest events overwritten in order"
        );
        assert_eq!(p.dropped, 6);
    }

    #[test]
    fn sim_events_carry_their_tracks() {
        let _g = lock();
        clear();
        enable();
        sim_event(
            100,
            40,
            Track::SimService { node: 3 },
            EventKind::MsgServe {
                from: 1,
                to: 3,
                queued_ns: 25,
            },
        );
        sim_event(
            10,
            0,
            Track::SimProgram { node: 1 },
            EventKind::MsgSend {
                from: 1,
                to: 3,
                bytes: 64,
            },
        );
        disable();
        let p = take();
        let serve: Vec<_> = p.on_track(Track::SimService { node: 3 }).collect();
        assert_eq!(serve.len(), 1);
        assert_eq!(serve[0].dur, 40);
        assert_eq!(p.on_track(Track::SimProgram { node: 1 }).count(), 1);
    }

    #[test]
    fn take_drains() {
        let _g = lock();
        clear();
        enable();
        instant(EventKind::EqSetCreated { count: 1 });
        disable();
        assert_eq!(take().events.len(), 1);
        assert!(
            take().events.is_empty(),
            "second take sees a drained recorder"
        );
    }
}
