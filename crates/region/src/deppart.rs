//! Dependent partitioning (Treichler et al., OOPSLA 2016 — the paper's
//! reference \[25\]).
//!
//! The partitions the benchmarks rely on are rarely written down by hand:
//! the ghost partition of Fig 2(b) is *computed* from the graph's edges.
//! Legion provides a small algebra of partitioning operators for this;
//! this module implements the core of it over [`RegionForest`]:
//!
//! * [`partition_by_field`] — group points by a color function (Legion's
//!   `partition_by_field`, with the field contents supplied as a closure);
//! * [`image`] — push a partition of one region through a relation to
//!   another region (e.g. wires → the nodes they touch);
//! * [`preimage`] — pull a partition back through a relation (e.g. nodes →
//!   the wires touching them);
//! * [`difference`], [`intersection`], [`union_pairwise`] — pairwise
//!   set-algebra on same-color subregions of two partitions.
//!
//! The circuit ghost partition is then literally
//! `difference(image(W, endpoints), P)` — see the `circuit_ghosts` test,
//! which reproduces the Fig 2 construction.

use crate::forest::{PartitionId, RegionForest, RegionId};
use viz_geometry::{IndexSpace, Point};

/// Partition `region` by a color function: subregion `i` receives the
/// points colored `i`. Colors outside `0..colors` are dropped. The result
/// is disjoint by construction (each point has one color); completeness is
/// computed from coverage.
pub fn partition_by_field(
    forest: &mut RegionForest,
    region: RegionId,
    name: impl Into<String>,
    colors: usize,
    color_of: impl Fn(Point) -> Option<usize>,
) -> PartitionId {
    let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); colors];
    let mut covered = 0u64;
    let domain = forest.domain(region).clone();
    for p in domain.points() {
        if let Some(c) = color_of(p) {
            if c < colors {
                buckets[c].push(p);
                covered += 1;
            }
        }
    }
    let subs: Vec<IndexSpace> = buckets.into_iter().map(IndexSpace::from_points).collect();
    let complete = covered == domain.volume();
    forest.create_partition_with_flags(region, name, subs, true, complete)
}

/// The image of a partition through a relation: subregion `i` of the
/// result names every point of `target` reachable from a point of
/// `source`'s subregion `i`. Images are aliased in general (two source
/// pieces may reach the same target point) — exactly how ghost partitions
/// arise.
pub fn image(
    forest: &mut RegionForest,
    source: PartitionId,
    target: RegionId,
    name: impl Into<String>,
    relation: impl Fn(Point) -> Vec<Point>,
) -> PartitionId {
    let target_domain = forest.domain(target).clone();
    let children: Vec<RegionId> = forest.children(source).to_vec();
    let mut subs = Vec::with_capacity(children.len());
    for child in children {
        let mut pts = Vec::new();
        for p in forest.domain(child).clone().points() {
            for q in relation(p) {
                if target_domain.contains_point(q) {
                    pts.push(q);
                }
            }
        }
        subs.push(IndexSpace::from_points(pts));
    }
    create_computed(forest, target, name, subs)
}

/// The preimage of a partition through a relation: subregion `i` of the
/// result names every point of `source_region` whose relation image meets
/// subregion `i` of `target_partition`.
pub fn preimage(
    forest: &mut RegionForest,
    source_region: RegionId,
    target_partition: PartitionId,
    name: impl Into<String>,
    relation: impl Fn(Point) -> Vec<Point>,
) -> PartitionId {
    let children: Vec<RegionId> = forest.children(target_partition).to_vec();
    let targets: Vec<IndexSpace> = children.iter().map(|c| forest.domain(*c).clone()).collect();
    let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); targets.len()];
    for p in forest.domain(source_region).clone().points() {
        let qs = relation(p);
        for (i, t) in targets.iter().enumerate() {
            if qs.iter().any(|q| t.contains_point(*q)) {
                buckets[i].push(p);
            }
        }
    }
    let subs = buckets.into_iter().map(IndexSpace::from_points).collect();
    create_computed(forest, source_region, name, subs)
}

/// Pairwise difference: subregion `i` = `a[i] \ b[i]`. Both partitions
/// must partition the same region and have the same color count.
pub fn difference(
    forest: &mut RegionForest,
    a: PartitionId,
    b: PartitionId,
    name: impl Into<String>,
) -> PartitionId {
    pairwise(forest, a, b, name, |x, y| x.subtract(y))
}

/// Pairwise intersection: subregion `i` = `a[i] ∩ b[i]`.
pub fn intersection(
    forest: &mut RegionForest,
    a: PartitionId,
    b: PartitionId,
    name: impl Into<String>,
) -> PartitionId {
    pairwise(forest, a, b, name, |x, y| x.intersect(y))
}

/// Pairwise union: subregion `i` = `a[i] ∪ b[i]`.
pub fn union_pairwise(
    forest: &mut RegionForest,
    a: PartitionId,
    b: PartitionId,
    name: impl Into<String>,
) -> PartitionId {
    pairwise(forest, a, b, name, |x, y| x.union(y))
}

fn pairwise(
    forest: &mut RegionForest,
    a: PartitionId,
    b: PartitionId,
    name: impl Into<String>,
    op: impl Fn(&IndexSpace, &IndexSpace) -> IndexSpace,
) -> PartitionId {
    let parent = forest.parent_region(a);
    assert_eq!(
        parent,
        forest.parent_region(b),
        "pairwise partition ops need a common parent region"
    );
    let ca: Vec<RegionId> = forest.children(a).to_vec();
    let cb: Vec<RegionId> = forest.children(b).to_vec();
    assert_eq!(ca.len(), cb.len(), "pairwise ops need equal color counts");
    let subs: Vec<IndexSpace> = ca
        .iter()
        .zip(&cb)
        .map(|(x, y)| op(forest.domain(*x), forest.domain(*y)))
        .collect();
    create_computed(forest, parent, name, subs)
}

/// Create a partition from computed subspaces, deriving the
/// disjoint/complete flags from the geometry (cheap volume-based check for
/// completeness when disjoint).
fn create_computed(
    forest: &mut RegionForest,
    parent: RegionId,
    name: impl Into<String>,
    subs: Vec<IndexSpace>,
) -> PartitionId {
    let mut disjoint = true;
    'outer: for (i, a) in subs.iter().enumerate() {
        for b in &subs[i + 1..] {
            if a.overlaps(b) {
                disjoint = false;
                break 'outer;
            }
        }
    }
    let parent_vol = forest.domain(parent).volume();
    let complete = if disjoint {
        subs.iter().map(IndexSpace::volume).sum::<u64>() == parent_vol
    } else {
        subs.iter()
            .fold(IndexSpace::empty(), |acc, s| acc.union(s))
            .volume()
            == parent_vol
    };
    forest.create_partition_with_flags(parent, name, subs, disjoint, complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_by_field_groups_colors() {
        let mut f = RegionForest::new();
        let r = f.create_root_1d("A", 12);
        let p = partition_by_field(&mut f, r, "bycolor", 3, |pt| Some((pt.x % 3) as usize));
        assert!(f.is_disjoint(p));
        assert!(f.is_complete(p));
        for i in 0..3 {
            let d = f.domain(f.subregion(p, i));
            assert_eq!(d.volume(), 4);
            assert!(d.contains_point(Point::p1(i as i64)));
        }
    }

    #[test]
    fn partition_by_field_partial_coloring_is_incomplete() {
        let mut f = RegionForest::new();
        let r = f.create_root_1d("A", 10);
        let p = partition_by_field(&mut f, r, "some", 1, |pt| (pt.x < 4).then_some(0));
        assert!(f.is_disjoint(p));
        assert!(!f.is_complete(p));
        assert_eq!(f.domain(f.subregion(p, 0)).volume(), 4);
    }

    /// The Fig 2 construction: ghost nodes = image of each piece's wires
    /// through the endpoint relation, minus the piece's own nodes.
    #[test]
    fn circuit_ghosts_via_image_and_difference() {
        let mut f = RegionForest::new();
        // 9 nodes in 3 pieces; 6 wires, two crossing piece boundaries.
        let nodes = f.create_root_1d("nodes", 9);
        let wires = f.create_root_1d("wires", 6);
        let p = f.create_equal_partition_1d(nodes, "P", 3);
        let w = f.create_equal_partition_1d(wires, "W", 3);
        let endpoints = [(0, 1), (1, 3), (3, 4), (4, 8), (6, 7), (8, 0)];
        let rel = move |pt: Point| -> Vec<Point> {
            let (s, d) = endpoints[pt.x as usize];
            vec![Point::p1(s), Point::p1(d)]
        };
        // Nodes each piece's wires touch (aliased in general).
        let touched = image(&mut f, w, nodes, "touched", rel);
        // Ghosts: touched minus owned.
        let g = difference(&mut f, touched, p, "G");
        // Piece 0 wires: (0,1), (1,3) → touch {0,1,3}; owns {0,1,2} → ghost {3}.
        let g0 = f.domain(f.subregion(g, 0));
        assert!(g0.same_points(&IndexSpace::from_points([Point::p1(3)])));
        // Piece 1 wires: (3,4), (4,8) → touch {3,4,8}; owns {3,4,5} → ghost {8}.
        let g1 = f.domain(f.subregion(g, 1));
        assert!(g1.same_points(&IndexSpace::from_points([Point::p1(8)])));
        // Piece 2 wires: (6,7), (8,0) → touch {6,7,8,0}; owns {6,7,8} → ghost {0}.
        let g2 = f.domain(f.subregion(g, 2));
        assert!(g2.same_points(&IndexSpace::from_points([Point::p1(0)])));
        assert!(!f.is_complete(g));
    }

    #[test]
    fn preimage_finds_wires_touching_pieces() {
        let mut f = RegionForest::new();
        let nodes = f.create_root_1d("nodes", 9);
        let wires = f.create_root_1d("wires", 6);
        let p = f.create_equal_partition_1d(nodes, "P", 3);
        let endpoints = [(0, 1), (1, 3), (3, 4), (4, 8), (6, 7), (8, 0)];
        let rel = move |pt: Point| -> Vec<Point> {
            let (s, d) = endpoints[pt.x as usize];
            vec![Point::p1(s), Point::p1(d)]
        };
        // Wires touching each node piece — aliased (wire 1 touches pieces
        // 0 and 1; wire 5 touches pieces 2 and 0).
        let byp = preimage(&mut f, wires, p, "wires_by_piece", rel);
        assert!(!f.is_disjoint(byp));
        let w0 = f.domain(f.subregion(byp, 0));
        assert!(w0.same_points(&IndexSpace::from_points([0, 1, 5].map(Point::p1))));
        let w1 = f.domain(f.subregion(byp, 1));
        assert!(w1.same_points(&IndexSpace::from_points([1, 2, 3].map(Point::p1))));
    }

    #[test]
    fn intersection_and_union_pairwise() {
        let mut f = RegionForest::new();
        let r = f.create_root_1d("A", 20);
        let a = f.create_partition(
            r,
            "a",
            vec![IndexSpace::span(0, 9), IndexSpace::span(10, 19)],
        );
        let b = f.create_partition(
            r,
            "b",
            vec![IndexSpace::span(5, 14), IndexSpace::span(15, 19)],
        );
        let i = intersection(&mut f, a, b, "i");
        assert!(f
            .domain(f.subregion(i, 0))
            .same_points(&IndexSpace::span(5, 9)));
        assert!(f
            .domain(f.subregion(i, 1))
            .same_points(&IndexSpace::span(15, 19)));
        let u = union_pairwise(&mut f, a, b, "u");
        assert!(f
            .domain(f.subregion(u, 0))
            .same_points(&IndexSpace::span(0, 14)));
        assert!(f.is_disjoint(i));
        assert!(!f.is_complete(i));
    }

    #[test]
    fn image_respects_target_bounds() {
        let mut f = RegionForest::new();
        let a = f.create_root_1d("A", 4);
        let b = f.create_root_1d("B", 4);
        let p = f.create_equal_partition_1d(a, "P", 2);
        // Relation maps out of bounds for some points; those are dropped.
        let img = image(&mut f, p, b, "img", |pt| vec![Point::p1(pt.x * 3)]);
        let i0 = f.domain(f.subregion(img, 0));
        assert!(i0.same_points(&IndexSpace::from_points([0, 3].map(Point::p1))));
        let i1 = f.domain(f.subregion(img, 1));
        assert!(i1.is_empty(), "6 and 9 fall outside B");
    }
}
