//! Region trees: regions, partitions, fields (paper §2, Fig 2(c)).

use std::fmt;
use viz_geometry::{Bvh, IndexSpace, InternConfig, Rect, SpaceAlgebra};

/// A logical region: a named subset of a collection's index space.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// A partition: an array of subregions of one parent region.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionId(pub u32);

/// A field of a region tree (e.g. `up` / `down` in Fig 1). Coherence is
/// analyzed independently per field.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldId(pub u32);

impl fmt::Debug for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
impl fmt::Debug for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}
impl fmt::Debug for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[derive(Clone, Debug)]
struct RegionNode {
    name: String,
    domain: IndexSpace,
    /// The partition this region is a child of (`None` for roots).
    parent: Option<PartitionId>,
    /// Partitions dividing this region.
    partitions: Vec<PartitionId>,
    root: RegionId,
    depth: u32,
}

#[derive(Clone, Debug)]
struct PartitionNode {
    name: String,
    parent: RegionId,
    children: Vec<RegionId>,
    disjoint: bool,
    complete: bool,
    /// BVH over children bounding boxes, for `overlapping_children`.
    child_bvh: Bvh,
}

/// A forest of region trees (Fig 2(c)): the shared, immutable-by-analysis
/// naming structure for all data in a program.
///
/// The forest records *names and domains only* — values live in physical
/// instances owned by the runtime. Partitions are verified (or declared) to
/// be disjoint and/or complete at creation time; the analyses consult these
/// flags constantly (e.g. the painter's algorithm skips composite views for
/// disjoint siblings, ray casting anchors equivalence sets under
/// disjoint-and-complete partitions).
#[derive(Clone, Debug, Default)]
pub struct RegionForest {
    regions: Vec<RegionNode>,
    partitions: Vec<PartitionNode>,
    roots: Vec<RegionId>,
    /// Field names per root region tree, indexed by `FieldId`.
    fields: Vec<(RegionId, String)>,
}

impl RegionForest {
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a new root region (a whole collection).
    pub fn create_root(&mut self, name: impl Into<String>, domain: IndexSpace) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionNode {
            name: name.into(),
            domain,
            parent: None,
            partitions: Vec::new(),
            root: id,
            depth: 0,
        });
        self.roots.push(id);
        id
    }

    /// Add a field to the region tree rooted at `root`.
    pub fn add_field(&mut self, root: RegionId, name: impl Into<String>) -> FieldId {
        debug_assert_eq!(self.regions[root.0 as usize].root, root, "not a root");
        let id = FieldId(self.fields.len() as u32);
        self.fields.push((root, name.into()));
        id
    }

    /// All fields of the tree containing `region`.
    pub fn fields_of(&self, region: RegionId) -> Vec<FieldId> {
        let root = self.root_of(region);
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| *r == root)
            .map(|(i, _)| FieldId(i as u32))
            .collect()
    }

    pub fn field_name(&self, f: FieldId) -> &str {
        &self.fields[f.0 as usize].1
    }

    /// Partition `parent` into the given subdomains. Disjointness and
    /// completeness are computed from the geometry: candidate overlap pairs
    /// come from a bounding-box BVH (instead of testing all n² pairs) and
    /// the exact checks run through an interned [`SpaceAlgebra`], so
    /// repeated subdomain shapes are checked once.
    ///
    /// # Panics
    /// If any subdomain is not contained in the parent's domain.
    pub fn create_partition(
        &mut self,
        parent: RegionId,
        name: impl Into<String>,
        subdomains: Vec<IndexSpace>,
    ) -> PartitionId {
        // A throwaway validation algebra: the defaults behave identically
        // to any interning configuration (structural fidelity invariant),
        // so there is no reason to consult the environment here.
        let mut alg = SpaceAlgebra::new(InternConfig::default());
        let parent_id = alg.intern(self.domain(parent));
        let ids: Vec<_> = subdomains.iter().map(|s| alg.intern(s)).collect();
        for (i, s) in ids.iter().enumerate() {
            assert!(
                alg.contains(parent_id, *s),
                "subregion {i} of partition escapes its parent"
            );
        }
        // Disjointness: no pair of children overlaps. The BVH narrows the
        // pairs to those whose bounding boxes meet.
        let bvh = Bvh::build(
            subdomains
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, s.bbox()))
                .collect(),
        );
        let mut disjoint = true;
        let mut candidates = Vec::new();
        'outer: for (i, s) in subdomains.iter().enumerate() {
            candidates.clear();
            for r in s.rects() {
                bvh.query(r, &mut candidates);
            }
            candidates.sort_unstable();
            candidates.dedup();
            for &c in &candidates {
                let j = c as usize;
                if j > i && alg.overlaps(ids[i], ids[j]) {
                    disjoint = false;
                    break 'outer;
                }
            }
        }
        // Completeness: children cover the parent. When disjoint, volumes
        // suffice; otherwise compute the union.
        let parent_volume = alg.space(parent_id).volume();
        let complete = if disjoint {
            subdomains.iter().map(IndexSpace::volume).sum::<u64>() == parent_volume
        } else {
            let union = ids
                .iter()
                .fold(viz_geometry::SpaceId::EMPTY, |acc, s| alg.union(acc, *s));
            alg.space(union).volume() == parent_volume
        };
        self.create_partition_with_flags(parent, name, subdomains, disjoint, complete)
    }

    /// Partition with caller-asserted flags (skips the O(n²) verification;
    /// used by generators that construct partitions known to be
    /// disjoint/complete, e.g. regular tilings at large node counts).
    pub fn create_partition_with_flags(
        &mut self,
        parent: RegionId,
        name: impl Into<String>,
        subdomains: Vec<IndexSpace>,
        disjoint: bool,
        complete: bool,
    ) -> PartitionId {
        let pid = PartitionId(self.partitions.len() as u32);
        let (root, depth) = {
            let p = &self.regions[parent.0 as usize];
            (p.root, p.depth)
        };
        let name = name.into();
        let mut children = Vec::with_capacity(subdomains.len());
        let mut bvh_items = Vec::with_capacity(subdomains.len());
        for (i, domain) in subdomains.into_iter().enumerate() {
            let rid = RegionId(self.regions.len() as u32);
            bvh_items.push((i as u32, domain.bbox()));
            self.regions.push(RegionNode {
                name: format!("{name}[{i}]"),
                domain,
                parent: Some(pid),
                partitions: Vec::new(),
                root,
                depth: depth + 1,
            });
            children.push(rid);
        }
        self.partitions.push(PartitionNode {
            name,
            parent,
            children,
            disjoint,
            complete,
            child_bvh: Bvh::build(bvh_items),
        });
        self.regions[parent.0 as usize].partitions.push(pid);
        pid
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    pub fn domain(&self, r: RegionId) -> &IndexSpace {
        &self.regions[r.0 as usize].domain
    }

    pub fn region_name(&self, r: RegionId) -> &str {
        &self.regions[r.0 as usize].name
    }

    pub fn partition_name(&self, p: PartitionId) -> &str {
        &self.partitions[p.0 as usize].name
    }

    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn roots(&self) -> &[RegionId] {
        &self.roots
    }

    /// The partition this region belongs to, `None` for roots.
    pub fn parent_partition(&self, r: RegionId) -> Option<PartitionId> {
        self.regions[r.0 as usize].parent
    }

    /// The region a partition divides.
    pub fn parent_region(&self, p: PartitionId) -> RegionId {
        self.partitions[p.0 as usize].parent
    }

    /// The subregions of a partition, in color order.
    pub fn children(&self, p: PartitionId) -> &[RegionId] {
        &self.partitions[p.0 as usize].children
    }

    /// The `i`-th subregion of a partition (`P[i]` in the paper's notation).
    pub fn subregion(&self, p: PartitionId, i: usize) -> RegionId {
        self.partitions[p.0 as usize].children[i]
    }

    /// The partitions dividing a region.
    pub fn partitions_of(&self, r: RegionId) -> &[PartitionId] {
        &self.regions[r.0 as usize].partitions
    }

    pub fn is_disjoint(&self, p: PartitionId) -> bool {
        self.partitions[p.0 as usize].disjoint
    }

    pub fn is_complete(&self, p: PartitionId) -> bool {
        self.partitions[p.0 as usize].complete
    }

    /// Root region of the tree containing `r`.
    pub fn root_of(&self, r: RegionId) -> RegionId {
        self.regions[r.0 as usize].root
    }

    pub fn depth(&self, r: RegionId) -> u32 {
        self.regions[r.0 as usize].depth
    }

    /// Regions from the root down to `r`, inclusive on both ends.
    pub fn path_from_root(&self, r: RegionId) -> Vec<RegionId> {
        let mut path = vec![r];
        let mut cur = r;
        while let Some(p) = self.regions[cur.0 as usize].parent {
            cur = self.partitions[p.0 as usize].parent;
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Is `anc` an ancestor of `r` (or `r` itself)?
    pub fn is_ancestor(&self, anc: RegionId, r: RegionId) -> bool {
        let mut cur = r;
        loop {
            if cur == anc {
                return true;
            }
            match self.regions[cur.0 as usize].parent {
                Some(p) => cur = self.partitions[p.0 as usize].parent,
                None => return false,
            }
        }
    }

    /// Children of `p` whose domain overlaps `space`, via the partition's
    /// BVH plus an exact check. This is the region-tree "acceleration data
    /// structure" role from §5.1.
    pub fn overlapping_children(&self, p: PartitionId, space: &IndexSpace) -> Vec<RegionId> {
        let node = &self.partitions[p.0 as usize];
        let mut out = Vec::new();
        let mut candidates = Vec::new();
        for r in space.rects() {
            node.child_bvh.query(r, &mut candidates);
        }
        candidates.sort_unstable();
        candidates.dedup();
        for c in candidates {
            let child = node.children[c as usize];
            if self.domain(child).overlaps(space) {
                out.push(child);
            }
        }
        out
    }

    /// Partitions of `r` that are both disjoint and complete — the subtrees
    /// ray casting prefers for its BVH (§7.1).
    pub fn disjoint_complete_partitions(&self, r: RegionId) -> Vec<PartitionId> {
        self.partitions_of(r)
            .iter()
            .copied()
            .filter(|p| self.is_disjoint(*p) && self.is_complete(*p))
            .collect()
    }

    /// Convenience: create a 1-D root region `[0, n)`.
    pub fn create_root_1d(&mut self, name: impl Into<String>, n: i64) -> RegionId {
        self.create_root(name, IndexSpace::from_rect(Rect::span(0, n - 1)))
    }

    /// Convenience: block-partition a 1-D region into `pieces` equal chunks.
    pub fn create_equal_partition_1d(
        &mut self,
        parent: RegionId,
        name: impl Into<String>,
        pieces: usize,
    ) -> PartitionId {
        let bbox = self.domain(parent).bbox();
        let n = bbox.hi.x - bbox.lo.x + 1;
        let mut subs = Vec::with_capacity(pieces);
        for i in 0..pieces as i64 {
            let lo = bbox.lo.x + i * n / pieces as i64;
            let hi = bbox.lo.x + (i + 1) * n / pieces as i64 - 1;
            subs.push(IndexSpace::from_rect(Rect::span(lo, hi)));
        }
        self.create_partition_with_flags(parent, name, subs, true, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the paper's running example (Figs 1-2): a node region with a
    /// disjoint primary partition and an aliased, incomplete ghost
    /// partition.
    fn paper_forest() -> (RegionForest, RegionId, PartitionId, PartitionId) {
        let mut f = RegionForest::new();
        let n = f.create_root("N", IndexSpace::span(0, 29));
        let p = f.create_partition(
            n,
            "P",
            vec![
                IndexSpace::span(0, 9),
                IndexSpace::span(10, 19),
                IndexSpace::span(20, 29),
            ],
        );
        // Ghost subregions: nodes adjacent to each piece — aliased (some
        // nodes in two ghost subregions) and incomplete.
        let g = f.create_partition(
            n,
            "G",
            vec![
                IndexSpace::from_points([10, 11, 20].map(viz_geometry::Point::p1)),
                IndexSpace::from_points([8, 9, 20, 21].map(viz_geometry::Point::p1)),
                IndexSpace::from_points([9, 18, 19].map(viz_geometry::Point::p1)),
            ],
        );
        (f, n, p, g)
    }

    #[test]
    fn primary_partition_is_disjoint_complete() {
        let (f, _, p, _) = paper_forest();
        assert!(f.is_disjoint(p));
        assert!(f.is_complete(p));
    }

    #[test]
    fn ghost_partition_is_aliased_incomplete() {
        let (f, _, _, g) = paper_forest();
        assert!(!f.is_disjoint(g), "ghost subregions share node 20 / 9");
        assert!(!f.is_complete(g));
    }

    #[test]
    fn tree_navigation() {
        let (f, n, p, g) = paper_forest();
        assert_eq!(f.parent_region(p), n);
        assert_eq!(f.parent_region(g), n);
        let p1 = f.subregion(p, 1);
        assert_eq!(f.parent_partition(p1), Some(p));
        assert_eq!(f.root_of(p1), n);
        assert_eq!(f.depth(p1), 1);
        assert_eq!(f.path_from_root(p1), vec![n, p1]);
        assert!(f.is_ancestor(n, p1));
        assert!(!f.is_ancestor(p1, n));
        assert!(f.is_ancestor(p1, p1));
        assert_eq!(f.partitions_of(n), &[p, g]);
    }

    #[test]
    fn names_follow_color_indexing() {
        let (f, n, p, _) = paper_forest();
        assert_eq!(f.region_name(n), "N");
        assert_eq!(f.region_name(f.subregion(p, 2)), "P[2]");
        assert_eq!(f.partition_name(p), "P");
    }

    #[test]
    fn fields_per_tree() {
        let (mut f, n, _, _) = paper_forest();
        let up = f.add_field(n, "up");
        let down = f.add_field(n, "down");
        assert_eq!(f.fields_of(n), vec![up, down]);
        let m = f.create_root_1d("M", 10);
        let v = f.add_field(m, "v");
        assert_eq!(f.fields_of(m), vec![v]);
        assert_eq!(f.field_name(down), "down");
        // Fields of a subtree region resolve to the root's fields.
        let p0 = f.subregion(f.partitions_of(n)[0], 0);
        assert_eq!(f.fields_of(p0), vec![up, down]);
    }

    #[test]
    fn overlapping_children_matches_brute_force() {
        let (f, _, p, g) = paper_forest();
        // G[0] = {10, 11, 20} overlaps P[1] (10..19) and P[2] (20..29).
        let g0 = f.subregion(g, 0);
        let hits = f.overlapping_children(p, f.domain(g0));
        assert_eq!(hits, vec![f.subregion(p, 1), f.subregion(p, 2)]);
        // P[0] overlaps G[1] (8, 9) only.
        let p0 = f.subregion(p, 0);
        let hits = f.overlapping_children(g, f.domain(p0));
        assert_eq!(hits, vec![f.subregion(g, 1), f.subregion(g, 2)]);
    }

    #[test]
    fn disjoint_complete_partition_discovery() {
        let (f, n, p, _) = paper_forest();
        assert_eq!(f.disjoint_complete_partitions(n), vec![p]);
    }

    #[test]
    fn equal_partition_1d() {
        let mut f = RegionForest::new();
        let r = f.create_root_1d("R", 100);
        let p = f.create_equal_partition_1d(r, "P", 7);
        assert!(f.is_disjoint(p));
        assert!(f.is_complete(p));
        let total: u64 = f.children(p).iter().map(|c| f.domain(*c).volume()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    #[should_panic(expected = "escapes its parent")]
    fn subregion_escaping_parent_panics() {
        let mut f = RegionForest::new();
        let r = f.create_root_1d("R", 10);
        f.create_partition(r, "bad", vec![IndexSpace::span(5, 15)]);
    }

    #[test]
    fn nested_partitions() {
        let mut f = RegionForest::new();
        let r = f.create_root_1d("R", 100);
        let p = f.create_equal_partition_1d(r, "P", 4);
        let p0 = f.subregion(p, 0);
        let q = f.create_equal_partition_1d(p0, "Q", 5);
        let q2 = f.subregion(q, 2);
        assert_eq!(f.depth(q2), 2);
        assert_eq!(f.path_from_root(q2), vec![r, p0, q2]);
        assert_eq!(f.domain(q2).volume(), 5);
        assert!(f.is_ancestor(r, q2));
    }
}
