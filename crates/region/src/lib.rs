//! # viz-region
//!
//! The logical-region data model of the Legion programming system (paper §2,
//! [5, 23, 25]), the substrate on which the visibility algorithms operate:
//!
//! * [`RegionForest`] — a forest of **region trees**. Each tree has a root
//!   region (a whole collection), and regions are recursively divided by
//!   **partitions** into subregions. Subregions are *subsets, not copies* of
//!   their parent's points.
//! * Partitions carry the two properties the analyses exploit:
//!   **disjointness** (no point in two children — e.g. the primary partition
//!   of Fig 2(a)) and **completeness** (every parent point in some child).
//!   Aliased partitions (the ghost partition of Fig 2(b)) are first-class.
//! * [`Privilege`] — `read`, `read-write`, or `reduce_f`; with the
//!   interference relation of §4 (only `read`/`read` and same-operator
//!   `reduce`/`reduce` are non-interfering).
//! * [`ReductionOp`] / [`RedOpRegistry`] — reduction operators with an
//!   identity, supporting the lazy partial accumulation that makes
//!   reductions "semi-transparent" in the visibility reduction (§3.1).

pub mod deppart;
pub mod forest;
pub mod privilege;
pub mod redop;

pub use forest::{FieldId, PartitionId, RegionForest, RegionId};
pub use privilege::Privilege;
pub use redop::{RedOpRegistry, ReductionOp, ReductionOpId};
