//! Privileges and the interference relation (paper §4).

use crate::redop::ReductionOpId;
use std::fmt;

/// The privilege a task declares on a region argument.
///
/// From §4: "Each privilege is one of `read`, `read-write`, or `reduce_f`,
/// where `f` is the reduction operator."
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// The task only observes values.
    Read,
    /// The task may observe and overwrite values — fully *opaque* in the
    /// visibility reduction (§3.1).
    ReadWrite,
    /// The task contributes partial accumulations with operator `f` —
    /// *semi-transparent* in the visibility reduction.
    Reduce(ReductionOpId),
}

impl Privilege {
    /// Could two tasks holding these privileges on overlapping data have a
    /// dependence? "The only non-interfering combinations of privileges are
    /// read/read and reduce_f/reduce_f, that is, two reductions with the
    /// same operator." (§4)
    #[inline]
    pub fn interferes(self, other: Privilege) -> bool {
        match (self, other) {
            (Privilege::Read, Privilege::Read) => false,
            (Privilege::Reduce(f), Privilege::Reduce(g)) => f != g,
            _ => true,
        }
    }

    /// Does this privilege mutate data at all?
    #[inline]
    pub fn is_mutating(self) -> bool {
        !matches!(self, Privilege::Read)
    }

    /// Is this privilege fully opaque (overwrites, occluding all earlier
    /// operations on the covered points)?
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Privilege::ReadWrite)
    }

    /// Is this a reduction privilege?
    #[inline]
    pub fn is_reduce(self) -> bool {
        matches!(self, Privilege::Reduce(_))
    }

    /// The reduction operator, if any.
    #[inline]
    pub fn redop(self) -> Option<ReductionOpId> {
        match self {
            Privilege::Reduce(f) => Some(f),
            _ => None,
        }
    }

    /// Does the task need current values materialized before running?
    /// Reductions do not: they accumulate into an identity-initialized
    /// buffer that is folded in lazily (§5, `materialize`).
    #[inline]
    pub fn needs_current_values(self) -> bool {
        !self.is_reduce()
    }
}

impl fmt::Debug for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Privilege::Read => write!(f, "read"),
            Privilege::ReadWrite => write!(f, "read-write"),
            Privilege::Reduce(op) => write!(f, "reduce[{}]", op.0),
        }
    }
}

/// A summary of a *set* of privileges, used by the optimized painter's
/// algorithm to skip closing subtrees whose recorded operations cannot
/// interfere with a new task (§5.1).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct PrivilegeSummary {
    pub has_read: bool,
    pub has_write: bool,
    /// At most one distinct reduction op is tracked precisely; two or more
    /// distinct ops degrade to `mixed_reductions` (conservative).
    pub redop: Option<ReductionOpId>,
    pub mixed_reductions: bool,
}

impl PrivilegeSummary {
    /// The summary of the empty set of privileges.
    pub const EMPTY: PrivilegeSummary = PrivilegeSummary {
        has_read: false,
        has_write: false,
        redop: None,
        mixed_reductions: false,
    };

    /// Fold one more privilege into the summary.
    pub fn add(&mut self, p: Privilege) {
        match p {
            Privilege::Read => self.has_read = true,
            Privilege::ReadWrite => self.has_write = true,
            Privilege::Reduce(f) => match self.redop {
                None if !self.mixed_reductions => self.redop = Some(f),
                Some(g) if g == f => {}
                _ => {
                    self.redop = None;
                    self.mixed_reductions = true;
                }
            },
        }
    }

    /// Merge two summaries.
    pub fn merge(&mut self, other: PrivilegeSummary) {
        self.has_read |= other.has_read;
        self.has_write |= other.has_write;
        if other.mixed_reductions {
            self.redop = None;
            self.mixed_reductions = true;
        } else if let Some(f) = other.redop {
            self.add(Privilege::Reduce(f));
        }
    }

    pub fn is_empty(&self) -> bool {
        !self.has_read && !self.has_write && self.redop.is_none() && !self.mixed_reductions
    }

    /// Could *any* privilege in the summarized set interfere with `p`?
    pub fn may_interfere(&self, p: Privilege) -> bool {
        if self.has_write {
            return true;
        }
        match p {
            Privilege::Read => self.redop.is_some() || self.mixed_reductions,
            Privilege::ReadWrite => !self.is_empty(),
            Privilege::Reduce(f) => {
                self.has_read || self.mixed_reductions || self.redop.is_some_and(|g| g != f)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUM: Privilege = Privilege::Reduce(ReductionOpId(0));
    const MIN: Privilege = Privilege::Reduce(ReductionOpId(2));

    #[test]
    fn interference_table() {
        use Privilege::*;
        // The only non-interfering pairs (§4).
        assert!(!Read.interferes(Read));
        assert!(!SUM.interferes(SUM));
        // Everything else interferes.
        assert!(Read.interferes(ReadWrite));
        assert!(ReadWrite.interferes(Read));
        assert!(ReadWrite.interferes(ReadWrite));
        assert!(Read.interferes(SUM));
        assert!(SUM.interferes(Read));
        assert!(ReadWrite.interferes(SUM));
        assert!(SUM.interferes(ReadWrite));
        assert!(SUM.interferes(MIN), "distinct reduction ops interfere");
    }

    #[test]
    fn interference_is_symmetric() {
        let all = [Privilege::Read, Privilege::ReadWrite, SUM, MIN];
        for a in all {
            for b in all {
                assert_eq!(a.interferes(b), b.interferes(a));
            }
        }
    }

    #[test]
    fn privilege_classification() {
        assert!(!Privilege::Read.is_mutating());
        assert!(Privilege::ReadWrite.is_mutating());
        assert!(SUM.is_mutating());
        assert!(!SUM.is_write());
        assert!(SUM.is_reduce());
        assert!(!SUM.needs_current_values());
        assert!(Privilege::Read.needs_current_values());
        assert_eq!(SUM.redop(), Some(ReductionOpId(0)));
        assert_eq!(Privilege::Read.redop(), None);
    }

    #[test]
    fn summary_tracks_single_redop_precisely() {
        let mut s = PrivilegeSummary::EMPTY;
        s.add(SUM);
        assert!(!s.may_interfere(SUM), "same-op reduce never interferes");
        assert!(s.may_interfere(MIN));
        assert!(s.may_interfere(Privilege::Read));
        assert!(s.may_interfere(Privilege::ReadWrite));
    }

    #[test]
    fn summary_degrades_on_mixed_redops() {
        let mut s = PrivilegeSummary::EMPTY;
        s.add(SUM);
        s.add(MIN);
        assert!(s.mixed_reductions);
        // Conservative: now everything may interfere.
        assert!(s.may_interfere(SUM));
        assert!(s.may_interfere(MIN));
    }

    #[test]
    fn summary_of_reads_only() {
        let mut s = PrivilegeSummary::EMPTY;
        s.add(Privilege::Read);
        assert!(!s.may_interfere(Privilege::Read));
        assert!(s.may_interfere(Privilege::ReadWrite));
        assert!(s.may_interfere(SUM));
    }

    #[test]
    fn summary_merge_agrees_with_adds() {
        let mut a = PrivilegeSummary::EMPTY;
        a.add(Privilege::Read);
        let mut b = PrivilegeSummary::EMPTY;
        b.add(SUM);
        let mut merged = a;
        merged.merge(b);
        let mut direct = PrivilegeSummary::EMPTY;
        direct.add(Privilege::Read);
        direct.add(SUM);
        assert_eq!(merged, direct);
    }

    #[test]
    fn empty_summary_never_interferes() {
        let s = PrivilegeSummary::EMPTY;
        assert!(!s.may_interfere(Privilege::Read));
        assert!(!s.may_interfere(Privilege::ReadWrite));
        assert!(!s.may_interfere(SUM));
    }
}
