//! Reduction operators (paper §4).
//!
//! "Reduction operators `f` must have an identity `0_f` to support partial
//! accumulation." Reductions are the *semi-transparent* operations of the
//! visibility reduction: the runtime accumulates them lazily into
//! identity-initialized buffers and folds them into real values only when a
//! reader materializes the region (§5), minimizing data movement \[24\].

use std::fmt;

/// Identifies a registered reduction operator. Two `Reduce` privileges
/// interfere unless their `ReductionOpId`s are equal.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReductionOpId(pub u32);

impl fmt::Debug for ReductionOpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "redop{}", self.0)
    }
}

/// The element type of all region fields in this reproduction.
///
/// The paper's model is value-generic; `f64` covers all three benchmark
/// applications (voltages, charges, hydro state) without making every
/// downstream type generic.
pub type Value = f64;

/// A reduction operator: an identity and a fold function.
///
/// `fold(current, contribution)` applies one contribution to the current
/// value; the identity satisfies `fold(x, identity) == x` (up to floating
/// point) for the built-in operators.
#[derive(Clone)]
pub struct ReductionOp {
    pub name: &'static str,
    pub identity: Value,
    pub fold: fn(Value, Value) -> Value,
}

impl fmt::Debug for ReductionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ReductionOp({})", self.name)
    }
}

/// Registry of reduction operators. The four operators the benchmark
/// applications use are pre-registered; applications may add their own.
#[derive(Clone, Debug)]
pub struct RedOpRegistry {
    ops: Vec<ReductionOp>,
}

impl RedOpRegistry {
    /// `reduce+` — summation, identity 0. Used by Circuit (charge
    /// accumulation, Fig 1) and Pennant (force gathering).
    pub const SUM: ReductionOpId = ReductionOpId(0);
    /// `reduce*` — product, identity 1.
    pub const PROD: ReductionOpId = ReductionOpId(1);
    /// `reduce min` — minimum, identity +inf. Used by Pennant (dt reduction).
    pub const MIN: ReductionOpId = ReductionOpId(2);
    /// `reduce max` — maximum, identity -inf.
    pub const MAX: ReductionOpId = ReductionOpId(3);

    pub fn new() -> Self {
        RedOpRegistry {
            ops: vec![
                ReductionOp {
                    name: "sum",
                    identity: 0.0,
                    fold: |a, b| a + b,
                },
                ReductionOp {
                    name: "prod",
                    identity: 1.0,
                    fold: |a, b| a * b,
                },
                ReductionOp {
                    name: "min",
                    identity: f64::INFINITY,
                    fold: f64::min,
                },
                ReductionOp {
                    name: "max",
                    identity: f64::NEG_INFINITY,
                    fold: f64::max,
                },
            ],
        }
    }

    /// Register a custom operator; returns its id.
    pub fn register(&mut self, op: ReductionOp) -> ReductionOpId {
        let id = ReductionOpId(self.ops.len() as u32);
        self.ops.push(op);
        id
    }

    pub fn get(&self, id: ReductionOpId) -> &ReductionOp {
        &self.ops[id.0 as usize]
    }

    /// Apply one contribution: `fold(current, contribution)`.
    #[inline]
    pub fn fold(&self, id: ReductionOpId, current: Value, contribution: Value) -> Value {
        (self.get(id).fold)(current, contribution)
    }

    /// The operator's identity `0_f`.
    #[inline]
    pub fn identity(&self, id: ReductionOpId) -> Value {
        self.get(id).identity
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl Default for RedOpRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_identities_are_identities() {
        let reg = RedOpRegistry::new();
        for (id, probe) in [
            (RedOpRegistry::SUM, 42.0),
            (RedOpRegistry::PROD, 42.0),
            (RedOpRegistry::MIN, 42.0),
            (RedOpRegistry::MAX, 42.0),
        ] {
            let identity = reg.identity(id);
            assert_eq!(
                reg.fold(id, probe, identity),
                probe,
                "identity law failed for {}",
                reg.get(id).name
            );
            assert_eq!(reg.fold(id, identity, probe), probe);
        }
    }

    #[test]
    fn sum_folds() {
        let reg = RedOpRegistry::new();
        assert_eq!(reg.fold(RedOpRegistry::SUM, 1.0, 2.0), 3.0);
    }

    #[test]
    fn min_max_fold() {
        let reg = RedOpRegistry::new();
        assert_eq!(reg.fold(RedOpRegistry::MIN, 3.0, 2.0), 2.0);
        assert_eq!(reg.fold(RedOpRegistry::MAX, 3.0, 7.0), 7.0);
    }

    #[test]
    fn custom_registration() {
        let mut reg = RedOpRegistry::new();
        let id = reg.register(ReductionOp {
            name: "bitor-ish",
            identity: 0.0,
            fold: |a, b| if a != 0.0 || b != 0.0 { 1.0 } else { 0.0 },
        });
        assert_eq!(reg.get(id).name, "bitor-ish");
        assert_eq!(reg.fold(id, 0.0, 5.0), 1.0);
        assert_ne!(id, RedOpRegistry::SUM);
    }

    #[test]
    fn lazy_accumulation_matches_eager_for_exact_values() {
        // The lazy scheme computes fold(base, acc) where acc accumulates the
        // contributions from the identity; for exactly-representable values
        // this matches eager left-to-right application.
        let reg = RedOpRegistry::new();
        let base = 10.0;
        let contribs = [1.0, 2.0, 3.0];
        let eager = contribs
            .iter()
            .fold(base, |v, c| reg.fold(RedOpRegistry::SUM, v, *c));
        let acc = contribs
            .iter()
            .fold(reg.identity(RedOpRegistry::SUM), |v, c| {
                reg.fold(RedOpRegistry::SUM, v, *c)
            });
        let lazy = reg.fold(RedOpRegistry::SUM, base, acc);
        assert_eq!(eager, lazy);
    }
}
