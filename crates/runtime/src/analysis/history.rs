//! Histories and the backward visibility scan.
//!
//! The core of the visibility reduction (§3): materializing a region means
//! "looking backwards in time" along each of its points. Reads are fully
//! transparent, reductions semi-transparent, writes opaque. One backward
//! scan over history entries (newest first) yields both the dependences and
//! the materialization plan:
//!
//! * a *write* entry is visible on the points not yet occluded; it becomes a
//!   base-copy source and occludes everything older on those points;
//! * a *reduce* entry is visible on un-occluded points and becomes a pending
//!   fold;
//! * a *read* entry never occludes and never supplies values, but a visible
//!   read still produces a dependence for interfering successors
//!   (write-after-read).
//!
//! Occluded entries produce no dependence edges: every point of an occluded
//! entry is covered by a newer write, the new task depends on that write,
//! and the write (having interfered with everything underneath) depends on
//! the occluded entry — ordering is preserved transitively (§3.2).

use crate::plan::{CopyRange, MaterializePlan, ReduceRange, Source};
use crate::task::TaskId;
use viz_geometry::IndexSpace;
use viz_region::Privilege;

/// One recorded operation: task `task`'s requirement `req` accessed
/// `domain` with `privilege`. (The result pairs the paper's `commit`
/// appends to the state, Fig 7 line 20.)
#[derive(Clone, Debug)]
pub struct HistEntry {
    pub task: TaskId,
    pub req: u32,
    pub privilege: Privilege,
    pub domain: IndexSpace,
}

/// A backward visibility scan for a new access with privilege `priv_new`
/// over `target`. Feed entries newest-to-oldest via [`VisScan::visit`];
/// finish with [`VisScan::finish`].
pub struct VisScan {
    priv_new: Privilege,
    /// Portion of the target not yet occluded by a newer write.
    needed: IndexSpace,
    needed_bbox: viz_geometry::Rect,
    want_values: bool,
    deps: Vec<TaskId>,
    copies: Vec<CopyRange>,
    reductions: Vec<ReduceRange>,
    /// Exact geometry operations performed, for cost charging.
    pub geom_ops: usize,
    pub entries_scanned: usize,
}

impl VisScan {
    /// `want_values == false` still collects dependences (dependence
    /// analysis is a subset of the coherence problem, §3.2) but skips the
    /// plan — used for reduction privileges, which materialize an identity
    /// fill instead.
    pub fn new(target: IndexSpace, priv_new: Privilege, want_values: bool) -> Self {
        let needed_bbox = target.bbox();
        VisScan {
            priv_new,
            needed: target,
            needed_bbox,
            want_values,
            deps: Vec::new(),
            copies: Vec::new(),
            reductions: Vec::new(),
            geom_ops: 0,
            entries_scanned: 0,
        }
    }

    /// Nothing older can be visible (every point occluded): scans may stop.
    pub fn done(&self) -> bool {
        self.needed.is_empty()
    }

    /// The still-unoccluded portion of the target.
    pub fn needed(&self) -> &IndexSpace {
        &self.needed
    }

    /// Visit one entry (entries must arrive newest first). A cheap
    /// bounding-box prefilter rejects far-away entries without a full
    /// intersection (counted in `entries_scanned` but not `geom_ops`).
    pub fn visit(&mut self, e: &HistEntry) {
        if self.done() {
            return;
        }
        self.entries_scanned += 1;
        if !e.domain.bbox().overlaps(&self.needed_bbox) {
            return;
        }
        self.geom_ops += 1;
        let vis = e.domain.intersect(&self.needed);
        if vis.is_empty() {
            return;
        }
        if e.privilege.interferes(self.priv_new) {
            self.deps.push(e.task);
        }
        match e.privilege {
            Privilege::ReadWrite => {
                if self.want_values {
                    self.copies.push(CopyRange {
                        source: Source::Task(e.task, e.req),
                        domain: vis,
                    });
                }
                self.geom_ops += 1;
                self.needed = self.needed.subtract(&e.domain);
                self.needed_bbox = self.needed.bbox();
            }
            Privilege::Reduce(op) => {
                if self.want_values {
                    self.reductions.push(ReduceRange {
                        task: e.task,
                        req: e.req,
                        redop: op,
                        domain: vis,
                    });
                }
            }
            Privilege::Read => {}
        }
    }

    /// Complete the scan: any remaining unoccluded points come from the
    /// initial region contents. Returns `(deps, plan)` with deps sorted in
    /// program order.
    pub fn finish(mut self) -> (Vec<TaskId>, MaterializePlan) {
        self.deps.sort_unstable();
        self.deps.dedup();
        let mut plan = MaterializePlan::default();
        if self.want_values {
            if !self.needed.is_empty() {
                self.copies.push(CopyRange {
                    source: Source::Initial,
                    domain: self.needed,
                });
            }
            plan.copies = self.copies;
            plan.reductions = self.reductions;
        } else if let Privilege::Reduce(op) = self.priv_new {
            plan = MaterializePlan::identity(op);
        }
        (self.deps, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_region::RedOpRegistry;

    fn entry(task: u32, privilege: Privilege, lo: i64, hi: i64) -> HistEntry {
        HistEntry {
            task: TaskId(task),
            req: 0,
            privilege,
            domain: IndexSpace::span(lo, hi),
        }
    }

    /// Scan a history (given oldest-first, as stored) for a new access.
    fn scan(
        hist: &[HistEntry],
        target: (i64, i64),
        p: Privilege,
    ) -> (Vec<TaskId>, MaterializePlan) {
        let mut s = VisScan::new(
            IndexSpace::span(target.0, target.1),
            p,
            p.needs_current_values(),
        );
        for e in hist.iter().rev() {
            s.visit(e);
        }
        let (deps, mut plan) = s.finish();
        plan.normalize();
        (deps, plan)
    }

    #[test]
    fn read_sees_most_recent_write() {
        let hist = vec![
            entry(0, Privilege::ReadWrite, 0, 9),
            entry(1, Privilege::ReadWrite, 0, 9),
        ];
        let (deps, plan) = scan(&hist, (0, 9), Privilege::Read);
        assert_eq!(deps, vec![TaskId(1)], "t0 occluded by t1");
        assert_eq!(plan.copies.len(), 1);
        assert_eq!(plan.copies[0].source, Source::Task(TaskId(1), 0));
    }

    #[test]
    fn partial_occlusion_takes_both_sources() {
        // t0 writes [0,9]; t1 overwrites [0,4]; a read of [0,9] needs both.
        let hist = vec![
            entry(0, Privilege::ReadWrite, 0, 9),
            entry(1, Privilege::ReadWrite, 0, 4),
        ];
        let (deps, plan) = scan(&hist, (0, 9), Privilege::Read);
        assert_eq!(deps, vec![TaskId(0), TaskId(1)]);
        assert_eq!(plan.copies.len(), 2);
        let total: u64 = plan.copies.iter().map(|c| c.domain.volume()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn uncovered_points_come_from_initial() {
        let hist = vec![entry(0, Privilege::ReadWrite, 0, 4)];
        let (_, plan) = scan(&hist, (0, 9), Privilege::Read);
        assert!(plan
            .copies
            .iter()
            .any(|c| c.source == Source::Initial && c.domain.volume() == 5));
    }

    #[test]
    fn reductions_fold_on_top_of_base_write() {
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        let hist = vec![
            entry(0, Privilege::ReadWrite, 0, 9),
            entry(1, sum, 0, 4),
            entry(2, sum, 2, 6),
        ];
        let (deps, plan) = scan(&hist, (0, 9), Privilege::Read);
        assert_eq!(deps, vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(plan.copies.len(), 1, "base from t0");
        assert_eq!(plan.reductions.len(), 2);
        assert_eq!(plan.reductions[0].task, TaskId(1), "program order");
    }

    #[test]
    fn write_occludes_older_reductions() {
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        let hist = vec![entry(0, sum, 0, 9), entry(1, Privilege::ReadWrite, 0, 9)];
        let (deps, plan) = scan(&hist, (0, 9), Privilege::Read);
        assert_eq!(deps, vec![TaskId(1)]);
        assert!(plan.reductions.is_empty(), "t0's reductions are occluded");
    }

    #[test]
    fn war_dependence_on_visible_reads() {
        let hist = vec![
            entry(0, Privilege::ReadWrite, 0, 9),
            entry(1, Privilege::Read, 0, 9),
            entry(2, Privilege::Read, 0, 4),
        ];
        let (deps, _) = scan(&hist, (0, 9), Privilege::ReadWrite);
        assert_eq!(
            deps,
            vec![TaskId(0), TaskId(1), TaskId(2)],
            "writer waits for the write it overwrites and both readers"
        );
    }

    #[test]
    fn reads_do_not_depend_on_reads() {
        let hist = vec![
            entry(0, Privilege::ReadWrite, 0, 9),
            entry(1, Privilege::Read, 0, 9),
        ];
        let (deps, _) = scan(&hist, (0, 9), Privilege::Read);
        assert_eq!(deps, vec![TaskId(0)]);
    }

    #[test]
    fn same_op_reductions_do_not_interfere() {
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        let hist = vec![entry(0, sum, 0, 9)];
        let (deps, plan) = scan(&hist, (0, 9), sum);
        assert!(deps.is_empty());
        assert_eq!(plan.fill_identity, Some(RedOpRegistry::SUM));
        assert!(plan.copies.is_empty(), "reducers materialize identity");
    }

    #[test]
    fn different_op_reductions_interfere() {
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        let min = Privilege::Reduce(RedOpRegistry::MIN);
        let hist = vec![entry(0, sum, 0, 9)];
        let (deps, _) = scan(&hist, (0, 9), min);
        assert_eq!(deps, vec![TaskId(0)]);
    }

    #[test]
    fn reducer_depends_on_prior_write_and_reads() {
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        let hist = vec![
            entry(0, Privilege::ReadWrite, 0, 9),
            entry(1, Privilege::Read, 0, 9),
        ];
        let (deps, _) = scan(&hist, (0, 9), sum);
        assert_eq!(deps, vec![TaskId(0), TaskId(1)]);
    }

    #[test]
    fn disjoint_entries_are_invisible() {
        let hist = vec![entry(0, Privilege::ReadWrite, 20, 29)];
        let (deps, plan) = scan(&hist, (0, 9), Privilege::Read);
        assert!(deps.is_empty());
        assert_eq!(plan.copies.len(), 1);
        assert_eq!(plan.copies[0].source, Source::Initial);
    }

    #[test]
    fn scan_stops_once_fully_occluded() {
        let mut s = VisScan::new(IndexSpace::span(0, 9), Privilege::Read, true);
        s.visit(&entry(5, Privilege::ReadWrite, 0, 9));
        assert!(s.done());
        let before = s.entries_scanned;
        s.visit(&entry(0, Privilege::ReadWrite, 0, 9));
        assert_eq!(s.entries_scanned, before, "occluded entries are skipped");
    }
}
