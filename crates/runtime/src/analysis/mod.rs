//! The three visibility-based coherence engines (paper §5–7) and their
//! shared machinery.

pub mod history;
pub mod paint;
pub mod paint_naive;
pub mod raycast;
pub mod warnock;

use viz_geometry::FxHashMap;
use viz_sim::{Machine, NodeId, Op};

/// Batches analysis operations by the node owning the touched state, then
/// flushes them as priced messages: work on remotely-owned state costs a
/// request/response round trip from the analysis origin (plus the work at
/// the owner); local work is charged directly.
///
/// This is how the engines express the paper's distribution story without
/// real networking: *where* state lives and *who* asks for it produce the
/// message patterns; the machine prices them.
#[derive(Debug, Default)]
pub struct ChargeSet {
    per_owner: FxHashMap<NodeId, Vec<Op>>,
}

impl ChargeSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, owner: NodeId, op: Op) {
        self.per_owner.entry(owner).or_default().push(op);
    }

    pub fn is_empty(&self) -> bool {
        self.per_owner.is_empty()
    }

    /// Flush all batched work. Remote batches cost one round trip each
    /// (request + response), with request size growing with the op count
    /// (the serialized region descriptions). The round trips to distinct
    /// owners are issued concurrently — the origin blocks until the last
    /// response (Legion overlaps its equivalence-set requests the same
    /// way).
    pub fn flush(self, machine: &mut Machine, origin: NodeId) {
        // Deterministic order: sort owners.
        let mut owners: Vec<NodeId> = self.per_owner.keys().copied().collect();
        owners.sort_unstable();
        let targets: Vec<(NodeId, u64, u64)> = owners
            .iter()
            .map(|o| (*o, 96 + 24 * self.per_owner[o].len() as u64, 96))
            .collect();
        let work: Vec<&[Op]> = owners
            .iter()
            .map(|o| self.per_owner[o].as_slice())
            .collect();
        machine.multi_request(origin, &targets, &work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_charges_advance_origin_only() {
        let mut m = Machine::new(2);
        let mut c = ChargeSet::new();
        c.add(0, Op::EqSetCreate);
        c.add(0, Op::EqSetCreate);
        c.flush(&mut m, 0);
        assert_eq!(m.counters().eqsets_created, 2);
        assert_eq!(m.counters().messages, 0);
        assert!(m.now(0) > 0);
        assert_eq!(m.now(1), 0);
    }

    #[test]
    fn remote_charges_cost_round_trips() {
        let mut m = Machine::new(3);
        let mut c = ChargeSet::new();
        c.add(1, Op::EqSetCreate);
        c.add(2, Op::EqSetCreate);
        c.flush(&mut m, 0);
        assert_eq!(m.counters().messages, 4, "two round trips");
        assert!(m.now(0) > 0, "origin blocked on responses");
        assert_eq!(m.counters().eqsets_created, 2, "work served at owners");
        assert!(m.service_clocks()[1] > 0 && m.service_clocks()[2] > 0);
    }
}
