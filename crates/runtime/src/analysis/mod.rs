//! The three visibility-based coherence engines (paper §5–7) and their
//! shared machinery.

pub mod history;
pub mod paint;
pub mod paint_naive;
pub mod raycast;
pub mod visibility;
pub mod warnock;

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

use viz_geometry::FxHashMap;
use viz_region::{FieldId, RegionForest, RegionId};
use viz_sim::{ChargeLog, Machine, NodeId, Op};

use crate::task::TaskLaunch;

/// The unit of analysis-state independence: all engines key their state by
/// the root region of the requirement's region tree and the field (§5–7 —
/// state on distinct `(root, field)` pairs never interacts). Scans for
/// distinct shards may therefore run concurrently.
pub type ShardKey = (RegionId, FieldId);

/// Group a launch's requirements by shard, preserving the first-touch order
/// of shards and requirement order within each shard.
pub fn group_reqs_by_shard(
    launch: &TaskLaunch,
    forest: &RegionForest,
) -> Vec<(ShardKey, Vec<u32>)> {
    let mut groups: Vec<(ShardKey, Vec<u32>)> = Vec::new();
    let mut index: FxHashMap<ShardKey, usize> = FxHashMap::default();
    for (i, req) in launch.reqs.iter().enumerate() {
        let key = (forest.root_of(req.region), req.field);
        match index.get(&key) {
            Some(&g) => groups[g].1.push(i as u32),
            None => {
                index.insert(key, groups.len());
                groups.push((key, vec![i as u32]));
            }
        }
    }
    groups
}

/// One shard's engine state, accessible from worker threads.
///
/// The driver guarantees at most one worker touches a shard at a time (work
/// for the same shard is queued to the same worker, in launch order); the
/// atomic flag turns a violation of that contract into a panic instead of a
/// data race.
struct ShardCell<S> {
    busy: AtomicBool,
    /// Set on every [`ShardedState::lock`] (and at creation), cleared when
    /// a GC sweep visits the shard — the sweep can then skip shards no
    /// launch has touched since it last ran, instead of walking every
    /// `(root, field)` in the engine.
    dirty: AtomicBool,
    state: UnsafeCell<S>,
}

// SAFETY: access to `state` is serialized by the `busy` flag (enforced in
// `ShardedState::lock`); a shard's state never crosses threads while
// borrowed.
unsafe impl<S: Send> Sync for ShardCell<S> {}

/// Exclusive access to one shard's state, released on drop.
pub struct ShardRef<'a, S> {
    cell: &'a ShardCell<S>,
}

impl<S> Deref for ShardRef<'_, S> {
    type Target = S;
    fn deref(&self) -> &S {
        // SAFETY: `busy` was claimed in `lock`; no other ShardRef exists.
        unsafe { &*self.cell.state.get() }
    }
}

impl<S> DerefMut for ShardRef<'_, S> {
    fn deref_mut(&mut self) -> &mut S {
        // SAFETY: as in `deref`.
        unsafe { &mut *self.cell.state.get() }
    }
}

impl<S> Drop for ShardRef<'_, S> {
    fn drop(&mut self) {
        self.cell.busy.store(false, Ordering::Release);
    }
}

/// Per-`(root, field)` engine state, sharded for concurrent scans.
///
/// Shards are created on the driver thread (`&mut self`, during
/// [`crate::engine::CoherenceEngine::prepare`]) and then accessed from
/// worker threads through [`ShardedState::lock`] (`&self`), one worker per
/// shard at a time.
pub struct ShardedState<S> {
    shards: FxHashMap<ShardKey, Box<ShardCell<S>>>,
    /// Sweep generation counter: every `FULL_SWEEP_PERIOD`-th
    /// [`ShardedState::sweep_mut`] call visits all shards regardless of
    /// dirtiness.
    sweeps: u32,
}

/// Sweeps between forced full passes when dirty-only scanning is enabled:
/// even a shard never locked again is revisited periodically, so
/// watermark-dependent retirement cannot be deferred indefinitely on idle
/// shards.
pub const FULL_SWEEP_PERIOD: u32 = 16;

impl<S> Default for ShardedState<S> {
    fn default() -> Self {
        ShardedState {
            shards: FxHashMap::default(),
            sweeps: 0,
        }
    }
}

impl<S> ShardedState<S> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Create the shard if missing (driver thread only).
    pub fn get_or_insert_with(&mut self, key: ShardKey, f: impl FnOnce() -> S) -> &mut S {
        let cell = self.shards.entry(key).or_insert_with(|| {
            Box::new(ShardCell {
                busy: AtomicBool::new(false),
                dirty: AtomicBool::new(true),
                state: UnsafeCell::new(f()),
            })
        });
        cell.state.get_mut()
    }

    /// Claim exclusive access to a shard from a worker. Panics if the shard
    /// does not exist or another worker currently holds it — both indicate a
    /// scheduling bug, not a recoverable condition.
    pub fn lock(&self, key: ShardKey) -> ShardRef<'_, S> {
        let cell = self
            .shards
            .get(&key)
            .unwrap_or_else(|| panic!("shard {key:?} was not created during prepare"));
        let was_busy = cell.busy.swap(true, Ordering::Acquire);
        assert!(!was_busy, "shard {key:?} scanned by two workers at once");
        // A locked shard may be mutated: mark it for the next GC sweep.
        cell.dirty.store(true, Ordering::Release);
        ShardRef { cell }
    }

    /// Iterate shard states mutably. `&mut self` guarantees no worker holds
    /// a shard — used by the GC sweep on the driver thread between batches.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&ShardKey, &mut S)> {
        self.shards
            .iter_mut()
            .map(|(k, cell)| (k, cell.state.get_mut()))
    }

    /// Iterate shard states for a GC sweep. With `dirty_only`, only shards
    /// locked (i.e. scanned, and so possibly mutated) since the previous
    /// sweep are yielded — plus every shard on each
    /// [`FULL_SWEEP_PERIOD`]-th call, so sweeps whose reclaimable state
    /// depends on an advancing watermark still drain idle shards
    /// eventually. Visited shards' dirty flags are cleared; `&mut self`
    /// guarantees no worker holds a shard.
    pub fn sweep_mut(&mut self, dirty_only: bool) -> impl Iterator<Item = (&ShardKey, &mut S)> {
        self.sweeps = self.sweeps.wrapping_add(1);
        let full = !dirty_only || self.sweeps.is_multiple_of(FULL_SWEEP_PERIOD);
        self.shards.iter_mut().filter_map(move |(k, cell)| {
            let was_dirty = cell.dirty.swap(false, Ordering::Acquire);
            (full || was_dirty).then(move || (k, cell.state.get_mut()))
        })
    }

    /// Iterate shard states for instrumentation. Requires quiescence: panics
    /// if any shard is currently claimed by a worker.
    pub fn iter(&self) -> impl Iterator<Item = (&ShardKey, &S)> {
        self.shards.iter().map(|(k, cell)| {
            assert!(
                !cell.busy.load(Ordering::Acquire),
                "state inspected while shard {k:?} is being scanned"
            );
            // SAFETY: not busy, and `&self` prevents new `lock` claims from
            // this thread; callers only inspect between analysis phases.
            (k, unsafe { &*cell.state.get() })
        })
    }
}

/// What one shard-local analysis produced for one region requirement:
/// the dependences and plan, plus the machine charges of the scan and the
/// commit, recorded for canonical-order replay by the driver.
#[derive(Debug, Default)]
pub struct ReqOutcome {
    /// Requirement index within the launch.
    pub req: u32,
    pub deps: Vec<crate::task::TaskId>,
    pub plan: crate::plan::MaterializePlan,
    /// Charges from the visibility scan (close, traversal, history scans,
    /// dependence records).
    pub scan_log: ChargeLog,
    /// Charges from committing the requirement into the shard state.
    pub commit_log: ChargeLog,
}

/// Batches analysis operations by the node owning the touched state, then
/// flushes them as priced messages: work on remotely-owned state costs a
/// request/response round trip from the analysis origin (plus the work at
/// the owner); local work is charged directly.
///
/// This is how the engines express the paper's distribution story without
/// real networking: *where* state lives and *who* asks for it produce the
/// message patterns; the machine prices them.
#[derive(Debug, Default)]
pub struct ChargeSet {
    per_owner: FxHashMap<NodeId, Vec<Op>>,
}

/// One round-trip target of a flushed [`ChargeSet`]: the owner node plus
/// the request/response byte sizes fed to [`Machine::multi_request`].
type RequestTarget = (NodeId, u64, u64);

impl ChargeSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, owner: NodeId, op: Op) {
        self.per_owner.entry(owner).or_default().push(op);
    }

    pub fn is_empty(&self) -> bool {
        self.per_owner.is_empty()
    }

    /// Flush all batched work. Remote batches cost one round trip each
    /// (request + response), with request size growing with the op count
    /// (the serialized region descriptions). The round trips to distinct
    /// owners are issued concurrently — the origin blocks until the last
    /// response (Legion overlaps its equivalence-set requests the same
    /// way).
    pub fn flush(self, machine: &mut Machine, origin: NodeId) {
        let (targets, work) = self.into_batches();
        let views: Vec<&[Op]> = work.iter().map(|w| w.as_slice()).collect();
        machine.multi_request(origin, &targets, &views);
    }

    /// As [`ChargeSet::flush`], but record the round trips into a
    /// [`ChargeLog`] for later replay instead of charging the live machine.
    pub fn flush_into(self, log: &mut ChargeLog, origin: NodeId) {
        let (targets, work) = self.into_batches();
        log.multi_request(origin, targets, work);
    }

    fn into_batches(mut self) -> (Vec<RequestTarget>, Vec<Vec<Op>>) {
        // Deterministic order: sort owners.
        let mut owners: Vec<NodeId> = self.per_owner.keys().copied().collect();
        owners.sort_unstable();
        let targets: Vec<(NodeId, u64, u64)> = owners
            .iter()
            .map(|o| (*o, 96 + 24 * self.per_owner[o].len() as u64, 96))
            .collect();
        let work: Vec<Vec<Op>> = owners
            .iter()
            .map(|o| std::mem::take(self.per_owner.get_mut(o).unwrap()))
            .collect();
        (targets, work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_charges_advance_origin_only() {
        let mut m = Machine::new(2);
        let mut c = ChargeSet::new();
        c.add(0, Op::EqSetCreate);
        c.add(0, Op::EqSetCreate);
        c.flush(&mut m, 0);
        assert_eq!(m.counters().eqsets_created, 2);
        assert_eq!(m.counters().messages, 0);
        assert!(m.now(0) > 0);
        assert_eq!(m.now(1), 0);
    }

    #[test]
    fn remote_charges_cost_round_trips() {
        let mut m = Machine::new(3);
        let mut c = ChargeSet::new();
        c.add(1, Op::EqSetCreate);
        c.add(2, Op::EqSetCreate);
        c.flush(&mut m, 0);
        assert_eq!(m.counters().messages, 4, "two round trips");
        assert!(m.now(0) > 0, "origin blocked on responses");
        assert_eq!(m.counters().eqsets_created, 2, "work served at owners");
        assert!(m.service_clocks()[1] > 0 && m.service_clocks()[2] > 0);
    }

    #[test]
    fn flush_into_replays_identically_to_flush() {
        let build = || {
            let mut c = ChargeSet::new();
            c.add(1, Op::HistScan { entries: 4 });
            c.add(2, Op::SetTouch);
            c.add(0, Op::DepRecord);
            c
        };
        let mut direct = Machine::new(3);
        build().flush(&mut direct, 0);

        let mut log = ChargeLog::new();
        build().flush_into(&mut log, 0);
        let mut replayed = Machine::new(3);
        log.replay(&mut replayed);

        assert_eq!(direct.clocks(), replayed.clocks());
        assert_eq!(direct.service_clocks(), replayed.service_clocks());
        assert_eq!(direct.counters(), replayed.counters());
    }

    #[test]
    fn sharded_state_locks_are_exclusive() {
        let mut s: ShardedState<u32> = ShardedState::new();
        let key = (viz_region::RegionId(0), viz_region::FieldId(0));
        *s.get_or_insert_with(key, || 1) += 1;
        {
            let mut h = s.lock(key);
            *h += 1;
        }
        let h = s.lock(key);
        assert_eq!(*h, 3);
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = s.lock(key);
        }));
        assert!(second.is_err(), "double lock must panic");
        drop(h);
        let _ = s.lock(key);
    }
}
