//! The painter's algorithm with region-tree acceleration (paper §5.1).
//!
//! Instead of one global history, each region-tree node keeps a
//! *sub-history*, and the history relevant to a region `R` is found along
//! the path from the root to `R`. The invariant: materializing the **path
//! history** (the concatenation of the histories on the root→R path, views
//! expanded in place) equals the naive painter's result.
//!
//! When a task with region `R` and privilege `p` is launched:
//!
//! 1. For every ancestor `A` of `R` and every partition `Q` of `A` whose
//!    subtree is *open* (has recorded entries), *may interfere* with `p`
//!    (privilege summary), and *overlaps* `R`: the subtree is **closed** —
//!    its histories are captured into an immutable [`CompositeView`]
//!    appended to `A`'s history, and deleted from the subtree. For the
//!    partition on `R`'s own path, the path child is exempted (its entries
//!    stay on the path and remain correctly ordered).
//! 2. The backward visibility scan runs over the path history, newest
//!    first: `R`'s entries, then up the tree, expanding views (and nested
//!    views) in reverse capture order.
//! 3. `⟨p, R⟩` is appended to `R`'s sub-history; a full write prunes the
//!    entries it occludes (§5.1's occlusion rule).
//!
//! Distribution: node states live on first-touch owners; composite views
//! are built with one gather message per remote captured node, are owned by
//! the ancestor's owner, and are *replicated on demand* — the first scan
//! from a node fetches the view, later scans are local. The one root is the
//! scalability sore spot the paper observes (§8.1).
//!
//! All of a tree's per-node state for one field lives in a single
//! [`PaintShard`]: the walk, closes and view bookkeeping of one requirement
//! never leave its `(root, field)` shard, which is what lets the sharded
//! driver scan distinct shards concurrently.

use crate::analysis::history::{HistEntry, VisScan};
use crate::analysis::{group_reqs_by_shard, ChargeSet, ReqOutcome, ShardKey, ShardedState};
use crate::engine::{CoherenceEngine, GcSweep, ShardCtx, StateSize};
use crate::sharding::ShardMap;
use crate::task::TaskLaunch;
use std::sync::Arc;
use viz_geometry::{
    AlgebraStats, FxHashMap, FxHashSet, IndexSpace, InternConfig, Rect, SpaceAlgebra,
};
use viz_region::{privilege::PrivilegeSummary, PartitionId, RegionForest, RegionId};
use viz_sim::{NodeId, Op};

#[derive(Clone)]
enum PathEntry {
    Task(HistEntry),
    View(Arc<CompositeView>),
}

/// An immutable snapshot of a closed subtree (§5.1).
pub struct CompositeView {
    id: u64,
    /// `(region, entries)` in DFS preorder of the captured subtree.
    nodes: Vec<(RegionId, Vec<PathEntry>)>,
    /// Bounding box of all captured entry domains (a conservative
    /// prefilter; the entries keep their exact domains).
    bbox: Rect,
    /// Union of captured *write* domains — what this view occludes.
    write_domain: IndexSpace,
    summary: PrivilegeSummary,
    /// Task entries captured, including those inside nested views.
    entries: usize,
    /// Composite views captured, counting this view itself and every view
    /// nested (transitively) inside it — what occluding this view removes
    /// from the alive-view count.
    views: usize,
}

struct NodeState {
    hist: Vec<PathEntry>,
    /// Bounding box of this node's own entry domains (conservative under
    /// pruning — metadata only, never used for plans or dependences).
    own_bbox: Rect,
    own_summary: PrivilegeSummary,
}

impl Default for NodeState {
    fn default() -> Self {
        NodeState {
            hist: Vec::new(),
            own_bbox: Rect::EMPTY,
            own_summary: PrivilegeSummary::EMPTY,
        }
    }
}

impl NodeState {
    fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }
}

/// Aggregate over a subtree, for the open/interference/overlap test.
struct SubtreeAgg {
    summary: PrivilegeSummary,
    bbox: Rect,
    entries: usize,
    /// Owners of the captured nodes (for gather-message pricing).
    owners: Vec<NodeId>,
}

impl Default for SubtreeAgg {
    fn default() -> Self {
        SubtreeAgg {
            summary: PrivilegeSummary::EMPTY,
            bbox: Rect::EMPTY,
            entries: 0,
            owners: Vec::new(),
        }
    }
}

impl SubtreeAgg {
    fn open(&self) -> bool {
        self.entries > 0
    }
}

/// One `(root, field)` shard of the painter's state: the sub-histories of
/// every node in that root's region tree for that field, plus the view
/// bookkeeping (ids, alive counts, replication cache), all of which is
/// tree-local.
#[derive(Default)]
struct PaintShard {
    nodes: FxHashMap<RegionId, NodeState>,
    /// Children of a partition with non-empty subtree state.
    touched: FxHashMap<PartitionId, Vec<RegionId>>,
    next_view: u64,
    views_alive: usize,
    entries_alive: usize,
    /// `(view id, node)` pairs already replicated.
    fetched: FxHashSet<(u64, NodeId)>,
    /// Interned-algebra layer: the occlusion containment tests and the
    /// write-domain union chains of view capture go through it.
    alg: SpaceAlgebra,
    last_stats: AlgebraStats,
}

impl PaintShard {
    fn with_intern(intern: InternConfig) -> Self {
        PaintShard {
            alg: SpaceAlgebra::new(intern),
            ..PaintShard::default()
        }
    }
    /// Aggregate the state of `region`'s subtree (visiting only touched
    /// nodes).
    fn subtree_agg(
        &self,
        forest: &RegionForest,
        region: RegionId,
        agg: &mut SubtreeAgg,
        shards: &ShardMap,
        task: u32,
    ) {
        if let Some(ns) = self.nodes.get(&region) {
            if !ns.is_empty() {
                agg.summary.merge(ns.own_summary);
                agg.bbox = agg.bbox.union_bbox(&ns.own_bbox);
                agg.entries += ns.hist.len();
                agg.owners.push(shards.owner(region, task));
            }
        }
        for q in forest.partitions_of(region) {
            if let Some(kids) = self.touched.get(q) {
                for k in kids.clone() {
                    self.subtree_agg(forest, k, agg, shards, task);
                }
            }
        }
    }

    /// Capture and clear `region`'s subtree into `out` (DFS preorder).
    fn capture(
        &mut self,
        forest: &RegionForest,
        region: RegionId,
        out: &mut Vec<(RegionId, Vec<PathEntry>)>,
    ) {
        if let Some(ns) = self.nodes.get_mut(&region) {
            if !ns.is_empty() {
                let hist = std::mem::take(&mut ns.hist);
                ns.own_bbox = Rect::EMPTY;
                ns.own_summary = PrivilegeSummary::EMPTY;
                out.push((region, hist));
            }
        }
        for q in forest.partitions_of(region).to_vec() {
            if let Some(kids) = self.touched.remove(&q) {
                for k in kids {
                    self.capture(forest, k, out);
                }
            }
        }
    }

    /// Close the given children of partition `q` into a composite view.
    fn close_children(
        &mut self,
        forest: &RegionForest,
        q: PartitionId,
        children: &[RegionId],
        keep: Option<RegionId>,
    ) -> Option<Arc<CompositeView>> {
        let mut nodes = Vec::new();
        for c in children {
            if Some(*c) == keep {
                continue;
            }
            self.capture(forest, *c, &mut nodes);
        }
        // Update the partition's touched list: drop the captured children.
        if let Some(kids) = self.touched.get_mut(&q) {
            kids.retain(|k| Some(*k) == keep || !children.contains(k));
            if kids.is_empty() {
                self.touched.remove(&q);
            }
        }
        if nodes.is_empty() {
            return None;
        }
        let mut bbox = Rect::EMPTY;
        let mut write_domain = IndexSpace::empty();
        let mut summary = PrivilegeSummary::EMPTY;
        let mut entries = 0;
        let mut views = 1; // this view itself
        for (_, hist) in &nodes {
            for e in hist {
                match e {
                    PathEntry::Task(h) => {
                        entries += 1;
                        bbox = bbox.union_bbox(&h.domain.bbox());
                        if h.privilege.is_write() {
                            write_domain = self.alg.union_spaces(&write_domain, &h.domain);
                        }
                        summary.add(h.privilege);
                    }
                    PathEntry::View(v) => {
                        entries += v.entries;
                        views += v.views;
                        bbox = bbox.union_bbox(&v.bbox);
                        write_domain = self.alg.union_spaces(&write_domain, &v.write_domain);
                        summary.merge(v.summary);
                    }
                }
            }
        }
        let id = self.next_view;
        self.next_view += 1;
        self.views_alive += 1;
        Some(Arc::new(CompositeView {
            id,
            nodes,
            bbox,
            write_domain,
            summary,
            entries,
            views,
        }))
    }

    /// Append an entry to a node's history, applying the occlusion-pruning
    /// rule for full writes. Returns geometry ops performed.
    fn append(&mut self, region: RegionId, entry: PathEntry) -> usize {
        let mut geom = 0;
        let (bbox, summary_priv, write_domain) = match &entry {
            PathEntry::Task(h) => (
                h.domain.bbox(),
                Some(h.privilege),
                if h.privilege.is_write() {
                    Some(h.domain.clone())
                } else {
                    None
                },
            ),
            PathEntry::View(v) => (
                v.bbox,
                None,
                if v.write_domain.is_empty() {
                    None
                } else {
                    Some(v.write_domain.clone())
                },
            ),
        };
        // Task entries are counted once, when first committed; a view's
        // entries were already counted at their original nodes and merely
        // moved, so appending a view adds nothing.
        let is_task = matches!(&entry, PathEntry::Task(_));
        let mut dropped_entries = 0usize;
        let mut dropped_views = 0usize;
        let alg = &mut self.alg;
        let ns = self.nodes.entry(region).or_default();
        if let Some(wd) = &write_domain {
            ns.hist.retain(|old| {
                geom += 1;
                let occluded = match old {
                    PathEntry::Task(h) => alg.contains_spaces(wd, &h.domain),
                    // Conservative: prune a view only when the write
                    // covers its whole bounding box.
                    PathEntry::View(v) => alg.contains_spaces(wd, &IndexSpace::from_rect(v.bbox)),
                };
                if occluded {
                    match old {
                        PathEntry::Task(_) => dropped_entries += 1,
                        // A pruned view takes every nested view with it.
                        PathEntry::View(v) => {
                            dropped_views += v.views;
                            dropped_entries += v.entries;
                        }
                    }
                }
                !occluded
            });
        }
        if let Some(p) = summary_priv {
            ns.own_summary.add(p);
        } else if let PathEntry::View(v) = &entry {
            ns.own_summary.merge(v.summary);
        }
        ns.own_bbox = ns.own_bbox.union_bbox(&bbox);
        ns.hist.push(entry);
        self.entries_alive -= dropped_entries;
        self.views_alive -= dropped_views;
        if is_task {
            self.entries_alive += 1;
        }
        geom
    }

    /// Mark `region` as touched under its parent partition, up the path.
    fn mark_touched(&mut self, forest: &RegionForest, region: RegionId) {
        let mut cur = region;
        while let Some(q) = forest.parent_partition(cur) {
            let kids = self.touched.entry(q).or_default();
            if !kids.contains(&cur) {
                kids.push(cur);
            }
            cur = forest.parent_region(q);
        }
    }

    /// Reverse scan of one view (nested views expanded), newest first.
    fn scan_view(view: &CompositeView, scan: &mut VisScan) {
        for (_, hist) in view.nodes.iter().rev() {
            for e in hist.iter().rev() {
                if scan.done() {
                    return;
                }
                match e {
                    PathEntry::Task(h) => scan.visit(h),
                    PathEntry::View(v) => Self::scan_view(v, scan),
                }
            }
        }
    }
}

/// The optimized painter's algorithm ("Paint" in the figures).
pub struct Painter {
    shards: ShardedState<PaintShard>,
    intern: InternConfig,
    dirty_only: bool,
}

impl Painter {
    pub fn new() -> Self {
        Self::with_intern(crate::config::env_intern())
    }

    /// Build with an explicit interning configuration.
    pub fn with_intern(intern: InternConfig) -> Self {
        Painter {
            shards: ShardedState::new(),
            intern,
            dirty_only: true,
        }
    }
}

impl Default for Painter {
    fn default() -> Self {
        Self::new()
    }
}

impl CoherenceEngine for Painter {
    fn name(&self) -> &'static str {
        "paint"
    }

    fn prepare(&mut self, launch: &TaskLaunch, ctx: &ShardCtx<'_>) -> Vec<(ShardKey, Vec<u32>)> {
        let groups = group_reqs_by_shard(launch, ctx.forest);
        for (key, _) in &groups {
            let intern = self.intern;
            self.shards
                .get_or_insert_with(*key, || PaintShard::with_intern(intern));
        }
        groups
    }

    fn analyze_shard(
        &self,
        key: ShardKey,
        launch: &TaskLaunch,
        reqs: &[u32],
        ctx: &ShardCtx<'_>,
    ) -> Vec<ReqOutcome> {
        let origin = ctx.shards.origin(launch.node);
        let mut shard = self.shards.lock(key);
        let mut outcomes: Vec<ReqOutcome> = Vec::with_capacity(reqs.len());
        let mut commits: Vec<(RegionId, HistEntry)> = Vec::with_capacity(reqs.len());

        for &ri in reqs {
            let req = &launch.reqs[ri as usize];
            let mut out = ReqOutcome {
                req: ri,
                ..ReqOutcome::default()
            };
            let r_domain = ctx.forest.domain(req.region).clone();
            let r_bbox = r_domain.bbox();
            let path = ctx.forest.path_from_root(req.region);
            // The logical-state walk along the path (version/open-close
            // bookkeeping at every node).
            out.scan_log.op(origin, Op::PaintWalk { nodes: path.len() });

            // ---- Phase 1: close interfering open subtrees along the path.
            for (k, a) in path.iter().enumerate() {
                let next_on_path = path.get(k + 1).copied();
                let owner_a = ctx.shards.owner(*a, launch.id.0);
                for q in ctx.forest.partitions_of(*a).to_vec() {
                    let Some(kids) = shard.touched.get(&q).cloned() else {
                        continue;
                    };
                    let keep = next_on_path.filter(|n| kids.contains(n));
                    // Test each child subtree individually — §5.1's "skip
                    // creating composite views for subtrees that are closed
                    // or only have histories with privileges that do not
                    // interfere". The path child is exempt (its entries stay
                    // correctly ordered on the path).
                    let mut to_close: Vec<RegionId> = Vec::new();
                    let mut agg = SubtreeAgg::default();
                    for c in &kids {
                        if Some(*c) == keep {
                            continue;
                        }
                        let mut child_agg = SubtreeAgg::default();
                        shard.subtree_agg(ctx.forest, *c, &mut child_agg, ctx.shards, launch.id.0);
                        // Per-child open/summary/bbox test: cheap metadata.
                        out.scan_log.op(origin, Op::HistScan { entries: 1 });
                        if child_agg.open()
                            && child_agg.summary.may_interfere(req.privilege)
                            && child_agg.bbox.overlaps(&r_bbox)
                        {
                            to_close.push(*c);
                            agg.summary.merge(child_agg.summary);
                            agg.entries += child_agg.entries;
                            agg.owners.extend(child_agg.owners);
                        }
                    }
                    if to_close.is_empty() {
                        continue;
                    }
                    // Close: capture the interfering subtrees bottom-up into
                    // one view, one gather message per remote captured node.
                    if let Some(view) = shard.close_children(ctx.forest, q, &to_close, keep) {
                        for o in &agg.owners {
                            if *o != owner_a {
                                out.scan_log
                                    .send(*o, owner_a, 64 + 24 * (view.entries as u64));
                            }
                        }
                        out.scan_log.op(
                            owner_a,
                            Op::ViewCreate {
                                entries: view.entries,
                            },
                        );
                        viz_profile::instant(viz_profile::EventKind::CompositeView {
                            entries: view.entries as u64,
                        });
                        shard.fetched.insert((view.id, owner_a));
                        let geom = shard.append(*a, PathEntry::View(view));
                        out.scan_log.op(owner_a, Op::GeomOp { rects: geom });
                        shard.mark_touched(ctx.forest, *a);
                    }
                }
            }

            // ---- Phase 2: backward visibility scan over the path history.
            let mut scan = VisScan::new(
                r_domain.clone(),
                req.privilege,
                req.privilege.needs_current_values(),
            );
            let mut charges = ChargeSet::new();
            for a in path.iter().rev() {
                if scan.done() {
                    break;
                }
                let owner_a = ctx.shards.owner(*a, launch.id.0);
                let mut scanned_here = 0usize;
                let mut view_fetches: Vec<(u64, usize)> = Vec::new();
                if let Some(ns) = shard.nodes.get(a) {
                    for e in ns.hist.iter().rev() {
                        if scan.done() {
                            break;
                        }
                        match e {
                            PathEntry::Task(h) => {
                                scan.visit(h);
                                scanned_here += 1;
                            }
                            PathEntry::View(v) => {
                                scanned_here += 1;
                                // Bounding-box prefilter before expanding.
                                if v.bbox.overlaps(&scan.needed().bbox()) {
                                    if !shard.fetched.contains(&(v.id, origin)) {
                                        view_fetches.push((v.id, v.entries));
                                    }
                                    PaintShard::scan_view(v, &mut scan);
                                }
                            }
                        }
                    }
                }
                // Replication on demand: first use of a view at this origin
                // fetches it from the owner.
                for (vid, entries) in view_fetches {
                    shard.fetched.insert((vid, origin));
                    if owner_a != origin {
                        out.scan_log
                            .request(origin, owner_a, 96, 64 + 24 * entries as u64, &[]);
                    }
                }
                if scanned_here > 0 {
                    charges.add(
                        owner_a,
                        Op::HistScan {
                            entries: scanned_here,
                        },
                    );
                }
            }
            charges.add(
                origin,
                Op::GeomOp {
                    rects: scan.geom_ops,
                },
            );
            viz_profile::instant(viz_profile::EventKind::HistoryScan {
                entries: scan.entries_scanned as u64,
            });
            let (deps, plan) = scan.finish();
            for _ in &deps {
                out.scan_log.op(origin, Op::DepRecord);
            }
            charges.flush_into(&mut out.scan_log, origin);
            out.deps = deps;
            out.plan = plan;
            outcomes.push(out);

            commits.push((
                req.region,
                HistEntry {
                    task: launch.id,
                    req: ri,
                    privilege: req.privilege,
                    domain: r_domain,
                },
            ));
        }

        // ---- Phase 3: commit all requirement results.
        for (out, (region, entry)) in outcomes.iter_mut().zip(commits) {
            let owner_r = ctx.shards.owner(region, launch.id.0);
            out.commit_log.send(origin, owner_r, 96);
            let geom = shard.append(region, PathEntry::Task(entry));
            out.commit_log.op(owner_r, Op::GeomOp { rects: geom });
            out.commit_log.op(owner_r, Op::HistScan { entries: 1 });
            shard.mark_touched(ctx.forest, region);
        }
        let delta = shard.alg.stats().delta_since(&shard.last_stats);
        if delta.hits + delta.fast_hits + delta.misses > 0 {
            viz_profile::instant(viz_profile::EventKind::AlgebraCache {
                hits: delta.hits + delta.fast_hits,
                misses: delta.misses,
            });
        }
        shard.last_stats = shard.alg.stats();
        outcomes
    }

    /// Occlusion pruning already drops dead views (their `Arc`s are freed
    /// when the last referencing entry goes), but two side tables outlive
    /// them: the `fetched` replication cache keeps `(view, node)` pairs for
    /// views that no longer exist, and captured/pruned regions keep empty
    /// `NodeState` records. Both are invisible to future scans — a missing
    /// `fetched` pair for a dead view is never consulted (the view cannot
    /// be scanned again), and an absent node state behaves exactly like an
    /// empty one — so dropping them is behavior-preserving.
    fn collect(&mut self, _floor: crate::task::TaskId) -> GcSweep {
        fn alive_view_ids(entries: &[PathEntry], out: &mut FxHashSet<u64>) {
            for e in entries {
                if let PathEntry::View(v) = e {
                    if out.insert(v.id) {
                        for (_, hist) in &v.nodes {
                            alive_view_ids(hist, out);
                        }
                    }
                }
            }
        }
        let mut sweep = GcSweep::default();
        for (_, shard) in self.shards.sweep_mut(self.dirty_only) {
            let before_nodes = shard.nodes.len();
            shard.nodes.retain(|_, ns| !ns.is_empty());
            sweep.index_nodes += before_nodes - shard.nodes.len();
            let mut alive = FxHashSet::default();
            for ns in shard.nodes.values() {
                alive_view_ids(&ns.hist, &mut alive);
            }
            let before_fetched = shard.fetched.len();
            shard.fetched.retain(|(vid, _)| alive.contains(vid));
            sweep.memo_entries += before_fetched - shard.fetched.len();
        }
        sweep
    }

    fn state_size(&self) -> StateSize {
        let mut size = StateSize::default();
        for (_, shard) in self.shards.iter() {
            size.history_entries += shard.entries_alive;
            size.composite_views += shard.views_alive;
            // Replicated-view bookkeeping is the painter's only cache.
            size.memo_entries += shard.fetched.len();
            let a = shard.alg.stats();
            size.interned_spaces += a.interned;
            size.algebra_cache_entries += a.cache_entries;
            size.algebra_hits += a.hits + a.fast_hits;
            size.algebra_misses += a.misses;
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AnalysisCtx;
    use crate::plan::AnalysisResult;
    use crate::task::{RegionRequirement, TaskId};
    use viz_region::{FieldId, Privilege, RedOpRegistry};
    use viz_sim::Machine;

    struct Fixture {
        forest: RegionForest,
        field_up: FieldId,
        p: PartitionId,
        g: PartitionId,
        machine: Machine,
        shards: ShardMap,
        eng: Painter,
        next: u32,
    }

    /// The running-example region tree (Figs 1-2): N with disjoint P and
    /// aliased G partitions, one field `up`.
    fn fixture() -> Fixture {
        let mut forest = RegionForest::new();
        let n = forest.create_root("N", IndexSpace::span(0, 29));
        let field_up = forest.add_field(n, "up");
        let p = forest.create_partition(
            n,
            "P",
            vec![
                IndexSpace::span(0, 9),
                IndexSpace::span(10, 19),
                IndexSpace::span(20, 29),
            ],
        );
        let g = forest.create_partition(
            n,
            "G",
            vec![
                IndexSpace::from_points([10, 11, 20].map(viz_geometry::Point::p1)),
                IndexSpace::from_points([8, 9, 20, 21].map(viz_geometry::Point::p1)),
                IndexSpace::from_points([9, 18, 19].map(viz_geometry::Point::p1)),
            ],
        );
        Fixture {
            forest,
            field_up,
            p,
            g,
            machine: Machine::new(1),
            shards: ShardMap::new(1, false),
            eng: Painter::new(),
            next: 0,
        }
    }

    impl Fixture {
        fn launch(&mut self, region: RegionId, privilege: Privilege) -> AnalysisResult {
            let id = self.next;
            self.next += 1;
            let launch = TaskLaunch {
                id: TaskId(id),
                name: format!("t{id}"),
                node: 0,
                reqs: vec![RegionRequirement::new(region, self.field_up, privilege)],
                duration_ns: 0,
            };
            let mut ctx = AnalysisCtx {
                forest: &self.forest,
                machine: &mut self.machine,
                shards: &self.shards,
            };
            self.eng.analyze(&launch, &mut ctx)
        }
    }

    /// The paper's Fig 8 schedule of composite views on the `up` field:
    /// writes through P create no views (P disjoint); the first ghost
    /// reduction closes P's subtree (V0); the next iteration's first write
    /// closes G's subtree (V1).
    #[test]
    fn fig8_composite_view_schedule() {
        let mut fx = fixture();
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        // t0-t2: rw on P[i].up — no views.
        for i in 0..3 {
            let piece = fx.forest.subregion(fx.p, i);
            fx.launch(piece, Privilege::ReadWrite);
        }
        assert_eq!(fx.eng.state_size().composite_views, 0);
        // t3: reduce G[0].up — closes the interfering P subtrees into V0.
        // (Our implementation applies §5.1's skip-non-interfering rule per
        // child, so V0 captures P[1] and P[2] — the pieces G[0] overlaps —
        // while the paper's Fig 8 illustration captures all of P.)
        let g0 = fx.forest.subregion(fx.g, 0);
        let r3 = fx.launch(g0, sum);
        assert_eq!(fx.eng.state_size().composite_views, 1, "V0 created");
        // t3 depends on the overlapping P writers (P[1], P[2] overlap G[0]).
        assert_eq!(r3.deps, vec![TaskId(1), TaskId(2)]);
        // t4: same reduction op as t3 — the G entries need no close, but
        // t4's overlap with the still-open P[0] write closes it (V1).
        let g1 = fx.forest.subregion(fx.g, 1);
        let g2 = fx.forest.subregion(fx.g, 2);
        let r4 = fx.launch(g1, sum);
        assert_eq!(fx.eng.state_size().composite_views, 2, "P[0] closed");
        // t5: everything it overlaps is already closed — no new views.
        let r5 = fx.launch(g2, sum);
        assert_eq!(fx.eng.state_size().composite_views, 2);
        assert_eq!(
            r4.deps,
            vec![TaskId(0), TaskId(2)],
            "G[1] overlaps P[0], P[2]"
        );
        assert_eq!(r5.deps, vec![TaskId(0), TaskId(1)]);
        // t6: rw P[0].up (next iteration) — closes the G subtree (V2).
        let p0 = fx.forest.subregion(fx.p, 0);
        let r6 = fx.launch(p0, Privilege::ReadWrite);
        assert_eq!(fx.eng.state_size().composite_views, 3, "G closed");
        // t6 overwrites its old value (t0) and values reduced by the ghost
        // tasks overlapping P[0] (t4 and t5).
        assert_eq!(r6.deps, vec![TaskId(0), TaskId(4), TaskId(5)]);
    }

    #[test]
    fn disjoint_partition_needs_no_views() {
        let mut fx = fixture();
        for iter in 0..4 {
            for i in 0..3 {
                let piece = fx.forest.subregion(fx.p, i);
                let r = fx.launch(piece, Privilege::ReadWrite);
                if iter == 0 {
                    assert!(r.deps.is_empty());
                } else {
                    // Each piece depends only on its own previous writer.
                    assert_eq!(r.deps.len(), 1, "iter {iter} piece {i}: {:?}", r.deps);
                }
            }
        }
        assert_eq!(fx.eng.state_size().composite_views, 0);
    }

    #[test]
    fn occlusion_pruning_bounds_state_in_steady_loop() {
        let mut fx = fixture();
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        let mut peak = 0;
        for _ in 0..6 {
            for i in 0..3 {
                fx.launch(fx.forest.subregion(fx.p, i), Privilege::ReadWrite);
            }
            for i in 0..3 {
                fx.launch(fx.forest.subregion(fx.g, i), sum);
            }
            peak = peak.max(fx.eng.state_size().history_entries);
        }
        let final_size = fx.eng.state_size().history_entries;
        assert!(
            final_size <= peak && final_size <= 24,
            "steady state must not grow unboundedly: {final_size} entries"
        );
    }

    #[test]
    fn plan_reads_through_different_partition() {
        let mut fx = fixture();
        // Write the whole region through P, then read through G: the read
        // must source from the P writers.
        for i in 0..3 {
            fx.launch(fx.forest.subregion(fx.p, i), Privilege::ReadWrite);
        }
        let g0 = fx.forest.subregion(fx.g, 0);
        let r = fx.launch(g0, Privilege::Read);
        assert_eq!(r.deps, vec![TaskId(1), TaskId(2)]);
        let total: u64 = r.plans[0].copies.iter().map(|c| c.domain.volume()).sum();
        assert_eq!(total, 3, "G[0] has 3 points, all covered by P writes");
        assert!(r.plans[0]
            .copies
            .iter()
            .all(|c| c.source != crate::plan::Source::Initial));
    }

    /// Regression (commit-path accounting): a full write over a node whose
    /// history is entirely occluded — including a composite view that
    /// *nests* another view — must prune the whole stack and leave the
    /// alive counts consistent. The seed code counted only the top-level
    /// view when pruning (leaking `composite_views`) and re-looked-up the
    /// just-pushed entry with `hist.last().unwrap()`.
    #[test]
    fn full_write_over_occluded_node_clears_view_accounting() {
        // A three-level tree: N ⊃ P{P0,P1}, P0 ⊃ Q{Q0,Q1}, plus an aliased
        // partition G of N overlapping P0 — deep enough for a view captured
        // at P0 to be nested inside a later view at N.
        let mut forest = RegionForest::new();
        let n = forest.create_root("N", IndexSpace::span(0, 29));
        let f = forest.add_field(n, "v");
        let p = forest.create_partition(
            n,
            "P",
            vec![IndexSpace::span(0, 14), IndexSpace::span(15, 29)],
        );
        let p0 = forest.subregion(p, 0);
        let q = forest.create_partition(
            p0,
            "Q",
            vec![IndexSpace::span(0, 7), IndexSpace::span(8, 14)],
        );
        let g = forest.create_partition(n, "G", vec![IndexSpace::span(5, 20)]);
        let g0 = forest.subregion(g, 0);

        let mut machine = Machine::new(1);
        let shards = ShardMap::new(1, false);
        let mut eng = Painter::new();
        let mut next = 0u32;
        let mut run =
            |eng: &mut Painter, machine: &mut Machine, region: RegionId, privilege: Privilege| {
                let id = next;
                next += 1;
                let launch = TaskLaunch {
                    id: TaskId(id),
                    name: format!("t{id}"),
                    node: 0,
                    reqs: vec![RegionRequirement::new(region, f, privilege)],
                    duration_ns: 0,
                };
                let mut ctx = AnalysisCtx {
                    forest: &forest,
                    machine,
                    shards: &shards,
                };
                eng.analyze(&launch, &mut ctx)
            };

        // Writes under Q, closed into V0 at P0 by a read of P0.
        run(
            &mut eng,
            &mut machine,
            forest.subregion(q, 0),
            Privilege::ReadWrite,
        );
        run(
            &mut eng,
            &mut machine,
            forest.subregion(q, 1),
            Privilege::ReadWrite,
        );
        run(&mut eng, &mut machine, p0, Privilege::Read);
        assert_eq!(eng.state_size().composite_views, 1, "V0 at P0");
        // A read through G closes P0's subtree from N: the new view V1
        // captures P0's history, *nesting* V0.
        run(&mut eng, &mut machine, g0, Privilege::Read);
        assert_eq!(eng.state_size().composite_views, 2, "V1 nests V0");
        // Full write over the root: every entry and every view — nested
        // ones included — is occluded and pruned in the same commit.
        run(&mut eng, &mut machine, n, Privilege::ReadWrite);
        let size = eng.state_size();
        assert_eq!(
            size.composite_views, 0,
            "all views (incl. nested) pruned by the full write"
        );
        assert_eq!(size.history_entries, 1, "only the full write remains");
    }
}
