//! The painter's algorithm, unoptimized (paper Fig 7).
//!
//! The state is a single global history per `(region tree, field)`: a list
//! of `(privilege, region)` results in commit order. Materializing a region
//! replays the history — here as one backward visibility scan, which is the
//! same computation as Fig 7's oldest-to-newest `paint` but produces the
//! dependences along the way.
//!
//! "The algorithm in Figure 7 is simple but inefficient. When materializing
//! a subregion R, the naive painter's algorithm requires testing every
//! operation in the history for overlap with R." (§5.1) — this engine is
//! exactly that baseline, kept for ablation A1. The one concession to
//! practicality is an optional occlusion-pruning rule on commit (a write
//! whose domain covers an older entry deletes it), which §5.1 also
//! describes; it is on by default and can be disabled to get the literal
//! Fig 7 behavior.

use crate::analysis::history::{HistEntry, VisScan};
use crate::analysis::{group_reqs_by_shard, ChargeSet, ReqOutcome, ShardKey, ShardedState};
use crate::engine::{CoherenceEngine, GcSweep, ShardCtx, StateSize};
use crate::task::TaskLaunch;
use viz_geometry::{AlgebraStats, IndexSpace, InternConfig, SpaceAlgebra};
use viz_sim::Op;

/// One shard's state: the global history plus the shard's interned-algebra
/// layer (the occlusion-prune containment tests go through it).
struct NaiveShard {
    hist: Vec<HistEntry>,
    alg: SpaceAlgebra,
    last_stats: AlgebraStats,
}

/// One global history per (root region, field).
pub struct PaintNaive {
    shards: ShardedState<NaiveShard>,
    prune_occluded: bool,
    intern: InternConfig,
    dirty_only: bool,
}

impl PaintNaive {
    pub fn new() -> Self {
        Self::with_intern(crate::config::env_intern())
    }

    /// Build with an explicit interning configuration.
    pub fn with_intern(intern: InternConfig) -> Self {
        PaintNaive {
            shards: ShardedState::new(),
            prune_occluded: true,
            intern,
            dirty_only: true,
        }
    }

    /// The literal Fig 7 algorithm: commit appends unconditionally and the
    /// history only ever grows.
    pub fn without_pruning() -> Self {
        PaintNaive {
            prune_occluded: false,
            ..Self::new()
        }
    }
}

impl Default for PaintNaive {
    fn default() -> Self {
        Self::new()
    }
}

impl CoherenceEngine for PaintNaive {
    fn name(&self) -> &'static str {
        "paint-naive"
    }

    fn prepare(&mut self, launch: &TaskLaunch, ctx: &ShardCtx<'_>) -> Vec<(ShardKey, Vec<u32>)> {
        let groups = group_reqs_by_shard(launch, ctx.forest);
        for (key, _) in &groups {
            let intern = self.intern;
            self.shards.get_or_insert_with(*key, || NaiveShard {
                hist: Vec::new(),
                alg: SpaceAlgebra::new(intern),
                last_stats: AlgebraStats::default(),
            });
        }
        groups
    }

    fn analyze_shard(
        &self,
        key: ShardKey,
        launch: &TaskLaunch,
        reqs: &[u32],
        ctx: &ShardCtx<'_>,
    ) -> Vec<ReqOutcome> {
        let origin = ctx.shards.origin(launch.node);
        let mut shard = self.shards.lock(key);
        let shard = &mut *shard;
        let hist = &mut shard.hist;
        let mut outcomes: Vec<ReqOutcome> = Vec::with_capacity(reqs.len());
        let mut new_entries: Vec<HistEntry> = Vec::with_capacity(reqs.len());

        for &ri in reqs {
            let req = &launch.reqs[ri as usize];
            let domain = ctx.forest.domain(req.region).clone();
            let mut scan = VisScan::new(
                domain.clone(),
                req.privilege,
                req.privilege.needs_current_values(),
            );
            for e in hist.iter().rev() {
                scan.visit(e);
                if scan.done() && self.prune_occluded {
                    break;
                }
            }
            // Charge: the whole history lives at node 0 (a single global
            // list; the naive painter predates any distribution). In the
            // literal Fig 7 mode, *every* operation in the history is
            // tested for overlap with R, including fully occluded ones —
            // "the naive painter's algorithm requires testing every
            // operation in the history" (§5.1).
            let tested = if self.prune_occluded {
                scan.entries_scanned
            } else {
                hist.len()
            };
            let mut charges = ChargeSet::new();
            charges.add(0, Op::HistScan { entries: tested });
            viz_profile::instant(viz_profile::EventKind::HistoryScan {
                entries: tested as u64,
            });
            charges.add(
                0,
                Op::GeomOp {
                    rects: scan.geom_ops,
                },
            );
            let (deps, plan) = scan.finish();
            for _ in &deps {
                charges.add(0, Op::DepRecord);
            }
            let mut out = ReqOutcome {
                req: ri,
                deps,
                plan,
                ..ReqOutcome::default()
            };
            charges.flush_into(&mut out.scan_log, origin);
            outcomes.push(out);
            new_entries.push(HistEntry {
                task: launch.id,
                req: ri,
                privilege: req.privilege,
                domain,
            });
        }

        // Commit: append the results of all requirements (Fig 7 line 20).
        for (out, entry) in outcomes.iter_mut().zip(new_entries) {
            if self.prune_occluded && entry.privilege.is_write() {
                // §5.1's occlusion rule, applied at entry granularity: an
                // older entry wholly covered by this write can never be
                // visible again.
                let mut geom = 0;
                let alg = &mut shard.alg;
                hist.retain(|old| {
                    geom += 1;
                    !alg.contains_spaces(&entry.domain, &old.domain)
                });
                out.commit_log.op(0, Op::GeomOp { rects: geom });
            }
            hist.push(entry);
        }
        let delta = shard.alg.stats().delta_since(&shard.last_stats);
        if delta.hits + delta.fast_hits + delta.misses > 0 {
            viz_profile::instant(viz_profile::EventKind::AlgebraCache {
                hits: delta.hits + delta.fast_hits,
                misses: delta.misses,
            });
        }
        shard.last_stats = shard.alg.stats();
        outcomes
    }

    fn collect(&mut self, _floor: crate::task::TaskId) -> GcSweep {
        // Union occlusion: the commit-time prune only drops an entry when a
        // *single* newer write covers it; a sweep can accumulate the union
        // of all newer write domains and drop anything underneath (e.g. a
        // whole-region read jointly occluded by four piece writes). An
        // entry fully covered by newer writes is invisible to every future
        // backward scan — it contributes no dependence and no plan source
        // (occluded entries yield no edges; ordering is transitive through
        // the covering writes, §3.2) — so dropping it is observationally
        // identical, independent of the watermark.
        let mut sweep = GcSweep::default();
        for (_, s) in self.shards.sweep_mut(self.dirty_only) {
            if !self.prune_occluded {
                continue; // literal Fig 7 mode: the history only grows
            }
            let mut cover = IndexSpace::empty();
            let mut keep = vec![true; s.hist.len()];
            for (i, e) in s.hist.iter().enumerate().rev() {
                if !cover.is_empty() && cover.contains(&e.domain) {
                    keep[i] = false;
                    continue;
                }
                if e.privilege.is_write() {
                    cover = cover.union(&e.domain);
                }
            }
            let mut idx = 0;
            s.hist.retain(|_| {
                let k = keep[idx];
                idx += 1;
                if !k {
                    sweep.history_entries += 1;
                }
                k
            });
        }
        sweep
    }

    fn state_size(&self) -> StateSize {
        let mut sz = StateSize::default();
        for (_, s) in self.shards.iter() {
            sz.history_entries += s.hist.len();
            let a = s.alg.stats();
            sz.interned_spaces += a.interned;
            sz.algebra_cache_entries += a.cache_entries;
            sz.algebra_hits += a.hits + a.fast_hits;
            sz.algebra_misses += a.misses;
        }
        sz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AnalysisCtx;
    use crate::sharding::ShardMap;
    use crate::task::{RegionRequirement, TaskId};
    use viz_region::{FieldId, RegionForest, RegionId};
    use viz_sim::Machine;

    fn setup() -> (RegionForest, RegionId, FieldId) {
        let mut f = RegionForest::new();
        let r = f.create_root_1d("A", 100);
        let fld = f.add_field(r, "v");
        (f, r, fld)
    }

    fn launch(id: u32, reqs: Vec<RegionRequirement>) -> TaskLaunch {
        TaskLaunch {
            id: TaskId(id),
            name: format!("t{id}"),
            node: 0,
            reqs,
            duration_ns: 0,
        }
    }

    #[test]
    fn independent_writers_have_no_deps() {
        let (forest, root, fld) = setup();
        let mut f2 = forest.clone();
        let p = f2.create_equal_partition_1d(root, "P", 4);
        let mut eng = PaintNaive::new();
        let mut machine = Machine::new(1);
        let shards = ShardMap::new(1, false);
        let mut ctx = AnalysisCtx {
            forest: &f2,
            machine: &mut machine,
            shards: &shards,
        };
        for i in 0..4 {
            let r = eng.analyze(
                &launch(
                    i,
                    vec![RegionRequirement::read_write(
                        f2.subregion(p, i as usize),
                        fld,
                    )],
                ),
                &mut ctx,
            );
            assert!(r.deps.is_empty(), "disjoint pieces are parallel");
        }
    }

    #[test]
    fn reader_depends_on_overlapping_writer() {
        let (forest, root, fld) = setup();
        let mut eng = PaintNaive::new();
        let mut machine = Machine::new(1);
        let shards = ShardMap::new(1, false);
        let mut ctx = AnalysisCtx {
            forest: &forest,
            machine: &mut machine,
            shards: &shards,
        };
        eng.analyze(
            &launch(0, vec![RegionRequirement::read_write(root, fld)]),
            &mut ctx,
        );
        let r = eng.analyze(
            &launch(1, vec![RegionRequirement::read(root, fld)]),
            &mut ctx,
        );
        assert_eq!(r.deps, vec![TaskId(0)]);
        assert_eq!(r.plans[0].copies.len(), 1);
    }

    #[test]
    fn pruning_bounds_history_under_repeated_writes() {
        let (forest, root, fld) = setup();
        let mut eng = PaintNaive::new();
        let mut eng_literal = PaintNaive::without_pruning();
        let mut machine = Machine::new(1);
        let shards = ShardMap::new(1, false);
        for i in 0..10 {
            let l = launch(i, vec![RegionRequirement::read_write(root, fld)]);
            let mut ctx = AnalysisCtx {
                forest: &forest,
                machine: &mut machine,
                shards: &shards,
            };
            eng.analyze(&l, &mut ctx);
            let mut ctx = AnalysisCtx {
                forest: &forest,
                machine: &mut machine,
                shards: &shards,
            };
            eng_literal.analyze(&l, &mut ctx);
        }
        assert_eq!(eng.state_size().history_entries, 1);
        assert_eq!(eng_literal.state_size().history_entries, 10);
    }

    #[test]
    fn fields_are_independent() {
        let (mut forest, root, fld) = setup();
        let fld2 = forest.add_field(root, "w");
        let mut eng = PaintNaive::new();
        let mut machine = Machine::new(1);
        let shards = ShardMap::new(1, false);
        let mut ctx = AnalysisCtx {
            forest: &forest,
            machine: &mut machine,
            shards: &shards,
        };
        eng.analyze(
            &launch(0, vec![RegionRequirement::read_write(root, fld)]),
            &mut ctx,
        );
        let r = eng.analyze(
            &launch(1, vec![RegionRequirement::read_write(root, fld2)]),
            &mut ctx,
        );
        assert!(r.deps.is_empty(), "different fields never interfere");
    }
}
