//! Ray casting: Warnock plus dominating writes (§7).
//!
//! Two changes relative to Warnock's algorithm:
//!
//! 1. **Dominating writes** (Fig 11): materializing with `read-write`
//!    privilege replaces every equivalence set covered by the region with a
//!    *single* fresh set whose history is just the write — occluded sets
//!    are pruned instead of accumulating. Equivalence sets therefore
//!    *coalesce* as well as refine.
//! 2. Because coalescing destroys the refinement tree, the BVH is instead
//!    derived from a **disjoint-and-complete partition** of the root
//!    (chosen by usage): each equivalence set is anchored under the
//!    partition child containing it, and constituent-set discovery is a
//!    region-tree query — purely local, no root traversal. "In rare cases
//!    when no subtree with disjoint-complete partitions exists, the runtime
//!    creates a K-d tree" — implemented here over the root's index space.
//!
//! The result: fewer live sets than Warnock (writes reset the
//! decomposition every iteration), no global discovery traffic, and the
//! near-flat scaling of the `RayCast` curves in Figs 12–17.
//!
//! Everything for one `(root, field)` — sets, spatial index, anchor memo,
//! usage counters — is one shard; nothing an analysis does crosses shards.

use crate::analysis::visibility::{QuerySpan, VisibilityBackend, VisibilityConfig};
use crate::analysis::warnock::{scan_eq_history, EqEntry};
use crate::analysis::{group_reqs_by_shard, ChargeSet, ReqOutcome, ShardKey, ShardedState};
use crate::engine::{CoherenceEngine, GcSweep, ShardCtx, StateSize};
use crate::plan::MaterializePlan;
use crate::task::TaskLaunch;
use viz_geometry::{
    AlgebraStats, Bvh, DynamicBvh, FxHashMap, InternConfig, Rect, SpaceAlgebra, SpaceId,
};
use viz_region::{PartitionId, Privilege, RegionForest, RegionId};
use viz_sim::{ChargeLog, NodeId, Op};

/// A live equivalence set. The domain is a handle into the shard's
/// [`SpaceAlgebra`] interner: sets refined from the same launch targets
/// share storage, and the refine/overlap algebra is memoized per shard.
struct RaySet {
    domain: SpaceId,
    hist: Vec<EqEntry>,
    owner: NodeId,
    live: bool,
    /// When a *refinement split* kills this set, the two halves that
    /// replaced it — so a commit deferred by an earlier requirement of the
    /// same launch can chase the split instead of vanishing. Stays empty
    /// for sets occluded by a dominating write (those are never the target
    /// of a pending same-launch commit: interfering requirements of one
    /// launch must be disjoint, commuting ones never occlude).
    replaced_by: Vec<u32>,
    /// Anchor positions whose buckets hold this set (anchored index only;
    /// stays empty on the K-d path). Removal walks exactly these buckets
    /// instead of sweeping every bucket in the shard — the per-launch cost
    /// of a kill is the set's own anchor count, not the live-set count.
    anchors: Vec<u32>,
}

/// Spatial index over the live sets.
enum SetIndex {
    /// Anchored under the children of a disjoint-and-complete partition:
    /// `buckets[i]` holds the set ids overlapping child `i` (a set spanning
    /// several anchors appears in each; queries deduplicate).
    Anchored {
        partition: PartitionId,
        buckets: Vec<Vec<u32>>,
        /// Static BVH over the anchor-children bounding boxes: placing a
        /// new set resolves the overlapping anchors in O(log anchors +
        /// hits) instead of sweeping every anchor. Exact (leaf rects are
        /// tested), so membership is identical to the linear scan it
        /// replaces.
        lookup: Bvh,
        /// Partition child → anchor position, so anchor resolution from a
        /// region-tree query is a hash lookup, not a `position()` sweep of
        /// the child list.
        child_pos: FxHashMap<RegionId, u32>,
    },
    /// Fallback when no such partition exists (§7.1): an incrementally
    /// maintained BVH — set churn is absorbed by leaf insert/remove with
    /// ancestor refits, rebuilding only on degradation.
    Kd { tree: DynamicBvh },
}

/// Reusable backward-scan buffers, one struct per shard. Every vector here
/// used to be allocated fresh per requirement (or per shard batch); holding
/// them in the shard means the scan stops allocating once each has grown to
/// the workload's high-water mark.
#[derive(Default)]
struct ScanScratch {
    /// Flat list of every requirement's query rects for the current shard
    /// batch — the batched backend resolves all of them in one sweep (and
    /// it is exactly the query buffer a GPU dispatch would upload).
    queries: Vec<Rect>,
    /// One `(first rect, rect count)` span into `queries` per requirement.
    spans: Vec<QuerySpan>,
    /// Raw index hits for one requirement, before sort + dedup.
    hits: Vec<u64>,
    /// Deduplicated candidate set ids for one requirement.
    candidates: Vec<u32>,
    /// Anchor positions the current requirement resolved to.
    req_anchors: Vec<u32>,
    /// Sets killed by refinement within the current requirement.
    killed: Vec<u32>,
}

/// Per-(root, field) ray-casting state — one shard.
struct FieldState {
    sets: Vec<RaySet>,
    index: SetIndex,
    /// Memoized overlapping-anchor lists per named region.
    anchor_memo: FxHashMap<RegionId, Vec<u32>>,
    live: usize,
    /// Launches observed per disjoint-and-complete partition — the usage
    /// heuristic of §7.1 that drives anchor shifting.
    usage: FxHashMap<PartitionId, u64>,
    shifts: u64,
    /// Interned-space storage and memoized set algebra for this shard.
    alg: SpaceAlgebra,
    /// Cumulative candidate ids produced by the spatial index across every
    /// requirement scanned against this shard (post-dedup). Flatness under
    /// weak scaling is *measured* from this, not inferred.
    candidates_visited: u64,
    /// Cumulative live sets actually overlap-tested by the backward scans
    /// (the sweep work a launch pays; tracks requirement overlap, not the
    /// live-set count).
    sets_swept: u64,
    /// Candidate-resolution backend for the K-d path (scalar walk or
    /// flattened batched sweep — see [`crate::analysis::visibility`]).
    vis: Box<dyn VisibilityBackend>,
    scratch: ScanScratch,
    last_stats: AlgebraStats,
    last_refits: u64,
    last_rebuilds: u64,
}

impl FieldState {
    fn new_set(&mut self, domain: SpaceId, hist: Vec<EqEntry>, owner: NodeId) -> u32 {
        let id = self.sets.len() as u32;
        self.sets.push(RaySet {
            domain,
            hist,
            owner,
            live: true,
            replaced_by: Vec::new(),
            anchors: Vec::new(),
        });
        self.live += 1;
        id
    }

    fn kill(&mut self, id: u32) {
        if self.sets[id as usize].live {
            self.sets[id as usize].live = false;
            self.live -= 1;
        }
    }
}

/// The ray-casting engine ("RayCast" / `neweqcr` in the figures).
pub struct RayCast {
    shards: ShardedState<FieldState>,
    force_kd: bool,
    use_anchor_memo: bool,
    intern: InternConfig,
    vis: VisibilityConfig,
    /// GC sweeps visit only shards scanned since the previous sweep (see
    /// [`ShardedState::sweep_mut`]); `set_dirty_tracking(false)` restores
    /// the full sweep.
    dirty_only: bool,
}

impl RayCast {
    pub fn new() -> Self {
        Self::with_intern(crate::config::env_intern())
    }

    /// Build with an explicit interning configuration; the visibility
    /// backend still defaults from the environment.
    pub fn with_intern(intern: InternConfig) -> Self {
        Self::with_config(intern, crate::config::env_visibility())
    }

    /// Build with both the interning and the candidate-resolution
    /// configuration pinned (the differential tests compare backends in
    /// one process without touching the environment).
    pub fn with_config(intern: InternConfig, vis: VisibilityConfig) -> Self {
        RayCast {
            shards: ShardedState::new(),
            force_kd: false,
            use_anchor_memo: true,
            intern,
            vis,
            dirty_only: true,
        }
    }

    /// Always use the K-d tree fallback, even when a disjoint-and-complete
    /// partition exists (ablation A3).
    pub fn force_kd_tree() -> Self {
        RayCast {
            force_kd: true,
            ..Self::new()
        }
    }

    /// Disable the overlapping-anchor memo: every launch recomputes its
    /// anchor list from the region tree. The reference for the memo's
    /// correctness property tests.
    pub fn without_anchor_memo() -> Self {
        RayCast {
            use_anchor_memo: false,
            ..Self::new()
        }
    }

    /// Choose the BVH for a root: the first disjoint-and-complete partition
    /// (the heuristic "based on which partitions tasks are using" — our
    /// benchmark programs create the primary partition first, which is the
    /// one their tasks write through), else the K-d tree fallback.
    fn init_state(
        forest: &RegionForest,
        root: RegionId,
        force_kd: bool,
        intern: InternConfig,
        vis: VisibilityConfig,
    ) -> FieldState {
        let mut alg = SpaceAlgebra::new(intern);
        let root_domain = forest.domain(root);
        let dc = if force_kd {
            Vec::new()
        } else {
            forest.disjoint_complete_partitions(root)
        };
        match dc.first() {
            Some(p) => {
                let children = forest.children(*p);
                let mut sets = Vec::with_capacity(children.len());
                let mut buckets = Vec::with_capacity(children.len());
                let mut anchor_bboxes = Vec::with_capacity(children.len());
                let mut child_pos =
                    FxHashMap::with_capacity_and_hasher(children.len(), Default::default());
                // Initial sets: one per anchor (they cover the root since
                // the partition is complete).
                for (i, c) in children.iter().enumerate() {
                    let domain = alg.intern(forest.domain(*c));
                    anchor_bboxes.push(alg.bbox(domain));
                    sets.push(RaySet {
                        domain,
                        hist: Vec::new(),
                        owner: 0,
                        live: true,
                        replaced_by: Vec::new(),
                        anchors: vec![i as u32],
                    });
                    buckets.push(vec![i as u32]);
                    child_pos.insert(*c, i as u32);
                }
                let live = sets.len();
                let lookup = Self::anchor_lookup(&anchor_bboxes);
                FieldState {
                    sets,
                    index: SetIndex::Anchored {
                        partition: *p,
                        buckets,
                        lookup,
                        child_pos,
                    },
                    anchor_memo: FxHashMap::default(),
                    live,
                    usage: FxHashMap::default(),
                    shifts: 0,
                    alg,
                    candidates_visited: 0,
                    sets_swept: 0,
                    vis: vis.build(),
                    scratch: ScanScratch::default(),
                    last_stats: AlgebraStats::default(),
                    last_refits: 0,
                    last_rebuilds: 0,
                }
            }
            None => {
                let mut tree = DynamicBvh::new();
                tree.insert(0, root_domain.bbox());
                let domain = alg.intern(root_domain);
                FieldState {
                    sets: vec![RaySet {
                        domain,
                        hist: Vec::new(),
                        owner: 0,
                        live: true,
                        replaced_by: Vec::new(),
                        anchors: Vec::new(),
                    }],
                    index: SetIndex::Kd { tree },
                    anchor_memo: FxHashMap::default(),
                    live: 1,
                    usage: FxHashMap::default(),
                    shifts: 0,
                    alg,
                    candidates_visited: 0,
                    sets_swept: 0,
                    vis: vis.build(),
                    scratch: ScanScratch::default(),
                    last_stats: AlgebraStats::default(),
                    last_refits: 0,
                    last_rebuilds: 0,
                }
            }
        }
    }

    /// The anchor-placement index: a static BVH over the anchor bounding
    /// boxes. Queries are exact (leaf rects are overlap-tested), so the
    /// anchors reported for a set's bbox are precisely those the linear
    /// `anchor_bboxes` sweep would report.
    fn anchor_lookup(anchor_bboxes: &[Rect]) -> Bvh {
        Bvh::build(
            anchor_bboxes
                .iter()
                .enumerate()
                .map(|(i, r)| (i as u32, *r))
                .collect(),
        )
    }
}

impl RayCast {
    /// Times any field state re-anchored to a different partition (§7.1:
    /// "If the application switches to using a different subtree with
    /// disjoint-complete partitions, the runtime shifts the equivalence
    /// sets to the new subtree").
    pub fn shift_count(&self) -> u64 {
        self.shards.iter().map(|(_, f)| f.shifts).sum()
    }

    /// The disjoint-and-complete partition on `region`'s path from the
    /// root, if any — the subtree this launch "votes" for.
    fn home_partition(forest: &RegionForest, region: RegionId) -> Option<PartitionId> {
        let mut cur = region;
        let mut best = None;
        while let Some(q) = forest.parent_partition(cur) {
            if forest.is_disjoint(q) && forest.is_complete(q) {
                best = Some(q);
            }
            cur = forest.parent_region(q);
        }
        best
    }

    /// Track usage and re-anchor when another disjoint-complete partition
    /// clearly dominates the current one.
    fn maybe_shift(
        state: &mut FieldState,
        forest: &RegionForest,
        home: Option<PartitionId>,
        log: &mut ChargeLog,
        origin: NodeId,
    ) {
        let Some(home) = home else { return };
        *state.usage.entry(home).or_insert(0) += 1;
        let SetIndex::Anchored { partition, .. } = &state.index else {
            return;
        };
        let current = *partition;
        if home == current {
            return;
        }
        let home_uses = state.usage[&home];
        let current_uses = state.usage.get(&current).copied().unwrap_or(0);
        if home_uses < 16 || home_uses < 4 * current_uses.max(1) {
            return;
        }
        // Shift: rebuild the anchor buckets under the new partition and
        // re-bucket every live set. This wholesale pass is the one place
        // that still walks every live set — shifts are rare (usage must
        // 4x-dominate) and rebuild the lookup structures anyway.
        let children = forest.children(home).to_vec();
        let anchor_bboxes: Vec<viz_geometry::Rect> =
            children.iter().map(|c| forest.domain(*c).bbox()).collect();
        let child_pos: FxHashMap<RegionId, u32> = children
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, i as u32))
            .collect();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); children.len()];
        let mut moved = 0usize;
        for (id, set) in state.sets.iter_mut().enumerate() {
            set.anchors.clear();
            if !set.live {
                continue;
            }
            moved += 1;
            let bb = state.alg.bbox(set.domain);
            for (i, abb) in anchor_bboxes.iter().enumerate() {
                if abb.overlaps(&bb) {
                    buckets[i].push(id as u32);
                    set.anchors.push(i as u32);
                }
            }
        }
        log.op(origin, Op::GeomOp { rects: moved });
        for _ in 0..moved {
            log.op(origin, Op::SetTouch);
        }
        let lookup = Self::anchor_lookup(&anchor_bboxes);
        state.index = SetIndex::Anchored {
            partition: home,
            buckets,
            lookup,
            child_pos,
        };
        // Refresh the anchor memo instead of clearing it wholesale: a
        // memoized list is stale only if the region's overlapping-anchor
        // set actually differs under the new partition. Recompute each
        // list once (priced as a geometry query), keep the entries that
        // come out unchanged and drop the rest. Keeping an entry is sound
        // precisely because lookups interpret the stored positions against
        // the *current* partition, and the kept value equals the fresh
        // computation against it.
        let memo = std::mem::take(&mut state.anchor_memo);
        let SetIndex::Anchored { child_pos, .. } = &state.index else {
            unreachable!("index was just re-anchored")
        };
        for (region, old) in memo {
            let overlapping = forest.overlapping_children(home, forest.domain(region));
            log.op(
                origin,
                Op::GeomOp {
                    rects: overlapping.len().max(1),
                },
            );
            let fresh: Vec<u32> = overlapping.into_iter().map(|c| child_pos[&c]).collect();
            if fresh == old {
                state.anchor_memo.insert(region, fresh);
            }
        }
        state.usage.clear();
        state.shifts += 1;
    }
}

impl Default for RayCast {
    fn default() -> Self {
        Self::new()
    }
}

impl CoherenceEngine for RayCast {
    fn name(&self) -> &'static str {
        "raycast"
    }

    fn prepare(&mut self, launch: &TaskLaunch, ctx: &ShardCtx<'_>) -> Vec<(ShardKey, Vec<u32>)> {
        let groups = group_reqs_by_shard(launch, ctx.forest);
        for (key, _) in &groups {
            let force_kd = self.force_kd;
            let intern = self.intern;
            let vis = self.vis;
            self.shards.get_or_insert_with(*key, || {
                Self::init_state(ctx.forest, key.0, force_kd, intern, vis)
            });
        }
        groups
    }

    fn analyze_shard(
        &self,
        key: ShardKey,
        launch: &TaskLaunch,
        reqs: &[u32],
        ctx: &ShardCtx<'_>,
    ) -> Vec<ReqOutcome> {
        let origin = ctx.shards.origin(launch.node);
        let mut shard = self.shards.lock(key);
        // Split the ShardRef borrow once so disjoint fields (index vs memo
        // vs sets) can be borrowed independently below.
        let state: &mut FieldState = &mut shard;
        let mut outcomes: Vec<ReqOutcome> = Vec::with_capacity(reqs.len());
        // Deferred commits: (set ids, entry) per requirement.
        let mut commits: Vec<(Vec<u32>, EqEntry)> = Vec::with_capacity(reqs.len());

        // On the K-d path, collect every requirement's query rects up
        // front so the batched backend can resolve the whole shard's
        // candidate set in one sweep (a requirement later in the batch
        // re-resolves against the current tree when an earlier one
        // refined it — see `analysis::visibility`).
        state.scratch.queries.clear();
        state.scratch.spans.clear();
        if matches!(state.index, SetIndex::Kd { .. }) {
            for &ri in reqs {
                let rects = ctx.forest.domain(launch.reqs[ri as usize].region).rects();
                let start = state.scratch.queries.len() as u32;
                state.scratch.queries.extend_from_slice(rects);
                state.scratch.spans.push((start, rects.len() as u32));
            }
            state.vis.begin_batch();
        }

        for (qk, &ri) in reqs.iter().enumerate() {
            let req = &launch.reqs[ri as usize];
            let mut out = ReqOutcome {
                req: ri,
                ..ReqOutcome::default()
            };
            let target = ctx.forest.domain(req.region).clone();
            let target_id = state.alg.intern(&target);
            if !self.force_kd {
                let home = Self::home_partition(ctx.forest, req.region);
                Self::maybe_shift(state, ctx.forest, home, &mut out.scan_log, origin);
            }

            // ---- Ray casting: find the candidate sets through the index.
            // With anchors this is a (replicated, local) region-tree query;
            // the memoized anchor list makes the steady state O(1).
            // `candidates`/`req_anchors` are shard scratch, moved out for
            // the duration of this requirement (borrow split) and returned
            // below — the scan allocates nothing at steady state.
            let mut candidates = std::mem::take(&mut state.scratch.candidates);
            candidates.clear();
            // The anchor positions this requirement resolved to (used again
            // by the dominating-write commit below).
            let mut req_anchors = std::mem::take(&mut state.scratch.req_anchors);
            req_anchors.clear();
            match &mut state.index {
                SetIndex::Anchored {
                    partition,
                    buckets,
                    child_pos,
                    ..
                } => {
                    let compute = |log: &mut ChargeLog| {
                        let kids = ctx.forest.overlapping_children(*partition, &target);
                        log.op(
                            origin,
                            Op::GeomOp {
                                rects: kids.len().max(1),
                            },
                        );
                        kids.into_iter()
                            .map(|c| child_pos[&c])
                            .collect::<Vec<u32>>()
                    };
                    if self.use_anchor_memo {
                        out.scan_log.op(origin, Op::Memo);
                        match state.anchor_memo.get(&req.region) {
                            Some(a) => req_anchors.extend_from_slice(a),
                            None => {
                                let idx = compute(&mut out.scan_log);
                                req_anchors.extend_from_slice(&idx);
                                state.anchor_memo.insert(req.region, idx);
                            }
                        }
                    } else {
                        req_anchors.extend_from_slice(&compute(&mut out.scan_log));
                    }
                    for a in &req_anchors {
                        candidates.extend(buckets[*a as usize].iter().copied());
                    }
                    // A set spanning several anchors appears in each bucket:
                    // deduplicate so it is scanned (and folded) once.
                    candidates.sort_unstable();
                    candidates.dedup();
                    viz_profile::instant(viz_profile::EventKind::BvhTraversal {
                        nodes: candidates.len() as u64,
                    });
                }
                SetIndex::Kd { tree } => {
                    let hits = &mut state.scratch.hits;
                    hits.clear();
                    state
                        .vis
                        .resolve(tree, &state.scratch.queries, &state.scratch.spans, qk, hits);
                    hits.sort_unstable();
                    hits.dedup();
                    out.scan_log.op(
                        origin,
                        Op::GeomOp {
                            rects: hits.len().max(1),
                        },
                    );
                    candidates.extend(hits.iter().map(|h| *h as u32));
                    viz_profile::instant(viz_profile::EventKind::KdTraversal {
                        nodes: candidates.len() as u64,
                    });
                }
            }
            state.candidates_visited += candidates.len() as u64;

            // ---- Refine straddlers; collect the constituent sets.
            // (`relevant` stays requirement-owned: it moves into `commits`.)
            let mut relevant: Vec<u32> = Vec::new();
            let mut killed = std::mem::take(&mut state.scratch.killed);
            killed.clear();
            let mut tests = 0usize;
            // All remote work for this requirement — refinements, history
            // scans, invalidations — is batched into one concurrent flush
            // (Legion issues these as parallel active messages).
            let mut charges = ChargeSet::new();
            for &c in &candidates {
                if !state.sets[c as usize].live {
                    continue;
                }
                tests += 1;
                let dom = state.sets[c as usize].domain;
                if !state.alg.overlaps(dom, target_id) {
                    continue;
                }
                if state.alg.contains(target_id, dom) {
                    relevant.push(c);
                    continue;
                }
                // Split c into inside/outside halves (the Warnock refine —
                // ray casting still refines on partial overlaps).
                let inside = state.alg.intersect(dom, target_id);
                let outside = state.alg.subtract(dom, target_id);
                let (hist, old_owner) = {
                    let s = &state.sets[c as usize];
                    (s.hist.clone(), s.owner)
                };
                state.kill(c);
                killed.push(c);
                // The inside half migrates to its first user's node.
                let inside_id = state.new_set(inside, hist.clone(), launch.node);
                let outside_id = state.new_set(outside, hist, old_owner);
                state.sets[c as usize].replaced_by = vec![inside_id, outside_id];
                Self::index_replace(
                    &mut state.index,
                    &mut state.sets,
                    &state.alg,
                    c,
                    &[inside_id, outside_id],
                );
                for op in [
                    Op::EqSetRefine,
                    Op::EqSetCreate,
                    Op::EqSetCreate,
                    Op::GeomOp { rects: 2 },
                ] {
                    charges.add(old_owner, op);
                }
                relevant.push(inside_id);
            }
            if !killed.is_empty() {
                Self::index_remove_dead(&mut state.index, &mut state.sets, &killed);
                viz_profile::instant(viz_profile::EventKind::EqSetRefined {
                    count: killed.len() as u64,
                });
                viz_profile::instant(viz_profile::EventKind::EqSetCreated {
                    count: 2 * killed.len() as u64,
                });
            }
            out.scan_log.op(
                origin,
                Op::GeomOp {
                    rects: tests.max(1),
                },
            );
            state.sets_swept += tests as u64;
            viz_profile::instant(viz_profile::EventKind::ScanSweep {
                candidates: candidates.len() as u64,
                swept: tests as u64,
            });

            // ---- Scan histories for dependences + plan.
            let mut deps = Vec::new();
            let mut plan = if req.privilege.needs_current_values() {
                MaterializePlan::default()
            } else {
                let Privilege::Reduce(op) = req.privilege else {
                    unreachable!()
                };
                MaterializePlan::identity(op)
            };
            let mut entries_scanned = 0usize;
            for n in &relevant {
                let s = &state.sets[*n as usize];
                scan_eq_history(
                    &s.hist,
                    state.alg.space(s.domain),
                    req.privilege,
                    &mut deps,
                    &mut plan,
                );
                entries_scanned += s.hist.len();
                charges.add(s.owner, Op::SetTouch);
                charges.add(
                    s.owner,
                    Op::HistScan {
                        entries: s.hist.len(),
                    },
                );
            }
            viz_profile::instant(viz_profile::EventKind::HistoryScan {
                entries: entries_scanned as u64,
            });
            for _ in &deps {
                out.scan_log.op(origin, Op::DepRecord);
            }
            if !req.privilege.needs_current_values() {
                plan.copies.clear();
                plan.reductions.clear();
            }
            out.deps = deps;
            out.plan = plan;

            // ---- Dominating write (Fig 11): one fresh set replaces every
            // constituent set; the occluded sets are pruned.
            let entry = EqEntry {
                task: launch.id,
                req: ri,
                privilege: req.privilege,
            };
            if req.privilege.is_write() {
                for n in &relevant {
                    let owner = state.sets[*n as usize].owner;
                    state.kill(*n);
                    if owner != origin {
                        charges.add(owner, Op::EqSetRefine);
                    }
                }
                // One fresh set per anchor the write covers, keeping the
                // index aligned with the disjoint partition (a write within
                // one anchor — the common case — creates exactly one set,
                // as in Fig 11).
                let pieces: Vec<SpaceId> = match &state.index {
                    SetIndex::Anchored { partition, .. } => {
                        // Borrow the child list instead of cloning it: the
                        // clone was O(anchors) per write requirement — the
                        // single largest per-launch term at weak scale.
                        let kids = ctx.forest.children(*partition);
                        let alg = &mut state.alg;
                        let mut out = Vec::with_capacity(req_anchors.len());
                        for a in &req_anchors {
                            let adom = alg.intern(ctx.forest.domain(kids[*a as usize]));
                            let piece = alg.intersect(target_id, adom);
                            if !alg.is_empty_space(piece) {
                                out.push(piece);
                            }
                        }
                        out
                    }
                    SetIndex::Kd { .. } => vec![target_id],
                };
                // The occluded constituent sets coalesce into the fresh
                // dominating-write sets.
                viz_profile::instant(viz_profile::EventKind::EqSetCoalesced {
                    count: relevant.len() as u64,
                });
                let mut new_ids = Vec::with_capacity(pieces.len());
                for piece in pieces {
                    let id = state.new_set(piece, Vec::new(), launch.node);
                    out.scan_log.op(origin, Op::EqSetCreate);
                    new_ids.push(id);
                }
                viz_profile::instant(viz_profile::EventKind::EqSetCreated {
                    count: new_ids.len() as u64,
                });
                Self::index_replace(
                    &mut state.index,
                    &mut state.sets,
                    &state.alg,
                    u32::MAX,
                    &new_ids,
                );
                Self::index_remove_dead(&mut state.index, &mut state.sets, &relevant);
                commits.push((new_ids, entry));
            } else {
                commits.push((relevant, entry));
            }
            charges.flush_into(&mut out.scan_log, origin);
            outcomes.push(out);
            // Return the scratch buffers (capacity intact) to the shard.
            state.scratch.candidates = candidates;
            state.scratch.req_anchors = req_anchors;
            state.scratch.killed = killed;
        }

        // ---- Commit: append to each requirement's target sets. The sets
        // live in the shard this analysis already holds; a requirement that
        // resolved to no sets (empty target) commits nothing — there is no
        // state lookup left to fail. A set another requirement of this SAME
        // launch split after this one's scan forwards the commit to its
        // replacement halves (dropping it would lose the access entirely);
        // sets occluded by a dominating write stay dropped.
        for (out, (ids, entry)) in outcomes.iter_mut().zip(commits) {
            let mut stack = ids;
            while let Some(n) = stack.pop() {
                let s = &mut state.sets[n as usize];
                if !s.live {
                    stack.extend(s.replaced_by.iter().copied());
                    continue;
                }
                if entry.privilege.is_write() && !s.hist.is_empty() {
                    s.hist.clear();
                }
                s.hist.push(entry.clone());
                // One-way commit notification; the append is handled by the
                // owner's message service. A mutating commit migrates the
                // set to the task's node (Legion moves equivalence-set
                // metadata to its active users).
                out.commit_log.send(origin, s.owner, 64);
                if entry.privilege.is_mutating() {
                    s.owner = launch.node;
                }
            }
        }
        let delta = state.alg.stats().delta_since(&state.last_stats);
        if delta.hits + delta.fast_hits + delta.misses > 0 {
            viz_profile::instant(viz_profile::EventKind::AlgebraCache {
                hits: delta.hits + delta.fast_hits,
                misses: delta.misses,
            });
        }
        state.last_stats = state.alg.stats();
        if let SetIndex::Kd { tree } = &state.index {
            let (refits, rebuilds) = (tree.refits(), tree.rebuilds());
            let (dr, db) = (refits - state.last_refits, rebuilds - state.last_rebuilds);
            if dr + db > 0 {
                viz_profile::instant(viz_profile::EventKind::BvhMaintain {
                    refits: dr,
                    rebuilds: db,
                });
            }
            state.last_refits = refits;
            state.last_rebuilds = rebuilds;
        }
        outcomes
    }

    /// Drop the dead sets that refinement and dominating writes leave
    /// behind. Compaction is **order-preserving**: live sets keep their
    /// relative order (and new sets still get larger ids than every
    /// retained one), so the id-sorted candidate lists visit sets in the
    /// same sequence as an uncollected engine — which is what keeps deps,
    /// plans, and charges byte-identical. Reusing freed ids via a free
    /// list would break exactly that ordering.
    ///
    /// `replaced_by` chains only forward commits *within* one launch's
    /// `analyze_shard`, so between launches the dead sets (and their cloned
    /// histories) are unreachable garbage.
    fn collect(&mut self, _floor: crate::task::TaskId) -> GcSweep {
        let mut sweep = GcSweep::default();
        for (_, s) in self.shards.sweep_mut(self.dirty_only) {
            if s.live == s.sets.len() {
                continue;
            }
            let mut remap = vec![u32::MAX; s.sets.len()];
            let mut next = 0u32;
            for (i, set) in s.sets.iter().enumerate() {
                if set.live {
                    remap[i] = next;
                    next += 1;
                } else {
                    sweep.equivalence_sets += 1;
                    sweep.history_entries += set.hist.len();
                }
            }
            s.sets.retain(|set| set.live);
            for set in &mut s.sets {
                set.replaced_by.clear();
            }
            match &mut s.index {
                SetIndex::Anchored { buckets, .. } => {
                    // Buckets hold only live ids (`index_remove_dead` runs
                    // after every kill) — just renumber them.
                    for bucket in buckets.iter_mut() {
                        for id in bucket.iter_mut() {
                            debug_assert_ne!(remap[*id as usize], u32::MAX);
                            *id = remap[*id as usize];
                        }
                    }
                }
                SetIndex::Kd { tree } => {
                    // Rebuild over the renumbered live sets: the hit set of
                    // a query depends only on the leaves, not the tree
                    // shape, so a fresh tree answers identically.
                    let mut fresh = DynamicBvh::new();
                    for (i, set) in s.sets.iter().enumerate() {
                        fresh.insert(i as u64, s.alg.bbox(set.domain));
                    }
                    *tree = fresh;
                    s.last_refits = tree.refits();
                    s.last_rebuilds = tree.rebuilds();
                }
            }
        }
        sweep
    }

    // Coarsening is native here: a dominating write already replaces every
    // covered set with one fresh set per anchor (Fig 11), so the engine
    // ignores `set_coarsening` — there is no re-converged sibling state a
    // sweep could find that the next write wave would not coalesce anyway.

    fn set_dirty_tracking(&mut self, on: bool) {
        self.dirty_only = on;
    }

    fn state_size(&self) -> StateSize {
        let mut size = StateSize::default();
        for (_, s) in self.shards.iter() {
            size.equivalence_sets += s.live;
            size.index_nodes += match &s.index {
                SetIndex::Anchored { buckets, .. } => buckets.len(),
                SetIndex::Kd { tree } => tree.len(),
            };
            size.memo_entries += s.anchor_memo.values().map(Vec::len).sum::<usize>();
            for set in &s.sets {
                if set.live {
                    size.history_entries += set.hist.len();
                }
            }
            let a = s.alg.stats();
            size.interned_spaces += a.interned;
            size.algebra_cache_entries += a.cache_entries;
            size.algebra_hits += a.hits + a.fast_hits;
            size.algebra_misses += a.misses;
            size.candidates_visited += s.candidates_visited;
            size.sets_swept += s.sets_swept;
        }
        size
    }
}

impl RayCast {
    /// Register new sets in the index: for the anchored index, each set is
    /// placed in every anchor bucket its bounding box overlaps (queries
    /// filter exactly and deduplicate). The overlapping anchors come from
    /// the static anchor-lookup BVH — O(log anchors + hits) per set, with
    /// membership identical to a linear sweep of `anchor_bboxes` — and are
    /// recorded on the set so its eventual removal touches only those
    /// buckets.
    fn index_replace(
        index: &mut SetIndex,
        sets: &mut [RaySet],
        alg: &SpaceAlgebra,
        _old: u32,
        new_ids: &[u32],
    ) {
        match index {
            SetIndex::Anchored {
                buckets, lookup, ..
            } => {
                for id in new_ids {
                    let bb = alg.bbox(sets[*id as usize].domain);
                    let anchors = &mut sets[*id as usize].anchors;
                    anchors.clear();
                    lookup.query(&bb, anchors);
                    for a in anchors.iter() {
                        buckets[*a as usize].push(*id);
                    }
                }
            }
            SetIndex::Kd { tree } => {
                for id in new_ids {
                    tree.insert(*id as u64, alg.bbox(sets[*id as usize].domain));
                }
            }
        }
    }

    /// Unregister dead sets. Each dead set's recorded anchor list names
    /// exactly the buckets holding it, so the cost is the dead sets' own
    /// footprint — the wholesale `retain` over every bucket this replaces
    /// was O(live sets) per kill batch. `swap_remove` is safe because
    /// queries sort + dedup their candidate lists, so bucket-internal
    /// order is unobservable.
    fn index_remove_dead(index: &mut SetIndex, sets: &mut [RaySet], dead: &[u32]) {
        match index {
            SetIndex::Anchored { buckets, .. } => {
                for d in dead {
                    let anchors = std::mem::take(&mut sets[*d as usize].anchors);
                    for a in &anchors {
                        let bucket = &mut buckets[*a as usize];
                        if let Some(pos) = bucket.iter().position(|m| m == d) {
                            bucket.swap_remove(pos);
                        }
                    }
                }
            }
            SetIndex::Kd { tree } => {
                for d in dead {
                    tree.remove(*d as u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AnalysisCtx;
    use crate::plan::AnalysisResult;
    use crate::sharding::ShardMap;
    use crate::task::{RegionRequirement, TaskId};
    use proptest::prelude::*;
    use viz_geometry::IndexSpace;
    use viz_region::{FieldId, RedOpRegistry};
    use viz_sim::Machine;

    struct Fixture {
        forest: RegionForest,
        field: FieldId,
        machine: Machine,
        shards: ShardMap,
        eng: RayCast,
        next: u32,
    }

    fn paper_fixture() -> (Fixture, RegionId, PartitionId, PartitionId) {
        let mut forest = RegionForest::new();
        let n = forest.create_root("N", IndexSpace::span(0, 29));
        let field = forest.add_field(n, "up");
        let p = forest.create_partition(
            n,
            "P",
            vec![
                IndexSpace::span(0, 9),
                IndexSpace::span(10, 19),
                IndexSpace::span(20, 29),
            ],
        );
        let g = forest.create_partition(
            n,
            "G",
            vec![
                IndexSpace::from_points([10, 11, 20].map(viz_geometry::Point::p1)),
                IndexSpace::from_points([8, 9, 20, 21].map(viz_geometry::Point::p1)),
                IndexSpace::from_points([9, 18, 19].map(viz_geometry::Point::p1)),
            ],
        );
        (
            Fixture {
                forest,
                field,
                machine: Machine::new(1),
                shards: ShardMap::new(1, false),
                eng: RayCast::new(),
                next: 0,
            },
            n,
            p,
            g,
        )
    }

    impl Fixture {
        fn launch(&mut self, region: RegionId, privilege: Privilege) -> AnalysisResult {
            let id = self.next;
            self.next += 1;
            let launch = TaskLaunch {
                id: TaskId(id),
                name: format!("t{id}"),
                node: 0,
                reqs: vec![RegionRequirement::new(region, self.field, privilege)],
                duration_ns: 0,
            };
            let mut ctx = AnalysisCtx {
                forest: &self.forest,
                machine: &mut self.machine,
                shards: &self.shards,
            };
            self.eng.analyze(&launch, &mut ctx)
        }
    }

    #[test]
    fn dependences_match_paper_example() {
        let (mut fx, _n, p, g) = paper_fixture();
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        for i in 0..3 {
            let r = fx.launch(fx.forest.subregion(p, i), Privilege::ReadWrite);
            assert!(r.deps.is_empty());
        }
        let r3 = fx.launch(fx.forest.subregion(g, 0), sum);
        assert_eq!(r3.deps, vec![TaskId(1), TaskId(2)]);
        let r4 = fx.launch(fx.forest.subregion(g, 1), sum);
        assert_eq!(r4.deps, vec![TaskId(0), TaskId(2)]);
        let r5 = fx.launch(fx.forest.subregion(g, 2), sum);
        assert_eq!(r5.deps, vec![TaskId(0), TaskId(1)]);
        let r6 = fx.launch(fx.forest.subregion(p, 0), Privilege::ReadWrite);
        assert_eq!(r6.deps, vec![TaskId(0), TaskId(4), TaskId(5)]);
    }

    /// §7: "The write privilege causes any refinements and their histories
    /// ... to be discarded, reducing the number of equivalence sets."
    #[test]
    fn dominating_writes_coalesce_sets_each_iteration() {
        let (mut fx, _n, p, g) = paper_fixture();
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        let mut after_writes = Vec::new();
        let mut after_ghosts = Vec::new();
        for _ in 0..4 {
            for i in 0..3 {
                fx.launch(fx.forest.subregion(p, i), Privilege::ReadWrite);
            }
            after_writes.push(fx.eng.state_size().equivalence_sets);
            for i in 0..3 {
                fx.launch(fx.forest.subregion(g, i), sum);
            }
            after_ghosts.push(fx.eng.state_size().equivalence_sets);
        }
        // After the write wave the decomposition returns to the 3 pieces.
        assert!(
            after_writes.iter().all(|s| *s == 3),
            "writes must coalesce back to the primary pieces: {after_writes:?}"
        );
        // Ghost refinement re-fragments, but to a stable bounded count.
        assert_eq!(after_ghosts[1], after_ghosts[3]);
        assert!(after_ghosts[0] > 3);
    }

    #[test]
    fn raycast_keeps_fewer_sets_than_warnock() {
        use crate::analysis::warnock::Warnock;
        let (mut fx, _n, p, g) = paper_fixture();
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        let mut weng = Warnock::new();
        let mut wmachine = Machine::new(1);
        let mut next = 0u32;
        for _ in 0..4 {
            for phase in 0..2 {
                for i in 0..3 {
                    let (part, privilege) = if phase == 0 {
                        (p, Privilege::ReadWrite)
                    } else {
                        (g, sum)
                    };
                    let region = fx.forest.subregion(part, i);
                    let launch = TaskLaunch {
                        id: TaskId(next),
                        name: String::new(),
                        node: 0,
                        reqs: vec![RegionRequirement::new(region, fx.field, privilege)],
                        duration_ns: 0,
                    };
                    next += 1;
                    let mut ctx = AnalysisCtx {
                        forest: &fx.forest,
                        machine: &mut wmachine,
                        shards: &fx.shards,
                    };
                    weng.analyze(&launch, &mut ctx);
                    let mut ctx = AnalysisCtx {
                        forest: &fx.forest,
                        machine: &mut fx.machine,
                        shards: &fx.shards,
                    };
                    fx.eng.analyze(&launch, &mut ctx);
                    fx.next = next;
                }
            }
        }
        let ray = fx.eng.state_size().equivalence_sets;
        let war = weng.state_size().equivalence_sets;
        assert!(
            ray <= war,
            "ray casting must maintain fewer sets (ray {ray} vs warnock {war})"
        );
    }

    #[test]
    fn kd_fallback_when_no_disjoint_complete_partition() {
        let mut forest = RegionForest::new();
        let n = forest.create_root("N", IndexSpace::span(0, 19));
        let field = forest.add_field(n, "v");
        // Only an aliased, incomplete partition exists.
        forest.create_partition(
            n,
            "G",
            vec![IndexSpace::span(0, 12), IndexSpace::span(8, 15)],
        );
        let g = forest.partitions_of(n)[0];
        let mut fx = Fixture {
            forest,
            field,
            machine: Machine::new(1),
            shards: ShardMap::new(1, false),
            eng: RayCast::new(),
            next: 0,
        };
        let g0 = fx.forest.subregion(g, 0);
        let g1 = fx.forest.subregion(g, 1);
        let r0 = fx.launch(g0, Privilege::ReadWrite);
        assert!(r0.deps.is_empty());
        let r1 = fx.launch(g1, Privilege::ReadWrite);
        assert_eq!(r1.deps, vec![TaskId(0)], "overlap through the K-d index");
        let r2 = fx.launch(n, Privilege::Read);
        assert_eq!(r2.deps, vec![TaskId(0), TaskId(1)]);
        let total: u64 = r2.plans[0].copies.iter().map(|c| c.domain.volume()).sum();
        assert_eq!(total, 20);
    }

    #[test]
    fn plan_reads_across_pieces() {
        let (mut fx, n, p, _) = paper_fixture();
        for i in 0..3 {
            fx.launch(fx.forest.subregion(p, i), Privilege::ReadWrite);
        }
        let r = fx.launch(n, Privilege::Read);
        assert_eq!(r.deps.len(), 3);
        let total: u64 = r.plans[0].copies.iter().map(|c| c.domain.volume()).sum();
        assert_eq!(total, 30);
        assert!(r.plans[0]
            .copies
            .iter()
            .all(|c| c.source != crate::plan::Source::Initial));
    }

    /// Regression (commit path): a requirement that resolves to *no*
    /// equivalence sets — here a write to an empty region — must commit as
    /// a no-op. The seed committed through
    /// `self.fields.get_mut(&key).unwrap()` under the assumption the scan
    /// left something to commit to.
    #[test]
    fn commit_with_no_relevant_sets_is_a_noop() {
        let (mut fx, n, _p, _g) = paper_fixture();
        let e = fx
            .forest
            .create_partition(n, "E", vec![IndexSpace::empty()]);
        let empty = fx.forest.subregion(e, 0);
        let r = fx.launch(empty, Privilege::ReadWrite);
        assert!(r.deps.is_empty());
        assert!(r.plans[0].copies.is_empty(), "nothing to materialize");
        assert_eq!(fx.eng.state_size().equivalence_sets, 3);
        let r2 = fx.launch(n, Privilege::Read);
        assert!(r2.deps.is_empty(), "empty-region write left no history");
    }

    /// Regression (§7.1 shifting): re-anchoring used to clear the whole
    /// anchor memo; it must only invalidate regions whose overlapping-
    /// anchor sets actually changed under the new partition.
    #[test]
    fn shift_keeps_memo_entries_whose_anchors_are_unchanged() {
        let (mut fx, _n, p, _g) = paper_fixture();
        // A second disjoint-and-complete partition: Q0 = [0,14], Q1 = [15,29].
        // P0 = [0,9] overlaps exactly {Q0}: its memo entry [0] is valid
        // under both partitions. P2 = [20,29] maps to anchor 2 under P but
        // anchor 1 under Q: stale.
        let n = fx.forest.root_of(fx.forest.subregion(p, 0));
        let q = fx.forest.create_partition(
            n,
            "Q",
            vec![IndexSpace::span(0, 14), IndexSpace::span(15, 29)],
        );
        for i in 0..3 {
            fx.launch(fx.forest.subregion(p, i), Privilege::ReadWrite);
        }
        assert_eq!(fx.eng.shift_count(), 0);
        // Drive usage of Q until the shift heuristic fires (≥16 uses and
        // ≥4× the current partition's).
        let q0 = fx.forest.subregion(q, 0);
        for _ in 0..16 {
            fx.launch(q0, Privilege::Read);
        }
        assert_eq!(fx.eng.shift_count(), 1, "re-anchored to Q");
        // The memo holds Q0 (just looked up) *and* the still-valid P0
        // entry; P1 and P2 were invalidated. The seed's wholesale clear
        // leaves only Q0.
        assert_eq!(fx.eng.state_size().memo_entries, 2);
        // Post-shift answers stay correct: reading P2 sees the P-wave
        // write, through a freshly recomputed anchor list.
        let r = fx.launch(fx.forest.subregion(p, 2), Privilege::Read);
        assert_eq!(r.deps, vec![TaskId(2)]);
    }

    /// One step of a random workload over the paper fixture plus a second
    /// disjoint-complete partition (so anchor shifts can trigger).
    #[derive(Clone, Debug)]
    struct RandOp {
        part: u8,
        child: u8,
        privilege: u8,
    }

    fn rand_op() -> impl Strategy<Value = RandOp> {
        (0u8..4, 0u8..3, 0u8..3).prop_map(|(part, child, privilege)| RandOp {
            part,
            child,
            privilege,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The anchor memo is a pure cache: across random refine sequences
        /// — including usage-driven anchor shifts — the memoized engine
        /// must produce exactly the dependences and plans of an engine
        /// that recomputes every anchor lookup from the region tree.
        #[test]
        fn anchor_memo_agrees_with_unmemoized(
            ops in prop::collection::vec(rand_op(), 1..60),
        ) {
            let (mut fx, n, p, g) = paper_fixture();
            let q = fx.forest.create_partition(
                n,
                "Q",
                vec![IndexSpace::span(0, 14), IndexSpace::span(15, 29)],
            );
            let mut bare = RayCast::without_anchor_memo();
            let mut bare_machine = Machine::new(1);
            for (i, op) in ops.iter().enumerate() {
                let region = match op.part {
                    0 => fx.forest.subregion(p, (op.child % 3) as usize),
                    1 => fx.forest.subregion(g, (op.child % 3) as usize),
                    // Bias toward Q so shift heuristics actually fire.
                    _ => fx.forest.subregion(q, (op.child % 2) as usize),
                };
                let privilege = match op.privilege {
                    0 => Privilege::ReadWrite,
                    1 => Privilege::Read,
                    _ => Privilege::Reduce(RedOpRegistry::SUM),
                };
                let launch = TaskLaunch {
                    id: TaskId(i as u32),
                    name: String::new(),
                    node: 0,
                    reqs: vec![RegionRequirement::new(region, fx.field, privilege)],
                    duration_ns: 0,
                };
                let mut ctx = AnalysisCtx {
                    forest: &fx.forest,
                    machine: &mut fx.machine,
                    shards: &fx.shards,
                };
                let memoized = fx.eng.analyze(&launch, &mut ctx);
                let mut ctx = AnalysisCtx {
                    forest: &fx.forest,
                    machine: &mut bare_machine,
                    shards: &fx.shards,
                };
                let reference = bare.analyze(&launch, &mut ctx);
                prop_assert_eq!(&memoized.deps, &reference.deps, "launch {}", i);
                prop_assert_eq!(&memoized.plans, &reference.plans, "launch {}", i);
            }
            prop_assert_eq!(
                fx.eng.state_size().equivalence_sets,
                bare.state_size().equivalence_sets
            );
        }
    }
}
