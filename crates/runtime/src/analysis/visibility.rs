//! Pluggable candidate-resolution backends for the raycast K-d path.
//!
//! When no disjoint-and-complete partition exists, the raycast engine
//! resolves each requirement's candidate equivalence sets by querying an
//! incrementally maintained [`DynamicBvh`] (§7.1's K-d fallback). Those
//! queries are independent per requirement — a *batch* of visibility rays —
//! which makes them a natural target for the ROADMAP's flatten-and-sweep
//! plan: snapshot the tree into a [`FlatBvh`] (pre-order SoA arrays) and
//! answer the whole shard's pending queries in one stackless sweep.
//!
//! Two [`VisibilityBackend`] implementations exist:
//!
//! * [`ScalarVisibility`] — the original per-query walk of the dynamic
//!   tree. Zero setup cost; the right choice for small shards.
//! * [`BatchVisibility`] — flattens once per tree epoch, sweeps every
//!   query of the shard batch in one pass, and serves each requirement's
//!   candidates from the precomputed hit ranges. Falls back to the scalar
//!   walk while the tree holds fewer than `batch_min` leaves.
//!
//! **Invisibility contract.** Both backends return *exactly* the ids of
//! live leaves overlapping each query, so after the caller's sort + dedup
//! the candidate sets — and therefore every downstream charge, dependence,
//! plan, and value — are identical. The batch backend maintains this
//! exactly: snapshots record the tree's mutation epoch, every structural
//! mutation bumps it, and a stale sweep is re-resolved against the current
//! tree before any requirement consumes it (requirements later in a batch
//! observe refinements made by earlier ones, just as the scalar path
//! does). The differential proptests in
//! `crates/runtime/tests/prop_vis_backend_differential.rs` pin this.
//!
//! Backend selection follows the [`intern`](viz_geometry::InternConfig)
//! pattern: `crate::config::env_visibility()` reads `VIZ_VIS_BACKEND` /
//! `VIZ_VIS_BATCH_MIN` (through the config front door), and
//! `RuntimeConfig::visibility_backend` pins it in-process for the
//! differential tests.

use viz_geometry::{DynamicBvh, FlatBvh, Rect};

/// Which candidate-resolution implementation the raycast K-d path uses.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum VisibilityKind {
    /// Per-query traversal of the dynamic tree (the original path).
    #[default]
    Scalar,
    /// Flattened-snapshot batched sweep ([`FlatBvh`]).
    Batch,
}

/// Default leaf-count threshold below which the batch backend falls back
/// to scalar traversal (`VIZ_VIS_BATCH_MIN`).
pub const DEFAULT_BATCH_MIN: usize = 64;

/// Candidate-resolution configuration (see the `VIZ_VIS_BACKEND` /
/// `VIZ_VIS_BATCH_MIN` rows of the [`crate::RuntimeConfig`] env table).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct VisibilityConfig {
    pub kind: VisibilityKind,
    /// Minimum live leaves before the batch backend flattens; below this
    /// the snapshot cost cannot amortize and it runs the scalar walk.
    pub batch_min: usize,
}

impl Default for VisibilityConfig {
    fn default() -> Self {
        VisibilityConfig {
            kind: VisibilityKind::Scalar,
            batch_min: DEFAULT_BATCH_MIN,
        }
    }
}

impl VisibilityConfig {
    /// The scalar per-query backend (the default).
    pub fn scalar() -> Self {
        VisibilityConfig::default()
    }

    /// The batched backend with the default fallback threshold.
    pub fn batch() -> Self {
        VisibilityConfig {
            kind: VisibilityKind::Batch,
            ..VisibilityConfig::default()
        }
    }

    /// Override the scalar-fallback threshold (0 = always batch).
    pub fn batch_min(mut self, n: usize) -> Self {
        self.batch_min = n;
        self
    }

    /// Read `VIZ_VIS_BACKEND` (`batch` enables the flattened sweep;
    /// anything else — or unset — stays scalar) and `VIZ_VIS_BATCH_MIN`
    /// (default [`DEFAULT_BATCH_MIN`]).
    #[deprecated(
        since = "0.9.0",
        note = "env parsing moved behind the config front door: use \
                crate::config::env_visibility(), or pin the backend with \
                RuntimeConfig::visibility_backend"
    )]
    pub fn from_env() -> Self {
        crate::config::env_visibility()
    }

    /// Instantiate the configured backend (one per shard: backends hold
    /// per-shard snapshot and sweep state).
    pub fn build(&self) -> Box<dyn VisibilityBackend> {
        match self.kind {
            VisibilityKind::Scalar => Box::new(ScalarVisibility::default()),
            VisibilityKind::Batch => Box::new(BatchVisibility::new(self.batch_min)),
        }
    }
}

/// A requirement's run of query rects within the batch's flat query list:
/// `(first rect index, rect count)`.
pub type QuerySpan = (u32, u32);

/// One shard's candidate-resolution strategy.
///
/// The caller (the raycast backward scan) collects every requirement's
/// query rects into one flat `queries` list with a [`QuerySpan`] per
/// requirement, announces the batch with [`begin_batch`], then calls
/// [`resolve`] once per requirement *in order*, against the tree's state
/// at that point of the scan. `resolve` appends the ids of all live
/// leaves overlapping any of the requirement's rects (unsorted, possibly
/// duplicated across rects — callers sort + dedup).
///
/// [`begin_batch`]: VisibilityBackend::begin_batch
/// [`resolve`]: VisibilityBackend::resolve
pub trait VisibilityBackend: Send {
    fn name(&self) -> &'static str;

    /// A new shard batch is starting; any sweep state cached for the
    /// previous batch's query list is now invalid.
    fn begin_batch(&mut self) {}

    /// Resolve requirement `k`'s candidates against the tree's current
    /// state, appending hit ids to `out`.
    fn resolve(
        &mut self,
        tree: &DynamicBvh,
        queries: &[Rect],
        spans: &[QuerySpan],
        k: usize,
        out: &mut Vec<u64>,
    );
}

/// The original per-query dynamic-tree walk, with a reusable traversal
/// stack so steady state allocates nothing.
#[derive(Default)]
pub struct ScalarVisibility {
    stack: Vec<u32>,
}

impl VisibilityBackend for ScalarVisibility {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn resolve(
        &mut self,
        tree: &DynamicBvh,
        queries: &[Rect],
        spans: &[QuerySpan],
        k: usize,
        out: &mut Vec<u64>,
    ) {
        let (start, len) = spans[k];
        for r in &queries[start as usize..(start + len) as usize] {
            tree.query_with(r, &mut self.stack, out);
        }
    }
}

/// The flattened batched sweep: snapshot per tree epoch, one
/// [`FlatBvh::batch_query`] per (batch, epoch), per-requirement results
/// served from the precomputed hit ranges. All buffers are reused across
/// batches — steady state allocates nothing.
pub struct BatchVisibility {
    batch_min: usize,
    snapshot: FlatBvh,
    /// `snapshot` reflects some real tree state (a `FlatBvh::default()`
    /// placeholder does not).
    have_snapshot: bool,
    /// `hits`/`offsets` hold a sweep of the *current* batch's query list
    /// at `snapshot.epoch()`.
    swept: bool,
    hits: Vec<u64>,
    offsets: Vec<u32>,
    /// Traversal stack for the below-threshold scalar fallback.
    stack: Vec<u32>,
}

impl BatchVisibility {
    pub fn new(batch_min: usize) -> Self {
        BatchVisibility {
            batch_min,
            snapshot: FlatBvh::default(),
            have_snapshot: false,
            swept: false,
            hits: Vec::new(),
            offsets: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Snapshots taken so far reflect `epoch` — test/introspection hook.
    pub fn snapshot_epoch(&self) -> Option<u64> {
        self.have_snapshot.then(|| self.snapshot.epoch())
    }
}

impl VisibilityBackend for BatchVisibility {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn begin_batch(&mut self) {
        self.swept = false;
    }

    fn resolve(
        &mut self,
        tree: &DynamicBvh,
        queries: &[Rect],
        spans: &[QuerySpan],
        k: usize,
        out: &mut Vec<u64>,
    ) {
        let (start, len) = spans[k];
        if tree.len() < self.batch_min {
            // Below the amortization threshold: walk the dynamic tree
            // directly, exactly like the scalar backend.
            for r in &queries[start as usize..(start + len) as usize] {
                tree.query_with(r, &mut self.stack, out);
            }
            return;
        }
        // (Re-)sweep when this batch has not been resolved yet, or when an
        // earlier requirement's refinement mutated the tree since the last
        // sweep. Re-resolving the *whole* batch keeps the logic epoch-pure:
        // each requirement reads ranges computed at the tree's current
        // epoch, never a mix.
        if !self.swept || self.snapshot.epoch() != tree.epoch() {
            if !self.have_snapshot || self.snapshot.epoch() != tree.epoch() {
                self.snapshot = FlatBvh::snapshot(tree);
                self.have_snapshot = true;
                viz_profile::instant(viz_profile::EventKind::FlatSnapshot {
                    nodes: self.snapshot.node_count() as u64,
                });
            }
            self.snapshot
                .batch_query(queries, &mut self.hits, &mut self.offsets);
            self.swept = true;
            viz_profile::instant(viz_profile::EventKind::BatchQuery {
                queries: queries.len() as u64,
                hits: self.hits.len() as u64,
            });
        }
        let lo = self.offsets[start as usize] as usize;
        let hi = self.offsets[(start + len) as usize] as usize;
        out.extend_from_slice(&self.hits[lo..hi]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(n: u64) -> DynamicBvh {
        let mut tree = DynamicBvh::new();
        for i in 0..n {
            let x = (i as i64 * 11) % 257;
            tree.insert(
                i,
                Rect::xy(x, x + 6, (i as i64 * 5) % 97, (i as i64 * 5) % 97 + 4),
            );
        }
        tree
    }

    fn sorted(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Batch and scalar agree query-for-query, above and below the
    /// fallback threshold.
    #[test]
    fn backends_agree() {
        for n in [3u64, 50, 200] {
            let tree = tree_of(n);
            let queries: Vec<Rect> = (0..10)
                .map(|q| Rect::xy(q * 23, q * 23 + 40, 0, 90))
                .collect();
            let spans: Vec<QuerySpan> = (0..5).map(|k| (k * 2, 2)).collect();
            let mut scalar = ScalarVisibility::default();
            let mut batch = BatchVisibility::new(64);
            batch.begin_batch();
            for k in 0..spans.len() {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                scalar.resolve(&tree, &queries, &spans, k, &mut a);
                batch.resolve(&tree, &queries, &spans, k, &mut b);
                assert_eq!(sorted(a), sorted(b), "n={n} k={k}");
            }
        }
    }

    /// A mutation between two requirements of one batch forces a re-sweep;
    /// the later requirement sees the post-mutation tree.
    #[test]
    fn mid_batch_mutation_is_observed() {
        let mut tree = tree_of(100);
        let queries = vec![Rect::xy(0, 300, 0, 100), Rect::xy(0, 300, 0, 100)];
        let spans: Vec<QuerySpan> = vec![(0, 1), (1, 1)];
        let mut batch = BatchVisibility::new(0);
        batch.begin_batch();
        let mut first = Vec::new();
        batch.resolve(&tree, &queries, &spans, 0, &mut first);
        let epoch_before = batch.snapshot_epoch().unwrap();
        tree.insert(1000, Rect::xy(0, 5, 0, 5));
        let mut second = Vec::new();
        batch.resolve(&tree, &queries, &spans, 1, &mut second);
        assert!(batch.snapshot_epoch().unwrap() > epoch_before);
        assert!(second.contains(&1000), "re-sweep must see the insert");
        assert_eq!(sorted(second).len(), sorted(first).len() + 1);
    }

    /// An unchanged epoch across batches reuses the snapshot (no re-flatten)
    /// but re-sweeps the new query list.
    #[test]
    fn snapshot_reused_across_batches_at_same_epoch() {
        let tree = tree_of(100);
        let queries = vec![Rect::xy(0, 300, 0, 100)];
        let spans: Vec<QuerySpan> = vec![(0, 1)];
        let mut batch = BatchVisibility::new(0);
        batch.begin_batch();
        let mut out = Vec::new();
        batch.resolve(&tree, &queries, &spans, 0, &mut out);
        let full = sorted(out);
        assert_eq!(full.len(), 100);
        // Second batch, different (narrower) query list, same tree epoch.
        let queries2 = vec![Rect::xy(0, 0, 0, 100)];
        batch.begin_batch();
        let mut out2 = Vec::new();
        batch.resolve(&tree, &queries2, &spans, 0, &mut out2);
        let mut scalar_out = Vec::new();
        ScalarVisibility::default().resolve(&tree, &queries2, &spans, 0, &mut scalar_out);
        assert_eq!(sorted(out2), sorted(scalar_out));
    }

    #[test]
    fn config_env_parsing() {
        // Builder form only — env mutation is process-global and the test
        // harness runs tests concurrently.
        assert_eq!(VisibilityConfig::default().kind, VisibilityKind::Scalar);
        assert_eq!(VisibilityConfig::batch().kind, VisibilityKind::Batch);
        assert_eq!(VisibilityConfig::batch().batch_min, DEFAULT_BATCH_MIN);
        assert_eq!(VisibilityConfig::batch().batch_min(0).batch_min, 0);
        assert_eq!(VisibilityConfig::scalar().build().name(), "scalar");
        assert_eq!(VisibilityConfig::batch().build().name(), "batch");
    }
}
