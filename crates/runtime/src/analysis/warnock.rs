//! Warnock's algorithm: equivalence sets with monotonic refinement (§6).
//!
//! The state is a set of **equivalence sets** — `(region, history)` pairs
//! with the invariant that *every* operation in the history is relevant to
//! *every* point of the region (`dom(eqset) ⊆ dom(entry)` for all entries).
//! Equivalence sets are pairwise disjoint and always cover the root region.
//!
//! When a launch names a region `R` that straddles an equivalence set, the
//! set is **refined** — split into `∩R` and `\R` halves (Fig 9, line 11) —
//! and refinement is *monotonic*: sets are never merged. The history of
//! refinements forms a search tree that doubles as a BVH (§6.1); a
//! memoized list of constituent sets per named region lets steady-state
//! launches skip the root traversal.
//!
//! Because every history entry covers its whole set, the per-set visibility
//! scan needs **no geometry at all** — that is the payoff over the
//! painter's algorithm. The cost is the superlinear growth in the number of
//! sets at scale, which is exactly what dooms Warnock's initialization in
//! Figs 12–14.
//!
//! Distribution: each refined set migrates to its first user; the
//! refinement tree's inner nodes are immutable once split, so they
//! replicate on demand — but *discovery* of brand-new regions must traverse
//! from the root, whose authority lives on node 0.
//!
//! The whole refinement tree for one `(root, field)` — including its memo
//! and replication cache — is one shard; nothing an analysis does ever
//! crosses shards.

use crate::analysis::{group_reqs_by_shard, ChargeSet, ReqOutcome, ShardKey, ShardedState};
use crate::engine::{CoherenceEngine, GcSweep, ShardCtx, StateSize};
use crate::plan::{CopyRange, MaterializePlan, ReduceRange, Source};
use crate::task::{TaskId, TaskLaunch};
use viz_geometry::{
    AlgebraStats, FxHashMap, FxHashSet, IndexSpace, InternConfig, SpaceAlgebra, SpaceId,
};
use viz_region::{Privilege, RegionId};
use viz_sim::{NodeId, Op};

/// One operation recorded in an equivalence set's history. The domain is
/// implicit: it covers the whole set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct EqEntry {
    pub task: TaskId,
    pub req: u32,
    pub privilege: Privilege,
}

/// Scan an equivalence set's history (newest first, no geometry): produces
/// dependences and the per-set slice of the materialization plan.
///
/// Invariant exploited: commits reset the history on a write, so a history
/// is `[write?] ++ (reads | reduces)*` — everything in it is visible.
pub(crate) fn scan_eq_history(
    hist: &[EqEntry],
    set_domain: &IndexSpace,
    privilege: Privilege,
    deps: &mut Vec<TaskId>,
    plan: &mut MaterializePlan,
) {
    let want_values = privilege.needs_current_values();
    let mut base: Option<&EqEntry> = None;
    for e in hist.iter().rev() {
        if e.privilege.interferes(privilege) {
            deps.push(e.task);
        }
        match e.privilege {
            Privilege::ReadWrite => {
                debug_assert!(
                    base.is_none(),
                    "second write below a write: broken invariant"
                );
                base = Some(e);
            }
            Privilege::Reduce(op) => {
                if want_values {
                    plan.reductions.push(ReduceRange {
                        task: e.task,
                        req: e.req,
                        redop: op,
                        domain: set_domain.clone(),
                    });
                }
            }
            Privilege::Read => {}
        }
    }
    if want_values {
        plan.copies.push(CopyRange {
            source: match base {
                Some(e) => Source::Task(e.task, e.req),
                None => Source::Initial,
            },
            domain: set_domain.clone(),
        });
    }
}

/// A node in the refinement tree: an equivalence set that is either live
/// (leaf, holds a history) or refined (inner, holds its two halves). The
/// domain is an interned handle into the shard's [`SpaceAlgebra`] — sibling
/// sets produced by the same partition share storage, and the overlap /
/// containment tests the traversal runs against it are memoized.
struct EqNode {
    domain: SpaceId,
    owner: NodeId,
    kind: EqKind,
}

enum EqKind {
    Leaf { hist: Vec<EqEntry> },
    Inner { children: Vec<u32> },
}

/// Per-(root, field) refinement tree — one shard of Warnock's state.
struct FieldTree {
    nodes: Vec<EqNode>,
    root: u32,
    /// Memoized constituent sets per named region (§6.1): node indices that
    /// were leaves when memoized; lookups descend from them, which stays
    /// correct because refinement only splits.
    memo: FxHashMap<RegionId, Vec<u32>>,
    live_leaves: usize,
    /// Inner tree nodes already replicated at a given machine node.
    replicated: FxHashSet<(u32, NodeId)>,
    /// Per-shard interner + memoized set algebra for every domain the tree
    /// touches (set domains, refinement splits, traversal predicates).
    alg: SpaceAlgebra,
    /// Interned handle per named target region, so steady-state launches
    /// skip re-hashing the region's domain.
    target_ids: FxHashMap<RegionId, SpaceId>,
    /// Algebra counters at the last profile report (deltas are emitted per
    /// `analyze_shard`).
    last_stats: AlgebraStats,
}

impl FieldTree {
    fn new(domain: &IndexSpace, intern: InternConfig) -> Self {
        let mut alg = SpaceAlgebra::new(intern);
        let root_domain = alg.intern(domain);
        FieldTree {
            nodes: vec![EqNode {
                domain: root_domain,
                owner: 0,
                kind: EqKind::Leaf { hist: Vec::new() },
            }],
            root: 0,
            memo: FxHashMap::default(),
            live_leaves: 1,
            replicated: FxHashSet::default(),
            alg,
            target_ids: FxHashMap::default(),
            last_stats: AlgebraStats::default(),
        }
    }
}

/// Warnock's algorithm ("Warnock" / `oldeqcr` in the figures).
pub struct Warnock {
    shards: ShardedState<FieldTree>,
    memoize: bool,
    intern: InternConfig,
    coarsen: bool,
    dirty_only: bool,
}

impl Warnock {
    pub fn new() -> Self {
        Self::with_intern(crate::config::env_intern())
    }

    /// As [`Warnock::new`] with an explicit interning configuration.
    pub fn with_intern(intern: InternConfig) -> Self {
        Warnock {
            shards: ShardedState::new(),
            memoize: true,
            intern,
            coarsen: false,
            dirty_only: true,
        }
    }

    /// Disable the constituent-set memoization of §6.1 (every launch
    /// traverses from the tree root) — ablation A2.
    pub fn without_memoization() -> Self {
        Warnock {
            memoize: false,
            ..Self::new()
        }
    }
}

impl Default for Warnock {
    fn default() -> Self {
        Self::new()
    }
}

impl CoherenceEngine for Warnock {
    fn name(&self) -> &'static str {
        "warnock"
    }

    fn prepare(&mut self, launch: &TaskLaunch, ctx: &ShardCtx<'_>) -> Vec<(ShardKey, Vec<u32>)> {
        let groups = group_reqs_by_shard(launch, ctx.forest);
        for (key, _) in &groups {
            self.shards.get_or_insert_with(*key, || {
                FieldTree::new(ctx.forest.domain(key.0), self.intern)
            });
        }
        groups
    }

    fn analyze_shard(
        &self,
        key: ShardKey,
        launch: &TaskLaunch,
        reqs: &[u32],
        ctx: &ShardCtx<'_>,
    ) -> Vec<ReqOutcome> {
        let origin = ctx.shards.origin(launch.node);
        let mut tree = self.shards.lock(key);
        let mut outcomes: Vec<ReqOutcome> = Vec::with_capacity(reqs.len());
        let mut commits: Vec<(Vec<u32>, EqEntry)> = Vec::with_capacity(reqs.len());

        for &ri in reqs {
            let req = &launch.reqs[ri as usize];
            let mut out = ReqOutcome {
                req: ri,
                ..ReqOutcome::default()
            };
            let target = match tree.target_ids.get(&req.region) {
                Some(&id) => id,
                None => {
                    let id = tree.alg.intern(ctx.forest.domain(req.region));
                    tree.target_ids.insert(req.region, id);
                    id
                }
            };

            // ---- Discovery: find the starting nodes (memo hit) or
            // traverse from the tree root (memo miss).
            out.scan_log.op(origin, Op::Memo);
            let starts = match tree.memo.get(&req.region) {
                Some(nodes) if self.memoize => nodes.clone(),
                _ => vec![tree.root],
            };

            // ---- Descend to the live leaves overlapping the target,
            // refining straddlers (Fig 9, `refine`).
            let mut relevant: Vec<u32> = Vec::new();
            let mut stack = starts;
            let mut traversal_tests = 0usize;
            let mut refined = 0usize;
            let mut to_replicate = 0usize;
            let mut refine_charges = ChargeSet::new();
            while let Some(n) = stack.pop() {
                traversal_tests += 1;
                let dom = tree.nodes[n as usize].domain;
                let rects = tree.alg.space(dom).rect_count();
                let overlap = tree.alg.overlaps(dom, target);
                // Each traversal step tests the target against this node's
                // (possibly heavily fragmented) domain.
                out.scan_log.op(
                    origin,
                    Op::GeomOp {
                        rects: rects.min(64),
                    },
                );
                if !overlap {
                    continue;
                }
                let is_inner = matches!(tree.nodes[n as usize].kind, EqKind::Inner { .. });
                if is_inner {
                    // Replication on demand of immutable inner nodes: the
                    // descriptors this traversal needs and has not yet
                    // cached are fetched in one batched request below.
                    if tree.replicated.insert((n, origin)) {
                        to_replicate += 1;
                    }
                    if let EqKind::Inner { children } = &tree.nodes[n as usize].kind {
                        stack.extend(children.iter().copied());
                    }
                    continue;
                }
                // Leaf: contained or straddling?
                let contained = tree.alg.contains(target, dom);
                if contained {
                    relevant.push(n);
                    continue;
                }
                // Refine: split into ∩target and \target (both nonempty
                // here since the leaf overlaps but is not contained).
                let inside = tree.alg.intersect(dom, target);
                let outside = tree.alg.subtract(dom, target);
                let (hist, old_owner) = {
                    let node = &tree.nodes[n as usize];
                    let EqKind::Leaf { hist } = &node.kind else {
                        unreachable!()
                    };
                    (hist.clone(), node.owner)
                };
                let inside_idx = tree.nodes.len() as u32;
                tree.nodes.push(EqNode {
                    domain: inside,
                    // Migrates to its first user: the node where the task
                    // that named this region executes (Legion moves the
                    // equivalence set metadata to the mapped node, not the
                    // node running the analysis).
                    owner: launch.node,
                    kind: EqKind::Leaf { hist: hist.clone() },
                });
                let outside_idx = tree.nodes.len() as u32;
                tree.nodes.push(EqNode {
                    domain: outside,
                    owner: old_owner,
                    kind: EqKind::Leaf { hist },
                });
                tree.nodes[n as usize].kind = EqKind::Inner {
                    children: vec![inside_idx, outside_idx],
                };
                tree.live_leaves += 1;
                // Refinement happens at the owner of the split set; the
                // round trips for one launch are issued concurrently.
                for op in [
                    Op::EqSetRefine,
                    Op::EqSetCreate,
                    Op::EqSetCreate,
                    Op::GeomOp { rects: 2 },
                ] {
                    refine_charges.add(old_owner, op);
                }
                refined += 1;
                relevant.push(inside_idx);
            }
            refine_charges.flush_into(&mut out.scan_log, origin);
            viz_profile::instant(viz_profile::EventKind::BvhTraversal {
                nodes: traversal_tests as u64,
            });
            if refined > 0 {
                viz_profile::instant(viz_profile::EventKind::EqSetRefined {
                    count: refined as u64,
                });
                viz_profile::instant(viz_profile::EventKind::EqSetCreated {
                    count: 2 * refined as u64,
                });
            }
            if to_replicate > 0 {
                // One batched fetch: the authoritative tree lives on node
                // 0, which must build and ship the descriptors.
                out.scan_log.request(
                    origin,
                    0,
                    96,
                    64 * to_replicate as u64,
                    &[Op::Replicate {
                        nodes: to_replicate,
                    }],
                );
            }

            // Memoize the (now exact) constituent sets.
            tree.memo.insert(req.region, relevant.clone());

            // ---- Materialize + dependences per constituent set, charged
            // at each set's owner (batched per owner).
            let mut deps = Vec::new();
            let mut plan = if req.privilege.needs_current_values() {
                MaterializePlan::default()
            } else {
                let Privilege::Reduce(op) = req.privilege else {
                    unreachable!()
                };
                MaterializePlan::identity(op)
            };
            let mut charges = ChargeSet::new();
            let mut entries_scanned = 0usize;
            for n in &relevant {
                let node = &tree.nodes[*n as usize];
                let EqKind::Leaf { hist } = &node.kind else {
                    unreachable!("relevant nodes are leaves")
                };
                scan_eq_history(
                    hist,
                    tree.alg.space(node.domain),
                    req.privilege,
                    &mut deps,
                    &mut plan,
                );
                entries_scanned += hist.len();
                charges.add(node.owner, Op::SetTouch);
                charges.add(
                    node.owner,
                    Op::HistScan {
                        entries: hist.len(),
                    },
                );
            }
            charges.flush_into(&mut out.scan_log, origin);
            viz_profile::instant(viz_profile::EventKind::HistoryScan {
                entries: entries_scanned as u64,
            });
            for _ in &deps {
                out.scan_log.op(origin, Op::DepRecord);
            }
            if !req.privilege.needs_current_values() {
                plan.copies.clear();
                plan.reductions.clear();
            }
            out.deps = deps;
            out.plan = plan;
            outcomes.push(out);

            commits.push((
                relevant,
                EqEntry {
                    task: launch.id,
                    req: ri,
                    privilege: req.privilege,
                },
            ));
        }

        // ---- Commit (Fig 9): append to each constituent set; a write
        // clears the prior history, keeping histories precise. A
        // requirement whose scan found no sets (empty target) commits
        // nothing — the loop body simply never runs, there is no state
        // lookup left to panic on. A set another requirement of this SAME
        // launch refined after this one's scan is now an inner node: the
        // entry commits to its current leaves instead (their domains are
        // subsets of the refined set, so the entry stays relevant to every
        // point — dropping it would lose the access entirely).
        for (out, (relevant, entry)) in outcomes.iter_mut().zip(commits) {
            let mut stack = relevant;
            while let Some(n) = stack.pop() {
                if let EqKind::Inner { children } = &tree.nodes[n as usize].kind {
                    stack.extend(children.iter().copied());
                    continue;
                }
                let node = &mut tree.nodes[n as usize];
                let EqKind::Leaf { hist } = &mut node.kind else {
                    unreachable!("node is leaf or inner")
                };
                if entry.privilege.is_write() {
                    hist.clear();
                }
                hist.push(entry.clone());
                // One-way commit notification; the append is handled by the
                // owner's message service. A mutating commit migrates the
                // set to the task's node.
                out.commit_log.send(origin, node.owner, 64);
                if entry.privilege.is_mutating() {
                    node.owner = launch.node;
                }
            }
        }
        let stats = tree.alg.stats();
        let delta = stats.delta_since(&tree.last_stats);
        if delta.hits + delta.misses + delta.fast_hits > 0 {
            viz_profile::instant(viz_profile::EventKind::AlgebraCache {
                hits: delta.hits + delta.fast_hits,
                misses: delta.misses,
            });
        }
        tree.last_stats = stats;
        outcomes
    }

    /// Warnock's refinement is monotonic — without coarsening the whole
    /// tree stays reachable from the root and there is nothing to reclaim,
    /// so the sweep is a no-op unless [`set_coarsening`]
    /// (CoherenceEngine::set_coarsening) enabled the inverse operation.
    ///
    /// Coarsening merges sibling leaves whose states *re-converged*: every
    /// child of an inner node is a leaf with an identical history and
    /// owner (the common cause is a write covering the parent's whole
    /// domain, which reset each child to the same single entry). The
    /// parent — whose domain is by construction the union of its
    /// children's — becomes a leaf with that history, and the children are
    /// compacted away. Dependences and plan coverage are unchanged
    /// (duplicate deps are deduped and same-source copies merged
    /// downstream); charge counts shrink, which is the point — and the
    /// reason coarsening is excluded from the byte-differential.
    fn collect(&mut self, _floor: TaskId) -> GcSweep {
        let mut sweep = GcSweep::default();
        if !self.coarsen {
            return sweep;
        }
        for (_, t) in self.shards.sweep_mut(self.dirty_only) {
            // ---- Phase 1: bottom-up merge. Children always have larger
            // indices than their parent, so one reverse index scan sees a
            // merged child (now a leaf) before its own parent examines it —
            // cascades complete in a single pass.
            let n = t.nodes.len();
            let mut dead = vec![false; n];
            let mut merged_into: Vec<u32> = (0..n as u32).collect();
            let mut merges = 0usize;
            for i in (0..n).rev() {
                let children = match &t.nodes[i].kind {
                    EqKind::Inner { children } => children.clone(),
                    EqKind::Leaf { .. } => continue,
                };
                let merge = {
                    let first = &t.nodes[children[0] as usize];
                    let EqKind::Leaf { hist: h0 } = &first.kind else {
                        continue;
                    };
                    let owner = first.owner;
                    children
                        .iter()
                        .all(|c| {
                            let node = &t.nodes[*c as usize];
                            node.owner == owner
                                && matches!(&node.kind, EqKind::Leaf { hist } if hist == h0)
                        })
                        .then(|| (h0.clone(), owner))
                };
                let Some((hist, owner)) = merge else { continue };
                sweep.history_entries += hist.len() * (children.len() - 1);
                sweep.equivalence_sets += children.len() - 1;
                t.live_leaves -= children.len() - 1;
                for c in &children {
                    dead[*c as usize] = true;
                    merged_into[*c as usize] = i as u32;
                }
                t.nodes[i].kind = EqKind::Leaf { hist };
                t.nodes[i].owner = owner;
                merges += 1;
            }
            if merges == 0 {
                continue;
            }
            sweep.coarsen_merges += merges;

            // ---- Phase 2: compact the merged-away children out of the
            // node table and renumber every reference.
            let mut remap = vec![u32::MAX; n];
            let mut next = 0u32;
            for (i, d) in dead.iter().enumerate() {
                if !*d {
                    remap[i] = next;
                    next += 1;
                }
            }
            sweep.index_nodes += n - next as usize;
            // A dead node resolves to the (transitively) merged ancestor
            // that absorbed it — memo entries keep descending correctly
            // because the ancestor's domain contains the dead leaf's.
            let resolve = |mut i: u32| -> u32 {
                while dead[i as usize] {
                    i = merged_into[i as usize];
                }
                remap[i as usize]
            };
            let mut idx = 0;
            t.nodes.retain(|_| {
                let keep = !dead[idx];
                idx += 1;
                keep
            });
            t.root = remap[t.root as usize];
            for node in &mut t.nodes {
                if let EqKind::Inner { children } = &mut node.kind {
                    for c in children.iter_mut() {
                        // Dead nodes were children of *merged* parents,
                        // which are leaves now — surviving inner nodes
                        // reference live children only.
                        debug_assert!(!dead[*c as usize]);
                        *c = remap[*c as usize];
                    }
                }
            }
            for list in t.memo.values_mut() {
                for v in list.iter_mut() {
                    *v = resolve(*v);
                }
                let mut seen = FxHashSet::default();
                list.retain(|v| seen.insert(*v));
            }
            // Replication cache: drop pairs for compacted nodes and for
            // merged parents (now leaves — only inner descriptors are ever
            // replicated; if a parent re-refines it is fetched afresh).
            let old = std::mem::take(&mut t.replicated);
            for (node, origin) in old {
                if !dead[node as usize] {
                    let new = remap[node as usize];
                    if matches!(t.nodes[new as usize].kind, EqKind::Inner { .. }) {
                        t.replicated.insert((new, origin));
                        continue;
                    }
                }
                sweep.memo_entries += 1;
            }
        }
        sweep
    }

    fn set_coarsening(&mut self, on: bool) {
        self.coarsen = on;
    }

    fn set_dirty_tracking(&mut self, on: bool) {
        self.dirty_only = on;
    }

    fn state_size(&self) -> StateSize {
        let mut size = StateSize::default();
        for (_, t) in self.shards.iter() {
            size.equivalence_sets += t.live_leaves;
            size.index_nodes += t.nodes.len();
            size.memo_entries += t.memo.values().map(Vec::len).sum::<usize>();
            for n in &t.nodes {
                if let EqKind::Leaf { hist } = &n.kind {
                    size.history_entries += hist.len();
                }
            }
            let s = t.alg.stats();
            size.interned_spaces += s.interned;
            size.algebra_cache_entries += s.cache_entries;
            size.algebra_hits += s.hits + s.fast_hits;
            size.algebra_misses += s.misses;
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AnalysisCtx;
    use crate::plan::AnalysisResult;
    use crate::sharding::ShardMap;
    use crate::task::RegionRequirement;
    use viz_region::{FieldId, RedOpRegistry, RegionForest};
    use viz_sim::Machine;

    struct Fixture {
        forest: RegionForest,
        field: FieldId,
        machine: Machine,
        shards: ShardMap,
        eng: Warnock,
        next: u32,
    }

    fn fixture_with(build: impl FnOnce(&mut RegionForest, RegionId)) -> (Fixture, RegionId) {
        let mut forest = RegionForest::new();
        let n = forest.create_root("N", IndexSpace::span(0, 29));
        let field = forest.add_field(n, "up");
        build(&mut forest, n);
        (
            Fixture {
                forest,
                field,
                machine: Machine::new(1),
                shards: ShardMap::new(1, false),
                eng: Warnock::new(),
                next: 0,
            },
            n,
        )
    }

    impl Fixture {
        fn launch(&mut self, region: RegionId, privilege: Privilege) -> AnalysisResult {
            let id = self.next;
            self.next += 1;
            let launch = TaskLaunch {
                id: TaskId(id),
                name: format!("t{id}"),
                node: 0,
                reqs: vec![RegionRequirement::new(region, self.field, privilege)],
                duration_ns: 0,
            };
            let mut ctx = AnalysisCtx {
                forest: &self.forest,
                machine: &mut self.machine,
                shards: &self.shards,
            };
            self.eng.analyze(&launch, &mut ctx)
        }
    }

    /// Fig 10's refinement cascade: the primary pieces refine the root into
    /// three sets; ghost accesses refine further; repeating the loop adds
    /// no new sets.
    #[test]
    fn fig10_refinement_then_steady_state() {
        let (mut fx, n) = fixture_with(|f, n| {
            f.create_partition(
                n,
                "P",
                vec![
                    IndexSpace::span(0, 9),
                    IndexSpace::span(10, 19),
                    IndexSpace::span(20, 29),
                ],
            );
            f.create_partition(
                n,
                "G",
                vec![
                    IndexSpace::from_points([10, 11, 20].map(viz_geometry::Point::p1)),
                    IndexSpace::from_points([8, 9, 20, 21].map(viz_geometry::Point::p1)),
                    IndexSpace::from_points([9, 18, 19].map(viz_geometry::Point::p1)),
                ],
            );
        });
        let p = fx.forest.partitions_of(n)[0];
        let g = fx.forest.partitions_of(n)[1];
        let sum = Privilege::Reduce(RedOpRegistry::SUM);

        // t0-t2: the primary writes refine N into the three pieces.
        for i in 0..3 {
            fx.launch(fx.forest.subregion(p, i), Privilege::ReadWrite);
        }
        assert_eq!(fx.eng.state_size().equivalence_sets, 3);
        // t3-t5: ghost reductions split piece interiors from halo cells.
        for i in 0..3 {
            fx.launch(fx.forest.subregion(g, i), sum);
        }
        let after_first_iter = fx.eng.state_size().equivalence_sets;
        assert!(
            after_first_iter > 3,
            "ghost aliasing must refine further: {after_first_iter}"
        );
        // Subsequent iterations: "no further refinements are needed".
        for _ in 0..3 {
            for i in 0..3 {
                fx.launch(fx.forest.subregion(p, i), Privilege::ReadWrite);
            }
            for i in 0..3 {
                fx.launch(fx.forest.subregion(g, i), sum);
            }
        }
        assert_eq!(
            fx.eng.state_size().equivalence_sets,
            after_first_iter,
            "Warnock's sets are stable after the partitions are discovered"
        );
    }

    #[test]
    fn dependences_match_paper_example() {
        let (mut fx, n) = fixture_with(|f, n| {
            f.create_partition(
                n,
                "P",
                vec![
                    IndexSpace::span(0, 9),
                    IndexSpace::span(10, 19),
                    IndexSpace::span(20, 29),
                ],
            );
            f.create_partition(
                n,
                "G",
                vec![
                    IndexSpace::from_points([10, 11, 20].map(viz_geometry::Point::p1)),
                    IndexSpace::from_points([8, 9, 20, 21].map(viz_geometry::Point::p1)),
                    IndexSpace::from_points([9, 18, 19].map(viz_geometry::Point::p1)),
                ],
            );
        });
        let p = fx.forest.partitions_of(n)[0];
        let g = fx.forest.partitions_of(n)[1];
        let sum = Privilege::Reduce(RedOpRegistry::SUM);
        for i in 0..3 {
            fx.launch(fx.forest.subregion(p, i), Privilege::ReadWrite);
        }
        let r3 = fx.launch(fx.forest.subregion(g, 0), sum);
        assert_eq!(r3.deps, vec![TaskId(1), TaskId(2)]);
        let r4 = fx.launch(fx.forest.subregion(g, 1), sum);
        assert_eq!(r4.deps, vec![TaskId(0), TaskId(2)]);
        let r5 = fx.launch(fx.forest.subregion(g, 2), sum);
        assert_eq!(r5.deps, vec![TaskId(0), TaskId(1)]);
        // Second loop entry: t6 = rw P[0] depends on the ghost reducers
        // overlapping P[0] (t4 on 8,9 and t5 on 9) plus its old write t0.
        let r6 = fx.launch(fx.forest.subregion(p, 0), Privilege::ReadWrite);
        assert_eq!(r6.deps, vec![TaskId(0), TaskId(4), TaskId(5)]);
    }

    #[test]
    fn write_resets_histories() {
        let (mut fx, n) = fixture_with(|_, _| {});
        fx.launch(n, Privilege::ReadWrite);
        fx.launch(n, Privilege::Read);
        fx.launch(n, Privilege::Read);
        assert_eq!(fx.eng.state_size().history_entries, 3);
        fx.launch(n, Privilege::ReadWrite);
        assert_eq!(
            fx.eng.state_size().history_entries,
            1,
            "the write cleared the prior history (Fig 9 lines 30-31)"
        );
    }

    #[test]
    fn plan_covers_target_exactly() {
        let (mut fx, n) = fixture_with(|f, n| {
            f.create_equal_partition_1d(n, "P", 3);
        });
        let p = fx.forest.partitions_of(n)[0];
        // Write only piece 0; read the root: base must be piece-0's write
        // plus Initial for the rest.
        fx.launch(fx.forest.subregion(p, 0), Privilege::ReadWrite);
        let r = fx.launch(n, Privilege::Read);
        let total: u64 = r.plans[0].copies.iter().map(|c| c.domain.volume()).sum();
        assert_eq!(total, 30, "copies cover the whole root");
        let from_init: u64 = r.plans[0]
            .copies
            .iter()
            .filter(|c| c.source == Source::Initial)
            .map(|c| c.domain.volume())
            .sum();
        assert_eq!(from_init, 20);
    }

    #[test]
    fn memoization_survives_refinement() {
        let (mut fx, n) = fixture_with(|f, n| {
            f.create_equal_partition_1d(n, "P", 2);
        });
        let p = fx.forest.partitions_of(n)[0];
        let p0 = fx.forest.subregion(p, 0);
        // Touch the root (memoizes [root set]); then refine through P; then
        // the root again — its memo must resolve through the refined tree.
        fx.launch(n, Privilege::ReadWrite);
        fx.launch(p0, Privilege::ReadWrite);
        let r = fx.launch(n, Privilege::Read);
        let total: u64 = r.plans[0].copies.iter().map(|c| c.domain.volume()).sum();
        assert_eq!(total, 30);
        assert_eq!(r.deps.len(), 2, "depends on both prior writes");
    }

    /// Regression (commit path): a requirement whose scan finds *no*
    /// relevant sets — here an empty region — must commit as a no-op. The
    /// seed committed through `self.trees.get_mut(&key).unwrap()` keyed
    /// off state the scan was assumed to have created.
    #[test]
    fn commit_with_no_relevant_sets_is_a_noop() {
        let (mut fx, n) = fixture_with(|f, n| {
            f.create_partition(n, "E", vec![IndexSpace::empty(), IndexSpace::span(0, 29)]);
        });
        let e = fx.forest.partitions_of(n)[0];
        let empty = fx.forest.subregion(e, 0);
        let r = fx.launch(empty, Privilege::ReadWrite);
        assert!(r.deps.is_empty());
        assert!(r.plans[0].copies.is_empty(), "nothing to materialize");
        // The root set is untouched, and a follow-up full write still works.
        assert_eq!(fx.eng.state_size().equivalence_sets, 1);
        let r2 = fx.launch(n, Privilege::ReadWrite);
        assert!(r2.deps.is_empty(), "empty-region write left no history");
    }
}
