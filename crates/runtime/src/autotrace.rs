//! Online automatic trace detection (in the style of Yadav et al.,
//! *Automatic Tracing in Task-Based Runtime Systems*).
//!
//! Dynamic tracing (\[15\], `trace.rs`) memoizes the dependence/coherence
//! analysis of a repeated launch sequence — but only where the application
//! hand-annotates `begin_trace`/`end_trace`. This module finds the repeats
//! *online* from the launch stream itself:
//!
//! 1. every launch is fingerprinted by a signature hash of `(node, reqs)`
//!    — the exact tuple trace replay validates against;
//! 2. a hash chain (last few positions of each signature) proposes
//!    candidate periods `L = pos - prev_pos`, smallest first;
//! 3. polynomial prefix hashes over a sliding window answer "are the last
//!    `confidence` blocks of length `L` identical?" in O(1) per candidate
//!    (the classic rolling-hash repeated-substring test);
//! 4. a candidate that passes is verified *exactly* (element-wise signature
//!    comparison) before promotion — hash collisions and near-repeats are
//!    never promoted.
//!
//! A promoted repeat hands the predicted instance (the last `L`
//! signatures) to [`crate::trace::Tracing`], which validates the next `L`
//! launches against it while capturing their analysis results, then
//! replays. Divergence at any point demotes back to observation — the
//! runtime falls through to normal analysis, it never aborts.

use crate::task::RegionRequirement;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use viz_geometry::{FxHashMap, FxHasher};
use viz_sim::NodeId;

/// Knobs for the online auto-tracer (see [`crate::RuntimeConfig`]).
#[derive(Clone, Debug)]
pub struct AutoTraceConfig {
    /// Master switch (defaults from `VIZ_AUTO_TRACE`).
    pub enabled: bool,
    /// Shortest repeat worth promoting. Periods of one launch are almost
    /// always incidental (e.g. two identical probes), so ≥ 2 by default.
    pub min_len: u32,
    /// Longest repeat considered; bounds the detector's window memory.
    pub max_len: u32,
    /// How many consecutive identical blocks must be observed before a
    /// period is promoted (≥ 2; higher = later but safer promotion).
    pub confidence: u32,
}

impl Default for AutoTraceConfig {
    fn default() -> Self {
        AutoTraceConfig {
            enabled: false,
            min_len: 2,
            max_len: 8192,
            confidence: 2,
        }
    }
}

/// One launch's signature: everything replay validation compares, plus its
/// hash. Promoted instances carry these as the prediction to validate
/// capture against.
#[derive(Clone)]
pub(crate) struct AutoSig {
    pub node: NodeId,
    pub reqs: Vec<RegionRequirement>,
    pub hash: u64,
}

/// Polynomial rolling-hash base (odd → invertible mod 2^64).
const BASE: u64 = 0x9E37_79B9_7F4A_7C15 | 1;
/// Positions remembered per signature hash: candidate periods are the
/// distances to these. More than one matters when a short incidental
/// repeat (e.g. period 1) hides a longer true period.
const CHAIN: usize = 8;

pub(crate) fn sig_hash(node: NodeId, reqs: &[RegionRequirement]) -> u64 {
    let mut h = FxHasher::default();
    node.hash(&mut h);
    reqs.hash(&mut h);
    h.finish()
}

/// Decorrelate a signature hash before it enters the polynomial hash.
fn mix(h: u64) -> u64 {
    h.wrapping_mul(0xFF51_AFD7_ED55_8CCD).rotate_left(31)
}

/// The online repeat detector. Feed every observed (non-traced) launch to
/// [`AutoTracer::observe`]; it returns the predicted instance when a repeat
/// is confirmed.
pub(crate) struct AutoTracer {
    min_len: u64,
    max_len: u64,
    confidence: u64,
    /// Retained signatures: positions `start .. start + sigs.len()` of the
    /// absolute launch stream.
    sigs: VecDeque<AutoSig>,
    /// `prefix[k]` = polynomial hash of the absolute stream prefix ending
    /// at position `start + k`; `prefix.len() == sigs.len() + 1`. Substring
    /// hashes never span a reset, so the anchor is arbitrary.
    prefix: VecDeque<u64>,
    start: u64,
    /// `BASE^k` for k up to the window length.
    pow: Vec<u64>,
    /// Recent absolute positions of each signature hash, ascending.
    chains: FxHashMap<u64, Vec<u64>>,
}

impl AutoTracer {
    pub fn new(cfg: &AutoTraceConfig) -> Self {
        let confidence = cfg.confidence.max(2) as u64;
        let max_len = cfg.max_len.max(cfg.min_len).max(1) as u64;
        let window = (confidence * max_len) as usize;
        let mut pow = Vec::with_capacity(window + 2);
        pow.push(1u64);
        for k in 1..=window + 1 {
            pow.push(pow[k - 1].wrapping_mul(BASE));
        }
        AutoTracer {
            min_len: cfg.min_len.max(1) as u64,
            max_len,
            confidence,
            sigs: VecDeque::new(),
            prefix: VecDeque::from([0u64]),
            start: 0,
            pow,
            chains: FxHashMap::default(),
        }
    }

    /// Forget everything observed so far (promotion, demotion, fences, and
    /// explicit trace annotations all discontinue the stream).
    pub fn reset(&mut self) {
        self.sigs.clear();
        self.prefix.clear();
        self.prefix.push_back(0);
        self.start = 0;
        self.chains.clear();
    }

    /// Hash of the signature block at absolute positions `[a, b)`.
    fn seg_hash(&self, a: u64, b: u64) -> u64 {
        let ia = (a - self.start) as usize;
        let ib = (b - self.start) as usize;
        self.prefix[ib].wrapping_sub(self.prefix[ia].wrapping_mul(self.pow[ib - ia]))
    }

    /// Element-wise check that the last `blocks` blocks of length `len`
    /// (ending at absolute position `end`) are identical.
    fn verify_exact(&self, end: u64, len: u64, blocks: u64) -> bool {
        let first = end - blocks * len;
        (first..end - len).all(|p| {
            let a = &self.sigs[(p - self.start) as usize];
            let b = &self.sigs[(p + len - self.start) as usize];
            a.hash == b.hash && a.node == b.node && a.reqs == b.reqs
        })
    }

    /// Feed one observed launch. Returns the predicted repeat unit (the
    /// last `L` signatures, oldest first) when a period `L` is confirmed —
    /// by stream periodicity the *next* `L` launches should equal it
    /// element-for-element. The detector resets itself on promotion.
    pub fn observe(&mut self, node: NodeId, reqs: &[RegionRequirement]) -> Option<Vec<AutoSig>> {
        let h = sig_hash(node, reqs);
        let pos = self.start + self.sigs.len() as u64;
        let top = *self.prefix.back().unwrap();
        self.prefix
            .push_back(top.wrapping_mul(BASE).wrapping_add(mix(h)));
        self.sigs.push_back(AutoSig {
            node,
            reqs: reqs.to_vec(),
            hash: h,
        });
        let window = (self.confidence * self.max_len) as usize;
        while self.sigs.len() > window {
            self.sigs.pop_front();
            self.prefix.pop_front();
            self.start += 1;
        }
        // Candidate periods: distances to recent occurrences of this
        // signature, smallest first (the chain is ascending).
        let chain = self.chains.entry(h).or_default();
        let candidates: Vec<u64> = chain.iter().rev().map(|&p| pos - p).collect();
        chain.push(pos);
        if chain.len() > CHAIN {
            chain.remove(0);
        }
        if self.chains.len() > 4 * window.max(64) {
            // Prune hashes whose last occurrence fell out of the window.
            let start = self.start;
            self.chains
                .retain(|_, c| c.last().is_some_and(|&p| p >= start));
        }
        let end = pos + 1;
        for len in candidates {
            if len < self.min_len || len > self.max_len {
                continue;
            }
            if end - self.start < self.confidence * len {
                continue; // not enough history retained
            }
            let base_block = self.seg_hash(end - len, end);
            let all_equal = (1..self.confidence)
                .all(|k| self.seg_hash(end - (k + 1) * len, end - k * len) == base_block);
            if !all_equal || !self.verify_exact(end, len, self.confidence) {
                continue;
            }
            let predicted: Vec<AutoSig> = self
                .sigs
                .iter()
                .skip(self.sigs.len() - len as usize)
                .cloned()
                .collect();
            self.reset();
            return Some(predicted);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_region::{FieldId, RegionId};

    fn req(region: u32) -> Vec<RegionRequirement> {
        vec![RegionRequirement::read_write(RegionId(region), FieldId(0))]
    }

    fn tracer(min_len: u32, confidence: u32) -> AutoTracer {
        AutoTracer::new(&AutoTraceConfig {
            enabled: true,
            min_len,
            max_len: 64,
            confidence,
        })
    }

    /// Feed a stream of (node, region) symbols; return the positions where
    /// a promotion fired and the promoted period lengths.
    fn drive(t: &mut AutoTracer, stream: &[u32]) -> Vec<(usize, usize)> {
        let mut fired = Vec::new();
        for (i, &s) in stream.iter().enumerate() {
            if let Some(p) = t.observe(0, &req(s)) {
                fired.push((i, p.len()));
            }
        }
        fired
    }

    #[test]
    fn detects_a_simple_period() {
        let mut t = tracer(2, 2);
        // A B C A B C: the second C completes a square of period 3.
        let fired = drive(&mut t, &[1, 2, 3, 1, 2, 3]);
        assert_eq!(fired, vec![(5, 3)]);
    }

    #[test]
    fn prefers_the_smallest_true_period() {
        let mut t = tracer(2, 2);
        // A B A B A B A B: period 2 fires as soon as two blocks exist;
        // period 4 (also valid) is never preferred over it.
        let fired = drive(&mut t, &[1, 2, 1, 2]);
        assert_eq!(fired, vec![(3, 2)]);
    }

    #[test]
    fn finds_longer_period_past_an_incidental_short_one() {
        let mut t = tracer(2, 2);
        // A B B A B B: the BB pair suggests period 1 (filtered by min_len)
        // and the most recent B-B distance suggests period 2 (blocks
        // differ); only the older chain entry exposes the true period 3.
        let fired = drive(&mut t, &[1, 2, 2, 1, 2, 2]);
        assert_eq!(fired, vec![(5, 3)]);
    }

    #[test]
    fn near_repeats_are_not_promoted() {
        let mut t = tracer(2, 2);
        // A B C A B D: differs in the last element — no promotion.
        let fired = drive(&mut t, &[1, 2, 3, 1, 2, 4]);
        assert!(fired.is_empty());
        // Node changes break the signature even with equal requirements.
        let mut t = tracer(2, 2);
        for (i, node) in [0usize, 1, 0, 2].iter().enumerate() {
            let fired = t.observe(*node, &req(7));
            assert!(fired.is_none(), "promoted at {i}");
        }
    }

    #[test]
    fn higher_confidence_delays_promotion() {
        let mut t = tracer(2, 3);
        let fired = drive(&mut t, &[1, 2, 1, 2, 1, 2, 1, 2]);
        // Three identical blocks of period 2 are needed: fires at index 5.
        assert_eq!(fired, vec![(5, 2)]);
    }

    #[test]
    fn min_len_filters_short_periods() {
        let mut t = tracer(4, 2);
        let fired = drive(&mut t, &[1, 2, 1, 2, 1, 2, 1, 2]);
        // Period 2 is below min_len 4; period 4 (= two ABAB blocks) fires.
        assert_eq!(fired, vec![(7, 4)]);
    }

    #[test]
    fn reset_forgets_history() {
        let mut t = tracer(2, 2);
        assert!(drive(&mut t, &[1, 2, 3, 1, 2]).is_empty());
        t.reset();
        // The missing C means no square exists in the fresh window.
        assert!(drive(&mut t, &[3, 1, 2]).is_empty());
        // But a full fresh square is found (C A B | C A B completes at
        // the second B, index 2 of this slice).
        assert_eq!(drive(&mut t, &[3, 1, 2, 3]), vec![(2, 3)]);
    }

    #[test]
    fn window_eviction_keeps_detection_sound() {
        let mut t = AutoTracer::new(&AutoTraceConfig {
            enabled: true,
            min_len: 2,
            max_len: 4,
            confidence: 2,
        });
        // Period 6 exceeds max_len 4 — never promoted, and the sliding
        // window stays bounded.
        let stream: Vec<u32> = (0..6).cycle().take(60).collect();
        assert!(drive(&mut t, &stream).is_empty());
        assert!(t.sigs.len() <= 8);
        // A detectable period arriving later still fires.
        assert_eq!(drive(&mut t, &[9, 8, 9, 8]).last().map(|f| f.1), Some(2));
    }
}
