//! The one config front door: every `VIZ_*` environment knob the runtime
//! honors is parsed here, and only here.
//!
//! Precedence is uniform across all knobs: **explicit builder setters beat
//! the environment, which beats the built-in defaults.**
//! [`RuntimeConfig::new`](crate::RuntimeConfig::new) applies
//! [`EnvOverrides::capture`] over [`RuntimeConfig::base`](crate::RuntimeConfig::base),
//! so setters called afterwards always win; `base()` skips the environment
//! entirely. Engine construction never sneak-reads the environment — the
//! resolved [`InternConfig`] / [`VisibilityConfig`] travel inside the
//! [`RuntimeConfig`](crate::RuntimeConfig).
//!
//! # Knob table
//!
//! | Variable | Default | Effect |
//! |---|---|---|
//! | `VIZ_ANALYSIS_THREADS` | `1` | worker threads for the sharded batch analysis (1 = serial) |
//! | `VIZ_AUTO_TRACE` | off | `1`/`true` enables online automatic trace detection |
//! | `VIZ_PIPELINE` | off | `1`/`true` runs analysis on a dedicated driver thread |
//! | `VIZ_SUBMIT_RINGS` | `8` | submission rings in the pipelined plane (min 2) |
//! | `VIZ_ORACLE` | off | `1`/`true` records launch history for the consistency oracle |
//! | `VIZ_INTERN` | on | `0`/`false`/`off`/`no` disables interned-algebra fast paths + cache |
//! | `VIZ_ALGEBRA_CACHE_CAP` | `4096` | per-shard algebra-cache capacity in entries (0 = no caching) |
//! | `VIZ_VIS_BACKEND` | `scalar` | `batch` resolves raycast candidate queries through the flattened SoA snapshot |
//! | `VIZ_VIS_BATCH_MIN` | `64` | min live K-d leaves before the batch backend flattens |
//! | `VIZ_GC` | off | `1`/`true` enables history garbage collection (watermark past the oldest unretired launch) |
//! | `VIZ_GC_INTERVAL` | `1024` | launches between collections (amortizes the sweep) |
//! | `VIZ_GC_RETAIN` | `256` | most-recent launches always kept un-retired |
//! | `VIZ_COARSEN` | off | `1`/`true` enables equivalence-set coarsening (merge re-converged siblings) |
//! | `VIZ_TAG_WINDOW` | `4096` | width (task ids) of the precedence ancestor-bitset window |

use crate::analysis::visibility::{VisibilityConfig, VisibilityKind, DEFAULT_BATCH_MIN};
use crate::autotrace::AutoTraceConfig;
use crate::RuntimeConfig;
use viz_geometry::intern::DEFAULT_ALGEBRA_CACHE_CAP;
use viz_geometry::InternConfig;

/// History-GC and coarsening configuration (the tentpole knobs of the
/// weak-scaling work; see DESIGN.md §7i).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct GcConfig {
    /// Retire per-task bookkeeping (launch metadata, owned analysis
    /// results, precedence tag rows) and dead engine state older than the
    /// watermark. Dependences, plans, and simulated charges are
    /// byte-identical with GC on or off; only
    /// [`Runtime::execute_values`](crate::Runtime::execute_values) /
    /// [`Runtime::timed_schedule`](crate::Runtime::timed_schedule) become
    /// unavailable once anything has actually been retired (they replay
    /// the full history).
    pub enabled: bool,
    /// Launches between collections: the watermark only advances once at
    /// least this many launches are retirable, so sweeps amortize.
    pub interval: u32,
    /// The most recent `retain` launches are never retired (introspection
    /// of fresh results stays valid between collections).
    pub retain: u32,
    /// Equivalence-set coarsening: merge sibling sets whose per-field
    /// histories have re-converged (the inverse of refinement — the paper
    /// never does this). Preserves dependences and plan coverage (plan
    /// ranges over merged sets coalesce) but changes *charges* (fewer sets
    /// to scan); off by default and excluded from the GC differential.
    pub coarsen: bool,
}

pub const DEFAULT_GC_INTERVAL: u32 = 1024;
pub const DEFAULT_GC_RETAIN: u32 = 256;

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            enabled: false,
            interval: DEFAULT_GC_INTERVAL,
            retain: DEFAULT_GC_RETAIN,
            coarsen: false,
        }
    }
}

/// The environment's view of every runtime knob: `None` = variable unset
/// (or unparsable) = fall through to the built-in default. Captured once
/// by [`RuntimeConfig::new`](crate::RuntimeConfig::new); tests inject a
/// fake environment through [`EnvOverrides::capture_from`].
#[derive(Clone, Debug, Default)]
pub struct EnvOverrides {
    pub analysis_threads: Option<usize>,
    pub auto_trace: Option<bool>,
    pub pipeline: Option<bool>,
    pub submit_rings: Option<usize>,
    pub record_history: Option<bool>,
    pub intern_enabled: Option<bool>,
    pub algebra_cache_cap: Option<usize>,
    pub vis_backend: Option<VisibilityKind>,
    pub vis_batch_min: Option<usize>,
    pub gc: Option<bool>,
    pub gc_interval: Option<u32>,
    pub gc_retain: Option<u32>,
    pub coarsen: Option<bool>,
    pub tag_window: Option<u32>,
    pub dirty_shards: Option<bool>,
}

fn parse_flag(s: &str) -> bool {
    let s = s.trim();
    s == "1" || s.eq_ignore_ascii_case("true")
}

fn parse_off(s: &str) -> bool {
    matches!(s.trim(), "0" | "false" | "off" | "no")
}

impl EnvOverrides {
    /// Capture from the process environment.
    pub fn capture() -> Self {
        Self::capture_from(|k| std::env::var(k).ok())
    }

    /// Capture from an arbitrary key→value source (the precedence tests
    /// use a map instead of mutating the process environment).
    pub fn capture_from(get: impl Fn(&str) -> Option<String>) -> Self {
        let num = |k: &str| get(k).and_then(|s| s.trim().parse::<usize>().ok());
        let num32 = |k: &str| get(k).and_then(|s| s.trim().parse::<u32>().ok());
        let flag = |k: &str| get(k).map(|s| parse_flag(&s));
        EnvOverrides {
            analysis_threads: num("VIZ_ANALYSIS_THREADS").filter(|n| *n >= 1),
            auto_trace: flag("VIZ_AUTO_TRACE"),
            pipeline: flag("VIZ_PIPELINE"),
            submit_rings: num("VIZ_SUBMIT_RINGS"),
            record_history: flag("VIZ_ORACLE"),
            intern_enabled: get("VIZ_INTERN").map(|s| !parse_off(&s)),
            algebra_cache_cap: num("VIZ_ALGEBRA_CACHE_CAP"),
            vis_backend: get("VIZ_VIS_BACKEND").map(|s| {
                if s.trim().eq_ignore_ascii_case("batch") {
                    VisibilityKind::Batch
                } else {
                    VisibilityKind::Scalar
                }
            }),
            vis_batch_min: num("VIZ_VIS_BATCH_MIN"),
            gc: flag("VIZ_GC"),
            gc_interval: num32("VIZ_GC_INTERVAL"),
            gc_retain: num32("VIZ_GC_RETAIN"),
            coarsen: flag("VIZ_COARSEN"),
            tag_window: num32("VIZ_TAG_WINDOW"),
            dirty_shards: get("VIZ_DIRTY_SHARDS").map(|s| !parse_off(&s)),
        }
    }

    /// Overlay these overrides on a config: set knobs replace the config's
    /// current values, unset knobs leave them alone. Called by
    /// [`RuntimeConfig::new`](crate::RuntimeConfig::new) *before* any
    /// builder setter runs, which is exactly the
    /// explicit > environment > default precedence.
    pub fn apply(&self, mut cfg: RuntimeConfig) -> RuntimeConfig {
        if let Some(n) = self.analysis_threads {
            cfg.analysis_threads = n.max(1);
        }
        if let Some(on) = self.auto_trace {
            cfg.auto_trace = AutoTraceConfig {
                enabled: on,
                ..cfg.auto_trace
            };
        }
        if let Some(on) = self.pipeline {
            cfg.pipeline = on;
        }
        if let Some(n) = self.submit_rings {
            cfg.submit_rings = n.max(2);
        }
        if let Some(on) = self.record_history {
            cfg.record_history = on;
        }
        if self.intern_enabled.is_some() || self.algebra_cache_cap.is_some() {
            let base = cfg.intern.unwrap_or_default();
            cfg.intern = Some(InternConfig {
                enabled: self.intern_enabled.unwrap_or(base.enabled),
                cache_cap: self.algebra_cache_cap.unwrap_or(base.cache_cap),
            });
        }
        if self.vis_backend.is_some() || self.vis_batch_min.is_some() {
            let base = cfg.visibility_backend.unwrap_or_default();
            cfg.visibility_backend = Some(VisibilityConfig {
                kind: self.vis_backend.unwrap_or(base.kind),
                batch_min: self.vis_batch_min.unwrap_or(base.batch_min),
            });
        }
        if let Some(on) = self.gc {
            cfg.gc.enabled = on;
        }
        if let Some(n) = self.gc_interval {
            cfg.gc.interval = n.max(1);
        }
        if let Some(n) = self.gc_retain {
            cfg.gc.retain = n;
        }
        if let Some(on) = self.coarsen {
            cfg.gc.coarsen = on;
        }
        if let Some(n) = self.tag_window {
            cfg.tag_window = n;
        }
        if let Some(on) = self.dirty_shards {
            cfg.dirty_shards = on;
        }
        cfg
    }
}

/// The `VIZ_ANALYSIS_THREADS` default (1 when unset or unparsable).
pub fn default_analysis_threads() -> usize {
    EnvOverrides::capture().analysis_threads.unwrap_or(1)
}

/// The `VIZ_AUTO_TRACE` default (off when unset; `1`/`true` enable).
pub fn default_auto_trace() -> bool {
    EnvOverrides::capture().auto_trace.unwrap_or(false)
}

/// The `VIZ_PIPELINE` default (off when unset; `1`/`true` enable).
pub fn default_pipeline() -> bool {
    EnvOverrides::capture().pipeline.unwrap_or(false)
}

/// The `VIZ_ORACLE` default (off when unset; `1`/`true` enable).
pub fn default_record_history() -> bool {
    EnvOverrides::capture().record_history.unwrap_or(false)
}

/// The `VIZ_SUBMIT_RINGS` default (8 when unset or unparsable; clamped to
/// at least 2 so one tenant context always fits next to the facade's ring).
pub fn default_submit_rings() -> usize {
    EnvOverrides::capture()
        .submit_rings
        .unwrap_or(crate::runtime::DEFAULT_SUBMIT_RINGS)
        .max(2)
}

/// Resolve the interning config from the environment (the front-door
/// replacement for the deprecated `InternConfig::from_env`).
pub fn env_intern() -> InternConfig {
    let o = EnvOverrides::capture();
    InternConfig {
        enabled: o.intern_enabled.unwrap_or(true),
        cache_cap: o.algebra_cache_cap.unwrap_or(DEFAULT_ALGEBRA_CACHE_CAP),
    }
}

/// Resolve the visibility-backend config from the environment (the
/// front-door replacement for the deprecated `VisibilityConfig::from_env`).
pub fn env_visibility() -> VisibilityConfig {
    let o = EnvOverrides::capture();
    VisibilityConfig {
        kind: o.vis_backend.unwrap_or(VisibilityKind::Scalar),
        batch_min: o.vis_batch_min.unwrap_or(DEFAULT_BATCH_MIN),
    }
}

/// One documented knob (variable name, default, one-line effect) — the
/// single source the README table is refreshed from, and what the
/// coverage test pins against [`EnvOverrides`].
pub struct Knob {
    pub var: &'static str,
    pub default: &'static str,
    pub effect: &'static str,
}

/// Every `VIZ_*` variable the runtime honors.
pub const KNOBS: &[Knob] = &[
    Knob {
        var: "VIZ_ANALYSIS_THREADS",
        default: "1",
        effect: "worker threads for the sharded batch analysis (1 = serial)",
    },
    Knob {
        var: "VIZ_AUTO_TRACE",
        default: "off",
        effect: "online automatic trace detection",
    },
    Knob {
        var: "VIZ_PIPELINE",
        default: "off",
        effect: "analysis on a dedicated driver thread, overlapped with submission",
    },
    Knob {
        var: "VIZ_SUBMIT_RINGS",
        default: "8",
        effect: "submission rings in the pipelined plane (min 2)",
    },
    Knob {
        var: "VIZ_ORACLE",
        default: "off",
        effect: "record launch history for the external consistency oracle",
    },
    Knob {
        var: "VIZ_INTERN",
        default: "on",
        effect: "0/false/off/no disables interned-algebra fast paths and cache",
    },
    Knob {
        var: "VIZ_ALGEBRA_CACHE_CAP",
        default: "4096",
        effect: "per-shard algebra-cache capacity in entries (0 = no caching)",
    },
    Knob {
        var: "VIZ_VIS_BACKEND",
        default: "scalar",
        effect: "batch = flattened SoA candidate resolution for the raycast K-d path",
    },
    Knob {
        var: "VIZ_VIS_BATCH_MIN",
        default: "64",
        effect: "min live K-d leaves before the batch backend flattens",
    },
    Knob {
        var: "VIZ_GC",
        default: "off",
        effect: "history garbage collection past the oldest unretired launch",
    },
    Knob {
        var: "VIZ_GC_INTERVAL",
        default: "1024",
        effect: "launches between collections",
    },
    Knob {
        var: "VIZ_GC_RETAIN",
        default: "256",
        effect: "most-recent launches always kept un-retired",
    },
    Knob {
        var: "VIZ_COARSEN",
        default: "off",
        effect: "merge equivalence-set siblings whose histories re-converged",
    },
    Knob {
        var: "VIZ_TAG_WINDOW",
        default: "4096",
        effect: "width (task ids) of the precedence ancestor-bitset window",
    },
    Knob {
        var: "VIZ_DIRTY_SHARDS",
        default: "on",
        effect: "0/false/off/no makes GC sweeps visit every shard instead of only dirty ones",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;

    fn fake_env<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(var, _)| *var == k)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn env_beats_default() {
        let env = fake_env(&[
            ("VIZ_ANALYSIS_THREADS", "4"),
            ("VIZ_GC", "1"),
            ("VIZ_GC_RETAIN", "32"),
            ("VIZ_INTERN", "off"),
            ("VIZ_VIS_BACKEND", "batch"),
            ("VIZ_TAG_WINDOW", "512"),
        ]);
        let cfg = EnvOverrides::capture_from(env).apply(RuntimeConfig::base(EngineKind::RayCast));
        assert_eq!(cfg.analysis_threads, 4);
        assert!(cfg.gc.enabled);
        assert_eq!(cfg.gc.retain, 32);
        assert_eq!(
            cfg.gc.interval, DEFAULT_GC_INTERVAL,
            "untouched knob keeps default"
        );
        assert!(!cfg.intern.unwrap().enabled);
        assert_eq!(cfg.visibility_backend.unwrap().kind, VisibilityKind::Batch);
        assert_eq!(
            cfg.visibility_backend.unwrap().batch_min,
            DEFAULT_BATCH_MIN,
            "paired knob falls back to its default, not to zero"
        );
        assert_eq!(cfg.tag_window, 512);
    }

    #[test]
    fn explicit_setter_beats_env() {
        let env = fake_env(&[
            ("VIZ_ANALYSIS_THREADS", "4"),
            ("VIZ_GC", "1"),
            ("VIZ_PIPELINE", "1"),
        ]);
        // RuntimeConfig::new applies env first; setters run after.
        let cfg = EnvOverrides::capture_from(env)
            .apply(RuntimeConfig::base(EngineKind::Warnock))
            .analysis_threads(2)
            .history_gc(false)
            .pipeline(false);
        assert_eq!(cfg.analysis_threads, 2);
        assert!(!cfg.gc.enabled);
        assert!(!cfg.pipeline);
    }

    #[test]
    fn base_ignores_env_entirely() {
        let cfg = RuntimeConfig::base(EngineKind::Paint);
        assert_eq!(cfg.analysis_threads, 1);
        assert!(!cfg.gc.enabled);
        assert!(cfg.intern.is_none());
        assert!(cfg.visibility_backend.is_none());
    }

    #[test]
    fn unset_and_unparsable_fall_through() {
        let o = EnvOverrides::capture_from(fake_env(&[
            ("VIZ_ANALYSIS_THREADS", "zero"),
            ("VIZ_GC_INTERVAL", "-3"),
        ]));
        assert!(o.analysis_threads.is_none());
        assert!(o.gc_interval.is_none());
        assert!(o.gc.is_none());
        let cfg = o.apply(RuntimeConfig::base(EngineKind::PaintNaive));
        assert_eq!(cfg.gc.interval, DEFAULT_GC_INTERVAL);
    }

    #[test]
    fn knob_table_covers_every_override() {
        // Every capture_from key must appear in the documented table, so
        // the README refresh cannot silently drift.
        let probed = std::cell::RefCell::new(Vec::new());
        let _ = EnvOverrides::capture_from(|k| {
            probed.borrow_mut().push(k.to_string());
            None
        });
        let probed = probed.into_inner();
        for var in &probed {
            assert!(
                KNOBS.iter().any(|k| k.var == var),
                "undocumented knob {var}"
            );
        }
        assert_eq!(probed.len(), KNOBS.len(), "stale row in the knob table");
    }
}
