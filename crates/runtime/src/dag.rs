//! The dependence DAG produced by the analysis (§3.2).
//!
//! Task ids are assigned in program order, so every edge points from a task
//! to a strictly earlier task and program order is already a topological
//! order. Dependence analysis "relaxes the sequential order to a partial
//! (parallel) order such that the coherence of reads is still guaranteed."
//!
//! Precedence queries (`must_follow`) are answered from DePa-style
//! order-maintenance tags assigned at push time instead of a graph walk:
//!
//! * **Tags** — each task carries `(depth, min_anc)`: its longest-path depth
//!   and the smallest ancestor id. Both are exact O(1) negative filters.
//! * **Ancestor bitsets** — `anc(j) = ∪_{p ∈ deps(j)} anc(p) ∪ {p}`, one bit
//!   per earlier task inside a sliding tag window. Positive queries are one
//!   word lookup. Rows are ragged: row `j` only covers ids in
//!   `[row_base(j), j)` where `row_base` is the 64-aligned maximum of the GC
//!   watermark and `j - window` at push time, so tag memory is bounded by
//!   the unretired window rather than quadratic in program length.
//!
//! Queries about ids below a row's window fall back to the exact
//! predecessor walk (predecessor lists are O(edges) and are never pruned);
//! in debug builds every tag answer is cross-checked against the walk.

use crate::task::TaskId;

/// Default width (in task ids) of the ancestor-bitset tag window when no GC
/// watermark bounds it. 512 bytes of tag per in-window launch.
pub const DEFAULT_TAG_WINDOW: u32 = 4096;

/// One ragged ancestor-bitset row: bit `i - base` ⇔ task `i` is an ancestor
/// of the row's task. `base` is 64-aligned so predecessor rows union with
/// whole-word ORs.
#[derive(Clone, Debug, Default)]
struct AncRow {
    base: u32,
    words: Vec<u64>,
}

/// Dependence DAG over recorded launches.
#[derive(Clone, Debug)]
pub struct TaskDag {
    /// `preds[t]` = tasks `t` must wait for (sorted, deduplicated).
    preds: Vec<Vec<TaskId>>,
    /// Incrementally maintained inverse of `preds` (see `successors`).
    succs: Vec<Vec<TaskId>>,
    /// Longest-path depth of each task (0 for roots).
    depth: Vec<u32>,
    /// Smallest ancestor id of each task (`u32::MAX` for roots).
    min_anc: Vec<u32>,
    /// Windowed ancestor bitsets; rows below `floor` are freed.
    anc: Vec<AncRow>,
    /// Max tag-window width in ids.
    window: u32,
    /// GC watermark: ancestor rows for tasks below it have been freed.
    floor: u32,
    /// Live bitset words across all rows (for stats).
    tag_words: usize,
}

impl Default for TaskDag {
    fn default() -> Self {
        Self::with_window(DEFAULT_TAG_WINDOW)
    }
}

impl TaskDag {
    pub fn new() -> Self {
        Self::default()
    }

    /// A DAG whose ancestor tags cover at most the last `window` ids.
    pub fn with_window(window: u32) -> Self {
        Self {
            preds: Vec::new(),
            succs: Vec::new(),
            depth: Vec::new(),
            min_anc: Vec::new(),
            anc: Vec::new(),
            window: window.max(64),
            floor: 0,
            tag_words: 0,
        }
    }

    /// Append the next task (ids must be added in program order) with its
    /// dependences, assigning its order-maintenance tag incrementally:
    /// O(deps × window/64) with no rebuild of earlier rows.
    pub fn push(&mut self, deps: Vec<TaskId>) -> TaskId {
        let id = TaskId(self.preds.len() as u32);
        debug_assert!(deps.iter().all(|d| *d < id), "dependence on the future");

        // Row covers ids in [base, id); base is 64-aligned so predecessor
        // rows (whose bases are <= ours) union with word-aligned ORs. The
        // floor rounds *up*: a retired predecessor's row is freed, so its
        // ancestors in [floor_down, floor) could never be unioned in — the
        // row must not claim to cover them. The window bound rounds down
        // (covering more is only slack).
        let base = (self.floor.div_ceil(64) * 64).max((id.0.saturating_sub(self.window) / 64) * 64);
        let words = (id.0.saturating_sub(base) as usize).div_ceil(64);
        let mut row = AncRow {
            base,
            words: vec![0u64; words],
        };
        let mut depth = 0u32;
        let mut min_anc = u32::MAX;
        for d in &deps {
            let p = d.0;
            depth = depth.max(self.depth[d.index()] + 1);
            min_anc = min_anc.min(self.min_anc[d.index()]).min(p);
            if p >= base {
                let bit = (p - base) as usize;
                row.words[bit / 64] |= 1 << (bit % 64);
            }
            // Union the predecessor's ancestors. A freed or narrower
            // predecessor row only omits ids below our own base, which this
            // row cannot represent anyway.
            let src = &self.anc[d.index()];
            if src.words.is_empty() || src.base > base {
                debug_assert!(src.words.is_empty() || p < self.floor || src.base <= base);
                continue;
            }
            let shift = ((base - src.base) / 64) as usize;
            if shift >= src.words.len() {
                // The predecessor's row ends at or below our base (`p <=
                // base` — e.g. a dep older than the tag window): every bit
                // it holds is for an id `< p <= base`, which our row cannot
                // represent. Its direct bit (if `p == base`) was already set
                // above, and queries below `base` take the walk fallback.
                debug_assert!(p <= base);
                continue;
            }
            for (w, s) in row.words.iter_mut().zip(src.words[shift..].iter()) {
                *w |= s;
            }
        }
        for d in &deps {
            self.succs[d.index()].push(id);
        }
        self.tag_words += row.words.len();
        self.preds.push(deps);
        self.succs.push(Vec::new());
        self.depth.push(depth);
        self.min_anc.push(min_anc);
        self.anc.push(row);
        id
    }

    pub fn len(&self) -> usize {
        self.preds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t.index()]
    }

    /// Successor lists. Maintained incrementally by `push`; this is a view,
    /// not a rebuild (see `successors_is_cached` test).
    pub fn successors(&self) -> &[Vec<TaskId>] {
        &self.succs
    }

    /// Is `anc` reachable from `t` through dependence edges (i.e. must `t`
    /// run after `anc`)? Reflexive.
    ///
    /// Answered in O(1) from the `(depth, min_anc)` tags and the windowed
    /// ancestor bitset; falls back to the exact predecessor walk only for
    /// ids below the tag window. Debug builds cross-check every tag answer
    /// against the walk.
    pub fn must_follow(&self, t: TaskId, anc: TaskId) -> bool {
        if t == anc {
            return true;
        }
        if anc > t {
            return false;
        }
        let ti = t.index();
        // DePa tag pruning: both are exact negatives.
        if anc.0 < self.min_anc[ti] || self.depth[anc.index()] >= self.depth[ti] {
            debug_assert!(!self.must_follow_walk(t, anc));
            return false;
        }
        let row = &self.anc[ti];
        if !row.words.is_empty() && anc.0 >= row.base {
            let bit = (anc.0 - row.base) as usize;
            let hit = row.words[bit / 64] >> (bit % 64) & 1 != 0;
            debug_assert_eq!(hit, self.must_follow_walk(t, anc));
            return hit;
        }
        self.must_follow_walk(t, anc)
    }

    /// The pre-tag transitive walk over predecessor lists. Exact for every
    /// pair regardless of the tag window; retained as the debug-assert
    /// oracle and as the fallback below the window.
    pub fn must_follow_walk(&self, t: TaskId, anc: TaskId) -> bool {
        if t == anc {
            return true;
        }
        // Depth-first over predecessors; ids decrease along edges so we can
        // prune anything below `anc`.
        let mut seen = vec![false; self.preds.len()];
        let mut stack = vec![t];
        while let Some(cur) = stack.pop() {
            for d in self.preds(cur) {
                if *d == anc {
                    return true;
                }
                if *d > anc && !seen[d.index()] {
                    seen[d.index()] = true;
                    stack.push(*d);
                }
            }
        }
        false
    }

    /// Free the ancestor-bitset rows of every task below `floor` (the GC
    /// watermark) and bound future rows by it. Predecessor lists, depths and
    /// `min_anc` are kept — they are O(edges)/O(1) per task — so walks about
    /// retired ids stay exact. Returns the number of words freed.
    pub fn retire_to(&mut self, floor: TaskId) -> usize {
        let f = floor.0.min(self.preds.len() as u32);
        if f <= self.floor {
            return 0;
        }
        let mut freed = 0;
        for row in &mut self.anc[self.floor as usize..f as usize] {
            freed += row.words.len();
            row.words = Vec::new();
        }
        self.tag_words -= freed;
        self.floor = f;
        freed
    }

    /// GC watermark last passed to [`retire_to`].
    pub fn retired_floor(&self) -> u32 {
        self.floor
    }

    /// Live ancestor-bitset words (8 bytes each) across all rows.
    pub fn tag_words(&self) -> usize {
        self.tag_words
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }

    /// The length of the longest dependence chain (critical path in tasks).
    pub fn critical_path_len(&self) -> usize {
        self.depth.iter().max().map_or(0, |d| *d as usize + 1)
    }

    /// Partition tasks into "waves" that could run concurrently: a task's
    /// wave is one past the max wave of its predecessors (its tag depth).
    pub fn waves(&self) -> Vec<Vec<TaskId>> {
        let max_wave = self.depth.iter().max().copied().unwrap_or(0) as usize;
        let mut waves = vec![
            Vec::new();
            if self.depth.is_empty() {
                0
            } else {
                max_wave + 1
            }
        ];
        for (i, w) in self.depth.iter().enumerate() {
            waves[*w as usize].push(TaskId(i as u32));
        }
        waves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig 5 dependence structure: three waves of three
    /// independent tasks, each wave depending on all of the previous.
    fn fig5_dag() -> TaskDag {
        let mut dag = TaskDag::new();
        for _ in 0..3 {
            dag.push(vec![]);
        }
        for _ in 3..6 {
            dag.push(vec![TaskId(0), TaskId(1), TaskId(2)]);
        }
        for _ in 6..9 {
            dag.push(vec![TaskId(3), TaskId(4), TaskId(5)]);
        }
        dag
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut dag = TaskDag::new();
        assert_eq!(dag.push(vec![]), TaskId(0));
        assert_eq!(dag.push(vec![TaskId(0)]), TaskId(1));
        assert_eq!(dag.len(), 2);
    }

    #[test]
    fn fig5_waves() {
        let dag = fig5_dag();
        let waves = dag.waves();
        assert_eq!(waves.len(), 3, "t0-2, t3-5, t6-8 run as three waves");
        assert_eq!(waves[0], vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(waves[2], vec![TaskId(6), TaskId(7), TaskId(8)]);
        assert_eq!(dag.critical_path_len(), 3);
    }

    #[test]
    fn transitive_reachability() {
        let dag = fig5_dag();
        // t6 depends on t0 only transitively (through t3-5).
        assert!(!dag.preds(TaskId(6)).contains(&TaskId(0)));
        assert!(dag.must_follow(TaskId(6), TaskId(0)));
        assert!(dag.must_follow(TaskId(6), TaskId(6)));
        assert!(!dag.must_follow(TaskId(0), TaskId(6)));
        assert!(!dag.must_follow(TaskId(1), TaskId(0)), "peers unordered");
    }

    #[test]
    fn successors_inverts_preds() {
        let dag = fig5_dag();
        let succs = dag.successors();
        assert_eq!(
            succs[0],
            vec![TaskId(3), TaskId(4), TaskId(5)],
            "t0 feeds all of the second wave"
        );
        assert!(succs[8].is_empty());
        assert_eq!(dag.edge_count(), 18);
    }

    #[test]
    fn successors_is_cached() {
        // Regression for the old behavior that rebuilt the full adjacency on
        // every call: the view must be the same allocation across calls and
        // stay correct as pushes interleave with queries.
        let mut dag = fig5_dag();
        let p0 = dag.successors().as_ptr();
        let p1 = dag.successors().as_ptr();
        assert_eq!(p0, p1, "successors() must not rebuild per call");
        dag.push(vec![TaskId(8)]);
        let succs = dag.successors();
        assert_eq!(succs[8], vec![TaskId(9)]);
        assert_eq!(succs.len(), 10);
    }

    #[test]
    fn tags_cross_word_boundaries() {
        // 200 tasks in a chain: bit indices span multiple u64 words.
        let mut dag = TaskDag::new();
        dag.push(vec![]);
        for i in 1..200u32 {
            dag.push(vec![TaskId(i - 1)]);
        }
        assert!(dag.must_follow(TaskId(199), TaskId(0)));
        assert!(dag.must_follow(TaskId(199), TaskId(64)));
        assert!(dag.must_follow(TaskId(64), TaskId(63)));
        assert!(!dag.must_follow(TaskId(0), TaskId(199)));
        assert_eq!(dag.critical_path_len(), 200);
    }

    #[test]
    fn narrow_window_falls_back_to_walk() {
        // Window narrower than the chain: queries about ids below each
        // row's base must still be exact via the walk fallback.
        let mut dag = TaskDag::with_window(64);
        dag.push(vec![]);
        for i in 1..300u32 {
            dag.push(vec![TaskId(i - 1)]);
        }
        assert!(dag.must_follow(TaskId(299), TaskId(0)), "below window");
        assert!(dag.must_follow(TaskId(299), TaskId(290)), "in window");
        assert!(!dag.must_follow(TaskId(150), TaskId(151)));
        // Two independent chains: no cross edges at any distance.
        let mut two = TaskDag::with_window(64);
        two.push(vec![]);
        two.push(vec![]);
        for i in 1..150u32 {
            two.push(vec![TaskId(2 * i - 2)]);
            two.push(vec![TaskId(2 * i - 1)]);
        }
        assert!(two.must_follow(TaskId(298), TaskId(0)));
        assert!(!two.must_follow(TaskId(298), TaskId(1)), "other chain");
        assert!(!two.must_follow(TaskId(299), TaskId(0)), "other chain");
    }

    #[test]
    fn dep_reaching_below_window_is_skipped_not_panicked() {
        // Regression: a dependence on a task *older than the tag window*
        // whose own row is non-empty used to slice the predecessor's words
        // out of range. The bits it would contribute are all below our base
        // anyway; queries about them take the walk fallback.
        let mut dag = TaskDag::with_window(64);
        dag.push(vec![]); // t0
        dag.push(vec![TaskId(0)]); // t1: non-empty row at base 0
        for _ in 2..302u32 {
            dag.push(vec![]);
        }
        let t = dag.push(vec![TaskId(1), TaskId(301)]); // row base far above t1's
        assert!(dag.must_follow(t, TaskId(0)), "via walk below the window");
        assert!(dag.must_follow(t, TaskId(1)), "via walk below the window");
        assert!(dag.must_follow(t, TaskId(301)), "via tag in the window");
        assert!(!dag.must_follow(t, TaskId(2)));
    }

    #[test]
    fn retire_frees_tag_rows_but_stays_exact() {
        let mut dag = TaskDag::new();
        dag.push(vec![]);
        for i in 1..128u32 {
            dag.push(vec![TaskId(i - 1)]);
        }
        let before = dag.tag_words();
        assert!(before > 0);
        let freed = dag.retire_to(TaskId(100));
        assert!(freed > 0);
        assert_eq!(dag.tag_words(), before - freed);
        assert_eq!(dag.retired_floor(), 100);
        // Retired rows answer via the walk; retained rows via tags. Both
        // must stay exact, including across the floor.
        assert!(dag.must_follow(TaskId(50), TaskId(0)));
        assert!(dag.must_follow(TaskId(127), TaskId(50)));
        assert!(dag.must_follow(TaskId(127), TaskId(126)));
        assert!(!dag.must_follow(TaskId(50), TaskId(51)));
        // New pushes start their window at the watermark.
        let t = dag.push(vec![TaskId(127)]);
        assert!(dag.must_follow(t, TaskId(0)));
        assert!(dag.must_follow(t, TaskId(127)));
        // Retiring is monotone; re-retiring below the floor is a no-op.
        assert_eq!(dag.retire_to(TaskId(50)), 0);
        assert_eq!(dag.retired_floor(), 100);
    }
}
