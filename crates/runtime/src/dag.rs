//! The dependence DAG produced by the analysis (§3.2).
//!
//! Task ids are assigned in program order, so every edge points from a task
//! to a strictly earlier task and program order is already a topological
//! order. Dependence analysis "relaxes the sequential order to a partial
//! (parallel) order such that the coherence of reads is still guaranteed."

use crate::task::TaskId;

/// Dependence DAG over recorded launches.
#[derive(Clone, Debug, Default)]
pub struct TaskDag {
    /// `preds[t]` = tasks `t` must wait for (sorted, deduplicated).
    preds: Vec<Vec<TaskId>>,
}

impl TaskDag {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the next task (ids must be added in program order) with its
    /// dependences.
    pub fn push(&mut self, deps: Vec<TaskId>) -> TaskId {
        let id = TaskId(self.preds.len() as u32);
        debug_assert!(deps.iter().all(|d| *d < id), "dependence on the future");
        self.preds.push(deps);
        id
    }

    pub fn len(&self) -> usize {
        self.preds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t.index()]
    }

    /// Successor lists (computed on demand).
    pub fn successors(&self) -> Vec<Vec<TaskId>> {
        let mut succs = vec![Vec::new(); self.preds.len()];
        for (i, deps) in self.preds.iter().enumerate() {
            for d in deps {
                succs[d.index()].push(TaskId(i as u32));
            }
        }
        succs
    }

    /// Is `anc` reachable from `t` through dependence edges (i.e. must `t`
    /// run after `anc`)? Reflexive.
    pub fn must_follow(&self, t: TaskId, anc: TaskId) -> bool {
        if t == anc {
            return true;
        }
        // Depth-first over predecessors; ids decrease along edges so we can
        // prune anything below `anc`.
        let mut seen = vec![false; self.preds.len()];
        let mut stack = vec![t];
        while let Some(cur) = stack.pop() {
            for d in self.preds(cur) {
                if *d == anc {
                    return true;
                }
                if *d > anc && !seen[d.index()] {
                    seen[d.index()] = true;
                    stack.push(*d);
                }
            }
        }
        false
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }

    /// The length of the longest dependence chain (critical path in tasks).
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.preds.len()];
        for i in 0..self.preds.len() {
            depth[i] = self.preds[i]
                .iter()
                .map(|d| depth[d.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        depth.into_iter().max().map_or(0, |d| d + 1)
    }

    /// Partition tasks into "waves" that could run concurrently: a task's
    /// wave is one past the max wave of its predecessors.
    pub fn waves(&self) -> Vec<Vec<TaskId>> {
        let mut wave_of = vec![0usize; self.preds.len()];
        let mut max_wave = 0;
        for i in 0..self.preds.len() {
            wave_of[i] = self.preds[i]
                .iter()
                .map(|d| wave_of[d.index()] + 1)
                .max()
                .unwrap_or(0);
            max_wave = max_wave.max(wave_of[i]);
        }
        let mut waves = vec![
            Vec::new();
            if self.preds.is_empty() {
                0
            } else {
                max_wave + 1
            }
        ];
        for (i, w) in wave_of.into_iter().enumerate() {
            waves[w].push(TaskId(i as u32));
        }
        waves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig 5 dependence structure: three waves of three
    /// independent tasks, each wave depending on all of the previous.
    fn fig5_dag() -> TaskDag {
        let mut dag = TaskDag::new();
        for _ in 0..3 {
            dag.push(vec![]);
        }
        for _ in 3..6 {
            dag.push(vec![TaskId(0), TaskId(1), TaskId(2)]);
        }
        for _ in 6..9 {
            dag.push(vec![TaskId(3), TaskId(4), TaskId(5)]);
        }
        dag
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut dag = TaskDag::new();
        assert_eq!(dag.push(vec![]), TaskId(0));
        assert_eq!(dag.push(vec![TaskId(0)]), TaskId(1));
        assert_eq!(dag.len(), 2);
    }

    #[test]
    fn fig5_waves() {
        let dag = fig5_dag();
        let waves = dag.waves();
        assert_eq!(waves.len(), 3, "t0-2, t3-5, t6-8 run as three waves");
        assert_eq!(waves[0], vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(waves[2], vec![TaskId(6), TaskId(7), TaskId(8)]);
        assert_eq!(dag.critical_path_len(), 3);
    }

    #[test]
    fn transitive_reachability() {
        let dag = fig5_dag();
        // t6 depends on t0 only transitively (through t3-5).
        assert!(!dag.preds(TaskId(6)).contains(&TaskId(0)));
        assert!(dag.must_follow(TaskId(6), TaskId(0)));
        assert!(dag.must_follow(TaskId(6), TaskId(6)));
        assert!(!dag.must_follow(TaskId(0), TaskId(6)));
        assert!(!dag.must_follow(TaskId(1), TaskId(0)), "peers unordered");
    }

    #[test]
    fn successors_inverts_preds() {
        let dag = fig5_dag();
        let succs = dag.successors();
        assert_eq!(
            succs[0],
            vec![TaskId(3), TaskId(4), TaskId(5)],
            "t0 feeds all of the second wave"
        );
        assert!(succs[8].is_empty());
        assert_eq!(dag.edge_count(), 18);
    }
}
