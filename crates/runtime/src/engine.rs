//! The coherence-engine interface shared by all three visibility algorithms.

use crate::analysis::{paint, paint_naive, raycast, visibility, warnock, ReqOutcome, ShardKey};
use crate::plan::{AnalysisResult, MaterializePlan};
use crate::sharding::ShardMap;
use crate::task::TaskLaunch;
use viz_region::RegionForest;
use viz_sim::{Machine, Op};

/// Everything an engine may consult while analyzing a launch. The engines
/// run their data structures for real; `machine` only *prices* the
/// operations they perform (and records where they happen).
pub struct AnalysisCtx<'a> {
    pub forest: &'a RegionForest,
    pub machine: &'a mut Machine,
    pub shards: &'a ShardMap,
}

/// The read-only context available to a shard-local scan. Unlike
/// [`AnalysisCtx`], it carries no machine: scans record their charges into
/// per-requirement [`viz_sim::ChargeLog`]s, replayed by the driver in
/// canonical order.
pub struct ShardCtx<'a> {
    pub forest: &'a RegionForest,
    pub shards: &'a ShardMap,
}

/// A dynamic dependence/coherence analysis: the `materialize`/`commit`
/// framework of §4 (Fig 6), fused into a single `analyze` observing each
/// task launch in program order.
///
/// Engines are *sharded*: all four key their retained state by the
/// `(root region, field)` of a requirement, and state on distinct shards
/// never interacts (§5–7). The interface splits a launch's analysis into
///
/// * [`prepare`](CoherenceEngine::prepare) — on the driver thread, with
///   exclusive access: group the requirements by shard and create any
///   missing shard state. Performs no machine charges.
/// * [`analyze_shard`](CoherenceEngine::analyze_shard) — scan and commit
///   the given requirements against one shard. Takes `&self`: calls for
///   *distinct* shards may run concurrently on worker threads; the driver
///   never runs two calls against the same shard at once. Charges are
///   recorded, not applied.
///
/// The provided [`analyze`](CoherenceEngine::analyze) drives the two hooks
/// sequentially and replays the recorded charges immediately — the serial
/// reference the sharded driver must match byte-for-byte.
///
/// Analysis must produce, per launch:
/// * the launch's dependences (a sufficient set: with transitivity, every
///   interfering pair of tasks is ordered), and
/// * one materialization plan per region requirement (§3.1): base copies
///   covering the domain from the most recent writes, plus the pending
///   reductions to fold — or an identity fill for reduction privileges
///   (the lazy-reduction rule of Fig 7, line 14).
pub trait CoherenceEngine: Send + Sync {
    fn name(&self) -> &'static str;

    /// Group `launch`'s requirements by shard (first-touch order, see
    /// [`crate::analysis::group_reqs_by_shard`]) and create missing shard
    /// state. Driver thread only; must not charge the machine.
    fn prepare(&mut self, launch: &TaskLaunch, ctx: &ShardCtx<'_>) -> Vec<(ShardKey, Vec<u32>)>;

    /// Analyze requirements `reqs` (indices into `launch.reqs`, ascending)
    /// against shard `key`: run the backward visibility scans, commit the
    /// requirements into the shard state, and record all machine charges
    /// into the returned outcomes' logs.
    fn analyze_shard(
        &self,
        key: ShardKey,
        launch: &TaskLaunch,
        reqs: &[u32],
        ctx: &ShardCtx<'_>,
    ) -> Vec<ReqOutcome>;

    /// Serial analysis: prepare, scan every shard in order, replay charges.
    fn analyze(&mut self, launch: &TaskLaunch, ctx: &mut AnalysisCtx<'_>) -> AnalysisResult {
        ctx.machine
            .op(ctx.shards.origin(launch.node), Op::LaunchOverhead);
        let sctx = ShardCtx {
            forest: ctx.forest,
            shards: ctx.shards,
        };
        let groups = self.prepare(launch, &sctx);
        let mut outcomes = Vec::with_capacity(launch.reqs.len());
        for (key, reqs) in &groups {
            outcomes.extend(self.analyze_shard(*key, launch, reqs, &sctx));
        }
        assemble_outcomes(launch, outcomes, ctx.machine)
    }

    /// Structure-size report for instrumentation (equivalence sets alive,
    /// history entries stored, composite views alive).
    fn state_size(&self) -> StateSize {
        StateSize::default()
    }

    /// Reclaim analysis state that can no longer influence any future
    /// launch — superseded equivalence sets, unreachable composite-view
    /// chains, stale memo entries. `floor` is the history-GC watermark
    /// (every launch below it has retired); engines whose liveness is
    /// purely reachability-based may ignore it.
    ///
    /// Contract: the sweep must be *behavior-preserving* — every future
    /// `analyze` produces byte-identical deps, plans, and machine charges
    /// whether or not `collect` ever ran. (Coarsening, which deliberately
    /// changes charges, is a separate opt-in: see
    /// [`CoherenceEngine::set_coarsening`].) Must not charge the machine.
    fn collect(&mut self, _floor: crate::task::TaskId) -> GcSweep {
        GcSweep::default()
    }

    /// Enable equivalence-set coarsening: during [`collect`]
    /// (CoherenceEngine::collect), merge sibling sets whose per-field
    /// states have re-converged — the inverse of refinement, which the
    /// paper's engines never perform. Coarsening preserves dependences and
    /// plan *coverage* (plan ranges over merged sets coalesce) but shrinks
    /// retained state and therefore changes simulated charge counts, so it
    /// is off by default and excluded from the GC byte-differential.
    ///
    /// Only Warnock — the engine with monotonic refinement — implements
    /// it. Ray casting coalesces natively through dominating writes
    /// (Fig 11) and the painters have no equivalence sets; they ignore the
    /// flag.
    fn set_coarsening(&mut self, _on: bool) {}

    /// Enable dirty-shard GC sweeps: [`collect`](CoherenceEngine::collect)
    /// visits only the `(root, field)` shards scanned since the previous
    /// sweep (plus a periodic full pass — see
    /// [`crate::analysis::FULL_SWEEP_PERIOD`]) instead of walking every
    /// shard in the engine. On by default (`VIZ_DIRTY_SHARDS`);
    /// behavior-preserving either way — an untouched shard has accumulated
    /// nothing new for a reachability-based sweep to reclaim.
    fn set_dirty_tracking(&mut self, _on: bool) {}
}

/// What one [`CoherenceEngine::collect`] sweep reclaimed (counts of
/// dropped state, accumulated into [`crate::stats::GcStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcSweep {
    pub history_entries: usize,
    pub equivalence_sets: usize,
    pub composite_views: usize,
    pub index_nodes: usize,
    pub memo_entries: usize,
    /// Sibling-set merges performed by coarsening (not "dropped" state,
    /// but reported with the sweep that did them).
    pub coarsen_merges: usize,
}

impl GcSweep {
    /// Total state entries dropped (coarsening merges excluded).
    pub fn total(&self) -> usize {
        self.history_entries
            + self.equivalence_sets
            + self.composite_views
            + self.index_nodes
            + self.memo_entries
    }

    pub fn is_empty(&self) -> bool {
        self.total() == 0 && self.coarsen_merges == 0
    }
}

impl std::ops::AddAssign for GcSweep {
    fn add_assign(&mut self, rhs: GcSweep) {
        self.history_entries += rhs.history_entries;
        self.equivalence_sets += rhs.equivalence_sets;
        self.composite_views += rhs.composite_views;
        self.index_nodes += rhs.index_nodes;
        self.memo_entries += rhs.memo_entries;
        self.coarsen_merges += rhs.coarsen_merges;
    }
}

/// Replay per-requirement charge logs in canonical order (all scans in
/// requirement order, then all commits in requirement order — the exact
/// sequence a serial engine produces) and assemble the launch's
/// [`AnalysisResult`]. Shared by the serial and the sharded drivers, which
/// is what makes the two byte-identical.
pub(crate) fn assemble_outcomes(
    launch: &TaskLaunch,
    mut outcomes: Vec<ReqOutcome>,
    machine: &mut Machine,
) -> AnalysisResult {
    outcomes.sort_by_key(|o| o.req);
    for o in &outcomes {
        o.scan_log.replay(machine);
    }
    for o in &outcomes {
        o.commit_log.replay(machine);
    }
    let mut result = AnalysisResult {
        deps: Vec::new(),
        plans: vec![MaterializePlan::default(); launch.reqs.len()],
    };
    for o in outcomes {
        result.deps.extend(o.deps);
        result.plans[o.req as usize] = o.plan;
    }
    result.normalize();
    result
}

/// Sizes of an engine's retained analysis state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateSize {
    pub history_entries: usize,
    pub equivalence_sets: usize,
    pub composite_views: usize,
    /// Nodes in the engine's spatial index: refinement-tree (BVH) nodes for
    /// Warnock, anchor buckets or K-d tree nodes for ray casting.
    pub index_nodes: usize,
    /// Entries across the engine's memoization tables (constituent-set and
    /// overlapping-anchor caches).
    pub memo_entries: usize,
    /// Distinct index spaces interned across the engine's shards.
    pub interned_spaces: usize,
    /// Entries currently held in the shards' algebra caches.
    pub algebra_cache_entries: usize,
    /// Cumulative algebra-cache hits across the shards.
    pub algebra_hits: u64,
    /// Cumulative algebra-cache misses across the shards.
    pub algebra_misses: u64,
    /// Cumulative candidate set ids the spatial indexes handed to the
    /// backward scans (post-dedup), across every requirement analyzed.
    /// Reported by the engines with candidate-producing indexes (ray
    /// casting); flat per launch at fixed requirement overlap.
    pub candidates_visited: u64,
    /// Cumulative live sets the backward scans overlap-tested. The
    /// weak-scale flatness signal: tracks what launches *see*, not how
    /// many sets are alive.
    pub sets_swept: u64,
}

/// The four engines of this reproduction. `Paint`, `Warnock` and `RayCast`
/// are the paper's three evaluated algorithms (§5–7); `PaintNaive` is the
/// unoptimized Fig 7 baseline kept for ablation A1.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum EngineKind {
    /// The painter's algorithm exactly as in Fig 7: one global history.
    PaintNaive,
    /// The painter's algorithm with region-tree sub-histories and composite
    /// views (§5.1) — "Paint" in the figures.
    Paint,
    /// Warnock's algorithm: equivalence sets with monotonic refinement and
    /// a BVH (§6) — "Warnock" in the figures.
    Warnock,
    /// Ray casting: Warnock plus dominating writes, anchored on a
    /// disjoint-and-complete partition (§7) — "RayCast" in the figures.
    RayCast,
}

impl EngineKind {
    /// Instantiate the engine with the environment's interning and
    /// visibility-backend configuration (`VIZ_INTERN` /
    /// `VIZ_ALGEBRA_CACHE_CAP` / `VIZ_VIS_BACKEND` / `VIZ_VIS_BATCH_MIN`).
    pub fn build(self) -> Box<dyn CoherenceEngine> {
        self.build_with(crate::config::env_intern())
    }

    /// Instantiate the engine with an explicit interning configuration
    /// (used by the differential tests to compare the memoized and direct
    /// algebra paths without touching the process environment); the
    /// visibility backend still defaults from the environment.
    pub fn build_with(self, intern: viz_geometry::InternConfig) -> Box<dyn CoherenceEngine> {
        self.build_configured(intern, crate::config::env_visibility())
    }

    /// Instantiate the engine with every analysis knob pinned. The
    /// candidate-resolution backend only affects the raycast K-d path —
    /// the other engines take no spatial-index batch and ignore it.
    pub fn build_configured(
        self,
        intern: viz_geometry::InternConfig,
        vis: visibility::VisibilityConfig,
    ) -> Box<dyn CoherenceEngine> {
        match self {
            EngineKind::PaintNaive => Box::new(paint_naive::PaintNaive::with_intern(intern)),
            EngineKind::Paint => Box::new(paint::Painter::with_intern(intern)),
            EngineKind::Warnock => Box::new(warnock::Warnock::with_intern(intern)),
            EngineKind::RayCast => Box::new(raycast::RayCast::with_config(intern, vis)),
        }
    }

    /// The three evaluated algorithms, in the paper's order.
    pub fn evaluated() -> [EngineKind; 3] {
        [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast]
    }

    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::PaintNaive,
            EngineKind::Paint,
            EngineKind::Warnock,
            EngineKind::RayCast,
        ]
    }

    /// Label used in the figures ("Paint", "Warnock", "RayCast").
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::PaintNaive => "PaintNaive",
            EngineKind::Paint => "Paint",
            EngineKind::Warnock => "Warnock",
            EngineKind::RayCast => "RayCast",
        }
    }

    /// Artifact system name (`paint`, `oldeqcr`, `neweqcr` in Appendix A).
    pub fn artifact_name(self) -> &'static str {
        match self {
            EngineKind::PaintNaive => "paintnaive",
            EngineKind::Paint => "paint",
            EngineKind::Warnock => "oldeqcr",
            EngineKind::RayCast => "neweqcr",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_labels_match_figures() {
        assert_eq!(EngineKind::Paint.label(), "Paint");
        assert_eq!(EngineKind::Warnock.label(), "Warnock");
        assert_eq!(EngineKind::RayCast.label(), "RayCast");
    }

    #[test]
    fn artifact_names_match_appendix() {
        assert_eq!(EngineKind::RayCast.artifact_name(), "neweqcr");
        assert_eq!(EngineKind::Warnock.artifact_name(), "oldeqcr");
        assert_eq!(EngineKind::Paint.artifact_name(), "paint");
    }

    #[test]
    fn builds_every_engine() {
        for k in EngineKind::all() {
            let e = k.build();
            assert!(!e.name().is_empty());
        }
    }
}
