//! The coherence-engine interface shared by all three visibility algorithms.

use crate::analysis::{paint, paint_naive, raycast, warnock};
use crate::plan::AnalysisResult;
use crate::sharding::ShardMap;
use crate::task::TaskLaunch;
use viz_region::RegionForest;
use viz_sim::Machine;

/// Everything an engine may consult while analyzing a launch. The engines
/// run their data structures for real; `machine` only *prices* the
/// operations they perform (and records where they happen).
pub struct AnalysisCtx<'a> {
    pub forest: &'a RegionForest,
    pub machine: &'a mut Machine,
    pub shards: &'a ShardMap,
}

/// A dynamic dependence/coherence analysis: the `materialize`/`commit`
/// framework of §4 (Fig 6), fused into a single `analyze` observing each
/// task launch in program order.
///
/// `analyze` must return
/// * the launch's dependences (a sufficient set: with transitivity, every
///   interfering pair of tasks is ordered), and
/// * one materialization plan per region requirement (§3.1): base copies
///   covering the domain from the most recent writes, plus the pending
///   reductions to fold — or an identity fill for reduction privileges
///   (the lazy-reduction rule of Fig 7, line 14).
pub trait CoherenceEngine: Send {
    fn name(&self) -> &'static str;

    fn analyze(&mut self, launch: &TaskLaunch, ctx: &mut AnalysisCtx<'_>) -> AnalysisResult;

    /// Structure-size report for instrumentation (equivalence sets alive,
    /// history entries stored, composite views alive).
    fn state_size(&self) -> StateSize {
        StateSize::default()
    }
}

/// Sizes of an engine's retained analysis state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateSize {
    pub history_entries: usize,
    pub equivalence_sets: usize,
    pub composite_views: usize,
    /// Nodes in the engine's spatial index: refinement-tree (BVH) nodes for
    /// Warnock, anchor buckets or K-d tree nodes for ray casting.
    pub index_nodes: usize,
    /// Entries across the engine's memoization tables (constituent-set and
    /// overlapping-anchor caches).
    pub memo_entries: usize,
}

/// The four engines of this reproduction. `Paint`, `Warnock` and `RayCast`
/// are the paper's three evaluated algorithms (§5–7); `PaintNaive` is the
/// unoptimized Fig 7 baseline kept for ablation A1.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash)]
pub enum EngineKind {
    /// The painter's algorithm exactly as in Fig 7: one global history.
    PaintNaive,
    /// The painter's algorithm with region-tree sub-histories and composite
    /// views (§5.1) — "Paint" in the figures.
    Paint,
    /// Warnock's algorithm: equivalence sets with monotonic refinement and
    /// a BVH (§6) — "Warnock" in the figures.
    Warnock,
    /// Ray casting: Warnock plus dominating writes, anchored on a
    /// disjoint-and-complete partition (§7) — "RayCast" in the figures.
    RayCast,
}

impl EngineKind {
    /// Instantiate the engine.
    pub fn build(self) -> Box<dyn CoherenceEngine> {
        match self {
            EngineKind::PaintNaive => Box::new(paint_naive::PaintNaive::new()),
            EngineKind::Paint => Box::new(paint::Painter::new()),
            EngineKind::Warnock => Box::new(warnock::Warnock::new()),
            EngineKind::RayCast => Box::new(raycast::RayCast::new()),
        }
    }

    /// The three evaluated algorithms, in the paper's order.
    pub fn evaluated() -> [EngineKind; 3] {
        [EngineKind::Paint, EngineKind::Warnock, EngineKind::RayCast]
    }

    pub fn all() -> [EngineKind; 4] {
        [
            EngineKind::PaintNaive,
            EngineKind::Paint,
            EngineKind::Warnock,
            EngineKind::RayCast,
        ]
    }

    /// Label used in the figures ("Paint", "Warnock", "RayCast").
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::PaintNaive => "PaintNaive",
            EngineKind::Paint => "Paint",
            EngineKind::Warnock => "Warnock",
            EngineKind::RayCast => "RayCast",
        }
    }

    /// Artifact system name (`paint`, `oldeqcr`, `neweqcr` in Appendix A).
    pub fn artifact_name(self) -> &'static str {
        match self {
            EngineKind::PaintNaive => "paintnaive",
            EngineKind::Paint => "paint",
            EngineKind::Warnock => "oldeqcr",
            EngineKind::RayCast => "neweqcr",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_labels_match_figures() {
        assert_eq!(EngineKind::Paint.label(), "Paint");
        assert_eq!(EngineKind::Warnock.label(), "Warnock");
        assert_eq!(EngineKind::RayCast.label(), "RayCast");
    }

    #[test]
    fn artifact_names_match_appendix() {
        assert_eq!(EngineKind::RayCast.artifact_name(), "neweqcr");
        assert_eq!(EngineKind::Warnock.artifact_name(), "oldeqcr");
        assert_eq!(EngineKind::Paint.artifact_name(), "paint");
    }

    #[test]
    fn builds_every_engine() {
        for k in EngineKind::all() {
            let e = k.build();
            assert!(!e.name().is_empty());
        }
    }
}
