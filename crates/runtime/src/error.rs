//! Typed errors for the fallible submission API.
//!
//! Historically every misuse of the frontend was a `panic!` deep inside the
//! runtime. The submission redesign (PR 4) surfaces them as values instead:
//! [`crate::Runtime::submit`], [`crate::Runtime::try_set_initial`],
//! [`crate::Runtime::try_begin_trace`] and friends return
//! `Result<_, RuntimeError>`. The panicking wrappers that bridged the old
//! API were removed once every caller migrated (PR 6).

use crate::trace::TraceId;
use viz_region::{FieldId, Privilege, RegionId};

/// Why a submission (or trace annotation) was rejected.
///
/// Marked `#[non_exhaustive]`: later PRs will add variants (e.g. for
/// distributed submission) without a breaking release.
#[non_exhaustive]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RuntimeError {
    /// A requirement names a region id the forest has never produced.
    UnknownRegion { region: RegionId },
    /// A requirement names a field that does not belong to the region's
    /// root (fields are declared per root tree).
    UnknownField { region: RegionId, field: FieldId },
    /// Two requirements of one task alias with interfering privileges —
    /// the §4 restriction (intra-task coherence is out of scope).
    InterferingRequirements {
        a: RegionId,
        b: RegionId,
        privilege_a: Privilege,
        privilege_b: Privilege,
    },
    /// `begin_trace` while an annotated trace is already open.
    NestedTrace { active: TraceId, requested: TraceId },
    /// `end_trace` with no trace open.
    EndWithoutBegin { requested: TraceId },
    /// `end_trace` naming a different trace than the open one.
    MismatchedTraceEnd { active: TraceId, requested: TraceId },
    /// Shared runtime state (the core or the region forest) was poisoned
    /// by a panic on another thread — typically an engine bug surfaced on
    /// the pipeline driver or a sharded-analysis worker. The submission is
    /// rejected instead of re-raising the foreign panic on this thread.
    Poisoned { what: &'static str },
    /// The pipeline dispatcher thread panicked. `lost` counts launches
    /// that were queued but will never be analyzed (dequeued-mid-batch or
    /// still sitting in a submission ring). Dropping the runtime re-raises
    /// the dispatcher's original panic payload.
    DriverPanicked { lost: u64 },
    /// A blocking resolve was attempted from inside a runtime worker (the
    /// pipeline dispatcher or a value-executor callback). Waiting there
    /// can never succeed — the waiter is the thread that would have to
    /// make the progress — so the call fails instead of hanging.
    WouldDeadlock,
    /// Every submission ring is claimed by a live context; drop one (or
    /// raise [`crate::RuntimeConfig::submit_rings`]) before creating more.
    RingsExhausted { rings: usize },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::UnknownRegion { region } => {
                write!(f, "unknown region {region:?} (not created by this forest)")
            }
            RuntimeError::UnknownField { region, field } => {
                write!(
                    f,
                    "field {field:?} does not belong to the root of region {region:?}"
                )
            }
            RuntimeError::InterferingRequirements {
                a,
                b,
                privilege_a,
                privilege_b,
            } => {
                write!(
                    f,
                    "task region arguments {a:?} and {b:?} alias with interfering \
                     privileges {privilege_a:?}/{privilege_b:?} (intra-task coherence \
                     is out of scope, §4)"
                )
            }
            RuntimeError::NestedTrace { active, requested } => {
                write!(
                    f,
                    "nested or overlapping traces are not supported \
                     (trace {} is open, begin_trace({}) requested)",
                    active.0, requested.0
                )
            }
            RuntimeError::EndWithoutBegin { requested } => {
                write!(f, "end_trace without begin_trace (trace {})", requested.0)
            }
            RuntimeError::MismatchedTraceEnd { active, requested } => {
                write!(
                    f,
                    "mismatched begin/end trace ids (trace {} is open, \
                     end_trace({}) requested)",
                    active.0, requested.0
                )
            }
            RuntimeError::Poisoned { what } => {
                write!(
                    f,
                    "runtime {what} poisoned by a panic on another thread \
                     (engine or driver bug; see its panic message)"
                )
            }
            RuntimeError::DriverPanicked { lost } => {
                write!(
                    f,
                    "pipeline driver panicked with {lost} queued launch(es) \
                     unanalyzed (dropping the runtime re-raises the panic)"
                )
            }
            RuntimeError::WouldDeadlock => {
                write!(
                    f,
                    "blocking resolve from inside a runtime worker would \
                     self-deadlock (the worker is the thread being waited on)"
                )
            }
            RuntimeError::RingsExhausted { rings } => {
                write!(
                    f,
                    "all {rings} submission rings are claimed by live contexts \
                     (drop a context or raise RuntimeConfig::submit_rings)"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
