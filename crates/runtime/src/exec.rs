//! Deferred execution: a value executor (worker threads, real data), a
//! timed executor (simulated machine, the paper's scaling experiments), and
//! the scan scheduler of the sharded analysis driver
//! ([`crate::Runtime::run_batch`]).

use crate::analysis::{ReqOutcome, ShardKey};
use crate::dag::TaskDag;
use crate::engine::{CoherenceEngine, ShardCtx};
use crate::instance::PhysicalRegion;
use crate::plan::{Source, StoredResult};
use crate::sharding::ShardMap;
use crate::task::{TaskBody, TaskId, TaskLaunch};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::OnceLock;
use viz_geometry::{FxHashMap, Point};
use viz_region::{redop::Value, FieldId, Privilege, RedOpRegistry, RegionForest, RegionId};
use viz_sim::{Machine, SimTime};

/// Run one batch's shard scans on a scoped worker pool and retire the
/// launches in order.
///
/// Scheduling contract (this is what makes the parallel driver
/// byte-identical to the serial one):
///
/// * Every group for the same shard goes to the *same* worker, and workers
///   drain their queues in the order enqueued (batch order) — so one
///   shard's scans and commits happen in launch order, exactly as a serial
///   engine would apply them. Distinct shards touch disjoint state and may
///   run concurrently.
/// * Shards are assigned to workers round-robin in first-seen batch order:
///   deterministic, and balanced for the wave-structured batches the apps
///   produce.
/// * `retire` runs on the calling thread, strictly in batch order, as soon
///   as all of an item's shard scans have arrived — a pipelined commit
///   stage: launch *i* replays its recorded charges (pricing and simulated
///   clocks stay sequentially faithful) while later launches are still
///   being scanned.
pub(crate) fn scan_batch(
    engine: &dyn CoherenceEngine,
    forest: &RegionForest,
    shard_map: &ShardMap,
    launches: &[TaskLaunch],
    groups: &[Vec<(ShardKey, Vec<u32>)>],
    threads: usize,
    mut retire: impl FnMut(usize, Vec<ReqOutcome>),
) {
    let n = launches.len();
    let mut shard_worker: FxHashMap<ShardKey, usize> = FxHashMap::default();
    let mut next_worker = 0usize;
    let mut queues: Vec<Vec<(usize, usize)>> = vec![Vec::new(); threads.max(1)];
    for (i, gs) in groups.iter().enumerate() {
        for (gi, (key, _)) in gs.iter().enumerate() {
            let w = *shard_worker.entry(*key).or_insert_with(|| {
                let w = next_worker;
                next_worker = (next_worker + 1) % threads.max(1);
                w
            });
            queues[w].push((i, gi));
        }
    }
    let mut remaining: Vec<usize> = groups.iter().map(Vec::len).collect();
    // Workers hand results back in chunks: cross-thread synchronization
    // (mutex traffic, driver wakeups) is paid once per ~CHUNK scans instead
    // of once per scan, which matters because a steady-state shard scan is
    // only a few microseconds of work.
    const CHUNK: usize = 32;
    let (tx, rx) = crossbeam::channel::unbounded::<Vec<(usize, Vec<ReqOutcome>)>>();
    std::thread::scope(|scope| {
        for q in queues {
            if q.is_empty() {
                continue;
            }
            let tx = tx.clone();
            scope.spawn(move || {
                let ctx = ShardCtx {
                    forest,
                    shards: shard_map,
                };
                let mut pending: Vec<(usize, Vec<ReqOutcome>)> = Vec::with_capacity(CHUNK);
                for (i, gi) in q {
                    let (key, reqs) = &groups[i][gi];
                    let span = viz_profile::span(engine.name());
                    let outcomes = engine.analyze_shard(*key, &launches[i], reqs, &ctx);
                    drop(span);
                    pending.push((i, outcomes));
                    if pending.len() >= CHUNK && tx.send(std::mem::take(&mut pending)).is_err() {
                        // Receiver gone: the driver bailed (another worker
                        // panicked). Stop scanning instead of panicking on
                        // a closed channel — the scope join surfaces the
                        // original panic.
                        return;
                    }
                }
                if !pending.is_empty() {
                    let _ = tx.send(pending);
                }
            });
        }
        drop(tx);
        let mut buf: Vec<Vec<ReqOutcome>> = (0..n).map(|_| Vec::new()).collect();
        let mut next = 0usize;
        while next < n {
            while next < n && remaining[next] == 0 {
                retire(next, std::mem::take(&mut buf[next]));
                next += 1;
            }
            if next >= n {
                break;
            }
            let Ok(chunk) = rx.recv() else {
                // Every sender hung up with scans outstanding: a worker
                // panicked. Break and let the scope join re-raise its
                // panic (with the worker's own message) instead of
                // masking it behind a RecvError unwrap here.
                break;
            };
            for (i, outcomes) in chunk {
                buf[i].extend(outcomes);
                remaining[i] -= 1;
            }
        }
    });
}

/// Committed outputs of every task, indexed by `(task, requirement)`.
pub struct ValueStore {
    outputs: Vec<Vec<PhysicalRegion>>,
}

impl ValueStore {
    /// The committed state of requirement `req` of task `t`.
    pub fn output(&self, t: TaskId, req: usize) -> &PhysicalRegion {
        &self.outputs[t.index()][req]
    }

    /// The values materialized by an inline read (see
    /// [`crate::Runtime::inline_read`]).
    pub fn inline(&self, t: TaskId) -> &PhysicalRegion {
        self.output(t, 0)
    }

    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

type InitFn = Arc<dyn Fn(Point) -> Value + Send + Sync>;

/// Run every launch with real values on worker threads, honoring the DAG.
///
/// Inputs are materialized per the engines' plans: base copies from
/// producers' committed outputs (or the initial contents), then pending
/// reductions folded in ascending task order — which makes the parallel
/// execution produce results identical to sequential execution.
pub(crate) fn execute_values(
    forest: &RegionForest,
    redops: &RedOpRegistry,
    launches: &[TaskLaunch],
    bodies: &[Option<TaskBody>],
    results: &[StoredResult],
    dag: &TaskDag,
    initial: &FxHashMap<(RegionId, FieldId), InitFn>,
) -> ValueStore {
    let _exec_span = viz_profile::span("execute_values");
    let n = launches.len();
    // Initial instances, one per (root, field) in use.
    let mut init_instances: FxHashMap<(RegionId, FieldId), PhysicalRegion> = FxHashMap::default();
    for l in launches {
        for req in &l.reqs {
            let key = (forest.root_of(req.region), req.field);
            init_instances.entry(key).or_insert_with(|| {
                let mut inst =
                    PhysicalRegion::new(forest.domain(key.0).clone(), Privilege::ReadWrite, 0.0);
                if let Some(f) = initial.get(&key) {
                    inst.update_all(|p, _| f(p));
                }
                inst
            });
        }
    }

    let outputs: Vec<OnceLock<Vec<PhysicalRegion>>> = (0..n).map(|_| OnceLock::new()).collect();
    let succs = dag.successors();
    let indegree: Vec<AtomicUsize> = (0..n)
        .map(|i| AtomicUsize::new(dag.preds(TaskId(i as u32)).len()))
        .collect();
    let remaining = AtomicUsize::new(n);
    let (tx, rx) = crossbeam::channel::unbounded::<usize>();
    for (i, deg) in indegree.iter().enumerate() {
        if deg.load(Ordering::Relaxed) == 0 {
            tx.send(i).unwrap();
        }
    }

    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(8)
        .min(n.max(1));

    let run_one = |t: usize| {
        let _task_span = viz_profile::span("task");
        let launch = &launches[t];
        // Replayed launches share the trace template's result; task
        // references are in template coordinates and get shifted here,
        // at the read, instead of deep-cloning the plans per instance.
        let shift = results[t].shift();
        let result = results[t].raw();
        let mut instances = Vec::with_capacity(launch.reqs.len());
        for (ri, req) in launch.reqs.iter().enumerate() {
            let plan = &result.plans[ri];
            let domain = forest.domain(req.region).clone();
            let init_val = plan
                .fill_identity
                .map(|op| redops.identity(op))
                .unwrap_or(0.0);
            let mut inst = PhysicalRegion::new(domain, req.privilege, init_val);
            if let Privilege::Reduce(op) = req.privilege {
                inst = inst.with_fold(op, redops.get(op).fold);
            }
            for copy in &plan.copies {
                match &copy.source {
                    Source::Initial => {
                        let key = (forest.root_of(req.region), req.field);
                        inst.copy_from(&init_instances[&key], &copy.domain);
                    }
                    Source::Task(tid, r) => {
                        let src = &outputs[shift.apply(*tid).index()]
                            .get()
                            .expect("source task not yet executed — dependence missing")
                            [*r as usize];
                        inst.copy_from(src, &copy.domain);
                    }
                }
            }
            // `plan.normalize()` sorted reductions into program order.
            for red in &plan.reductions {
                let src = &outputs[shift.apply(red.task).index()]
                    .get()
                    .expect("reduction source not yet executed — dependence missing")
                    [red.req as usize];
                inst.fold_from(src, &red.domain, redops.get(red.redop).fold);
            }
            instances.push(inst);
        }
        if let Some(body) = &bodies[t] {
            body(&mut instances);
        }
        outputs[t]
            .set(instances)
            .unwrap_or_else(|_| panic!("task {t} executed twice"));
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let rx = rx.clone();
            let tx = tx.clone();
            let remaining = &remaining;
            let indegree = &indegree;
            let succs = &succs;
            let run_one = &run_one;
            scope.spawn(move || {
                // Task bodies run on runtime workers: a blocking resolve
                // from inside one can never be satisfied while the
                // executor holds the core read lock, so mark the thread
                // and let resolve fail fast with `WouldDeadlock`.
                let _worker = crate::pipeline::enter_worker();
                while let Ok(t) = rx.recv() {
                    if t == usize::MAX {
                        return;
                    }
                    run_one(t);
                    for s in &succs[t] {
                        if indegree[s.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                            tx.send(s.index()).unwrap();
                        }
                    }
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        // Last task: release every worker.
                        for _ in 0..workers {
                            tx.send(usize::MAX).unwrap();
                        }
                    }
                }
            });
        }
        if n == 0 {
            drop(tx);
        }
    });

    assert_eq!(remaining.load(Ordering::Acquire), 0, "executor deadlocked");
    ValueStore {
        outputs: outputs
            .into_iter()
            .map(|o| o.into_inner().expect("task never executed"))
            .collect(),
    }
}

/// Per-task completion times from the timed executor.
#[derive(Clone, Debug)]
pub struct TimedReport {
    /// Completion time of each task on the simulated machine.
    pub completion: Vec<SimTime>,
    /// Latest completion across all tasks.
    pub makespan: SimTime,
}

impl TimedReport {
    /// Latest completion among a contiguous range of task ids — used to
    /// delimit application iterations.
    pub fn completion_through(&self, last_task: TaskId) -> SimTime {
        self.completion[..=last_task.index()]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

/// Replays the dependence DAG on the simulated machine (list scheduling):
///
/// * a task starts no earlier than its **analysis completion** on its origin
///   node — at scale this coupling is what makes analysis the bottleneck
///   (§8.2);
/// * no earlier than its dependences' completions;
/// * inputs sourced from other nodes arrive by simulated DMA;
/// * the node's single GPU runs one task at a time.
pub struct TimedSchedule;

impl TimedSchedule {
    pub(crate) fn run(
        forest: &RegionForest,
        launches: &[TaskLaunch],
        results: &[StoredResult],
        dag: &TaskDag,
        analysis_done: &[SimTime],
        machine: &mut Machine,
    ) -> TimedReport {
        let _ = forest;
        let n = launches.len();
        // Realm-style deferred execution: every operation (task completion,
        // copy delivery, analysis ready) is an event; a task's precondition
        // is the merge of its input events.
        let mut events = viz_sim::EventPool::new();
        let mut completion_event = vec![viz_sim::Event::NO_EVENT; n];
        let mut completion = vec![0u64; n];
        let bytes_per_element = machine.cost().bytes_per_element;
        let dispatch = machine.cost().dispatch_ns;
        for t in 0..n {
            let launch = &launches[t];
            let mut preconditions = vec![events.create(analysis_done[t])];
            for d in dag.preds(TaskId(t as u32)) {
                preconditions.push(completion_event[d.index()]);
            }
            // Inter-node data movement for inputs: each remote copy is an
            // operation whose precondition is the producer's completion and
            // whose own completion gates the task.
            // Replayed launches keep task references in template
            // coordinates; shift them onto this instance at the read.
            let shift = results[t].shift();
            for plan in &results[t].raw().plans {
                for copy in &plan.copies {
                    if let Source::Task(s, _) = &copy.source {
                        let s = shift.apply(*s);
                        let src_node = launches[s.index()].node;
                        if src_node != launch.node {
                            let bytes = copy.domain.volume() * bytes_per_element;
                            let arrival =
                                machine.copy(src_node, launch.node, bytes, completion[s.index()]);
                            preconditions.push(events.create(arrival));
                        }
                    }
                }
                for red in &plan.reductions {
                    let src = shift.apply(red.task);
                    let src_node = launches[src.index()].node;
                    if src_node != launch.node {
                        let bytes = red.domain.volume() * bytes_per_element;
                        let arrival =
                            machine.copy(src_node, launch.node, bytes, completion[src.index()]);
                        preconditions.push(events.create(arrival));
                    }
                }
            }
            let ready = events.merge(&preconditions);
            let end = machine.gpu_task(
                launch.node,
                events.time(ready) + dispatch,
                launch.duration_ns,
            );
            if viz_profile::enabled() {
                viz_profile::sim_event(
                    end - launch.duration_ns,
                    launch.duration_ns,
                    viz_profile::Track::SimGpu {
                        node: launch.node as u32,
                    },
                    viz_profile::EventKind::GpuTask { task: t as u64 },
                );
            }
            completion_event[t] = events.create(end);
            completion[t] = end;
        }
        let makespan = completion.iter().copied().max().unwrap_or(0);
        TimedReport {
            completion,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use crate::runtime::{LaunchSpec, Runtime, RuntimeConfig};
    use crate::task::RegionRequirement;

    /// write 1.0 everywhere, then read it back through the runtime.
    #[test]
    fn write_then_read_roundtrip() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 16);
        let f = rt.forest_mut().add_field(root, "v");
        rt.submit(LaunchSpec::new(
            "fill",
            0,
            vec![RegionRequirement::read_write(root, f)],
            0,
            Some(Arc::new(|regions: &mut [PhysicalRegion]| {
                regions[0].update_all(|p, _| p.x as f64 * 2.0);
            })),
        ))
        .unwrap();
        let probe = rt.inline_read(root, f).unwrap();
        let store = rt.execute_values();
        let vals = store.inline(probe);
        assert_eq!(vals.get(Point::p1(0)), 0.0);
        assert_eq!(vals.get(Point::p1(7)), 14.0);
    }

    #[test]
    fn initial_values_flow_to_first_reader() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 8);
        let f = rt.forest_mut().add_field(root, "v");
        rt.try_set_initial(root, f, |p| 100.0 + p.x as f64).unwrap();
        let probe = rt.inline_read(root, f).unwrap();
        let store = rt.execute_values();
        assert_eq!(store.inline(probe).get(Point::p1(3)), 103.0);
    }

    #[test]
    fn reductions_fold_in_program_order() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 4);
        let f = rt.forest_mut().add_field(root, "v");
        rt.try_set_initial(root, f, |_| 10.0).unwrap();
        for i in 0..3u32 {
            let c = (i + 1) as f64; // contribute 1, 2, 3
            rt.submit(LaunchSpec::new(
                format!("reduce{i}"),
                0,
                vec![RegionRequirement::reduce(root, f, RedOpRegistry::SUM)],
                0,
                Some(Arc::new(move |regions: &mut [PhysicalRegion]| {
                    let dom = regions[0].domain().clone();
                    for p in dom.points() {
                        regions[0].reduce(p, c);
                    }
                })),
            ))
            .unwrap();
        }
        let probe = rt.inline_read(root, f).unwrap();
        let store = rt.execute_values();
        assert_eq!(store.inline(probe).get(Point::p1(0)), 16.0);
    }

    #[test]
    fn parallel_writers_on_disjoint_pieces() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 40);
        let f = rt.forest_mut().add_field(root, "v");
        let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
        for i in 0..4 {
            let piece = rt.forest().subregion(p, i);
            let val = i as f64;
            rt.submit(LaunchSpec::new(
                "piece",
                0,
                vec![RegionRequirement::read_write(piece, f)],
                0,
                Some(Arc::new(move |regions: &mut [PhysicalRegion]| {
                    regions[0].update_all(|_, _| val);
                })),
            ))
            .unwrap();
        }
        let probe = rt.inline_read(root, f).unwrap();
        let store = rt.execute_values();
        let vals = store.inline(probe);
        assert_eq!(vals.get(Point::p1(5)), 0.0);
        assert_eq!(vals.get(Point::p1(15)), 1.0);
        assert_eq!(vals.get(Point::p1(39)), 3.0);
    }

    #[test]
    fn timed_schedule_produces_monotone_completions() {
        let mut rt = Runtime::new(RuntimeConfig::new(EngineKind::PaintNaive).nodes(4));
        let root = rt.forest_mut().create_root_1d("A", 40);
        let f = rt.forest_mut().add_field(root, "v");
        let p = rt.forest_mut().create_equal_partition_1d(root, "P", 4);
        for iter in 0..3 {
            for i in 0..4usize {
                let piece = rt.forest().subregion(p, i);
                rt.submit(LaunchSpec::new(
                    format!("it{iter}"),
                    i,
                    vec![RegionRequirement::read_write(piece, f)],
                    10_000,
                    None,
                ))
                .unwrap();
            }
            // A read of the whole region serializes between iterations.
            rt.submit(LaunchSpec::new(
                "sync",
                0,
                vec![RegionRequirement::read(root, f)],
                5_000,
                None,
            ))
            .unwrap();
        }
        let report = rt.timed_schedule();
        assert_eq!(report.completion.len(), 15);
        assert!(report.makespan >= 3 * 15_000, "three serialized iterations");
        // Dependences respected: sync task completes after its iteration's writers.
        for k in 0..3 {
            let sync = 4 + k * 5;
            for w in (k * 5)..(k * 5 + 4) {
                assert!(report.completion[sync] > report.completion[w]);
            }
        }
    }
}
