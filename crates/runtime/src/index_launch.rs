//! Index task launches.
//!
//! Legion expresses `for i = 1..3 t1(P[i], G[i])` (Fig 1, line 16) as a
//! single *index launch* over a launch domain, with projection functions
//! mapping each index point to its region arguments. This module provides
//! that sugar over [`crate::Runtime::submit_batch`]: the analysis still
//! observes the individual point tasks (the paper's algorithms are defined
//! on the flattened stream), but applications get the natural batched API
//! and a single handle for the whole wave.

use crate::runtime::{LaunchSpec, Runtime, TaskHandle};
use crate::task::{RegionRequirement, TaskBody, TaskId};
use viz_region::{FieldId, PartitionId, Privilege};
use viz_sim::NodeId;

/// A projection from an index-launch point to one region requirement:
/// subregion `i` of a partition (the identity projection `P[i]`, by far the
/// most common in practice) with a fixed field and privilege.
#[derive(Clone, Debug)]
pub struct Projection {
    pub partition: PartitionId,
    pub field: FieldId,
    pub privilege: Privilege,
}

impl Projection {
    pub fn new(partition: PartitionId, field: FieldId, privilege: Privilege) -> Self {
        Projection {
            partition,
            field,
            privilege,
        }
    }

    pub fn read(partition: PartitionId, field: FieldId) -> Self {
        Self::new(partition, field, Privilege::Read)
    }

    pub fn read_write(partition: PartitionId, field: FieldId) -> Self {
        Self::new(partition, field, Privilege::ReadWrite)
    }

    pub fn reduce(partition: PartitionId, field: FieldId, op: viz_region::ReductionOpId) -> Self {
        Self::new(partition, field, Privilege::Reduce(op))
    }
}

/// The tasks created by one index launch.
#[derive(Clone, Debug)]
pub struct IndexLaunchResult {
    pub tasks: Vec<TaskId>,
}

impl IndexLaunchResult {
    pub fn first(&self) -> TaskId {
        *self.tasks.first().expect("empty index launch")
    }

    pub fn last(&self) -> TaskId {
        *self.tasks.last().expect("empty index launch")
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

impl Runtime {
    /// Launch one point task per index `0..domain`, with requirements
    /// `projections[j]` resolved to subregion `i` of each projection's
    /// partition. Point task `i` is mapped to node `node_of(i)` and body
    /// `body_of(i)`.
    pub fn index_launch(
        &mut self,
        name: impl Into<String>,
        domain: usize,
        projections: &[Projection],
        duration_ns: u64,
        node_of: impl Fn(usize) -> NodeId,
        mut body_of: impl FnMut(usize) -> Option<TaskBody>,
    ) -> IndexLaunchResult {
        let name = name.into();
        let mut specs = Vec::with_capacity(domain);
        {
            let forest = self.forest();
            for i in 0..domain {
                let reqs: Vec<RegionRequirement> = projections
                    .iter()
                    .map(|p| {
                        RegionRequirement::new(
                            forest.subregion(p.partition, i),
                            p.field,
                            p.privilege,
                        )
                    })
                    .collect();
                specs.push(LaunchSpec::new(
                    format!("{name}[{i}]"),
                    node_of(i),
                    reqs,
                    duration_ns,
                    body_of(i),
                ));
            }
        }
        let handles = self.submit_batch(specs).unwrap_or_else(|e| panic!("{e}"));
        IndexLaunchResult {
            tasks: handles.into_iter().map(TaskHandle::id).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use crate::instance::PhysicalRegion;
    use std::sync::Arc;
    use viz_geometry::{IndexSpace, Point};
    use viz_region::RedOpRegistry;

    #[test]
    fn index_launch_expands_to_point_tasks() {
        let mut rt = Runtime::single_node(EngineKind::RayCast);
        let root = rt.forest_mut().create_root_1d("A", 30);
        let f = rt.forest_mut().add_field(root, "v");
        let p = rt.forest_mut().create_equal_partition_1d(root, "P", 3);
        let wave = rt.index_launch(
            "fill",
            3,
            &[Projection::read_write(p, f)],
            0,
            |i| i,
            |_| {
                Some(Arc::new(|rs: &mut [PhysicalRegion]| {
                    rs[0].update_all(|pt, _| pt.x as f64);
                }) as TaskBody)
            },
        );
        assert_eq!(wave.len(), 3);
        assert_eq!(wave.first(), TaskId(0));
        assert_eq!(wave.last(), TaskId(2));
        // Disjoint pieces: the wave is parallel.
        for t in &wave.tasks {
            assert!(rt.dag().preds(*t).is_empty());
        }
        let probe = rt.inline_read(root, f).unwrap();
        let store = rt.execute_values();
        assert_eq!(store.inline(probe).get(Point::p1(17)), 17.0);
    }

    /// The Fig 1 loop body written with index launches: one `t1` wave and
    /// one `t2` wave per turn.
    #[test]
    fn fig1_with_index_launches() {
        let mut rt = Runtime::single_node(EngineKind::RayCast);
        let root = rt.forest_mut().create_root_1d("N", 30);
        let up = rt.forest_mut().add_field(root, "up");
        let down = rt.forest_mut().add_field(root, "down");
        let p = rt.forest_mut().create_equal_partition_1d(root, "P", 3);
        let g = rt.forest_mut().create_partition(
            root,
            "G",
            vec![
                IndexSpace::from_points([10, 11, 20].map(Point::p1)),
                IndexSpace::from_points([8, 9, 20, 21].map(Point::p1)),
                IndexSpace::from_points([9, 18, 19].map(Point::p1)),
            ],
        );
        for _ in 0..2 {
            rt.index_launch(
                "t1",
                3,
                &[
                    Projection::read_write(p, up),
                    Projection::reduce(g, down, RedOpRegistry::SUM),
                ],
                0,
                |i| i,
                |_| None,
            );
            rt.index_launch(
                "t2",
                3,
                &[
                    Projection::read_write(p, down),
                    Projection::reduce(g, up, RedOpRegistry::SUM),
                ],
                0,
                |i| i,
                |_| None,
            );
        }
        assert_eq!(rt.num_tasks(), 12);
        // First wave parallel; later waves ordered through the ghosts.
        let waves = rt.dag().waves();
        assert_eq!(waves[0].len(), 3);
        assert!(
            viz_runtime_dag_sound(&rt),
            "index launches preserve soundness"
        );
    }

    fn viz_runtime_dag_sound(rt: &Runtime) -> bool {
        crate::validate::check_sufficiency(rt.forest(), rt.launches(), rt.dag()).is_empty()
    }
}
