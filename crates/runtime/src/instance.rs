//! Physical instances: the actual values behind a region requirement.
//!
//! A logical region names *which* points a task touches; a
//! [`PhysicalRegion`] holds the materialized values for those points. The
//! executor creates one per requirement per task, filled according to the
//! engine's [`crate::MaterializePlan`].

use viz_geometry::{IndexSpace, Point};
use viz_region::{redop::Value, Privilege, ReductionOpId};

/// A materialized region argument.
#[derive(Clone)]
pub struct PhysicalRegion {
    domain: IndexSpace,
    /// Exclusive prefix sums of rect volumes: `offsets[i]` is the linear
    /// index of rect `i`'s first point.
    offsets: Vec<u64>,
    values: Vec<Value>,
    privilege: Privilege,
    /// Fold function and its operator when `privilege` is a reduction.
    fold: Option<FoldFn>,
}

/// A reduction operator id paired with its fold function.
type FoldFn = (ReductionOpId, fn(Value, Value) -> Value);

impl PhysicalRegion {
    /// A region over `domain` filled with `init`.
    pub fn new(domain: IndexSpace, privilege: Privilege, init: Value) -> Self {
        let mut offsets = Vec::with_capacity(domain.rects().len());
        let mut total = 0u64;
        for r in domain.rects() {
            offsets.push(total);
            total += r.volume();
        }
        PhysicalRegion {
            domain,
            offsets,
            values: vec![init; total as usize],
            privilege,
            fold: None,
        }
    }

    /// Attach the reduction fold used by [`PhysicalRegion::reduce`].
    pub fn with_fold(mut self, op: ReductionOpId, fold: fn(Value, Value) -> Value) -> Self {
        self.fold = Some((op, fold));
        self
    }

    pub fn domain(&self) -> &IndexSpace {
        &self.domain
    }

    pub fn privilege(&self) -> Privilege {
        self.privilege
    }

    /// Linear index of a point, if contained.
    fn index_of(&self, p: Point) -> Option<usize> {
        for (i, r) in self.domain.rects().iter().enumerate() {
            if r.contains_point(p) {
                let width = (r.hi.x - r.lo.x + 1) as u64;
                let off = self.offsets[i] + (p.y - r.lo.y) as u64 * width + (p.x - r.lo.x) as u64;
                return Some(off as usize);
            }
        }
        None
    }

    pub fn contains(&self, p: Point) -> bool {
        self.domain.contains_point(p)
    }

    /// Read the value at `p`.
    ///
    /// # Panics
    /// If `p` is outside the region's domain.
    #[inline]
    pub fn get(&self, p: Point) -> Value {
        let i = self
            .index_of(p)
            .unwrap_or_else(|| panic!("read of {p:?} outside region domain"));
        self.values[i]
    }

    /// Write the value at `p`.
    ///
    /// # Panics
    /// If `p` is outside the domain, or the privilege does not permit
    /// writing.
    #[inline]
    pub fn set(&mut self, p: Point, v: Value) {
        assert!(
            self.privilege.is_write(),
            "set() requires read-write privilege, have {:?}",
            self.privilege
        );
        let i = self
            .index_of(p)
            .unwrap_or_else(|| panic!("write of {p:?} outside region domain"));
        self.values[i] = v;
    }

    /// Apply a reduction contribution at `p` (folds into the local
    /// accumulator; the runtime folds accumulators into real values lazily).
    ///
    /// # Panics
    /// If the privilege is not a reduction or `p` is outside the domain.
    #[inline]
    pub fn reduce(&mut self, p: Point, contribution: Value) {
        assert!(
            self.privilege.is_reduce(),
            "reduce() requires a reduce privilege, have {:?}",
            self.privilege
        );
        let (_, fold) = self.fold.expect("reduction instance missing fold");
        let i = self
            .index_of(p)
            .unwrap_or_else(|| panic!("reduction at {p:?} outside region domain"));
        self.values[i] = fold(self.values[i], contribution);
    }

    /// Copy values over `sub` (must be contained in both domains) from
    /// another instance.
    pub fn copy_from(&mut self, src: &PhysicalRegion, sub: &IndexSpace) {
        for p in sub.points() {
            let v = src.get(p);
            let i = self.index_of(p).expect("copy target outside domain");
            self.values[i] = v;
        }
    }

    /// Fold another instance's values (a reduction accumulator) into ours
    /// over `sub` with `fold`.
    pub fn fold_from(
        &mut self,
        src: &PhysicalRegion,
        sub: &IndexSpace,
        fold: fn(Value, Value) -> Value,
    ) {
        for p in sub.points() {
            let c = src.get(p);
            let i = self.index_of(p).expect("fold target outside domain");
            self.values[i] = fold(self.values[i], c);
        }
    }

    /// Fill the whole instance with one value.
    pub fn fill(&mut self, v: Value) {
        self.values.fill(v);
    }

    /// Iterate `(point, value)` pairs in domain order.
    pub fn iter(&self) -> impl Iterator<Item = (Point, Value)> + '_ {
        self.domain.points().zip(self.values.iter().copied())
    }

    /// Apply `f` to every point (requires write privilege).
    pub fn update_all(&mut self, mut f: impl FnMut(Point, Value) -> Value) {
        assert!(self.privilege.is_write());
        let mut i = 0;
        for r in self.domain.rects() {
            for p in r.points() {
                self.values[i] = f(p, self.values[i]);
                i += 1;
            }
        }
    }

    /// Raw values in domain order (for assertions in tests).
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_geometry::Rect;
    use viz_region::RedOpRegistry;

    fn two_rect_domain() -> IndexSpace {
        IndexSpace::from_rects([Rect::span(0, 4), Rect::span(10, 14)])
    }

    #[test]
    fn get_set_roundtrip() {
        let mut r = PhysicalRegion::new(two_rect_domain(), Privilege::ReadWrite, 0.0);
        r.set(Point::p1(3), 7.5);
        r.set(Point::p1(12), -1.0);
        assert_eq!(r.get(Point::p1(3)), 7.5);
        assert_eq!(r.get(Point::p1(12)), -1.0);
        assert_eq!(r.get(Point::p1(0)), 0.0);
    }

    #[test]
    fn two_dimensional_indexing() {
        let dom = IndexSpace::from_rect(Rect::xy(2, 5, 3, 6));
        let mut r = PhysicalRegion::new(dom, Privilege::ReadWrite, 0.0);
        r.set(Point::new(4, 5), 42.0);
        assert_eq!(r.get(Point::new(4, 5)), 42.0);
        assert_eq!(r.get(Point::new(5, 4)), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside region domain")]
    fn out_of_domain_read_panics() {
        let r = PhysicalRegion::new(two_rect_domain(), Privilege::Read, 0.0);
        r.get(Point::p1(7));
    }

    #[test]
    #[should_panic(expected = "requires read-write")]
    fn read_only_set_panics() {
        let mut r = PhysicalRegion::new(two_rect_domain(), Privilege::Read, 0.0);
        r.set(Point::p1(0), 1.0);
    }

    #[test]
    fn reduce_folds_into_accumulator() {
        let mut r = PhysicalRegion::new(
            two_rect_domain(),
            Privilege::Reduce(RedOpRegistry::SUM),
            0.0,
        )
        .with_fold(RedOpRegistry::SUM, |a, b| a + b);
        r.reduce(Point::p1(2), 3.0);
        r.reduce(Point::p1(2), 4.0);
        assert_eq!(r.get(Point::p1(2)), 7.0);
    }

    #[test]
    #[should_panic(expected = "requires a reduce privilege")]
    fn reduce_on_rw_instance_panics() {
        let mut r = PhysicalRegion::new(two_rect_domain(), Privilege::ReadWrite, 0.0);
        r.reduce(Point::p1(0), 1.0);
    }

    #[test]
    fn copy_and_fold_between_instances() {
        let mut a = PhysicalRegion::new(two_rect_domain(), Privilege::ReadWrite, 1.0);
        let mut b = PhysicalRegion::new(two_rect_domain(), Privilege::ReadWrite, 0.0);
        b.update_all(|p, _| p.x as f64);
        let sub = IndexSpace::span(2, 4);
        a.copy_from(&b, &sub);
        assert_eq!(a.get(Point::p1(3)), 3.0);
        assert_eq!(a.get(Point::p1(0)), 1.0, "outside sub untouched");
        a.fold_from(&b, &sub, |x, y| x + y);
        assert_eq!(a.get(Point::p1(3)), 6.0);
    }

    #[test]
    fn iter_visits_every_point_once() {
        let r = PhysicalRegion::new(two_rect_domain(), Privilege::Read, 5.0);
        let pts: Vec<(Point, f64)> = r.iter().collect();
        assert_eq!(pts.len(), 10);
        assert!(pts.iter().all(|(_, v)| *v == 5.0));
    }
}
