//! The per-task commit ledger: launches, bodies, stored analysis results,
//! and analysis-completion times, indexed by [`TaskId`].
//!
//! With history GC enabled (see [`crate::config::GcConfig`]) the prefix
//! below the watermark is *retired*: its entries are dropped and `base`
//! records how many. Task ids are stable — accessors subtract the base and
//! panic with a clear message on retired ids — so the rest of the runtime
//! keeps addressing tasks by id, while steady-state memory is bounded by
//! the unretired window instead of growing with program length.

use crate::plan::StoredResult;
use crate::task::{TaskBody, TaskId, TaskLaunch};
use viz_sim::SimTime;

pub(crate) struct Ledger {
    /// Number of retired (dropped) leading entries — the GC watermark.
    base: u32,
    launches: Vec<TaskLaunch>,
    bodies: Vec<Option<TaskBody>>,
    results: Vec<StoredResult>,
    /// Simulated time at which each launch's analysis completed on its
    /// origin node — execution cannot start earlier.
    analysis_done: Vec<SimTime>,
}

impl Ledger {
    pub fn new() -> Self {
        Ledger {
            base: 0,
            launches: Vec::new(),
            bodies: Vec::new(),
            results: Vec::new(),
            analysis_done: Vec::new(),
        }
    }

    /// The id the next committed launch will get.
    #[inline]
    pub fn next_id(&self) -> u32 {
        self.base + self.launches.len() as u32
    }

    /// Total launches ever committed (retired + retained).
    #[inline]
    pub fn total(&self) -> usize {
        self.next_id() as usize
    }

    /// The GC watermark: every task below it has been retired.
    #[inline]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Launches currently retained (the unretired window).
    #[inline]
    pub fn retained(&self) -> usize {
        self.launches.len()
    }

    #[inline]
    fn idx(&self, t: TaskId) -> usize {
        match t.0.checked_sub(self.base) {
            Some(i) if (i as usize) < self.launches.len() => i as usize,
            Some(_) => panic!("task {} has not committed", t.0),
            None => panic!(
                "task {} was retired by history GC (watermark {}); \
                 disable RuntimeConfig::history_gc or raise gc_retain to keep it",
                t.0, self.base
            ),
        }
    }

    #[allow(dead_code)] // used by tests today; the facade slices instead
    pub fn launch(&self, t: TaskId) -> &TaskLaunch {
        &self.launches[self.idx(t)]
    }

    pub fn result(&self, t: TaskId) -> &StoredResult {
        &self.results[self.idx(t)]
    }

    pub fn done(&self, t: TaskId) -> SimTime {
        self.analysis_done[self.idx(t)]
    }

    /// The retained launches, oldest first (ids `base..next_id`).
    pub fn launches(&self) -> &[TaskLaunch] {
        &self.launches
    }

    pub fn results(&self) -> &[StoredResult] {
        &self.results
    }

    /// The full, never-collected history — `None` once anything was
    /// retired. Value execution and the timed schedule replay the whole
    /// program and refuse to run from a partial ledger.
    #[allow(clippy::type_complexity)]
    pub fn full(
        &self,
    ) -> Option<(
        &[TaskLaunch],
        &[Option<TaskBody>],
        &[StoredResult],
        &[SimTime],
    )> {
        (self.base == 0).then_some((
            self.launches.as_slice(),
            self.bodies.as_slice(),
            self.results.as_slice(),
            self.analysis_done.as_slice(),
        ))
    }

    /// Commit order within a launch differs by path (the sharded pipeline
    /// retires results before appending launches), so pushes are per-column;
    /// the column lengths re-converge at every quiescent point.
    pub fn push_done(&mut self, t: SimTime) {
        self.analysis_done.push(t);
    }

    pub fn push_result(&mut self, r: StoredResult) {
        self.results.push(r);
    }

    pub fn push_launch(&mut self, launch: TaskLaunch, body: Option<TaskBody>) {
        debug_assert_eq!(launch.id.0 + 1, self.base + self.results.len() as u32);
        self.launches.push(launch);
        self.bodies.push(body);
    }

    pub fn append_launches(
        &mut self,
        launches: &mut Vec<TaskLaunch>,
        bodies: &mut Vec<Option<TaskBody>>,
    ) {
        self.launches.append(launches);
        self.bodies.append(bodies);
    }

    /// Retire every task below `floor`: drop its launch metadata, body,
    /// stored result, and completion time. Monotone; returns how many
    /// entries were dropped. O(retained) per call — the drain shifts only
    /// the bounded unretired window.
    pub fn retire_to(&mut self, floor: u32) -> usize {
        debug_assert_eq!(self.launches.len(), self.results.len());
        let k = (floor.min(self.next_id()).saturating_sub(self.base)) as usize;
        if k == 0 {
            return 0;
        }
        self.launches.drain(..k);
        self.bodies.drain(..k);
        self.results.drain(..k);
        self.analysis_done.drain(..k);
        self.base += k as u32;
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AnalysisResult;

    fn launch(id: u32) -> TaskLaunch {
        TaskLaunch {
            id: TaskId(id),
            name: format!("t{id}"),
            node: 0,
            reqs: Vec::new(),
            duration_ns: 0,
        }
    }

    fn commit(l: &mut Ledger) -> TaskId {
        let id = TaskId(l.next_id());
        l.push_done(0);
        l.push_result(StoredResult::Owned(AnalysisResult {
            deps: Vec::new(),
            plans: Vec::new(),
        }));
        l.push_launch(launch(id.0), None);
        id
    }

    #[test]
    fn ids_survive_retirement() {
        let mut l = Ledger::new();
        for _ in 0..10 {
            commit(&mut l);
        }
        assert!(l.full().is_some());
        assert_eq!(l.retire_to(6), 6);
        assert_eq!(l.base(), 6);
        assert_eq!(l.total(), 10);
        assert_eq!(l.retained(), 4);
        assert!(l.full().is_none());
        assert_eq!(l.launch(TaskId(7)).name, "t7");
        assert_eq!(l.launches()[0].id, TaskId(6));
        // Monotone + idempotent below the watermark.
        assert_eq!(l.retire_to(3), 0);
        // New commits keep global ids.
        assert_eq!(commit(&mut l), TaskId(10));
        assert_eq!(l.launch(TaskId(10)).name, "t10");
    }

    #[test]
    #[should_panic(expected = "retired by history GC")]
    fn retired_access_panics_with_watermark() {
        let mut l = Ledger::new();
        for _ in 0..4 {
            commit(&mut l);
        }
        l.retire_to(2);
        l.launch(TaskId(1));
    }
}
