//! # viz-runtime
//!
//! An implicitly-parallel task runtime in the style of Legion \[5\], built to
//! reproduce *"Visibility Algorithms for Dynamic Dependence Analysis and
//! Distributed Coherence"* (PPoPP '23).
//!
//! The runtime observes a dynamic stream of task launches, each naming
//! regions (arbitrary, possibly aliased subsets of collections — see
//! `viz-region`) with privileges, and must:
//!
//! 1. compute **dependences** — the partial order that preserves sequential
//!    semantics (§3.2), and
//! 2. solve **coherence** — a plan for assembling each task's input values
//!    from the most recent writes and pending reductions (§3.1).
//!
//! Both are solved by one of three *visibility engines* behind the
//! [`engine::CoherenceEngine`] trait:
//!
//! | Engine | Paper | Module |
//! |---|---|---|
//! | Painter's algorithm (naive, Fig 7) | §5 | [`analysis::paint_naive`] |
//! | Painter's + region-tree composite views | §5.1 | [`analysis::paint`] |
//! | Warnock's algorithm (equivalence sets) | §6 | [`analysis::warnock`] |
//! | Ray casting (dominating writes) | §7 | [`analysis::raycast`] |
//!
//! The [`spec`] module implements the paper's pseudocode *literally* at the
//! value level (Figs 7, 9, 11) and serves as the executable test oracle.
//!
//! Execution is deferred, Legion-style: [`Runtime::submit`] performs the
//! dynamic analysis immediately; [`Runtime::execute_values`] later runs task bodies
//! in parallel (worker threads, honoring the dependence DAG), and
//! [`exec::TimedSchedule`] replays the same DAG on the simulated machine for
//! the paper's scaling experiments.

pub mod analysis;
pub mod autotrace;
pub mod config;
pub mod dag;
pub mod engine;
pub mod error;
pub mod exec;
pub mod index_launch;
pub mod instance;
mod ledger;
pub mod mapper;
pub mod pipeline;
pub mod plan;
pub mod record;
pub(crate) mod ring;
pub mod runtime;
pub mod sharding;
pub mod spec;
pub mod stats;
pub mod task;
pub mod trace;
pub mod validate;

pub use analysis::visibility::{VisibilityBackend, VisibilityConfig, VisibilityKind};
pub use autotrace::AutoTraceConfig;
pub use config::{
    default_analysis_threads, default_auto_trace, default_pipeline, default_record_history,
    default_submit_rings, EnvOverrides, GcConfig, Knob, KNOBS,
};
pub use dag::TaskDag;
pub use engine::{CoherenceEngine, EngineKind, GcSweep};
pub use error::RuntimeError;
pub use index_launch::{IndexLaunchResult, Projection};
pub use instance::PhysicalRegion;
pub use mapper::Mapper;
pub use pipeline::{CoreRead, CoreWrite, PipelineMetrics, RingCounters};
pub use plan::{
    AnalysisResult, CopyRange, MaterializePlan, ReduceRange, Source, StoredResult, TaskShift,
};
pub use record::{LaunchRecord, RecordedHistory};
pub use runtime::{
    Context, CtxHandle, LaunchBuilder, LaunchSpec, Runtime, RuntimeConfig, TaskHandle, CTX_GLOBAL,
    CTX_PRIMARY,
};
pub use sharding::ShardMap;
pub use stats::{DagStats, GcStats, PipelineStats, RuntimeStats, TracingStats};
pub use task::{RegionRequirement, TaskBody, TaskId, TaskLaunch};
pub use trace::{TraceId, TraceViolation, ViolationKind};
