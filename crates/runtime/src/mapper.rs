//! Task mapping policies.
//!
//! Legion separates *what* to compute from *where* to run it through its
//! mapper interface; the experiments in the paper map one piece per node
//! ("all tasks are mapped to the single GPU on each node", §8). This module
//! provides that policy layer for the benchmark applications and tests:
//! a [`Mapper`] decides the node for each point of an index launch.

use viz_sim::NodeId;

/// A placement policy for index-launch points.
pub trait Mapper: Send + Sync {
    /// The node that point `i` of a `domain`-point launch runs on, for a
    /// machine with `nodes` nodes.
    fn place(&self, i: usize, domain: usize, nodes: usize) -> NodeId;

    fn name(&self) -> &'static str;
}

/// Point `i` runs on node `i mod nodes` — the paper's configuration when
/// pieces == nodes (each piece on its own node).
#[derive(Default, Clone, Copy, Debug)]
pub struct RoundRobin;

impl Mapper for RoundRobin {
    fn place(&self, i: usize, _domain: usize, nodes: usize) -> NodeId {
        i % nodes
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Contiguous blocks of points per node: points `[k·d/n, (k+1)·d/n)` run on
/// node `k`. Preserves neighbor locality for stencil-like workloads when
/// pieces > nodes.
#[derive(Default, Clone, Copy, Debug)]
pub struct Blocked;

impl Mapper for Blocked {
    fn place(&self, i: usize, domain: usize, nodes: usize) -> NodeId {
        if domain == 0 {
            return 0;
        }
        (i * nodes / domain).min(nodes - 1)
    }

    fn name(&self) -> &'static str {
        "blocked"
    }
}

/// Everything on one node — the no-DCR top-level task's own node, or a
/// debugging aid.
#[derive(Default, Clone, Copy, Debug)]
pub struct SingleNode(pub NodeId);

impl Mapper for SingleNode {
    fn place(&self, _i: usize, _domain: usize, _nodes: usize) -> NodeId {
        self.0
    }

    fn name(&self) -> &'static str {
        "single-node"
    }
}

/// Deterministic pseudo-random placement (a splitmix64 hash of the point);
/// scatters neighbors, the worst case for communication locality.
#[derive(Default, Clone, Copy, Debug)]
pub struct Scattered {
    pub seed: u64,
}

impl Mapper for Scattered {
    fn place(&self, i: usize, _domain: usize, nodes: usize) -> NodeId {
        let mut z = (i as u64)
            .wrapping_add(self.seed)
            .wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as usize % nodes
    }

    fn name(&self) -> &'static str {
        "scattered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_wraps() {
        let m = RoundRobin;
        assert_eq!(m.place(0, 8, 4), 0);
        assert_eq!(m.place(5, 8, 4), 1);
        assert_eq!(m.place(7, 8, 4), 3);
    }

    #[test]
    fn blocked_keeps_neighbors_together() {
        let m = Blocked;
        let nodes = 4;
        let domain = 16;
        let placements: Vec<NodeId> = (0..domain).map(|i| m.place(i, domain, nodes)).collect();
        // Four contiguous runs of four.
        assert_eq!(placements[..4], [0, 0, 0, 0]);
        assert_eq!(placements[12..], [3, 3, 3, 3]);
        // Monotone non-decreasing.
        assert!(placements.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn blocked_handles_uneven_and_degenerate() {
        let m = Blocked;
        // 5 points over 2 nodes.
        let p: Vec<NodeId> = (0..5).map(|i| m.place(i, 5, 2)).collect();
        assert_eq!(p, vec![0, 0, 0, 1, 1]);
        assert_eq!(m.place(0, 0, 4), 0);
        // Never out of range.
        for i in 0..7 {
            assert!(m.place(i, 7, 3) < 3);
        }
    }

    #[test]
    fn scattered_is_deterministic_and_in_range() {
        let m = Scattered { seed: 42 };
        for i in 0..100 {
            let a = m.place(i, 100, 7);
            let b = m.place(i, 100, 7);
            assert_eq!(a, b);
            assert!(a < 7);
        }
        // Different seeds change placement somewhere.
        let m2 = Scattered { seed: 43 };
        assert!((0..100).any(|i| m.place(i, 100, 7) != m2.place(i, 100, 7)));
    }

    #[test]
    fn single_node_pins() {
        let m = SingleNode(2);
        assert_eq!(m.place(9, 10, 8), 2);
    }
}
