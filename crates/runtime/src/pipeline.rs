//! The multi-producer submission plane (PR 4's pipelined frontend,
//! rebuilt in PR 7 for many concurrent task streams).
//!
//! With [`crate::RuntimeConfig::pipeline`] set, no application thread runs
//! the dependence analysis inline. Instead the plane owns a fixed array of
//! per-context SPSC *submission rings* ([`crate::ring::SpscRing`], sized by
//! [`crate::RuntimeConfig::submit_rings`]): the primary [`crate::Runtime`]
//! facade claims ring 0, and every [`crate::Runtime::new_context`] tenant
//! context claims its own. Producers validate and snapshot launches on
//! their own threads and push into their private ring wait-free — never
//! contending on a shared queue lock, never blocking on lock handoff.
//!
//! One *combining dispatcher* thread (`viz-analysis-driver`) sweeps the
//! rings, drains every pending spec, and commits the combined batch
//! through [`Core::run_specs`] while holding the core write lock **once
//! per sweep** instead of once per submission — flat-combining delegation:
//! producers delegate the serial analysis to the dispatcher and keep
//! submitting. Per-ring FIFO order is preserved (each context's stream is
//! analyzed in its program order); the interleaving *between* contexts is
//! the commit order the dispatcher observed, which is also the order the
//! history recorder sees — so recorded histories are well-defined under
//! concurrent producers.
//!
//! ## Backpressure
//!
//! Every ring is bounded ([`crate::RuntimeConfig::pipeline_depth`]): a
//! full ring stalls that producer (and only that producer) until the
//! dispatcher catches up. Stalls and ring depths are counted per ring in
//! [`PipelineMetrics`]; combined batches are emitted as
//! [`viz_profile::EventKind::SubmitCombine`] events.
//!
//! ## Drain points, quiesce, and the drop contract
//!
//! Operations that observe committed analysis state quiesce the *whole
//! plane* ([`SubmitPlane::quiesce`]): snapshot every ring's pushed
//! counter, then wait until the matching commit counters catch up — a
//! monotone condition that terminates even while other producers keep
//! submitting. Dropping the runtime closes the plane and joins the
//! dispatcher, which always drains every ring before honoring shutdown —
//! queued launches are never lost. If the dispatcher dies (an engine bug;
//! API misuse is rejected on the producer thread before enqueue), the
//! panic is latched: producers get
//! [`RuntimeError::DriverPanicked`](crate::RuntimeError::DriverPanicked)
//! with the count of launches that were queued but will never be analyzed
//! (also readable as [`PipelineMetrics::lost`]), and dropping the runtime
//! re-raises the original panic payload.

use crate::error::RuntimeError;
use crate::ring::SpscRing;
use crate::runtime::{Core, LaunchSpec};
use crate::task::TaskId;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};
use viz_region::RegionForest;

/// Ring slot the primary `Runtime` facade claims at spawn.
pub(crate) const PRIMARY_RING: usize = 0;

/// Condvar waits are bounded so a (hypothetically) missed wakeup degrades
/// to a short poll instead of a hang — correctness never depends on
/// doorbell delivery, only progress latency does.
const WAIT_TICK: Duration = Duration::from_millis(1);

/// Publish `value` into `cell` if it exceeds the current maximum.
///
/// Spelled as an explicit CAS loop: the PR 4 frontend updated its
/// high-water mark with an independent load/store pair, which let two
/// concurrent submitters interleave `load(5), load(9), store(9), store(5)`
/// and publish a stale maximum. The loop retries on contention, so the
/// final value is the true maximum of everything observed.
pub(crate) fn observe_max(cell: &AtomicU64, value: u64) {
    let mut current = cell.load(Ordering::Relaxed);
    while value > current {
        match cell.compare_exchange_weak(current, value, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

// ----------------------------------------------------------------------
// Re-entrancy detection (the WouldDeadlock contract)
// ----------------------------------------------------------------------

thread_local! {
    /// Set while this thread is the analysis dispatcher or a value-executor
    /// worker. Blocking on analysis progress from such a thread can never
    /// succeed (the executor holds the core read lock the dispatcher needs;
    /// the dispatcher *is* the thread being waited for), so resolve calls
    /// return [`RuntimeError::WouldDeadlock`] instead of hanging.
    static IN_RUNTIME_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII marker for dispatcher/executor threads; restores the previous
/// state on drop so nested scopes behave.
pub(crate) struct WorkerGuard {
    prev: bool,
}

pub(crate) fn enter_worker() -> WorkerGuard {
    let prev = IN_RUNTIME_WORKER.with(|c| c.replace(true));
    WorkerGuard { prev }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_RUNTIME_WORKER.with(|c| c.set(prev));
    }
}

/// Is the current thread a runtime worker (dispatcher or executor)?
pub(crate) fn in_worker() -> bool {
    IN_RUNTIME_WORKER.with(|c| c.get())
}

// ----------------------------------------------------------------------
// Metrics
// ----------------------------------------------------------------------

#[derive(Default)]
pub(crate) struct RingStats {
    submitted: AtomicU64,
    retired: AtomicU64,
    stalls: AtomicU64,
    stalled_ns: AtomicU64,
    max_depth: AtomicU64,
}

/// A point-in-time snapshot of one submission ring's counters.
#[derive(Copy, Clone, Debug, Default)]
pub struct RingCounters {
    /// Launches pushed into this ring.
    pub submitted: u64,
    /// Launches from this ring the dispatcher committed.
    pub retired: u64,
    /// Times this ring's producer stalled on a full ring.
    pub stalls: u64,
    /// Wall-clock nanoseconds this ring's producer spent stalled.
    pub stalled_ns: u64,
    /// High-water occupancy observed at push.
    pub max_depth: u64,
}

pub(crate) struct MetricsInner {
    submitted: AtomicU64,
    retired: AtomicU64,
    stalls: AtomicU64,
    stalled_ns: AtomicU64,
    max_depth: AtomicU64,
    /// Dispatcher sweeps that committed at least one spec.
    combines: AtomicU64,
    /// Specs committed across all combined sweeps (== retired).
    combined_specs: AtomicU64,
    /// Largest single combined sweep.
    max_combine: AtomicU64,
    /// Sweeps that drained more than one ring (true combining).
    multi_ring_combines: AtomicU64,
    /// Latched when the dispatcher thread panicked.
    panicked: AtomicBool,
    rings: Box<[RingStats]>,
}

impl MetricsInner {
    fn new(rings: usize) -> Self {
        MetricsInner {
            submitted: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            stalled_ns: AtomicU64::new(0),
            max_depth: AtomicU64::new(0),
            combines: AtomicU64::new(0),
            combined_specs: AtomicU64::new(0),
            max_combine: AtomicU64::new(0),
            multi_ring_combines: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            rings: (0..rings).map(|_| RingStats::default()).collect(),
        }
    }

    fn lost_now(&self) -> u64 {
        if self.panicked.load(Ordering::SeqCst) {
            self.submitted
                .load(Ordering::Acquire)
                .saturating_sub(self.retired.load(Ordering::Acquire))
        } else {
            0
        }
    }
}

/// Counters for the submission plane, readable from a cloneable handle
/// that outlives the [`crate::Runtime`] — the drop-flush test uses one to
/// observe that every queued launch retired during `Drop`.
#[derive(Clone)]
pub struct PipelineMetrics {
    inner: Arc<MetricsInner>,
}

impl PipelineMetrics {
    /// Launches pushed into any submission ring.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Acquire)
    }

    /// Launches the dispatcher has drained and committed.
    pub fn retired(&self) -> u64 {
        self.inner.retired.load(Ordering::Acquire)
    }

    /// Times a producer blocked on a full ring (backpressure).
    pub fn stalls(&self) -> u64 {
        self.inner.stalls.load(Ordering::Acquire)
    }

    /// Total wall-clock nanoseconds producers spent blocked on
    /// backpressure.
    pub fn stalled_ns(&self) -> u64 {
        self.inner.stalled_ns.load(Ordering::Acquire)
    }

    /// High-water mark of the aggregate queued-but-unretired depth
    /// observed at submission.
    pub fn max_depth(&self) -> u64 {
        self.inner.max_depth.load(Ordering::Acquire)
    }

    /// Dispatcher sweeps that committed at least one spec.
    pub fn combines(&self) -> u64 {
        self.inner.combines.load(Ordering::Acquire)
    }

    /// Specs committed across all combined sweeps.
    pub fn combined_specs(&self) -> u64 {
        self.inner.combined_specs.load(Ordering::Acquire)
    }

    /// Largest single combined sweep (specs committed under one core
    /// write-lock acquisition).
    pub fn max_combine(&self) -> u64 {
        self.inner.max_combine.load(Ordering::Acquire)
    }

    /// Sweeps that drained more than one ring under one lock acquisition.
    pub fn multi_ring_combines(&self) -> u64 {
        self.inner.multi_ring_combines.load(Ordering::Acquire)
    }

    /// Did the dispatcher thread panic?
    pub fn panicked(&self) -> bool {
        self.inner.panicked.load(Ordering::SeqCst)
    }

    /// Launches that were queued but will never be analyzed because the
    /// dispatcher panicked (0 while the dispatcher is healthy).
    pub fn lost(&self) -> u64 {
        self.inner.lost_now()
    }

    /// Number of submission rings (the `submit_rings` knob).
    pub fn rings(&self) -> usize {
        self.inner.rings.len()
    }

    /// Snapshot of ring `i`'s counters.
    pub fn ring(&self, i: usize) -> RingCounters {
        let r = &self.inner.rings[i];
        RingCounters {
            submitted: r.submitted.load(Ordering::Acquire),
            retired: r.retired.load(Ordering::Acquire),
            stalls: r.stalls.load(Ordering::Acquire),
            stalled_ns: r.stalled_ns.load(Ordering::Acquire),
            max_depth: r.max_depth.load(Ordering::Acquire),
        }
    }
}

// ----------------------------------------------------------------------
// Per-context state
// ----------------------------------------------------------------------

/// Everything a producer context (and its outstanding handles) needs to
/// track its stream: per-context program-order counters and the global
/// task ids the dispatcher assigned. Handles hold an `Arc` to this, so it
/// stays valid after the context detaches and its ring slot is reused.
pub(crate) struct CtxState {
    /// Context id, recorded with every launch (fence scope).
    pub(crate) ctx: u32,
    /// Specs this context has pushed (or committed inline), in its own
    /// program order.
    pub(crate) pushed: AtomicU64,
    /// Prefix of `pushed` whose analysis has committed.
    pub(crate) committed: AtomicU64,
    /// Global [`TaskId`]s assigned to this context's launches, indexed by
    /// context-local sequence number.
    pub(crate) assigned: Mutex<Vec<TaskId>>,
}

impl CtxState {
    pub(crate) fn new(ctx: u32) -> Arc<Self> {
        Arc::new(CtxState {
            ctx,
            pushed: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            assigned: Mutex::new(Vec::new()),
        })
    }

    /// The id assigned to context-local sequence `seq`, if committed.
    pub(crate) fn try_id(&self, seq: u32) -> Option<TaskId> {
        if self.committed.load(Ordering::Acquire) > seq as u64 {
            Some(self.assigned.lock().unwrap()[seq as usize])
        } else {
            None
        }
    }

    /// Record an inline (synchronous-path) commit: id known immediately.
    pub(crate) fn record_inline(&self, id: TaskId) {
        self.assigned.lock().unwrap().push(id);
        self.pushed.fetch_add(1, Ordering::Release);
        self.committed.fetch_add(1, Ordering::Release);
    }
}

/// One submission ring plus its claim state. The `state` mutex serializes
/// claim/release against the dispatcher's per-sweep state read; the ring
/// itself is touched lock-free by exactly the claimant and the dispatcher.
struct RingSlot {
    claimed: AtomicBool,
    ring: SpscRing<LaunchSpec>,
    /// The current claimant's context state (placeholder when unclaimed).
    state: Mutex<Arc<CtxState>>,
    /// Backpressure: producers wait here for the dispatcher to pop.
    space_lock: Mutex<()>,
    space: Condvar,
}

// ----------------------------------------------------------------------
// The plane
// ----------------------------------------------------------------------

pub(crate) struct SubmitPlane {
    rings: Box<[RingSlot]>,
    /// Doorbell: producers wake the dispatcher when it advertised sleep.
    sleeping: AtomicBool,
    door_lock: Mutex<()>,
    bell: Condvar,
    /// Commit progress: drain/resolve waiters park here.
    progress_lock: Mutex<()>,
    progress: Condvar,
    shutdown: AtomicBool,
    metrics: Arc<MetricsInner>,
}

impl SubmitPlane {
    fn new(rings: usize, depth: usize) -> Self {
        let rings = rings.max(1);
        SubmitPlane {
            rings: (0..rings)
                .map(|_| RingSlot {
                    claimed: AtomicBool::new(false),
                    ring: SpscRing::new(depth.max(1)),
                    state: Mutex::new(CtxState::new(u32::MAX)),
                    space_lock: Mutex::new(()),
                    space: Condvar::new(),
                })
                .collect(),
            sleeping: AtomicBool::new(false),
            door_lock: Mutex::new(()),
            bell: Condvar::new(),
            progress_lock: Mutex::new(()),
            progress: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: Arc::new(MetricsInner::new(rings)),
        }
    }

    pub(crate) fn panic_error(&self) -> RuntimeError {
        RuntimeError::DriverPanicked {
            lost: self.metrics.lost_now(),
        }
    }

    /// Claim a free ring for `state`'s context. Serialized against other
    /// claimants and the dispatcher by each slot's state mutex.
    pub(crate) fn claim_ring(&self, state: &Arc<CtxState>) -> Result<usize, RuntimeError> {
        for (i, slot) in self.rings.iter().enumerate() {
            if slot.claimed.load(Ordering::Acquire) {
                continue;
            }
            let mut guard = slot.state.lock().unwrap();
            if slot.claimed.load(Ordering::Relaxed) {
                continue; // lost the race for this slot
            }
            *guard = Arc::clone(state);
            slot.claimed.store(true, Ordering::Release);
            return Ok(i);
        }
        Err(RuntimeError::RingsExhausted {
            rings: self.rings.len(),
        })
    }

    /// Detach a context: wait for its queued specs to commit (so the ring
    /// is empty and its stream is fully analyzed), then free the slot for
    /// the next context. Handles keep resolving through their own
    /// [`CtxState`] after release.
    pub(crate) fn release_ring(&self, index: usize) {
        let slot = &self.rings[index];
        let state = slot.state.lock().unwrap().clone();
        let want = state.pushed.load(Ordering::Acquire);
        // A dead dispatcher never commits the remainder; give up then.
        let _ = self.wait_until(|| state.committed.load(Ordering::Acquire) >= want);
        let _guard = slot.state.lock().unwrap();
        slot.claimed.store(false, Ordering::Release);
    }

    /// Push a batch into ring `index` in order, stalling per spec on a
    /// full ring (backpressure). Returns [`RuntimeError::DriverPanicked`]
    /// — with the lost-launch count — instead of blocking forever once
    /// the dispatcher has died.
    pub(crate) fn enqueue_all(
        &self,
        index: usize,
        state: &CtxState,
        specs: Vec<LaunchSpec>,
    ) -> Result<(), RuntimeError> {
        let slot = &self.rings[index];
        let stats = &self.metrics.rings[index];
        let mut stall_started: Option<Instant> = None;
        let mut result = Ok(());
        'push: for spec in specs {
            let mut item = spec;
            loop {
                if self.metrics.panicked.load(Ordering::SeqCst) {
                    result = Err(self.panic_error());
                    break 'push;
                }
                match slot.ring.try_push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        stall_started.get_or_insert_with(Instant::now);
                        self.ring_doorbell();
                        let guard = slot.space_lock.lock().unwrap();
                        let _ = slot.space.wait_timeout(guard, WAIT_TICK).unwrap();
                    }
                }
            }
            state.pushed.fetch_add(1, Ordering::Release);
            let m = &self.metrics;
            let submitted = m.submitted.fetch_add(1, Ordering::AcqRel) + 1;
            stats.submitted.fetch_add(1, Ordering::AcqRel);
            observe_max(
                &stats.max_depth,
                state
                    .pushed
                    .load(Ordering::Acquire)
                    .saturating_sub(state.committed.load(Ordering::Acquire)),
            );
            observe_max(
                &m.max_depth,
                submitted.saturating_sub(m.retired.load(Ordering::Acquire)),
            );
            self.ring_doorbell();
        }
        if let Some(t0) = stall_started {
            let waited_ns = t0.elapsed().as_nanos() as u64;
            let m = &self.metrics;
            m.stalls.fetch_add(1, Ordering::AcqRel);
            m.stalled_ns.fetch_add(waited_ns, Ordering::AcqRel);
            stats.stalls.fetch_add(1, Ordering::AcqRel);
            stats.stalled_ns.fetch_add(waited_ns, Ordering::AcqRel);
            if viz_profile::enabled() {
                viz_profile::instant(viz_profile::EventKind::PipelineStall { waited_ns });
            }
        }
        result
    }

    /// Wake the dispatcher if it advertised sleep. The SeqCst fence orders
    /// the preceding ring publish before the flag read; the dispatcher's
    /// bounded wait is the backstop either way.
    fn ring_doorbell(&self) {
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.sleeping.load(Ordering::SeqCst) {
            let _guard = self.door_lock.lock().unwrap();
            self.bell.notify_all();
        }
    }

    /// Park until `cond` holds or the dispatcher has died.
    fn wait_until(&self, cond: impl Fn() -> bool) -> Result<(), RuntimeError> {
        if cond() {
            return Ok(());
        }
        let mut guard = self.progress_lock.lock().unwrap();
        loop {
            if cond() {
                return Ok(());
            }
            if self.metrics.panicked.load(Ordering::SeqCst) {
                return Err(self.panic_error());
            }
            let (next, _) = self.progress.wait_timeout(guard, WAIT_TICK).unwrap();
            guard = next;
        }
    }

    /// Quiesce the whole plane: everything pushed to *any* ring before
    /// this call has committed when it returns. The per-ring snapshot
    /// makes the wait condition monotone, so quiesce terminates even
    /// while other producers keep submitting concurrently.
    pub(crate) fn quiesce(&self) -> Result<(), RuntimeError> {
        let mut targets: Vec<(Arc<CtxState>, u64)> = Vec::new();
        for slot in self.rings.iter() {
            if !slot.claimed.load(Ordering::Acquire) {
                continue;
            }
            let state = slot.state.lock().unwrap().clone();
            let want = state.pushed.load(Ordering::Acquire);
            targets.push((state, want));
        }
        self.wait_until(|| {
            targets
                .iter()
                .all(|(state, want)| state.committed.load(Ordering::Acquire) >= *want)
        })
    }

    /// Wait until `state`'s commit counter covers `count` launches.
    pub(crate) fn wait_ctx_committed(
        &self,
        state: &CtxState,
        count: u64,
    ) -> Result<(), RuntimeError> {
        self.wait_until(|| state.committed.load(Ordering::Acquire) >= count)
    }

    fn has_work(&self) -> bool {
        self.rings
            .iter()
            .any(|slot| slot.claimed.load(Ordering::Acquire) && !slot.ring.is_empty())
    }
}

// ----------------------------------------------------------------------
// The dispatcher
// ----------------------------------------------------------------------

/// Latches the panic flag if the dispatcher unwinds, so producer-side
/// waiters wake up and report [`RuntimeError::DriverPanicked`] instead of
/// deadlocking on a condvar.
struct Bomb<'a>(&'a SubmitPlane);

impl Drop for Bomb<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.metrics.panicked.store(true, Ordering::SeqCst);
            for slot in self.0.rings.iter() {
                let _guard = slot.space_lock.lock().unwrap();
                slot.space.notify_all();
            }
            let _guard = self.0.progress_lock.lock().unwrap();
            drop(_guard);
            self.0.progress.notify_all();
        }
    }
}

/// The dispatcher loop: sweep every claimed ring, drain each fully, and
/// commit the combined batch through the shared [`Core`] under one write
/// lock. Exits when the plane is shut down *and* every ring is empty —
/// shutdown is only honored after a final drain, which is the drop-flush
/// guarantee.
fn drive(plane: &SubmitPlane, core: &RwLock<Core>, forest: &RwLock<RegionForest>) {
    let _worker = enter_worker();
    let bomb = Bomb(plane);
    let mut batches: Vec<(usize, Arc<CtxState>, Vec<LaunchSpec>)> = Vec::new();
    loop {
        let mut total = 0usize;
        for (i, slot) in plane.rings.iter().enumerate() {
            if !slot.claimed.load(Ordering::Acquire) {
                continue;
            }
            let mut specs = Vec::new();
            if slot.ring.pop_all(&mut specs) > 0 {
                // Free space first: the producer can refill this ring
                // while we analyze the batch (submission/analysis overlap).
                let guard = slot.space_lock.lock().unwrap();
                drop(guard);
                slot.space.notify_all();
                total += specs.len();
                let state = slot.state.lock().unwrap().clone();
                batches.push((i, state, specs));
            }
        }
        if total == 0 {
            if plane.shutdown.load(Ordering::SeqCst) && !plane.has_work() {
                drop(bomb);
                return;
            }
            let guard = plane.door_lock.lock().unwrap();
            plane.sleeping.store(true, Ordering::SeqCst);
            if !plane.has_work() && !plane.shutdown.load(Ordering::SeqCst) {
                let (guard, _) = plane.bell.wait_timeout(guard, WAIT_TICK).unwrap();
                drop(guard);
            }
            plane.sleeping.store(false, Ordering::SeqCst);
            continue;
        }
        let rings_in_sweep = batches.len();
        if viz_profile::enabled() {
            viz_profile::instant(viz_profile::EventKind::SubmitCombine {
                rings: rings_in_sweep as u64,
                specs: total as u64,
            });
            viz_profile::instant(viz_profile::EventKind::PipelineDepth {
                depth: total as u64,
            });
        }
        {
            // Lock order everywhere is forest before core. The forest is
            // only write-locked by `forest_mut`, which quiesces first, so
            // the dispatcher's read lock never contends with a writer
            // mid-batch. One core write-lock acquisition commits every
            // ring's sub-batch — the flat-combining step.
            let forest = forest.read().unwrap();
            let mut core = core.write().unwrap();
            for (index, state, specs) in batches.drain(..) {
                let n = specs.len() as u64;
                let ids = core.run_specs(state.ctx, specs, &forest);
                {
                    let mut assigned = state.assigned.lock().unwrap();
                    assigned.extend(ids);
                }
                state.committed.fetch_add(n, Ordering::Release);
                plane.metrics.rings[index]
                    .retired
                    .fetch_add(n, Ordering::AcqRel);
            }
        }
        let m = &plane.metrics;
        m.retired.fetch_add(total as u64, Ordering::AcqRel);
        m.combines.fetch_add(1, Ordering::AcqRel);
        m.combined_specs.fetch_add(total as u64, Ordering::AcqRel);
        observe_max(&m.max_combine, total as u64);
        if rings_in_sweep > 1 {
            m.multi_ring_combines.fetch_add(1, Ordering::AcqRel);
        }
        let guard = plane.progress_lock.lock().unwrap();
        drop(guard);
        plane.progress.notify_all();
    }
}

// ----------------------------------------------------------------------
// The facade handle
// ----------------------------------------------------------------------

/// The handle the [`crate::Runtime`] facade owns: the shared plane, the
/// primary context's state (ring 0), and the dispatcher's join handle.
/// Dropping it shuts the plane down and joins the dispatcher (which
/// drains every ring first).
pub(crate) struct Pipeline {
    plane: Arc<SubmitPlane>,
    primary: Arc<CtxState>,
    driver: Option<std::thread::JoinHandle<()>>,
}

impl Pipeline {
    pub(crate) fn spawn(
        core: Arc<RwLock<Core>>,
        forest: Arc<RwLock<RegionForest>>,
        depth: usize,
        rings: usize,
    ) -> Self {
        let plane = Arc::new(SubmitPlane::new(rings, depth));
        let primary = CtxState::new(crate::runtime::CTX_PRIMARY);
        let claimed = plane
            .claim_ring(&primary)
            .expect("fresh plane has a free primary ring");
        debug_assert_eq!(claimed, PRIMARY_RING);
        let driver = {
            let plane = Arc::clone(&plane);
            std::thread::Builder::new()
                .name("viz-analysis-driver".into())
                .spawn(move || drive(&plane, &core, &forest))
                .expect("spawn analysis driver thread")
        };
        Pipeline {
            plane,
            primary,
            driver: Some(driver),
        }
    }

    pub(crate) fn plane(&self) -> &Arc<SubmitPlane> {
        &self.plane
    }

    pub(crate) fn primary(&self) -> &Arc<CtxState> {
        &self.primary
    }

    /// Push one spec into the primary ring.
    pub(crate) fn enqueue(&self, spec: LaunchSpec) -> Result<(), RuntimeError> {
        self.plane
            .enqueue_all(PRIMARY_RING, &self.primary, vec![spec])
    }

    /// Push a batch into the primary ring in order.
    pub(crate) fn enqueue_all(&self, specs: Vec<LaunchSpec>) -> Result<(), RuntimeError> {
        self.plane.enqueue_all(PRIMARY_RING, &self.primary, specs)
    }

    /// Block until every launch submitted (to any ring) has committed.
    pub(crate) fn drain(&self) -> Result<(), RuntimeError> {
        self.plane.quiesce()
    }

    /// Block until the primary context's commit counter covers `count`.
    pub(crate) fn wait_committed(&self, count: u64) -> Result<(), RuntimeError> {
        self.plane.wait_ctx_committed(&self.primary, count)
    }

    pub(crate) fn metrics(&self) -> PipelineMetrics {
        PipelineMetrics {
            inner: Arc::clone(&self.plane.metrics),
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        self.plane.shutdown.store(true, Ordering::SeqCst);
        self.plane.ring_doorbell();
        {
            // Nudge the doorbell even if the dispatcher was mid-transition.
            let _guard = self.plane.door_lock.lock().unwrap();
            self.plane.bell.notify_all();
        }
        if let Some(driver) = self.driver.take() {
            if let Err(payload) = driver.join() {
                // Surface the dispatcher's death unless we are already
                // unwinding (a double panic would abort).
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Guard projections (unchanged from PR 4)
// ----------------------------------------------------------------------

/// A read guard into a component of the analysis [`Core`], returned by the
/// [`crate::Runtime`] introspection accessors (`dag()`, `launches()`,
/// `machine()`, ...). Dereferences to the component; the core stays
/// read-locked for the guard's lifetime. Accessors drain the pipeline
/// before locking, so the driver is idle and cannot block behind the
/// guard; overlapping read guards on the application thread are fine.
pub struct CoreRead<'a, T: ?Sized> {
    guard: RwLockReadGuard<'a, Core>,
    map: fn(&Core) -> &T,
}

impl<'a, T: ?Sized> CoreRead<'a, T> {
    pub(crate) fn new(core: &'a RwLock<Core>, map: fn(&Core) -> &T) -> Self {
        CoreRead {
            guard: core.read().unwrap(),
            map,
        }
    }
}

impl<T: ?Sized> Deref for CoreRead<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        (self.map)(&self.guard)
    }
}

impl<T: ?Sized> AsRef<T> for CoreRead<'_, T> {
    fn as_ref(&self) -> &T {
        (self.map)(&self.guard)
    }
}

/// Write counterpart of [`CoreRead`] (e.g. [`crate::Runtime::machine_mut`]).
pub struct CoreWrite<'a, T: ?Sized> {
    guard: RwLockWriteGuard<'a, Core>,
    map: fn(&Core) -> &T,
    map_mut: fn(&mut Core) -> &mut T,
}

impl<'a, T: ?Sized> CoreWrite<'a, T> {
    pub(crate) fn new(
        core: &'a RwLock<Core>,
        map: fn(&Core) -> &T,
        map_mut: fn(&mut Core) -> &mut T,
    ) -> Self {
        CoreWrite {
            guard: core.write().unwrap(),
            map,
            map_mut,
        }
    }
}

impl<T: ?Sized> Deref for CoreWrite<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        (self.map)(&self.guard)
    }
}

impl<T: ?Sized> DerefMut for CoreWrite<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        (self.map_mut)(&mut self.guard)
    }
}

impl<T: ?Sized> AsRef<T> for CoreWrite<'_, T> {
    fn as_ref(&self) -> &T {
        (self.map)(&self.guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression (PR 7): the PR 4 frontend published the
    /// high-water mark with an independent load/store pair; concurrent
    /// observers could overwrite a larger maximum with a stale smaller
    /// one. `observe_max` must survive a multi-threaded hammer with the
    /// true maximum intact.
    #[test]
    fn observe_max_survives_concurrent_publishers() {
        let cell = AtomicU64::new(0);
        let threads = 8u64;
        let per_thread = 20_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let cell = &cell;
                scope.spawn(move || {
                    // Interleaved ascending/descending streams: plenty of
                    // windows where a stale store would clobber a larger
                    // published value.
                    for k in 0..per_thread {
                        let v = if t % 2 == 0 { k } else { per_thread - k };
                        observe_max(cell, v * threads + t);
                    }
                });
            }
        });
        let expected = (0..threads)
            .map(|t| {
                if t % 2 == 0 {
                    (per_thread - 1) * threads + t
                } else {
                    per_thread * threads + t
                }
            })
            .max()
            .unwrap();
        assert_eq!(cell.load(Ordering::SeqCst), expected);
    }

    #[test]
    fn worker_guard_nests_and_restores() {
        assert!(!in_worker());
        {
            let _a = enter_worker();
            assert!(in_worker());
            {
                let _b = enter_worker();
                assert!(in_worker());
            }
            assert!(in_worker());
        }
        assert!(!in_worker());
    }
}
