//! The pipelined submission frontend (PR 4).
//!
//! With [`crate::RuntimeConfig::pipeline`] set, the application thread no
//! longer runs the dependence analysis inline: [`crate::Runtime::submit`]
//! validates and snapshots the launch, pushes it into a bounded queue, and
//! returns immediately with a [`crate::TaskHandle`]. A dedicated *analysis
//! driver* thread drains the queue and feeds the specs — in submission
//! order, in whatever chunk sizes it happens to observe — through
//! [`Core::run_specs`], the same entry point the synchronous frontend
//! uses. That code path is chunk-invariant (PR 2 made batched analysis
//! byte-identical to serial, PR 3's detector is fed in stream order either
//! way), so the pipelined runtime produces bit-for-bit the dependences,
//! plans, simulated clocks, and counters of the synchronous one while the
//! application races ahead building the next wave.
//!
//! ## Backpressure
//!
//! The queue is bounded ([`crate::RuntimeConfig::pipeline_depth`]): a full
//! queue blocks `submit` until the driver catches up, keeping the
//! application at most one queue ahead of the analysis — the same
//! throttling role Legion's "runtime ahead" window plays. Stalls are
//! counted in [`PipelineMetrics`] and emitted as
//! [`viz_profile::EventKind::PipelineStall`] events; each driver wakeup
//! records the depth it drained as
//! [`viz_profile::EventKind::PipelineDepth`].
//!
//! ## Drain points and the drop contract
//!
//! Any operation that observes committed analysis state first calls
//! [`Pipeline::drain`] (see the list on [`crate::Runtime`]). Dropping the
//! runtime closes the queue and joins the driver, which *always* drains
//! remaining items before honoring the close — queued launches are never
//! lost, and the final state is exactly the synchronous one. A panic on
//! the driver thread (an engine bug, not API misuse — misuse is rejected
//! on the application thread before enqueue) is latched and re-raised on
//! the application thread at the next submission or drain point.

use crate::runtime::{Core, LaunchSpec};
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;
use viz_region::RegionForest;

/// What the application thread and the driver share.
struct Shared {
    queue: Mutex<QueueState>,
    /// Signaled by `submit` after a push; the driver waits on it.
    not_empty: Condvar,
    /// Signaled by the driver after taking a batch; full `submit`s wait.
    space: Condvar,
    /// Signaled by the driver after committing a batch; drain/resolve wait.
    progress: Condvar,
    depth: usize,
    metrics: Arc<MetricsInner>,
}

struct QueueState {
    items: VecDeque<LaunchSpec>,
    /// Specs the driver has taken but not yet committed. `items` empty and
    /// `in_flight == 0` together mean every submission has retired.
    in_flight: usize,
    /// Absolute commit watermark: `core.launches.len()` after the driver's
    /// latest commit (task ids below it are final). Fences bump the core
    /// directly from the application thread at a drained moment, so the
    /// watermark may lag the core — waiters therefore also accept the
    /// queue-empty condition.
    committed: u64,
    closed: bool,
    /// The driver panicked; latched so every waiter propagates instead of
    /// hanging.
    panicked: bool,
}

#[derive(Default)]
struct MetricsInner {
    submitted: AtomicU64,
    retired: AtomicU64,
    stalls: AtomicU64,
    stalled_ns: AtomicU64,
    max_depth: AtomicU64,
}

/// Counters for the pipelined frontend, readable from a cloneable handle
/// that outlives the [`crate::Runtime`] — the drop-flush test uses one to
/// observe that every queued launch retired during `Drop`.
#[derive(Clone)]
pub struct PipelineMetrics {
    inner: Arc<MetricsInner>,
}

impl PipelineMetrics {
    /// Launches pushed into the submission queue.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Acquire)
    }

    /// Launches the driver has drained and committed.
    pub fn retired(&self) -> u64 {
        self.inner.retired.load(Ordering::Acquire)
    }

    /// Times a `submit` blocked on a full queue (backpressure).
    pub fn stalls(&self) -> u64 {
        self.inner.stalls.load(Ordering::Acquire)
    }

    /// Total wall-clock nanoseconds submissions spent blocked on
    /// backpressure.
    pub fn stalled_ns(&self) -> u64 {
        self.inner.stalled_ns.load(Ordering::Acquire)
    }

    /// High-water mark of the queue depth observed at submission.
    pub fn max_depth(&self) -> u64 {
        self.inner.max_depth.load(Ordering::Acquire)
    }
}

/// Re-raised on the application thread when the driver died.
const DRIVER_PANIC: &str =
    "viz-runtime analysis driver thread panicked; see its panic message above";

/// The handle the [`crate::Runtime`] facade owns: the shared queue plus
/// the driver's join handle. Dropping it closes the queue and joins the
/// driver (which drains first).
pub(crate) struct Pipeline {
    shared: Arc<Shared>,
    driver: Option<std::thread::JoinHandle<()>>,
}

impl Pipeline {
    pub(crate) fn spawn(
        core: Arc<RwLock<Core>>,
        forest: Arc<RwLock<RegionForest>>,
        depth: usize,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                in_flight: 0,
                committed: 0,
                closed: false,
                panicked: false,
            }),
            not_empty: Condvar::new(),
            space: Condvar::new(),
            progress: Condvar::new(),
            depth: depth.max(1),
            metrics: Arc::new(MetricsInner::default()),
        });
        let driver = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("viz-analysis-driver".into())
                .spawn(move || drive(&shared, &core, &forest))
                .expect("spawn analysis driver thread")
        };
        Pipeline {
            shared,
            driver: Some(driver),
        }
    }

    /// Push one spec; blocks on backpressure when the queue is at depth.
    pub(crate) fn enqueue(&self, spec: LaunchSpec) {
        self.enqueue_all(vec![spec]);
    }

    /// Push a batch in order, respecting the depth bound chunk-wise (a
    /// batch larger than the queue trickles in as the driver drains).
    pub(crate) fn enqueue_all(&self, specs: Vec<LaunchSpec>) {
        let shared = &*self.shared;
        let n = specs.len() as u64;
        let mut q = shared.queue.lock().unwrap();
        let mut stall_started: Option<Instant> = None;
        for spec in specs {
            while q.items.len() >= shared.depth {
                if q.panicked {
                    panic!("{DRIVER_PANIC}");
                }
                stall_started.get_or_insert_with(Instant::now);
                q = shared.space.wait(q).unwrap();
            }
            if q.panicked {
                panic!("{DRIVER_PANIC}");
            }
            q.items.push_back(spec);
            shared.not_empty.notify_one();
        }
        let observed_depth = (q.items.len() + q.in_flight) as u64;
        drop(q);
        let m = &shared.metrics;
        m.submitted.fetch_add(n, Ordering::AcqRel);
        m.max_depth.fetch_max(observed_depth, Ordering::AcqRel);
        if let Some(t0) = stall_started {
            let waited_ns = t0.elapsed().as_nanos() as u64;
            m.stalls.fetch_add(1, Ordering::AcqRel);
            m.stalled_ns.fetch_add(waited_ns, Ordering::AcqRel);
            if viz_profile::enabled() {
                viz_profile::instant(viz_profile::EventKind::PipelineStall { waited_ns });
            }
        }
    }

    /// Block until every submitted launch has been committed by the driver.
    pub(crate) fn drain(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if q.panicked {
                panic!("{DRIVER_PANIC}");
            }
            if q.items.is_empty() && q.in_flight == 0 {
                return;
            }
            q = self.shared.progress.wait(q).unwrap();
        }
    }

    /// Block until the commit watermark covers `count` launches (or the
    /// queue is fully drained, which subsumes it — see
    /// [`QueueState::committed`]).
    pub(crate) fn wait_committed(&self, count: u64) {
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if q.panicked {
                panic!("{DRIVER_PANIC}");
            }
            if q.committed >= count || (q.items.is_empty() && q.in_flight == 0) {
                return;
            }
            q = self.shared.progress.wait(q).unwrap();
        }
    }

    pub(crate) fn metrics(&self) -> PipelineMetrics {
        PipelineMetrics {
            inner: Arc::clone(&self.shared.metrics),
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.closed = true;
        }
        self.shared.not_empty.notify_all();
        if let Some(driver) = self.driver.take() {
            if let Err(payload) = driver.join() {
                // Surface the driver's death unless we are already
                // unwinding (a double panic would abort).
                if !std::thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Latches the panic flag if the driver unwinds, so application-side
/// waiters wake up and propagate instead of deadlocking on a condvar.
struct Bomb<'a>(&'a Shared);

impl Drop for Bomb<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.queue.lock().unwrap().panicked = true;
            self.0.space.notify_all();
            self.0.progress.notify_all();
        }
    }
}

/// The driver loop: take everything queued, commit it through the shared
/// [`Core`], repeat. Exits when the queue is closed *and* empty — close is
/// only honored after a final drain, which is the drop-flush guarantee.
fn drive(shared: &Shared, core: &RwLock<Core>, forest: &RwLock<RegionForest>) {
    let bomb = Bomb(shared);
    loop {
        let batch: Vec<LaunchSpec> = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if !q.items.is_empty() {
                    let items = std::mem::take(&mut q.items);
                    q.in_flight = items.len();
                    break items.into();
                }
                if q.closed {
                    drop(bomb);
                    return;
                }
                q = shared.not_empty.wait(q).unwrap();
            }
        };
        shared.space.notify_all();
        let n = batch.len();
        if viz_profile::enabled() {
            viz_profile::instant(viz_profile::EventKind::PipelineDepth { depth: n as u64 });
        }
        let committed = {
            // Lock order everywhere is forest before core. The forest is
            // only write-locked by `forest_mut`, which drains first, so the
            // driver's read lock never contends with a writer mid-batch.
            let forest = forest.read().unwrap();
            let mut core = core.write().unwrap();
            core.run_specs(batch, &forest);
            core.launches.len() as u64
        };
        shared.metrics.retired.fetch_add(n as u64, Ordering::AcqRel);
        {
            let mut q = shared.queue.lock().unwrap();
            q.committed = committed;
            q.in_flight = 0;
        }
        shared.progress.notify_all();
    }
}

/// A read guard into a component of the analysis [`Core`], returned by the
/// [`crate::Runtime`] introspection accessors (`dag()`, `launches()`,
/// `machine()`, ...). Dereferences to the component; the core stays
/// read-locked for the guard's lifetime. Accessors drain the pipeline
/// before locking, so the driver is idle and cannot block behind the
/// guard; overlapping read guards on the application thread are fine.
pub struct CoreRead<'a, T: ?Sized> {
    guard: RwLockReadGuard<'a, Core>,
    map: fn(&Core) -> &T,
}

impl<'a, T: ?Sized> CoreRead<'a, T> {
    pub(crate) fn new(core: &'a RwLock<Core>, map: fn(&Core) -> &T) -> Self {
        CoreRead {
            guard: core.read().unwrap(),
            map,
        }
    }
}

impl<T: ?Sized> Deref for CoreRead<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        (self.map)(&self.guard)
    }
}

impl<T: ?Sized> AsRef<T> for CoreRead<'_, T> {
    fn as_ref(&self) -> &T {
        (self.map)(&self.guard)
    }
}

/// Write counterpart of [`CoreRead`] (e.g. [`crate::Runtime::machine_mut`]).
pub struct CoreWrite<'a, T: ?Sized> {
    guard: RwLockWriteGuard<'a, Core>,
    map: fn(&Core) -> &T,
    map_mut: fn(&mut Core) -> &mut T,
}

impl<'a, T: ?Sized> CoreWrite<'a, T> {
    pub(crate) fn new(
        core: &'a RwLock<Core>,
        map: fn(&Core) -> &T,
        map_mut: fn(&mut Core) -> &mut T,
    ) -> Self {
        CoreWrite {
            guard: core.write().unwrap(),
            map,
            map_mut,
        }
    }
}

impl<T: ?Sized> Deref for CoreWrite<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        (self.map)(&self.guard)
    }
}

impl<T: ?Sized> DerefMut for CoreWrite<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        (self.map_mut)(&mut self.guard)
    }
}

impl<T: ?Sized> AsRef<T> for CoreWrite<'_, T> {
    fn as_ref(&self) -> &T {
        (self.map)(&self.guard)
    }
}
