//! Materialization plans — the output of the coherence analysis.
//!
//! A coherence engine answers, for each region requirement of a task, "where
//! do the current values come from?" (§3.1): the most recent *write* per
//! point (opaque in the visibility reduction) plus all *reductions* pending
//! since that write (semi-transparent), ordered by the program-order clock.

use crate::task::TaskId;
use std::sync::Arc;
use viz_geometry::IndexSpace;
use viz_region::ReductionOpId;

/// Where a range of base values comes from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Source {
    /// The initial contents of the root region (the `[⟨read-write, A⟩]`
    /// entry the paper seeds every history with).
    Initial,
    /// The committed output of requirement `req` of task `task`, which held
    /// write privileges there.
    Task(TaskId, u32),
}

/// Copy `domain` from `source` (base values; copies of one plan are
/// pairwise disjoint and, for read/read-write privileges, cover the
/// requirement's full domain).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CopyRange {
    pub source: Source,
    pub domain: IndexSpace,
}

/// Fold the partial accumulation committed by requirement `req` of `task`
/// (a `reduce_f` instance) into the materialized values over `domain`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReduceRange {
    pub task: TaskId,
    pub req: u32,
    pub redop: ReductionOpId,
    pub domain: IndexSpace,
}

/// The coherence plan for one region requirement.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaterializePlan {
    /// Base values. Empty for `reduce` privileges (which materialize an
    /// identity-filled instance instead — the lazy-reduction optimization
    /// of §5).
    pub copies: Vec<CopyRange>,
    /// Pending reductions to fold on top of the base values. The executor
    /// folds them in ascending `TaskId` order (program order), which makes
    /// parallel execution bit-identical to sequential execution for
    /// exactly-representable values.
    pub reductions: Vec<ReduceRange>,
    /// `Some(op)` when this requirement is a reduction: the instance is
    /// filled with `op`'s identity.
    pub fill_identity: Option<ReductionOpId>,
}

impl MaterializePlan {
    /// Plan for a reduction privilege: identity fill, nothing else.
    pub fn identity(op: ReductionOpId) -> Self {
        MaterializePlan {
            copies: Vec::new(),
            reductions: Vec::new(),
            fill_identity: Some(op),
        }
    }

    /// Sort reductions into fold order and coalesce adjacent copy ranges
    /// from the same source.
    pub fn normalize(&mut self) {
        self.reductions.sort_by_key(|r| (r.task, r.req));
        // Merge copy ranges with identical sources.
        let mut merged: Vec<CopyRange> = Vec::with_capacity(self.copies.len());
        self.copies.sort_by_key(|c| match &c.source {
            Source::Initial => (TaskId(u32::MAX), u32::MAX),
            Source::Task(t, r) => (*t, *r),
        });
        for c in self.copies.drain(..) {
            match merged.last_mut() {
                Some(last) if last.source == c.source => {
                    last.domain = last.domain.union(&c.domain);
                }
                _ => merged.push(c),
            }
        }
        self.copies = merged;
    }

    /// Total points copied (used by the timed executor to price data
    /// movement).
    pub fn copied_points(&self) -> u64 {
        self.copies.iter().map(|c| c.domain.volume()).sum()
    }

    /// Total points folded from reduction instances.
    pub fn reduced_points(&self) -> u64 {
        self.reductions.iter().map(|r| r.domain.volume()).sum()
    }
}

/// The full result of analyzing one task launch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisResult {
    /// Tasks this launch must wait for (sorted, deduplicated). Together with
    /// transitivity this orders every interfering pair (§3.2).
    pub deps: Vec<TaskId>,
    /// One plan per region requirement, in requirement order.
    pub plans: Vec<MaterializePlan>,
}

impl AnalysisResult {
    pub fn normalize(&mut self) {
        self.deps.sort_unstable();
        self.deps.dedup();
        for p in &mut self.plans {
            p.normalize();
        }
    }
}

/// A uniform task-id translation: ids in `[lo, hi)` move by `+delta`,
/// everything else is untouched. Trace replay computes one shift per
/// *instance* (not per launch) mapping the recorded template window onto
/// the replayed position; consumers apply it lazily when reading task
/// references, so replay never deep-clones an [`AnalysisResult`].
///
/// Because the shift is uniform over the window and replayed windows sit
/// above all earlier ids, applying it preserves the ascending `TaskId`
/// (program) order that reduction folding relies on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TaskShift {
    pub lo: u32,
    pub hi: u32,
    pub delta: u32,
}

impl TaskShift {
    pub const IDENTITY: TaskShift = TaskShift {
        lo: 0,
        hi: 0,
        delta: 0,
    };

    #[inline]
    pub fn is_identity(&self) -> bool {
        self.delta == 0 || self.lo >= self.hi
    }

    #[inline]
    pub fn apply(&self, t: TaskId) -> TaskId {
        if t.0 >= self.lo && t.0 < self.hi {
            TaskId(t.0 + self.delta)
        } else {
            t
        }
    }
}

/// How the runtime stores one launch's analysis: engine-produced results
/// are owned; recorded/replayed results share the template's `Arc` plus the
/// instance's [`TaskShift`]. The replay path stores `Shared` without
/// cloning `deps`/`plans` — resolution happens at the readers.
#[derive(Clone)]
pub enum StoredResult {
    Owned(AnalysisResult),
    Shared {
        result: Arc<AnalysisResult>,
        shift: TaskShift,
    },
}

impl StoredResult {
    /// The stored result *before* shifting (template coordinates for
    /// `Shared`). Pair reads of task references with [`StoredResult::shift`].
    #[inline]
    pub fn raw(&self) -> &AnalysisResult {
        match self {
            StoredResult::Owned(r) => r,
            StoredResult::Shared { result, .. } => result,
        }
    }

    #[inline]
    pub fn shift(&self) -> TaskShift {
        match self {
            StoredResult::Owned(_) => TaskShift::IDENTITY,
            StoredResult::Shared { shift, .. } => *shift,
        }
    }

    /// Materialize the result with the shift applied (allocates; for
    /// introspection and differential tests, not the replay hot path).
    pub fn resolve(&self) -> AnalysisResult {
        match self {
            StoredResult::Owned(r) => r.clone(),
            StoredResult::Shared { result, shift } => {
                let mut r = (**result).clone();
                if !shift.is_identity() {
                    for d in &mut r.deps {
                        *d = shift.apply(*d);
                    }
                    for plan in &mut r.plans {
                        for c in &mut plan.copies {
                            if let Source::Task(t, _) = &mut c.source {
                                *t = shift.apply(*t);
                            }
                        }
                        for red in &mut plan.reductions {
                            red.task = shift.apply(red.task);
                        }
                    }
                }
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_region::RedOpRegistry;

    #[test]
    fn identity_plan_has_no_copies() {
        let p = MaterializePlan::identity(RedOpRegistry::SUM);
        assert!(p.copies.is_empty());
        assert_eq!(p.fill_identity, Some(RedOpRegistry::SUM));
    }

    #[test]
    fn normalize_sorts_reductions_in_program_order() {
        let mut p = MaterializePlan::default();
        for t in [5u32, 1, 3] {
            p.reductions.push(ReduceRange {
                task: TaskId(t),
                req: 0,
                redop: RedOpRegistry::SUM,
                domain: IndexSpace::span(0, 4),
            });
        }
        p.normalize();
        let order: Vec<u32> = p.reductions.iter().map(|r| r.task.0).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn normalize_merges_same_source_copies() {
        let mut p = MaterializePlan::default();
        p.copies.push(CopyRange {
            source: Source::Task(TaskId(2), 0),
            domain: IndexSpace::span(0, 4),
        });
        p.copies.push(CopyRange {
            source: Source::Task(TaskId(2), 0),
            domain: IndexSpace::span(5, 9),
        });
        p.copies.push(CopyRange {
            source: Source::Initial,
            domain: IndexSpace::span(20, 24),
        });
        p.normalize();
        assert_eq!(p.copies.len(), 2);
        assert_eq!(p.copied_points(), 15);
    }

    #[test]
    fn result_normalize_dedups_deps() {
        let mut r = AnalysisResult {
            deps: vec![TaskId(3), TaskId(1), TaskId(3)],
            plans: vec![],
        };
        r.normalize();
        assert_eq!(r.deps, vec![TaskId(1), TaskId(3)]);
    }
}
