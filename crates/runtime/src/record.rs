//! Launch-history recording for the external consistency oracle
//! (`viz-oracle`).
//!
//! With [`crate::RuntimeConfig::record_history`] set (or `VIZ_ORACLE=1`),
//! the [`Core`](crate::runtime::Runtime) keeps a [`HistoryRecorder`] and
//! appends one [`LaunchRecord`] at every commit point — the serial path,
//! the sharded batch driver's retire stage, trace replay, and fences all
//! funnel through the same hook, so synchronous, pipelined, annotated-trace
//! and auto-trace runs produce the same kind of record.
//!
//! What is recorded is deliberately *claims, not analysis state*: the
//! submitted requirements (canonicalized by the same signature hash the
//! auto-tracer fingerprints launches with), the dependence edges the engine
//! emitted (with any trace-replay shift already applied), and the order
//! launches retired. An external judge can re-derive the *required*
//! precedence relation from the requirements alone and verify the engine's
//! claims against it — see `crates/oracle`.

use crate::task::{RegionRequirement, TaskId};
use viz_sim::NodeId;

/// One committed launch, as the engine claimed it: what was submitted plus
/// the dependence edges it emitted.
#[derive(Clone, Debug)]
pub struct LaunchRecord {
    pub id: TaskId,
    pub name: String,
    pub node: NodeId,
    /// The producer context that submitted this launch (PR 7):
    /// [`crate::CTX_PRIMARY`] for the `Runtime` facade, the context id for
    /// tenant [`crate::Context`]s, [`crate::CTX_GLOBAL`] for global fences.
    /// Scoped fences carry their context's id — the oracle only requires a
    /// fence to follow launches in its own scope.
    pub ctx: u32,
    /// The submitted requirements, exactly as analyzed.
    pub reqs: Vec<RegionRequirement>,
    /// The PR 3 fingerprint of `(node, reqs)` — the canonical signature
    /// trace replay validates against.
    pub signature: u64,
    /// Dependence edges the engine emitted for this launch (trace-replay
    /// shifts already applied — these are the ids the executors honor).
    pub deps: Vec<TaskId>,
    /// Was this launch's analysis synthesized from a trace template
    /// (annotated or auto) instead of running the visibility engine?
    pub replayed: bool,
    /// Is this an execution fence (ordered after everything prior)?
    pub fence: bool,
}

/// A complete recorded run: every committed launch plus the retirement
/// order. Region-tree geometry is snapshotted separately at export time
/// (the forest only grows, so the final snapshot covers every launch).
#[derive(Clone, Debug, Default)]
pub struct RecordedHistory {
    pub engine: String,
    pub launches: Vec<LaunchRecord>,
    /// Task ids in the order their analyses committed (retired).
    pub retirement: Vec<TaskId>,
}

impl RecordedHistory {
    pub fn len(&self) -> usize {
        self.launches.len()
    }

    pub fn is_empty(&self) -> bool {
        self.launches.is_empty()
    }
}

/// The in-core recording hook. All mutation happens under the core lock,
/// so the pipelined driver and the synchronous frontend share it safely.
#[derive(Debug, Default)]
pub(crate) struct HistoryRecorder {
    launches: Vec<LaunchRecord>,
    retirement: Vec<TaskId>,
}

impl HistoryRecorder {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Record one committed launch. `deps` are the edges as pushed into
    /// the task DAG (shifted for replays).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn commit(
        &mut self,
        ctx: u32,
        id: TaskId,
        name: &str,
        node: NodeId,
        reqs: &[RegionRequirement],
        deps: &[TaskId],
        replayed: bool,
        fence: bool,
    ) {
        self.launches.push(LaunchRecord {
            id,
            name: name.to_string(),
            node,
            ctx,
            reqs: reqs.to_vec(),
            signature: crate::autotrace::sig_hash(node, reqs),
            deps: deps.to_vec(),
            replayed,
            fence,
        });
        self.retirement.push(id);
    }

    /// Snapshot everything recorded so far.
    pub(crate) fn snapshot(&self, engine: &str) -> RecordedHistory {
        viz_profile::instant(viz_profile::EventKind::HistoryRecord {
            launches: self.launches.len() as u64,
        });
        RecordedHistory {
            engine: engine.to_string(),
            launches: self.launches.clone(),
            retirement: self.retirement.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_region::{FieldId, RegionId};

    #[test]
    fn commit_assigns_signatures_and_retirement_order() {
        let mut rec = HistoryRecorder::new();
        let reqs = vec![RegionRequirement::read_write(RegionId(0), FieldId(0))];
        rec.commit(0, TaskId(0), "w", 0, &reqs, &[], false, false);
        rec.commit(2, TaskId(1), "r", 1, &reqs, &[TaskId(0)], false, false);
        let h = rec.snapshot("test");
        assert_eq!(h.len(), 2);
        assert_eq!(h.retirement, vec![TaskId(0), TaskId(1)]);
        assert_eq!(h.launches[1].deps, vec![TaskId(0)]);
        assert_eq!(h.launches[0].ctx, 0, "submitting context is recorded");
        assert_eq!(h.launches[1].ctx, 2);
        // Same (node, reqs) → same signature; different node → different.
        let sig0 = h.launches[0].signature;
        let mut rec2 = HistoryRecorder::new();
        rec2.commit(0, TaskId(0), "other-name", 0, &reqs, &[], false, false);
        rec2.commit(0, TaskId(1), "w", 1, &reqs, &[], false, false);
        let h2 = rec2.snapshot("test");
        assert_eq!(
            h2.launches[0].signature, sig0,
            "name is not in the signature"
        );
        assert_ne!(h2.launches[1].signature, sig0, "node is in the signature");
    }
}
