//! A wait-free bounded SPSC ring buffer — the per-context submission lane
//! of the multi-producer submission plane (see [`crate::pipeline`]).
//!
//! Each [`SpscRing`] has exactly one producer (the context that claimed
//! the ring slot; exclusivity is enforced structurally, `Context::submit`
//! takes `&mut self`) and exactly one consumer (the combining dispatcher
//! thread). Under that contract both ends are wait-free: a push is one
//! slot write plus one release store of the tail, a drain is one acquire
//! load of the tail plus a batch of slot reads — no locks, no CAS, no
//! producer-side blocking on lock handoff (the delegation argument of
//! *Advanced Synchronization Techniques for Task-based Runtime Systems*).
//!
//! The capacity is a power of two internally, but the *occupancy bound*
//! is the exact `bound` requested — backpressure semantics stay identical
//! to the PR 4 bounded queue ([`crate::RuntimeConfig::pipeline_depth`]).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The crossbeam shim carries no `CachePadded`; a 64-byte-aligned wrapper
/// keeps the producer-written tail and the consumer-written head on
/// distinct cache lines, which is the entire point of an SPSC layout.
#[repr(align(64))]
pub(crate) struct CacheAligned<T>(pub T);

/// Bounded single-producer single-consumer ring. `&self` methods are
/// split by role: [`SpscRing::try_push`] must only ever be called by the
/// one producer, [`SpscRing::pop_all`] only by the one consumer.
pub(crate) struct SpscRing<T> {
    /// Exact occupancy bound (the backpressure depth).
    bound: usize,
    /// Power-of-two slot-index mask.
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next index the consumer will pop. Written by the consumer only.
    head: CacheAligned<AtomicUsize>,
    /// Next index the producer will push. Written by the producer only.
    tail: CacheAligned<AtomicUsize>,
}

// SAFETY: the single-producer/single-consumer contract (documented above,
// enforced by the submission plane's ring-claim protocol) means every
// slot is written by exactly one thread before the tail release-store
// publishes it, and read by exactly one thread after an acquire-load
// observes it — the atomics carry all cross-thread ordering.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    pub(crate) fn new(bound: usize) -> Self {
        let bound = bound.max(1);
        let cap = bound.next_power_of_two();
        SpscRing {
            bound,
            mask: cap - 1,
            slots: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: CacheAligned(AtomicUsize::new(0)),
            tail: CacheAligned(AtomicUsize::new(0)),
        }
    }

    /// Producer side: push one item, or hand it back if the ring is at
    /// its bound (the caller stalls — backpressure).
    pub(crate) fn try_push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.bound {
            return Err(value);
        }
        // SAFETY: `tail - head < bound <= capacity`, so this slot has been
        // consumed (or never used); we are the only producer.
        unsafe { (*self.slots[tail & self.mask].get()).write(value) };
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: drain everything currently published, in FIFO
    /// order, into `out`. Returns the number of items taken.
    pub(crate) fn pop_all(&self, out: &mut Vec<T>) -> usize {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        let n = tail.wrapping_sub(head);
        out.reserve(n);
        for i in 0..n {
            // SAFETY: indices in `head..tail` were published by the
            // producer's release store; we are the only consumer.
            let v =
                unsafe { (*self.slots[head.wrapping_add(i) & self.mask].get()).assume_init_read() };
            out.push(v);
        }
        self.head.0.store(tail, Ordering::Release);
        n
    }

    /// Approximate occupancy (exact from either endpoint's own thread).
    pub(crate) fn len(&self) -> usize {
        self.tail
            .0
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.0.load(Ordering::Acquire))
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent ends; drop whatever is still queued.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_roundtrip_across_threads() {
        let ring = SpscRing::<u64>::new(64);
        let total = 10_000u64;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for v in 0..total {
                    let mut item = v;
                    loop {
                        match ring.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            scope.spawn(|| {
                let mut got = Vec::new();
                while (got.len() as u64) < total {
                    ring.pop_all(&mut got);
                }
                assert_eq!(got, (0..total).collect::<Vec<_>>(), "FIFO preserved");
            });
        });
        assert!(ring.is_empty());
    }

    #[test]
    fn bound_is_exact_not_rounded_up() {
        let ring = SpscRing::<u32>::new(3); // capacity rounds to 4
        assert!(ring.try_push(0).is_ok());
        assert!(ring.try_push(1).is_ok());
        assert!(ring.try_push(2).is_ok());
        assert_eq!(ring.try_push(3), Err(3), "occupancy bound is 3");
        let mut out = Vec::new();
        assert_eq!(ring.pop_all(&mut out), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert!(ring.try_push(3).is_ok());
    }

    #[test]
    fn drop_releases_queued_items() {
        let marker = Arc::new(());
        {
            let ring = SpscRing::new(8);
            for _ in 0..5 {
                ring.try_push(Arc::clone(&marker)).unwrap();
            }
            let mut out = Vec::new();
            ring.pop_all(&mut out);
            for _ in 0..3 {
                ring.try_push(Arc::clone(&marker)).unwrap();
            }
            drop(out);
            // 3 items still queued when the ring drops.
        }
        assert_eq!(Arc::strong_count(&marker), 1, "no queued item leaked");
    }
}
