//! The runtime facade: region creation, task submission, deferred execution.
//!
//! Since PR 4 the frontend is split in two:
//!
//! * [`Runtime`] — the application-thread facade. It validates and
//!   snapshots submissions ([`Runtime::submit`], [`LaunchBuilder`]),
//!   assigns task ids in program order, and either runs the analysis
//!   inline (synchronous mode) or enqueues the launch for the pipeline
//!   driver (`RuntimeConfig::pipeline`, see [`crate::pipeline`]).
//! * [`Core`] — everything the analysis driver needs: the visibility
//!   engine, the simulated machine, the shard map, the tracing state
//!   machine, and the per-task bookkeeping. In pipelined mode it lives
//!   behind an `RwLock` shared with the driver thread; in synchronous
//!   mode the same code runs on the application thread, so both modes
//!   produce byte-identical results.

use crate::analysis::visibility::VisibilityConfig;
use crate::autotrace::{AutoTraceConfig, AutoTracer};
use crate::config::GcConfig;
use crate::dag::TaskDag;
use crate::engine::{AnalysisCtx, CoherenceEngine, EngineKind, GcSweep};
use crate::error::RuntimeError;
use crate::exec::{TimedReport, TimedSchedule, ValueStore};
use crate::ledger::Ledger;
use crate::pipeline::{CoreRead, CoreWrite, CtxState, Pipeline, PipelineMetrics, SubmitPlane};
use crate::plan::{AnalysisResult, StoredResult, TaskShift};
use crate::record::{HistoryRecorder, RecordedHistory};
use crate::sharding::ShardMap;
use crate::task::{RegionRequirement, TaskBody, TaskId, TaskLaunch};
use crate::trace::{TraceAction, TraceId, TraceViolation, Tracing};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use viz_geometry::{FxHashMap, Point};
use viz_region::{redop::Value, FieldId, Privilege, RedOpRegistry, RegionForest, RegionId};
use viz_sim::{CostModel, Machine, NodeId, SimTime};

/// Configuration for a [`Runtime`].
///
/// # Environment variables
///
/// Every `VIZ_*` knob parses through one module — [`crate::config`], which
/// documents the full table ([`crate::config::KNOBS`]) — so existing
/// binaries and the differential CI jobs can flip execution strategies
/// without code changes. Precedence is strict: builder setters beat the
/// environment beats the built-in default ([`RuntimeConfig::new`] applies
/// [`crate::config::EnvOverrides`] once, setters run after;
/// [`RuntimeConfig::base`] skips the environment entirely).
///
/// Marked `#[non_exhaustive]`: construct with [`RuntimeConfig::new`] and
/// the builder setters.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of simulated machine nodes.
    pub nodes: usize,
    /// Which visibility engine performs the analysis.
    pub engine: EngineKind,
    /// Dynamic control replication: shard the analysis across nodes \[4\].
    pub dcr: bool,
    /// Cost model for the simulated machine.
    pub cost: CostModel,
    /// Check the §4 requirement-aliasing rule (and region/field validity)
    /// on every submission (on by default; benchmarks at large scales may
    /// disable it).
    pub validate_launches: bool,
    /// Worker threads for the sharded analysis driver: with more than one,
    /// a batch's per-(root, field) shard scans run concurrently. Defaults
    /// from `VIZ_ANALYSIS_THREADS` (else 1 = serial).
    pub analysis_threads: usize,
    /// Online automatic trace detection: watch the launch stream for
    /// repeated subsequences and replay them without `begin_trace`
    /// annotations. `enabled` defaults from `VIZ_AUTO_TRACE`.
    pub auto_trace: AutoTraceConfig,
    /// Pipelined submission: launches are validated on the application
    /// thread, pushed into a bounded queue, and analyzed by a dedicated
    /// driver thread — application, analysis, and (simulated) execution
    /// overlap. Results are byte-identical to the synchronous path.
    /// Defaults from `VIZ_PIPELINE`.
    pub pipeline: bool,
    /// Capacity of the submission queue (backpressure bound): a full
    /// queue blocks [`Runtime::submit`] until the driver catches up.
    /// In pipelined mode every submission ring gets this depth.
    pub pipeline_depth: usize,
    /// Number of per-context SPSC submission rings in the pipelined plane
    /// (PR 7). Ring 0 is claimed by the [`Runtime`] facade itself, so up
    /// to `submit_rings - 1` tenant [`Context`]s can be live at once
    /// ([`Runtime::new_context`] returns
    /// [`RuntimeError::RingsExhausted`] past that). Defaults from
    /// `VIZ_SUBMIT_RINGS` (else 8); ignored in synchronous mode.
    pub submit_rings: usize,
    /// Interning/memoization configuration for the engine's set algebra.
    /// `None` (the default) reads `VIZ_INTERN` / `VIZ_ALGEBRA_CACHE_CAP`
    /// from the environment; the differential tests pin it explicitly so
    /// both modes can run in one process.
    pub intern: Option<viz_geometry::InternConfig>,
    /// Candidate-resolution backend for the raycast K-d path (scalar
    /// per-query walk vs. flattened batched sweep). `None` (the default)
    /// reads `VIZ_VIS_BACKEND` / `VIZ_VIS_BATCH_MIN` from the environment;
    /// the differential tests pin it so both backends run in one process.
    pub visibility_backend: Option<VisibilityConfig>,
    /// Record the launch history (submitted requirements + emitted
    /// dependence edges + retirement order) for the external consistency
    /// oracle. Defaults from `VIZ_ORACLE`. Export with
    /// [`Runtime::recorded_history`].
    pub record_history: bool,
    /// History garbage collection + equivalence-set coarsening (see
    /// [`GcConfig`]). Defaults from `VIZ_GC` / `VIZ_GC_INTERVAL` /
    /// `VIZ_GC_RETAIN` / `VIZ_COARSEN`. With GC enabled the runtime
    /// retires per-task bookkeeping below a watermark, so whole-history
    /// operations ([`Runtime::execute_values`],
    /// [`Runtime::timed_schedule`]) panic once anything has retired —
    /// GC mode is for analysis streaming, not value execution.
    pub gc: GcConfig,
    /// Width (in task ids) of the ragged ancestor-bitset window backing
    /// O(1) [`TaskDag::must_follow`] answers; queries reaching below the
    /// window fall back to the exact graph walk. Defaults from
    /// `VIZ_TAG_WINDOW` (else [`crate::dag::DEFAULT_TAG_WINDOW`]).
    pub tag_window: u32,
    /// Dirty-shard scanning: GC sweeps visit only the (root, field) shards
    /// touched since the last sweep, with a full sweep every
    /// [`crate::analysis::FULL_SWEEP_PERIOD`]-th collection as the
    /// watermark-retirement backstop. Behavior-preserving (the differential
    /// suite pins dirty-on == dirty-off); on by default, `VIZ_DIRTY_SHARDS=0`
    /// disables.
    pub dirty_shards: bool,
}

const DEFAULT_PIPELINE_DEPTH: usize = 256;
pub(crate) const DEFAULT_SUBMIT_RINGS: usize = 8;

/// The context id of the [`Runtime`] facade's own submission stream.
pub const CTX_PRIMARY: u32 = 0;

/// The pseudo context id recorded on *global* fences ([`Runtime::fence`]),
/// which order after every context's launches. Scoped fences
/// ([`Context::fence`]) carry their own context id instead. Real context
/// ids are allocated from [`CTX_PRIMARY`] upward and never reach this.
pub const CTX_GLOBAL: u32 = u32::MAX;

impl RuntimeConfig {
    /// The standard constructor: built-in defaults with the captured
    /// `VIZ_*` environment applied on top ([`crate::config::EnvOverrides`]).
    /// Builder setters run after and therefore win.
    pub fn new(engine: EngineKind) -> Self {
        crate::config::EnvOverrides::capture().apply(Self::base(engine))
    }

    /// Explicit alias for [`RuntimeConfig::new`], for call sites that want
    /// to spell out that the environment participates.
    pub fn from_env(engine: EngineKind) -> Self {
        Self::new(engine)
    }

    /// The pure built-in defaults — the environment is *not* consulted.
    /// Hermetic tests and the config-precedence suite start here.
    pub fn base(engine: EngineKind) -> Self {
        RuntimeConfig {
            nodes: 1,
            engine,
            dcr: false,
            cost: CostModel::default(),
            validate_launches: true,
            analysis_threads: 1,
            auto_trace: AutoTraceConfig::default(),
            pipeline: false,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            submit_rings: DEFAULT_SUBMIT_RINGS,
            intern: None,
            visibility_backend: None,
            record_history: false,
            gc: GcConfig::default(),
            tag_window: crate::dag::DEFAULT_TAG_WINDOW,
            dirty_shards: true,
        }
    }

    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    pub fn dcr(mut self, dcr: bool) -> Self {
        self.dcr = dcr;
        self
    }

    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    pub fn validate(mut self, v: bool) -> Self {
        self.validate_launches = v;
        self
    }

    // --------------------------------------------------------------
    // Execution strategy (env-var parity documented on the type)
    // --------------------------------------------------------------

    pub fn analysis_threads(mut self, n: usize) -> Self {
        self.analysis_threads = n.max(1);
        self
    }

    /// Toggle online automatic trace detection.
    pub fn auto_trace(mut self, on: bool) -> Self {
        self.auto_trace.enabled = on;
        self
    }

    /// Full auto-tracer tuning (promotion length bounds, confidence).
    /// Replaces the individual `auto_trace_*` setters.
    pub fn auto_trace_config(mut self, cfg: AutoTraceConfig) -> Self {
        self.auto_trace = cfg;
        self
    }

    /// Toggle the pipelined submission frontend.
    pub fn pipeline(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }

    /// Submission-queue capacity (backpressure bound, min 1).
    pub fn pipeline_depth(mut self, n: usize) -> Self {
        self.pipeline_depth = n.max(1);
        self
    }

    /// Submission rings in the pipelined plane (min 2: the facade's ring
    /// plus at least one for tenant contexts).
    pub fn submit_rings(mut self, n: usize) -> Self {
        self.submit_rings = n.max(2);
        self
    }

    /// Pin the engine's interning configuration instead of reading
    /// `VIZ_INTERN` / `VIZ_ALGEBRA_CACHE_CAP` from the environment.
    pub fn intern(mut self, cfg: viz_geometry::InternConfig) -> Self {
        self.intern = Some(cfg);
        self
    }

    /// Pin the raycast candidate-resolution backend instead of reading
    /// `VIZ_VIS_BACKEND` / `VIZ_VIS_BATCH_MIN` from the environment.
    pub fn visibility_backend(mut self, cfg: VisibilityConfig) -> Self {
        self.visibility_backend = Some(cfg);
        self
    }

    /// Toggle launch-history recording for the consistency oracle.
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Toggle history garbage collection (retire per-task bookkeeping and
    /// dead engine state below the watermark).
    pub fn history_gc(mut self, on: bool) -> Self {
        self.gc.enabled = on;
        self
    }

    /// Launches between collection sweeps (min 1).
    pub fn gc_interval(mut self, n: u32) -> Self {
        self.gc.interval = n.max(1);
        self
    }

    /// Launches kept below the frontier at each sweep — the unretired
    /// window readers may still address.
    pub fn gc_retain(mut self, n: u32) -> Self {
        self.gc.retain = n;
        self
    }

    /// Toggle equivalence-set coarsening (merge sibling sets whose
    /// per-field states re-converged — the inverse of refinement).
    pub fn coarsen(mut self, on: bool) -> Self {
        self.gc.coarsen = on;
        self
    }

    /// Pin the whole GC block at once.
    pub fn gc_config(mut self, cfg: GcConfig) -> Self {
        self.gc = cfg;
        self
    }

    /// Width of the DAG's ancestor-tag window (clamped to at least 64).
    pub fn tag_window(mut self, w: u32) -> Self {
        self.tag_window = w.max(64);
        self
    }

    /// Toggle dirty-shard scanning for GC sweeps (on by default).
    pub fn dirty_shards(mut self, on: bool) -> Self {
        self.dirty_shards = on;
        self
    }
}

/// One deferred launch, as data: the unit of the submission queue and of
/// [`Runtime::submit_batch`]. Construct with [`LaunchSpec::new`] or the
/// [`LaunchBuilder`] sugar (`#[non_exhaustive]`: fields may grow).
#[non_exhaustive]
pub struct LaunchSpec {
    pub name: String,
    pub node: NodeId,
    pub reqs: Vec<RegionRequirement>,
    pub duration_ns: u64,
    pub body: Option<TaskBody>,
}

impl LaunchSpec {
    pub fn new(
        name: impl Into<String>,
        node: NodeId,
        reqs: Vec<RegionRequirement>,
        duration_ns: u64,
        body: Option<TaskBody>,
    ) -> Self {
        LaunchSpec {
            name: name.into(),
            node,
            reqs,
            duration_ns,
            body,
        }
    }
}

/// A lightweight receipt for a submitted launch.
///
/// Task ids are assigned in program order, so while the [`Runtime`]
/// facade is the *only* producer (no live [`Context`]s — the common case)
/// the handle's [`TaskId`] is fixed at submission time and
/// [`TaskHandle::id`] is free and exact even while the launch is still
/// queued. Once tenant contexts submit concurrently, global ids reflect
/// the dispatcher's commit interleaving: use [`Runtime::resolve`] /
/// [`Runtime::try_resolve`], which block until the launch's analysis has
/// committed (dependences, plan, and simulated clocks are final) and
/// return the id actually assigned.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TaskHandle {
    seq: u32,
}

impl TaskHandle {
    /// The task id this submission was (or will be) assigned, assuming
    /// the facade is the runtime's only producer (exact whenever no
    /// [`Context`] has been created; otherwise prefer
    /// [`Runtime::resolve`]).
    pub fn id(self) -> TaskId {
        TaskId(self.seq)
    }

    pub fn index(self) -> usize {
        self.seq as usize
    }
}

type InitFn = Arc<dyn Fn(Point) -> Value + Send + Sync>;

/// Everything the analysis driver owns: engine, simulated machine, shard
/// map, tracing state machine, and the per-task bookkeeping. All mutation
/// of analysis state funnels through [`Core::run_specs`] / [`Core::fence`]
/// so the synchronous and pipelined frontends share one code path.
pub(crate) struct Core {
    pub(crate) engine: Box<dyn CoherenceEngine>,
    pub(crate) machine: Machine,
    pub(crate) shards: ShardMap,
    /// Per-task commit bookkeeping (launches, bodies, stored results,
    /// analysis-completion times) with a GC watermark.
    pub(crate) ledger: Ledger,
    pub(crate) dag: TaskDag,
    pub(crate) tracing: Tracing,
    pub(crate) analysis_threads: usize,
    /// Launch-history recording for the consistency oracle (`None` when
    /// [`RuntimeConfig::record_history`] is off — zero cost).
    pub(crate) recorder: Option<HistoryRecorder>,
    pub(crate) gc: GcState,
}

/// Collection bookkeeping: configuration plus running counters, surfaced
/// through [`crate::stats::GcStats`].
pub(crate) struct GcState {
    pub(crate) cfg: GcConfig,
    /// Next launch count at which a sweep runs (amortizes the check to a
    /// compare per `run_specs` call).
    next_due: u32,
    pub(crate) collections: u64,
    /// Sweeps whose floor was clamped by trace pinning.
    pub(crate) pins: u64,
    pub(crate) retired_launches: u64,
    pub(crate) tag_words_freed: u64,
    pub(crate) sweep: GcSweep,
}

impl GcState {
    fn new(cfg: GcConfig) -> Self {
        GcState {
            next_due: cfg.interval.max(1),
            cfg,
            collections: 0,
            pins: 0,
            retired_launches: 0,
            tag_words_freed: 0,
            sweep: GcSweep::default(),
        }
    }
}

impl Core {
    /// Analyze one launch through the serial path (the operation the paper
    /// measures). Requirements are assumed validated by the facade.
    /// `ctx` is the submitting context, recorded for the oracle.
    fn launch_one(&mut self, ctx: u32, spec: LaunchSpec, forest: &RegionForest) -> TaskId {
        let id = TaskId(self.ledger.next_id());
        let launch = TaskLaunch {
            id,
            name: spec.name,
            node: spec.node % self.shards.nodes(),
            reqs: spec.reqs,
            duration_ns: spec.duration_ns,
        };
        let origin = self.shards.origin(launch.node);
        let mut action = self.tracing.on_launch(launch.node, &launch.reqs, id.0);
        if let TraceAction::Violation(v) = action {
            // The prediction diverged: demote (annotated traces fall back
            // to normal analysis and recapture; auto traces return to
            // observation) — never abort.
            self.tracing.demote(v);
            action = self.tracing.on_launch(launch.node, &launch.reqs, id.0);
        }
        let stored = match action {
            TraceAction::Replay { result, shift } => {
                // Dynamic tracing [15]: the recorded analysis is reused —
                // only a template lookup is paid, not the visibility
                // algorithm. The shared result is *not* cloned; the
                // instance's shift is applied lazily by readers.
                self.machine.op(origin, viz_sim::Op::Memo);
                self.ledger.push_done(self.machine.now(origin));
                let deps: Vec<TaskId> = result.deps.iter().map(|d| shift.apply(*d)).collect();
                if let Some(rec) = &mut self.recorder {
                    rec.commit(
                        ctx,
                        id,
                        &launch.name,
                        launch.node,
                        &launch.reqs,
                        &deps,
                        true,
                        false,
                    );
                }
                self.dag.push(deps);
                StoredResult::Shared { result, shift }
            }
            TraceAction::Analyze { record } => {
                // First-touch ownership of analysis state.
                for req in &launch.reqs {
                    self.shards.touch(req.region, launch.node, id.0);
                }
                let engine_name = self.engine.name();
                let host_span = viz_profile::span(engine_name);
                let sim_start = self.machine.now(origin);
                let mut actx = AnalysisCtx {
                    forest,
                    machine: &mut self.machine,
                    shards: &self.shards,
                };
                let mut result = self.engine.analyze(&launch, &mut actx);
                drop(host_span);
                if viz_profile::enabled() {
                    let sim_end = self.machine.now(origin);
                    viz_profile::sim_event(
                        sim_start,
                        sim_end.saturating_sub(sim_start),
                        viz_profile::Track::SimProgram {
                            node: origin as u32,
                        },
                        viz_profile::EventKind::LaunchAnalyzed {
                            engine: engine_name,
                            task: id.0 as u64,
                        },
                    );
                }
                // Stale references into a recorded-and-replayed instance
                // move onto its latest replay.
                self.tracing.rebase_result(&mut result);
                self.ledger.push_done(self.machine.now(origin));
                if let Some(rec) = &mut self.recorder {
                    rec.commit(
                        ctx,
                        id,
                        &launch.name,
                        launch.node,
                        &launch.reqs,
                        &result.deps,
                        false,
                        false,
                    );
                }
                self.dag.push(result.deps.clone());
                if record {
                    // Capturing: the template shares the result with the
                    // runtime's own storage (identity shift) — no clone.
                    let result = Arc::new(result);
                    self.tracing.record(
                        launch.node,
                        launch.reqs.clone(),
                        Arc::clone(&result),
                        forest,
                    );
                    StoredResult::Shared {
                        result,
                        shift: TaskShift::IDENTITY,
                    }
                } else {
                    self.tracing.advance();
                    StoredResult::Owned(result)
                }
            }
            TraceAction::Violation(_) => unreachable!("demotion resolves violations"),
        };
        self.ledger.push_result(stored);
        self.ledger.push_launch(launch, spec.body);
        id
    }

    /// Run a sequence of launches, segmented between the serial path
    /// (trace warm-up/capture/replay, or `analysis_threads <= 1`) and the
    /// sharded scan pipeline — semantically identical to analyzing each
    /// spec in order; dependences, plans, simulated clocks, and counters
    /// come out byte-for-byte the same. Both the synchronous frontend and
    /// the pipeline driver call exactly this, so chunk boundaries (how
    /// many specs the driver drains per wakeup) cannot affect results.
    pub(crate) fn run_specs(
        &mut self,
        ctx: u32,
        items: Vec<LaunchSpec>,
        forest: &RegionForest,
    ) -> Vec<TaskId> {
        let mut ids = Vec::with_capacity(items.len());
        let mut items: VecDeque<LaunchSpec> = items.into();
        while !items.is_empty() {
            if self.analysis_threads <= 1 || items.len() == 1 {
                for s in items.drain(..) {
                    ids.push(self.launch_one(ctx, s, forest));
                }
                break;
            }
            if self.tracing.pending_or_active() {
                // Trace segment: replay drains launches in bulk (O(1)
                // each: validate, charge the memo op, retire the shared
                // result); warm-up/capture launches analyze in order. A
                // demotion mid-segment drops back out and re-shards the
                // remainder of the batch.
                while !items.is_empty() && self.tracing.pending_or_active() {
                    let s = items.pop_front().unwrap();
                    ids.push(self.launch_one(ctx, s, forest));
                }
                continue;
            }
            ids.extend(self.run_batch_sharded(ctx, &mut items, forest));
        }
        self.maybe_collect();
        ids
    }

    /// Run a collection sweep if the watermark interval has elapsed:
    /// reclaim dead engine state, then retire ledger entries and DAG tag
    /// rows below `next_id - retain` (clamped by trace pinning). Called at
    /// the quiescent points of both frontends (`run_specs`,
    /// `fence_scoped`), so the pipelined and synchronous paths collect at
    /// the same launch counts.
    fn maybe_collect(&mut self) {
        if !self.gc.cfg.enabled && !self.gc.cfg.coarsen {
            return;
        }
        let next = self.ledger.next_id();
        if next < self.gc.next_due {
            return;
        }
        self.gc.next_due = next + self.gc.cfg.interval.max(1);
        self.gc.collections += 1;
        let mut floor = if self.gc.cfg.enabled {
            next.saturating_sub(self.gc.cfg.retain)
        } else {
            0
        };
        // Tracing-aware pinning: an in-flight instance (or a pending auto
        // capture) keeps everything from its base launch alive — the
        // template's footprint survives as long as it replays.
        if let Some(pin) = self.tracing.pin_floor() {
            if pin < floor {
                self.gc.pins += 1;
                floor = pin;
            }
        }
        // Engines reclaim *unreachable* state (superseded equivalence
        // sets, dead composite chains) — reachability-based, so the sweep
        // is behavior-preserving by construction; `floor` only gates the
        // ledger and tag rows below.
        let sweep = self.engine.collect(TaskId(floor));
        self.gc.sweep += sweep;
        let mut freed_words = 0u64;
        let mut retired = 0u64;
        if self.gc.cfg.enabled && floor > self.ledger.base() {
            freed_words = self.dag.retire_to(TaskId(floor)) as u64;
            retired = self.ledger.retire_to(floor) as u64;
            self.gc.tag_words_freed += freed_words;
            self.gc.retired_launches += retired;
        }
        if viz_profile::enabled() {
            let origin = self.shards.origin(0);
            viz_profile::sim_event(
                self.machine.now(origin),
                0,
                viz_profile::Track::SimProgram {
                    node: origin as u32,
                },
                viz_profile::EventKind::GcSweep {
                    watermark: self.ledger.base() as u64,
                    retired,
                    freed_words,
                    dropped: sweep.total() as u64,
                    coarsened: sweep.coarsen_merges as u64,
                },
            );
        }
    }

    /// The sharded scan pipeline over the untraced prefix of `items`:
    /// stops early (after the detection point) when the auto-tracer
    /// promotes a repeat, leaving the rest for the caller to re-dispatch.
    fn run_batch_sharded(
        &mut self,
        ctx: u32,
        items: &mut VecDeque<LaunchSpec>,
        forest: &RegionForest,
    ) -> Vec<TaskId> {
        let base = self.ledger.next_id();
        let mut batch: Vec<TaskLaunch> = Vec::with_capacity(items.len());
        let mut batch_bodies: Vec<Option<TaskBody>> = Vec::with_capacity(items.len());
        let mut groups: Vec<Vec<(crate::analysis::ShardKey, Vec<u32>)>> =
            Vec::with_capacity(items.len());
        // Phase A (driver thread): assign ids, feed the auto-trace
        // detector, first-touch the shard map, and let the engine create
        // missing shard state. The grouping depends only on the region
        // forest, so the whole segment can be prepared before any scan
        // runs.
        while let Some(spec) = items.pop_front() {
            let launch = TaskLaunch {
                id: TaskId(base + batch.len() as u32),
                name: spec.name,
                node: spec.node % self.shards.nodes(),
                reqs: spec.reqs,
                duration_ns: spec.duration_ns,
            };
            // Outside traces this only updates detector state and returns
            // `Analyze { record: false }` — the same call the serial
            // driver makes, at the same position in the launch stream.
            match self
                .tracing
                .on_launch(launch.node, &launch.reqs, launch.id.0)
            {
                TraceAction::Analyze { record: false } => {}
                _ => unreachable!("untraced segment launches analyze without recording"),
            }
            for req in &launch.reqs {
                self.shards.touch(req.region, launch.node, launch.id.0);
            }
            groups.push(self.engine.prepare(
                &launch,
                &crate::engine::ShardCtx {
                    forest,
                    shards: &self.shards,
                },
            ));
            batch.push(launch);
            batch_bodies.push(spec.body);
            if self.tracing.capture_pending() {
                // A repeat was just detected: capture starts with the next
                // launch, which must go through the trace machinery.
                break;
            }
        }
        let count = batch.len();
        // Phase B (workers) + C (pipelined commit on this thread). Borrows
        // split per field: workers read the engine/forest/shard map; the
        // retire closure replays charges and grows the bookkeeping.
        {
            let engine: &dyn CoherenceEngine = &*self.engine;
            let shards = &self.shards;
            let machine = &mut self.machine;
            let ledger = &mut self.ledger;
            let dag = &mut self.dag;
            let tracing = &self.tracing;
            let recorder = &mut self.recorder;
            let batch_ref = &batch;
            crate::exec::scan_batch(
                engine,
                forest,
                shards,
                batch_ref,
                &groups,
                self.analysis_threads,
                |i, outcomes| {
                    // Exactly the serial per-launch charge sequence:
                    // overhead at the origin, then every scan log in
                    // requirement order, then every commit log.
                    let launch = &batch_ref[i];
                    let origin = shards.origin(launch.node);
                    let sim_start = machine.now(origin);
                    machine.op(origin, viz_sim::Op::LaunchOverhead);
                    let mut result = crate::engine::assemble_outcomes(launch, outcomes, machine);
                    if viz_profile::enabled() {
                        let sim_end = machine.now(origin);
                        viz_profile::sim_event(
                            sim_start,
                            sim_end.saturating_sub(sim_start),
                            viz_profile::Track::SimProgram {
                                node: origin as u32,
                            },
                            viz_profile::EventKind::LaunchAnalyzed {
                                engine: engine.name(),
                                task: launch.id.0 as u64,
                            },
                        );
                    }
                    tracing.rebase_result(&mut result);
                    ledger.push_done(machine.now(origin));
                    if let Some(rec) = recorder.as_mut() {
                        rec.commit(
                            ctx,
                            launch.id,
                            &launch.name,
                            launch.node,
                            &launch.reqs,
                            &result.deps,
                            false,
                            false,
                        );
                    }
                    dag.push(result.deps.clone());
                    ledger.push_result(StoredResult::Owned(result));
                },
            );
        }
        self.ledger.append_launches(&mut batch, &mut batch_bodies);
        (0..count as u32).map(|k| TaskId(base + k)).collect()
    }

    /// The global fence construction (see [`Runtime::fence`]): ordered
    /// after every launch committed so far, from every context.
    fn fence(&mut self) -> TaskId {
        let deps: Vec<TaskId> = (0..self.ledger.next_id()).map(TaskId).collect();
        self.fence_scoped(CTX_GLOBAL, deps)
    }

    /// A fence ordered after an explicit predecessor set — the scoped
    /// variant [`Context::fence`] uses with its own committed launches.
    /// `deps` must be sorted ascending (ids in commit order are).
    pub(crate) fn fence_scoped(&mut self, ctx: u32, deps: Vec<TaskId>) -> TaskId {
        // Fences are not analyzed launches: they interrupt any in-flight
        // trace instance and break detected periodicity. Scoped fences do
        // this too — conservative, but it keeps trace capture linear.
        self.tracing.barrier();
        let id = TaskId(self.ledger.next_id());
        let origin = self.shards.origin(0);
        self.machine.op(origin, viz_sim::Op::LaunchOverhead);
        self.ledger.push_done(self.machine.now(origin));
        if let Some(rec) = &mut self.recorder {
            rec.commit(ctx, id, "fence", 0, &[], &deps, false, true);
        }
        self.dag.push(deps.clone());
        self.ledger.push_result(StoredResult::Owned(AnalysisResult {
            deps,
            plans: Vec::new(),
        }));
        self.ledger.push_launch(
            TaskLaunch {
                id,
                name: "fence".into(),
                node: 0,
                reqs: Vec::new(),
                duration_ns: 0,
            },
            None,
        );
        self.maybe_collect();
        id
    }
}

/// Validate one submission against the forest: every region and field must
/// exist, and §4 requires region arguments of one task to have disjoint
/// domains unless both are read-only or both reduce with the same
/// operator.
fn validate_spec(forest: &RegionForest, reqs: &[RegionRequirement]) -> Result<(), RuntimeError> {
    for r in reqs {
        if r.region.0 as usize >= forest.num_regions() {
            return Err(RuntimeError::UnknownRegion { region: r.region });
        }
        if !forest.fields_of(r.region).contains(&r.field) {
            return Err(RuntimeError::UnknownField {
                region: r.region,
                field: r.field,
            });
        }
    }
    for (i, a) in reqs.iter().enumerate() {
        for b in &reqs[i + 1..] {
            if a.field != b.field || forest.root_of(a.region) != forest.root_of(b.region) {
                continue;
            }
            let compatible = matches!(
                (a.privilege, b.privilege),
                (Privilege::Read, Privilege::Read)
            ) || matches!(
                (a.privilege, b.privilege),
                (Privilege::Reduce(f), Privilege::Reduce(g)) if f == g
            );
            if !compatible && forest.domain(a.region).overlaps(forest.domain(b.region)) {
                return Err(RuntimeError::InterferingRequirements {
                    a: a.region,
                    b: b.region,
                    privilege_a: a.privilege,
                    privilege_b: b.privilege,
                });
            }
        }
    }
    Ok(())
}

/// A Legion-style runtime: submissions are analyzed eagerly (the dynamic
/// dependence/coherence analysis is the subject of the paper) — either
/// inline on the calling thread, or concurrently on a pipeline driver
/// thread when [`RuntimeConfig::pipeline`] is set; execution is deferred
/// to [`Runtime::execute_values`] (real values, worker threads) or
/// [`Runtime::timed_schedule`] (simulated time at machine scale).
///
/// # Drain points
///
/// In pipelined mode, operations that must observe (or mutate) committed
/// analysis state first wait for the submission queue to drain:
/// [`Runtime::fence`], [`Runtime::try_begin_trace`] /
/// [`Runtime::try_end_trace`], [`Runtime::forest_mut`],
/// [`Runtime::execute_values`], [`Runtime::timed_schedule`],
/// [`Runtime::flush`], [`Runtime::resolve`], and every introspection
/// accessor ([`Runtime::dag`], [`Runtime::launches`],
/// [`Runtime::results`], [`Runtime::machine`], trace statistics, ...).
/// Submissions themselves ([`Runtime::submit`], [`Runtime::submit_batch`],
/// [`Runtime::inline_read`], [`LaunchBuilder::submit`]) never drain —
/// they only block on queue backpressure. Dropping a `Runtime` drains
/// too: queued launches are never lost.
pub struct Runtime {
    forest: Arc<RwLock<RegionForest>>,
    redops: RedOpRegistry,
    initial: FxHashMap<(RegionId, FieldId), InitFn>,
    core: Arc<RwLock<Core>>,
    pipeline: Option<Pipeline>,
    validate_launches: bool,
    nodes: usize,
    /// Task ids handed out by this facade so far (submissions + fences).
    /// While the facade is the only producer, program order == id order,
    /// which is what makes [`TaskHandle::id`] exact.
    submitted: u32,
    /// The facade's own context bookkeeping (ring 0 of the submission
    /// plane in pipelined mode; inline commits in synchronous mode).
    primary: Arc<CtxState>,
    /// Next tenant context id ([`CTX_PRIMARY`] + 1 and up). Stays at its
    /// initial value iff no [`Context`] was ever created — the condition
    /// under which facade handles resolve to their submission sequence.
    next_ctx: AtomicU32,
}

impl Runtime {
    pub fn new(config: RuntimeConfig) -> Self {
        let forest = Arc::new(RwLock::new(RegionForest::new()));
        // `RuntimeConfig::new` already applied the environment; `None`
        // here only means "neither the env nor a setter pinned it".
        let mut engine = config.engine.build_configured(
            config.intern.unwrap_or_default(),
            config.visibility_backend.unwrap_or_default(),
        );
        engine.set_coarsening(config.gc.coarsen);
        engine.set_dirty_tracking(config.dirty_shards);
        let core = Arc::new(RwLock::new(Core {
            engine,
            machine: Machine::with_cost(config.nodes, config.cost),
            shards: ShardMap::new(config.nodes, config.dcr),
            ledger: Ledger::new(),
            dag: TaskDag::with_window(config.tag_window),
            tracing: Tracing::new(
                config
                    .auto_trace
                    .enabled
                    .then(|| AutoTracer::new(&config.auto_trace)),
            ),
            analysis_threads: config.analysis_threads,
            recorder: config.record_history.then(HistoryRecorder::new),
            gc: GcState::new(config.gc),
        }));
        let pipeline = config.pipeline.then(|| {
            Pipeline::spawn(
                Arc::clone(&core),
                Arc::clone(&forest),
                config.pipeline_depth,
                config.submit_rings.max(2),
            )
        });
        let primary = pipeline
            .as_ref()
            .map(|p| Arc::clone(p.primary()))
            .unwrap_or_else(|| CtxState::new(CTX_PRIMARY));
        Runtime {
            forest,
            redops: RedOpRegistry::new(),
            initial: FxHashMap::default(),
            core,
            pipeline,
            validate_launches: config.validate_launches,
            nodes: config.nodes,
            submitted: 0,
            primary,
            next_ctx: AtomicU32::new(CTX_PRIMARY + 1),
        }
    }

    /// Shorthand: single node, no DCR.
    pub fn single_node(engine: EngineKind) -> Self {
        Self::new(RuntimeConfig::new(engine))
    }

    /// A runtime with a custom engine instance (used by the ablation
    /// benches for engine variants like `Warnock::without_memoization`).
    pub fn with_engine(config: RuntimeConfig, engine: Box<dyn CoherenceEngine>) -> Self {
        let rt = Self::new(config);
        rt.core.write().unwrap().engine = engine;
        rt
    }

    /// Wait until every submission ring has fully drained (no-op in
    /// synchronous mode). Panics if the dispatcher died — accessors that
    /// need committed state cannot return it; use the fallible submission
    /// API ([`Runtime::submit`] returns
    /// [`RuntimeError::DriverPanicked`]) to observe the failure as a value.
    fn drain(&self) {
        if let Some(p) = &self.pipeline {
            if let Err(e) = p.drain() {
                panic!("{e}");
            }
        }
    }

    /// Has any [`Context`] ever been created? (If not, facade handles map
    /// to their submission sequence and `debug_assert`s pin that.)
    fn multi_producer(&self) -> bool {
        self.next_ctx.load(Ordering::Acquire) != CTX_PRIMARY + 1
    }

    /// Forest read access for the submit path: a poisoned lock (a panic on
    /// the driver or a worker) becomes a typed error instead of a second
    /// panic on the application thread.
    fn forest_read(&self) -> Result<RwLockReadGuard<'_, RegionForest>, RuntimeError> {
        self.forest.read().map_err(|_| RuntimeError::Poisoned {
            what: "region forest",
        })
    }

    /// Core write access for the commit path, same poisoning contract.
    fn core_write(&self) -> Result<RwLockWriteGuard<'_, Core>, RuntimeError> {
        self.core
            .write()
            .map_err(|_| RuntimeError::Poisoned { what: "core" })
    }

    // ------------------------------------------------------------------
    // Region model access
    // ------------------------------------------------------------------

    /// Read access to the region forest. Does *not* drain the pipeline:
    /// the driver never mutates the forest, so reads (subregion lookups
    /// while building the next wave) stay concurrent with analysis.
    pub fn forest(&self) -> RwLockReadGuard<'_, RegionForest> {
        self.forest.read().unwrap()
    }

    /// Region trees may be extended at any point between launches — the
    /// analyses are fully dynamic. Drains the pipeline first so already
    /// queued launches are analyzed against the forest they were
    /// submitted under.
    pub fn forest_mut(&mut self) -> RwLockWriteGuard<'_, RegionForest> {
        self.drain();
        self.forest.write().unwrap()
    }

    pub fn redops(&self) -> &RedOpRegistry {
        &self.redops
    }

    pub fn redops_mut(&mut self) -> &mut RedOpRegistry {
        &mut self.redops
    }

    /// Provide initial contents for a root region's field (defaults to 0.0
    /// everywhere). Corresponds to the `[⟨read-write, A⟩]` initial history
    /// entry of §5.
    pub fn try_set_initial(
        &mut self,
        root: RegionId,
        field: FieldId,
        f: impl Fn(Point) -> Value + Send + Sync + 'static,
    ) -> Result<(), RuntimeError> {
        {
            let forest = self.forest_read()?;
            if root.0 as usize >= forest.num_regions() {
                return Err(RuntimeError::UnknownRegion { region: root });
            }
            if !forest.fields_of(root).contains(&field) {
                return Err(RuntimeError::UnknownField {
                    region: root,
                    field,
                });
            }
        }
        self.initial.insert((root, field), Arc::new(f));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Submission
    // ------------------------------------------------------------------

    /// Submit one launch: the single entry point every other submission
    /// spelling ([`Runtime::submit_batch`], [`LaunchBuilder`],
    /// [`Runtime::inline_read`], index launches) is sugar over. The spec
    /// is validated and snapshotted on the calling thread; analysis runs
    /// inline (synchronous mode) or on the pipeline driver. Never drains;
    /// blocks only on queue backpressure.
    pub fn submit(&mut self, spec: LaunchSpec) -> Result<TaskHandle, RuntimeError> {
        if self.validate_launches {
            let forest = self.forest_read()?;
            validate_spec(&forest, &spec.reqs)?;
        }
        let seq = self.submitted;
        match &self.pipeline {
            Some(p) => p.enqueue(spec)?,
            None => {
                let forest = self.forest_read()?;
                // Single-item run_specs rather than launch_one directly so the
                // GC hook at the end of run_specs covers every launch path.
                let ids = self
                    .core_write()?
                    .run_specs(CTX_PRIMARY, vec![spec], &forest);
                let id = ids[0];
                self.primary.record_inline(id);
                debug_assert!(self.multi_producer() || id.0 == seq);
            }
        }
        self.submitted = seq + 1;
        Ok(TaskHandle { seq })
    }

    /// Submit a batch. Validation is atomic: every spec is checked before
    /// any is enqueued, so an `Err` leaves the runtime unchanged. With
    /// `analysis_threads > 1` the batch's per-(root, field) visibility
    /// scans run concurrently on the sharded driver — byte-identical to
    /// submitting each spec in order.
    pub fn submit_batch(
        &mut self,
        specs: Vec<LaunchSpec>,
    ) -> Result<Vec<TaskHandle>, RuntimeError> {
        if self.validate_launches {
            let forest = self.forest_read()?;
            for s in &specs {
                validate_spec(&forest, &s.reqs)?;
            }
        }
        let base = self.submitted;
        let n = specs.len() as u32;
        match &self.pipeline {
            Some(p) => p.enqueue_all(specs)?,
            None => {
                let forest = self.forest_read()?;
                let ids = self.core_write()?.run_specs(CTX_PRIMARY, specs, &forest);
                for id in ids {
                    self.primary.record_inline(id);
                }
            }
        }
        self.submitted = base + n;
        Ok((0..n).map(|k| TaskHandle { seq: base + k }).collect())
    }

    /// Start building a launch: `rt.task("flux").on(2).read(r, f).submit()`.
    pub fn task(&mut self, name: impl Into<String>) -> LaunchBuilder<'_> {
        LaunchBuilder {
            rt: self,
            spec: LaunchSpec::new(name, 0, Vec::new(), 0, None),
        }
    }

    /// Resolve a handle at a sync point: blocks until the launch's
    /// analysis has committed, then returns the [`TaskId`] it was actually
    /// assigned. Panics if the dispatcher died or the call would
    /// self-deadlock — use [`Runtime::try_resolve`] for the fallible form.
    pub fn resolve(&self, handle: TaskHandle) -> TaskId {
        match self.try_resolve(handle) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Runtime::resolve`].
    ///
    /// Errors instead of blocking forever in two cases:
    /// [`RuntimeError::DriverPanicked`] when the dispatcher has died with
    /// the launch unanalyzed, and [`RuntimeError::WouldDeadlock`] when
    /// called from *inside* a runtime worker (the pipeline dispatcher or a
    /// value-executor task body) on a launch that has not committed yet —
    /// such a wait can never be satisfied, because the waiter is the
    /// thread that would have to make the progress (the executor holds the
    /// core read lock the dispatcher needs for the rest of the run).
    pub fn try_resolve(&self, handle: TaskHandle) -> Result<TaskId, RuntimeError> {
        if let Some(id) = self.primary.try_id(handle.seq) {
            return Ok(id);
        }
        if crate::pipeline::in_worker() {
            return Err(RuntimeError::WouldDeadlock);
        }
        match &self.pipeline {
            Some(p) => {
                p.wait_committed(handle.seq as u64 + 1)?;
                Ok(self
                    .primary
                    .try_id(handle.seq)
                    .expect("committed launches have assigned ids"))
            }
            // Synchronous mode commits inline, so an unknown seq can only
            // be a handle that was never issued by this runtime.
            None => panic!("resolve of a handle this runtime never issued"),
        }
    }

    /// Drain the submission queue: on return, every launch submitted so
    /// far has been analyzed and retired in program order. No-op in
    /// synchronous mode. Propagates a driver panic, if any.
    pub fn flush(&self) {
        self.drain();
    }

    /// Metrics for the pipelined frontend (`None` in synchronous mode).
    /// The handle stays valid after the runtime is dropped — tests use it
    /// to assert the drop-flush contract.
    pub fn pipeline_metrics(&self) -> Option<PipelineMetrics> {
        self.pipeline.as_ref().map(|p| p.metrics())
    }

    /// Is the pipelined frontend active?
    pub fn pipelined(&self) -> bool {
        self.pipeline.is_some()
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Begin a trace (dynamic tracing, \[15\]): the launches up to the
    /// matching [`Runtime::try_end_trace`] form one instance of a
    /// repetitive sequence. The first instance warms the analysis up, the
    /// second is recorded, and identical contiguous instances from the
    /// third onward are *replayed* without running the visibility engine.
    /// A drain point: queued launches commit before the marker is placed.
    pub fn try_begin_trace(&mut self, id: u32) -> Result<(), RuntimeError> {
        self.drain();
        let mut core = self.core.write().unwrap();
        let next = core.ledger.next_id();
        core.tracing.begin(TraceId(id), next)
    }

    /// End the current trace instance. A replay that ran short of the
    /// recorded instance is reported (and the trace recaptures); it is
    /// not an abort. Trace misnesting (no trace open, or a different id)
    /// is a [`RuntimeError`]. A drain point.
    pub fn try_end_trace(&mut self, id: u32) -> Result<Option<TraceViolation>, RuntimeError> {
        self.drain();
        let forest = self.forest.read().unwrap();
        let mut core = self.core.write().unwrap();
        let next = core.ledger.next_id();
        core.tracing.end(TraceId(id), next, &forest)
    }

    /// Is the runtime currently replaying a recorded trace?
    pub fn is_replaying(&self) -> bool {
        self.drain();
        self.core.read().unwrap().tracing.is_replaying()
    }

    /// Inside a trace (manual or auto, any phase: warming, capturing, or
    /// replaying)?
    pub fn in_trace(&self) -> bool {
        self.drain();
        self.core.read().unwrap().tracing.in_trace()
    }

    /// Launches whose analysis was synthesized from a trace template.
    pub fn replayed_launches(&self) -> u64 {
        self.drain();
        self.core.read().unwrap().tracing.replayed_launches
    }

    /// The address of the shared template result backing task `t`, if `t`
    /// was captured into or replayed from a trace (`None` for ordinary
    /// analyzed launches). Benchmarks use pointer identity to prove the
    /// replay path shares one allocation per template entry instead of
    /// deep-cloning the `AnalysisResult`.
    pub fn shared_result_addr(&self, t: TaskId) -> Option<usize> {
        self.drain();
        match self.core.read().unwrap().ledger.result(t) {
            StoredResult::Shared { result, .. } => Some(Arc::as_ptr(result) as usize),
            StoredResult::Owned(_) => None,
        }
    }

    /// Repeats promoted by the auto-tracer so far.
    pub fn auto_traces_detected(&self) -> u64 {
        self.drain();
        self.core.read().unwrap().tracing.auto_promotions
    }

    /// Auto traces demoted back to normal analysis (failed speculation).
    pub fn auto_traces_demoted(&self) -> u64 {
        self.drain();
        self.core.read().unwrap().tracing.auto_demotions
    }

    /// Every trace violation observed, in program order. Violations demote
    /// the offending trace; execution continues with normal analysis.
    pub fn trace_violations(&self) -> CoreRead<'_, [TraceViolation]> {
        self.drain();
        CoreRead::new(&self.core, |c| c.tracing.violations())
    }

    /// Current size of the trace rebase interval map (stays O(active
    /// templates) — see `trace.rs`).
    pub fn trace_rebase_ranges(&self) -> usize {
        self.drain();
        self.core.read().unwrap().tracing.rebase_ranges()
    }

    /// An execution fence: a no-op task ordered after *every* task launched
    /// so far (and, transitively, before everything launched later that
    /// depends on it — callers typically route post-fence work through the
    /// returned id). Legion uses fences to delimit phases that the
    /// dependence analysis should not reorder across; trace replay also
    /// relies on the same all-predecessor construction. A drain point.
    pub fn fence(&mut self) -> TaskId {
        self.drain();
        let id = self.core.write().unwrap().fence();
        self.primary.record_inline(id);
        debug_assert!(self.multi_producer() || id.0 == self.submitted);
        self.submitted += 1;
        id
    }

    /// An inline read of a region's current values: recorded as a read-only
    /// launch with no body; after [`Runtime::execute_values`], the
    /// materialized values are available from the store under the returned
    /// id. (Legion calls these inline mappings.) A submission, not a drain
    /// point: it observes every earlier launch through FIFO order.
    pub fn inline_read(
        &mut self,
        region: RegionId,
        field: FieldId,
    ) -> Result<TaskId, RuntimeError> {
        let h = self.submit(LaunchSpec::new(
            "inline-read",
            0,
            vec![RegionRequirement::read(region, field)],
            0,
            None,
        ))?;
        // Resolve rather than trust `TaskHandle::id`: with tenant contexts
        // interleaving, the facade's sequence is not the global id.
        self.try_resolve(h)
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Execute all recorded launches with real values on worker threads,
    /// honoring the dependence DAG. Returns the store of every task's
    /// committed outputs. A drain point.
    pub fn execute_values(&self) -> ValueStore {
        self.drain();
        let forest = self.forest.read().unwrap();
        let core = self.core.read().unwrap();
        let (launches, bodies, results, _) = core.ledger.full().expect(
            "execute_values replays the whole program and cannot run once \
             history GC has retired launches; disable RuntimeConfig::history_gc \
             for value execution",
        );
        crate::exec::execute_values(
            &forest,
            &self.redops,
            launches,
            bodies,
            results,
            &core.dag,
            &self.initial,
        )
    }

    /// Replay the DAG on the simulated machine: GPU execution, inter-node
    /// copies, and the coupling of execution to analysis completion times.
    /// A drain point.
    pub fn timed_schedule(&mut self) -> TimedReport {
        self.drain();
        let forest = self.forest.read().unwrap();
        let core = &mut *self.core.write().unwrap();
        let (launches, _, results, analysis_done) = core.ledger.full().expect(
            "timed_schedule replays the whole program and cannot run once \
             history GC has retired launches; disable RuntimeConfig::history_gc \
             for schedule simulation",
        );
        TimedSchedule::run(
            &forest,
            launches,
            results,
            &core.dag,
            analysis_done,
            &mut core.machine,
        )
    }

    // ------------------------------------------------------------------
    // Introspection (drain points: they observe committed analysis state)
    // ------------------------------------------------------------------

    pub fn dag(&self) -> CoreRead<'_, TaskDag> {
        self.drain();
        CoreRead::new(&self.core, |c| &c.dag)
    }

    /// The *retained* launches (with history GC: ids
    /// [`Runtime::retired_watermark`]`..` in order; without: all of them).
    pub fn launches(&self) -> CoreRead<'_, [TaskLaunch]> {
        self.drain();
        CoreRead::new(&self.core, |c| c.ledger.launches())
    }

    /// Every retained launch's analysis result, fully materialized
    /// (replayed launches get their template result with the instance
    /// shift applied). With history GC the vector starts at the watermark.
    pub fn results(&self) -> Vec<AnalysisResult> {
        self.drain();
        let core = self.core.read().unwrap();
        core.ledger
            .results()
            .iter()
            .map(StoredResult::resolve)
            .collect()
    }

    /// One launch's analysis result, materialized. Panics if `t` was
    /// retired by history GC.
    pub fn result(&self, t: TaskId) -> AnalysisResult {
        self.drain();
        self.core.read().unwrap().ledger.result(t).resolve()
    }

    pub fn machine(&self) -> CoreRead<'_, Machine> {
        self.drain();
        CoreRead::new(&self.core, |c| &c.machine)
    }

    pub fn machine_mut(&mut self) -> CoreWrite<'_, Machine> {
        self.drain();
        CoreWrite::new(&self.core, |c| &c.machine, |c| &mut c.machine)
    }

    pub fn engine_name(&self) -> &'static str {
        self.core.read().unwrap().engine.name()
    }

    /// One coherent snapshot of every observable counter: engine state
    /// sizes (with the algebra roll-up), history-GC/coarsening counters,
    /// DAG shape and tag footprint, trace statistics, and the submission
    /// plane. A drain point. This is the stats front door — prefer it over
    /// the historical per-subsystem accessors.
    pub fn stats(&self) -> crate::stats::RuntimeStats {
        self.drain();
        let core = self.core.read().unwrap();
        let gc = &core.gc;
        crate::stats::RuntimeStats {
            engine: core.engine.name(),
            tasks: core.ledger.total() as u64,
            retained: core.ledger.retained() as u64,
            watermark: core.ledger.base(),
            state: core.engine.state_size(),
            gc: crate::stats::GcStats {
                enabled: gc.cfg.enabled,
                coarsen: gc.cfg.coarsen,
                collections: gc.collections,
                pins: gc.pins,
                retired_launches: gc.retired_launches,
                tag_words_freed: gc.tag_words_freed,
                history_entries: gc.sweep.history_entries as u64,
                equivalence_sets: gc.sweep.equivalence_sets as u64,
                composite_views: gc.sweep.composite_views as u64,
                index_nodes: gc.sweep.index_nodes as u64,
                memo_entries: gc.sweep.memo_entries as u64,
                coarsen_merges: gc.sweep.coarsen_merges as u64,
            },
            dag: crate::stats::DagStats {
                tasks: core.dag.len() as u64,
                edges: core.dag.edge_count() as u64,
                tag_words: core.dag.tag_words() as u64,
                retired_floor: core.dag.retired_floor(),
            },
            tracing: crate::stats::TracingStats {
                replayed_launches: core.tracing.replayed_launches,
                auto_promotions: core.tracing.auto_promotions,
                auto_demotions: core.tracing.auto_demotions,
                violations: core.tracing.violations().len() as u64,
                rebase_ranges: core.tracing.rebase_ranges() as u64,
            },
            pipeline: self
                .pipeline
                .as_ref()
                .map(|p| crate::stats::PipelineStats::snapshot(&p.metrics())),
        }
    }

    /// Number of simulated machine nodes. Constant for the runtime's
    /// lifetime, so this never drains — safe to call in submission loops.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Tasks committed so far across every producer (facade submissions,
    /// tenant-context submissions, fences, and inline reads). A drain
    /// point: queued launches are counted once the plane quiesces.
    pub fn num_tasks(&self) -> usize {
        self.drain();
        self.core.read().unwrap().ledger.total()
    }

    /// The history-GC watermark: every task id below it has been retired
    /// (0 when GC is off or nothing has been collected yet). A drain
    /// point.
    pub fn retired_watermark(&self) -> u32 {
        self.drain();
        self.core.read().unwrap().ledger.base()
    }

    /// Simulated time at which the analysis of task `t` completed. Panics
    /// if `t` was retired by history GC.
    pub fn analysis_done(&self, t: TaskId) -> SimTime {
        self.drain();
        self.core.read().unwrap().ledger.done(t)
    }

    /// Snapshot the recorded launch history for the consistency oracle
    /// (`None` unless [`RuntimeConfig::record_history`] / `VIZ_ORACLE` was
    /// set). A drain point: the snapshot covers every launch submitted so
    /// far, in commit order.
    pub fn recorded_history(&self) -> Option<RecordedHistory> {
        self.drain();
        let core = self.core.read().unwrap();
        let engine = core.engine.name();
        core.recorder.as_ref().map(|r| r.snapshot(engine))
    }

    // ------------------------------------------------------------------
    // Multi-producer contexts (PR 7)
    // ------------------------------------------------------------------

    /// Open an independent producer context: its own program-order counter
    /// and fence scope, sharing this runtime's engine, forest, and
    /// machine. The context is `Send` (the point: move it into a worker
    /// thread and submit concurrently with the facade and other contexts)
    /// but borrows the runtime, so every context must be dropped before
    /// the runtime can be moved or dropped.
    ///
    /// In pipelined mode the context claims a private SPSC submission
    /// ring; with all [`RuntimeConfig::submit_rings`] rings claimed this
    /// returns [`RuntimeError::RingsExhausted`] (rings are recycled when
    /// contexts drop). In synchronous mode submissions take the core lock
    /// inline, so contexts still work — just without submission overlap.
    pub fn new_context(&self) -> Result<Context<'_>, RuntimeError> {
        let ctx = self.next_ctx.fetch_add(1, Ordering::AcqRel);
        assert!(ctx < CTX_GLOBAL, "context ids exhausted");
        let state = CtxState::new(ctx);
        let ring = match &self.pipeline {
            Some(p) => {
                let plane = Arc::clone(p.plane());
                let index = plane.claim_ring(&state)?;
                Some((plane, index))
            }
            None => None,
        };
        Ok(Context {
            core: Arc::clone(&self.core),
            forest: Arc::clone(&self.forest),
            state,
            ring,
            validate: self.validate_launches,
            submitted: 0,
            _rt: PhantomData,
        })
    }
}

/// An independent producer stream over a shared [`Runtime`] (PR 7):
/// tenant contexts submit concurrently from their own threads, each with
/// its own program-order counter and fence scope. Created by
/// [`Runtime::new_context`]; dropping a context quiesces its stream and
/// recycles its submission ring.
///
/// Submissions return [`CtxHandle`]s, which resolve to the global
/// [`TaskId`] the combining dispatcher assigned (ids interleave across
/// contexts in commit order). [`Context::fence`] is a *scoped* fence:
/// ordered after everything this context submitted, but not after other
/// contexts' concurrent launches — use [`Runtime::fence`] for a global
/// barrier.
pub struct Context<'rt> {
    core: Arc<RwLock<Core>>,
    forest: Arc<RwLock<RegionForest>>,
    state: Arc<CtxState>,
    ring: Option<(Arc<SubmitPlane>, usize)>,
    validate: bool,
    /// Context-local sequence numbers handed out (submissions + fences).
    submitted: u32,
    /// Ties the context's lifetime to the runtime borrow without
    /// requiring anything of the runtime's own auto traits.
    _rt: PhantomData<&'rt ()>,
}

impl Context<'_> {
    /// This context's id, as recorded in launch histories.
    pub fn ctx_id(&self) -> u32 {
        self.state.ctx
    }

    /// Submissions + fences issued through this context so far.
    pub fn num_tasks(&self) -> usize {
        self.submitted as usize
    }

    /// Submit one launch on this context's stream. Validated on the
    /// calling thread; analyzed by the dispatcher (pipelined) or inline
    /// under the core lock (synchronous). Blocks only on this context's
    /// ring backpressure — never on other producers.
    pub fn submit(&mut self, spec: LaunchSpec) -> Result<CtxHandle, RuntimeError> {
        self.submit_batch(vec![spec]).map(|mut v| v.pop().unwrap())
    }

    /// Submit a batch in order on this context's stream. Validation is
    /// atomic, as in [`Runtime::submit_batch`].
    pub fn submit_batch(&mut self, specs: Vec<LaunchSpec>) -> Result<Vec<CtxHandle>, RuntimeError> {
        if self.validate {
            let forest = self.forest.read().map_err(|_| RuntimeError::Poisoned {
                what: "region forest",
            })?;
            for s in &specs {
                validate_spec(&forest, &s.reqs)?;
            }
        }
        let base = self.submitted;
        let n = specs.len() as u32;
        match &self.ring {
            Some((plane, index)) => plane.enqueue_all(*index, &self.state, specs)?,
            None => {
                let forest = self.forest.read().map_err(|_| RuntimeError::Poisoned {
                    what: "region forest",
                })?;
                let ids = {
                    let mut core = self
                        .core
                        .write()
                        .map_err(|_| RuntimeError::Poisoned { what: "core" })?;
                    core.run_specs(self.state.ctx, specs, &forest)
                };
                for id in ids {
                    self.state.record_inline(id);
                }
            }
        }
        self.submitted = base + n;
        Ok((0..n)
            .map(|k| CtxHandle {
                seq: base + k,
                state: Arc::clone(&self.state),
                plane: self.ring.as_ref().map(|(p, _)| Arc::clone(p)),
            })
            .collect())
    }

    /// A *scoped* execution fence: ordered after every launch this context
    /// has submitted (quiescing the context's own stream first), but not
    /// after other contexts' concurrent launches. Committed inline, so the
    /// returned [`TaskId`] is final.
    pub fn fence(&mut self) -> Result<TaskId, RuntimeError> {
        self.flush()?;
        let deps = self.state.assigned.lock().unwrap().clone();
        let id = {
            let mut core = self
                .core
                .write()
                .map_err(|_| RuntimeError::Poisoned { what: "core" })?;
            core.fence_scoped(self.state.ctx, deps)
        };
        self.state.record_inline(id);
        self.submitted += 1;
        Ok(id)
    }

    /// Wait until everything this context submitted has committed
    /// (pipelined mode; synchronous commits are already inline).
    pub fn flush(&self) -> Result<(), RuntimeError> {
        if let Some((plane, _)) = &self.ring {
            let want = self.state.pushed.load(Ordering::Acquire);
            plane.wait_ctx_committed(&self.state, want)?;
        }
        Ok(())
    }
}

impl Drop for Context<'_> {
    fn drop(&mut self) {
        if let Some((plane, index)) = self.ring.take() {
            // Quiesces this context's stream (its queued launches are
            // never lost), then frees the ring for the next context.
            plane.release_ring(index);
        }
    }
}

/// Receipt for a launch submitted through a [`Context`]. Unlike
/// [`TaskHandle`], the global [`TaskId`] is *not* known at submission
/// time — ids interleave across concurrent producers in commit order —
/// so the handle carries its context's bookkeeping and resolves through
/// it. `Clone`able and `Send`; outlives its context.
#[derive(Clone)]
pub struct CtxHandle {
    seq: u32,
    state: Arc<CtxState>,
    plane: Option<Arc<SubmitPlane>>,
}

impl CtxHandle {
    /// Position in the owning context's program order.
    pub fn seq(&self) -> u32 {
        self.seq
    }

    /// The assigned [`TaskId`], if this launch's analysis has committed
    /// (never blocks).
    pub fn try_id(&self) -> Option<TaskId> {
        self.state.try_id(self.seq)
    }

    /// Block until this launch's analysis commits and return its global
    /// [`TaskId`]. Fails with [`RuntimeError::DriverPanicked`] if the
    /// dispatcher died first, and with [`RuntimeError::WouldDeadlock`]
    /// when called from inside a runtime worker on an uncommitted launch
    /// (see [`Runtime::try_resolve`]).
    pub fn resolve(&self) -> Result<TaskId, RuntimeError> {
        if let Some(id) = self.state.try_id(self.seq) {
            return Ok(id);
        }
        if crate::pipeline::in_worker() {
            return Err(RuntimeError::WouldDeadlock);
        }
        match &self.plane {
            Some(plane) => {
                plane.wait_ctx_committed(&self.state, self.seq as u64 + 1)?;
                Ok(self
                    .state
                    .try_id(self.seq)
                    .expect("committed launches have assigned ids"))
            }
            None => panic!("synchronous contexts commit inline"),
        }
    }
}

/// Builder sugar over [`Runtime::submit`]:
/// `rt.task("stencil").on(1).write(piece, f).read(halo, f).submit()`.
pub struct LaunchBuilder<'rt> {
    rt: &'rt mut Runtime,
    spec: LaunchSpec,
}

impl LaunchBuilder<'_> {
    /// Target node (default 0; wrapped modulo the machine size).
    pub fn on(mut self, node: NodeId) -> Self {
        self.spec.node = node;
        self
    }

    pub fn read(self, region: RegionId, field: FieldId) -> Self {
        self.req(RegionRequirement::read(region, field))
    }

    pub fn write(self, region: RegionId, field: FieldId) -> Self {
        self.req(RegionRequirement::read_write(region, field))
    }

    pub fn reduce(self, region: RegionId, field: FieldId, op: viz_region::ReductionOpId) -> Self {
        self.req(RegionRequirement::reduce(region, field, op))
    }

    pub fn req(mut self, req: RegionRequirement) -> Self {
        self.spec.reqs.push(req);
        self
    }

    /// Simulated task duration (for [`Runtime::timed_schedule`]).
    pub fn duration_ns(mut self, ns: u64) -> Self {
        self.spec.duration_ns = ns;
        self
    }

    /// The task body (for [`Runtime::execute_values`]).
    pub fn body(
        mut self,
        f: impl Fn(&mut [crate::PhysicalRegion]) + Send + Sync + 'static,
    ) -> Self {
        self.spec.body = Some(Arc::new(f));
        self
    }

    pub fn submit(self) -> Result<TaskHandle, RuntimeError> {
        self.rt.submit(self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_records_analysis_and_dag() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        let t0 = rt
            .submit(LaunchSpec::new(
                "w",
                0,
                vec![RegionRequirement::read_write(root, f)],
                100,
                None,
            ))
            .unwrap()
            .id();
        let t1 = rt
            .submit(LaunchSpec::new(
                "r",
                0,
                vec![RegionRequirement::read(root, f)],
                100,
                None,
            ))
            .unwrap()
            .id();
        assert_eq!(rt.num_tasks(), 2);
        assert_eq!(rt.dag().preds(t1), &[t0]);
        assert!(rt.analysis_done(t1) >= rt.analysis_done(t0));
    }

    #[test]
    fn aliasing_requirements_with_interference_rejected() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        let err = rt
            .submit(LaunchSpec::new(
                "bad",
                0,
                vec![
                    RegionRequirement::read_write(root, f),
                    RegionRequirement::read(root, f),
                ],
                0,
                None,
            ))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::InterferingRequirements { .. }));
        assert!(err.to_string().contains("alias with interfering"));
    }

    #[test]
    fn aliasing_reads_are_allowed() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        rt.submit(LaunchSpec::new(
            "ok",
            0,
            vec![
                RegionRequirement::read(root, f),
                RegionRequirement::read(root, f),
            ],
            0,
            None,
        ))
        .unwrap();
    }

    #[test]
    fn aliasing_same_op_reductions_are_allowed() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        rt.submit(LaunchSpec::new(
            "ok",
            0,
            vec![
                RegionRequirement::reduce(root, f, RedOpRegistry::SUM),
                RegionRequirement::reduce(root, f, RedOpRegistry::SUM),
            ],
            0,
            None,
        ))
        .unwrap();
    }

    #[test]
    fn recorded_history_captures_reqs_deps_and_fences() {
        let cfg = RuntimeConfig::new(EngineKind::PaintNaive).record_history(true);
        let mut rt = Runtime::new(cfg);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        let t0 = rt.task("w").write(root, f).submit().unwrap().id();
        let t1 = rt.task("r").read(root, f).submit().unwrap().id();
        let fence = rt.fence();
        let h = rt.recorded_history().expect("recording enabled");
        assert_eq!(h.len(), 3);
        assert_eq!(h.retirement, vec![t0, t1, fence]);
        assert_eq!(h.launches[1].deps, vec![t0]);
        assert!(h.launches[2].fence);
        assert_eq!(h.launches[2].deps, vec![t0, t1]);
        assert!(!h.launches[1].replayed);
        // Off by default: no recorder, no history.
        let rt2 = Runtime::single_node(EngineKind::PaintNaive);
        assert!(rt2.recorded_history().is_none());
    }

    #[test]
    fn submit_rejects_unknown_region_and_field() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        let bogus_region = RegionId(999);
        let err = rt
            .submit(LaunchSpec::new(
                "bad",
                0,
                vec![RegionRequirement::read(bogus_region, f)],
                0,
                None,
            ))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownRegion { .. }));
        let bogus_field = FieldId(999);
        let err = rt
            .submit(LaunchSpec::new(
                "bad",
                0,
                vec![RegionRequirement::read(root, bogus_field)],
                0,
                None,
            ))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::UnknownField { .. }));
        // Failed submissions consume no task id.
        assert_eq!(rt.num_tasks(), 0);
    }

    #[test]
    fn builder_matches_explicit_spec() {
        let mut rt = Runtime::single_node(EngineKind::RayCast);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        let h0 = rt
            .task("w")
            .write(root, f)
            .duration_ns(100)
            .submit()
            .unwrap();
        let h1 = rt.task("r").read(root, f).submit().unwrap();
        assert_eq!(rt.resolve(h1), TaskId(1));
        assert_eq!(rt.dag().preds(h1.id()), &[h0.id()]);
    }

    #[test]
    fn trace_misnesting_is_reported_not_panicked() {
        let mut rt = Runtime::single_node(EngineKind::RayCast);
        assert!(matches!(
            rt.try_end_trace(3),
            Err(RuntimeError::EndWithoutBegin { .. })
        ));
        rt.try_begin_trace(1).unwrap();
        assert!(matches!(
            rt.try_begin_trace(2),
            Err(RuntimeError::NestedTrace { .. })
        ));
        assert!(matches!(
            rt.try_end_trace(2),
            Err(RuntimeError::MismatchedTraceEnd { .. })
        ));
        // The failed end left trace 1 open and consistent.
        assert!(rt.try_end_trace(1).unwrap().is_none());
    }

    /// Satellite 3 (PR 7): a blocking resolve from inside a runtime worker
    /// (dispatcher or executor) on an uncommitted handle would wait on the
    /// very thread that is supposed to commit it. Wedging the dispatcher by
    /// holding the core write lock makes the race deterministic.
    #[test]
    fn reentrant_resolve_reports_would_deadlock() {
        let mut rt = Runtime::new(RuntimeConfig::new(EngineKind::RayCast).pipeline(true));
        let root = rt.forest_mut().create_root_1d("A", 16);
        let f = rt.forest_mut().add_field(root, "v");
        let core = Arc::clone(&rt.core);
        let gate = core.write().unwrap();
        let h = rt
            .submit(LaunchSpec::new(
                "w",
                0,
                vec![RegionRequirement::read_write(root, f)],
                0,
                None,
            ))
            .unwrap();
        {
            let _worker = crate::pipeline::enter_worker();
            let err = rt.try_resolve(h).unwrap_err();
            assert!(matches!(err, RuntimeError::WouldDeadlock));
            assert!(err.to_string().contains("self-deadlock"));
        }
        drop(gate);
        // Off the worker path the same resolve blocks and succeeds...
        assert_eq!(rt.resolve(h), TaskId(0));
        // ...and a *committed* handle resolves even inside a worker (the
        // fast path never blocks).
        let _worker = crate::pipeline::enter_worker();
        assert_eq!(rt.try_resolve(h).unwrap(), TaskId(0));
    }

    /// With the dispatcher wedged, pushes from two rings pile up and the
    /// release sweep must drain both under one core-lock acquisition.
    #[test]
    fn wedged_dispatcher_release_is_one_combined_sweep() {
        let mut rt = Runtime::new(
            RuntimeConfig::new(EngineKind::RayCast)
                .pipeline(true)
                .submit_rings(2),
        );
        let root_a = rt.forest_mut().create_root_1d("A", 16);
        let fa = rt.forest_mut().add_field(root_a, "v");
        let root_b = rt.forest_mut().create_root_1d("B", 16);
        let fb = rt.forest_mut().add_field(root_b, "v");
        let metrics = rt.pipeline_metrics().unwrap();
        let core = Arc::clone(&rt.core);
        let gate = core.write().unwrap();
        // Primary ring: two facade launches. Tenant ring: two more.
        for _ in 0..2 {
            rt.submit(LaunchSpec::new(
                "p",
                0,
                vec![RegionRequirement::read_write(root_a, fa)],
                0,
                None,
            ))
            .unwrap();
        }
        let mut ctx = rt.new_context().unwrap();
        for _ in 0..2 {
            ctx.submit(LaunchSpec::new(
                "t",
                0,
                vec![RegionRequirement::read_write(root_b, fb)],
                0,
                None,
            ))
            .unwrap();
        }
        // The dispatcher may have grabbed at most one early sub-batch
        // before blocking on the core lock; everything still queued when
        // the gate opens commits in combined sweeps.
        drop(gate);
        drop(ctx);
        rt.flush();
        assert_eq!(metrics.submitted(), 4);
        assert_eq!(metrics.retired(), 4);
        assert_eq!(metrics.combined_specs(), 4);
        assert!(metrics.combines() >= 1);
        assert!(metrics.max_combine() >= 2, "queued pushes combined");
        assert_eq!(
            metrics.ring(0).submitted + metrics.ring(1).submitted,
            4,
            "per-ring counters decompose the total"
        );
    }
}
