//! The runtime facade: region creation, task launching, deferred execution.

use crate::autotrace::{AutoTraceConfig, AutoTracer};
use crate::dag::TaskDag;
use crate::engine::{AnalysisCtx, CoherenceEngine, EngineKind, StateSize};
use crate::exec::{TimedReport, TimedSchedule, ValueStore};
use crate::plan::{AnalysisResult, StoredResult, TaskShift};
use crate::sharding::ShardMap;
use crate::task::{RegionRequirement, TaskBody, TaskId, TaskLaunch};
use crate::trace::{TraceAction, TraceId, TraceViolation, Tracing};
use std::sync::Arc;
use viz_geometry::{FxHashMap, Point};
use viz_region::{redop::Value, FieldId, Privilege, RedOpRegistry, RegionForest, RegionId};
use viz_sim::{CostModel, Machine, NodeId, SimTime};

/// Configuration for a [`Runtime`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of simulated machine nodes.
    pub nodes: usize,
    /// Which visibility engine performs the analysis.
    pub engine: EngineKind,
    /// Dynamic control replication: shard the analysis across nodes \[4\].
    pub dcr: bool,
    /// Cost model for the simulated machine.
    pub cost: CostModel,
    /// Check the §4 requirement-aliasing rule on every launch (on by
    /// default; benchmarks at large scales may disable it).
    pub validate_launches: bool,
    /// Worker threads for the sharded analysis driver
    /// ([`Runtime::run_batch`]): with more than one, a batch's per-(root,
    /// field) shard scans run concurrently. Defaults from the
    /// `VIZ_ANALYSIS_THREADS` environment variable (else 1 = serial).
    pub analysis_threads: usize,
    /// Online automatic trace detection: watch the launch stream for
    /// repeated subsequences and replay them without `begin_trace`
    /// annotations. `enabled` defaults from `VIZ_AUTO_TRACE`.
    pub auto_trace: AutoTraceConfig,
}

/// The `VIZ_ANALYSIS_THREADS` default for
/// [`RuntimeConfig::analysis_threads`] (1 when unset or unparsable).
pub fn default_analysis_threads() -> usize {
    std::env::var("VIZ_ANALYSIS_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|n| *n >= 1)
        .unwrap_or(1)
}

/// The `VIZ_AUTO_TRACE` default for [`RuntimeConfig::auto_trace`]
/// (disabled when unset; "1"/"true" enable).
pub fn default_auto_trace() -> bool {
    std::env::var("VIZ_AUTO_TRACE")
        .ok()
        .map(|s| {
            let s = s.trim();
            s == "1" || s.eq_ignore_ascii_case("true")
        })
        .unwrap_or(false)
}

impl RuntimeConfig {
    pub fn new(engine: EngineKind) -> Self {
        RuntimeConfig {
            nodes: 1,
            engine,
            dcr: false,
            cost: CostModel::default(),
            validate_launches: true,
            analysis_threads: default_analysis_threads(),
            auto_trace: AutoTraceConfig {
                enabled: default_auto_trace(),
                ..AutoTraceConfig::default()
            },
        }
    }

    pub fn nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self
    }

    pub fn dcr(mut self, dcr: bool) -> Self {
        self.dcr = dcr;
        self
    }

    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    pub fn validate(mut self, v: bool) -> Self {
        self.validate_launches = v;
        self
    }

    pub fn analysis_threads(mut self, n: usize) -> Self {
        self.analysis_threads = n.max(1);
        self
    }

    /// Toggle online automatic trace detection.
    pub fn auto_trace(mut self, on: bool) -> Self {
        self.auto_trace.enabled = on;
        self
    }

    /// Shortest repeated subsequence the auto-tracer will promote.
    pub fn auto_trace_min_len(mut self, n: u32) -> Self {
        self.auto_trace.min_len = n.max(1);
        self
    }

    /// Longest repeated subsequence considered (bounds detector memory).
    pub fn auto_trace_max_len(mut self, n: u32) -> Self {
        self.auto_trace.max_len = n.max(1);
        self
    }

    /// Identical consecutive repetitions required before promotion (≥ 2).
    pub fn auto_trace_confidence(mut self, n: u32) -> Self {
        self.auto_trace.confidence = n.max(2);
        self
    }
}

/// A deferred launch, for [`Runtime::run_batch`]: the same arguments
/// [`Runtime::launch`] takes, as data.
pub struct LaunchSpec {
    pub name: String,
    pub node: NodeId,
    pub reqs: Vec<RegionRequirement>,
    pub duration_ns: u64,
    pub body: Option<TaskBody>,
}

impl LaunchSpec {
    pub fn new(
        name: impl Into<String>,
        node: NodeId,
        reqs: Vec<RegionRequirement>,
        duration_ns: u64,
        body: Option<TaskBody>,
    ) -> Self {
        LaunchSpec {
            name: name.into(),
            node,
            reqs,
            duration_ns,
            body,
        }
    }
}

type InitFn = Arc<dyn Fn(Point) -> Value + Send + Sync>;

/// A Legion-style runtime: launches are analyzed immediately (the dynamic
/// dependence/coherence analysis is the subject of the paper); execution is
/// deferred to [`Runtime::execute_values`] (real values, worker threads) or
/// [`Runtime::timed_schedule`] (simulated time at machine scale).
pub struct Runtime {
    forest: RegionForest,
    redops: RedOpRegistry,
    machine: Machine,
    engine: Box<dyn CoherenceEngine>,
    shards: ShardMap,
    launches: Vec<TaskLaunch>,
    bodies: Vec<Option<TaskBody>>,
    results: Vec<StoredResult>,
    /// Simulated time at which each launch's analysis completed on its
    /// origin node — execution cannot start earlier.
    analysis_done: Vec<SimTime>,
    dag: TaskDag,
    initial: FxHashMap<(RegionId, FieldId), InitFn>,
    validate_launches: bool,
    analysis_threads: usize,
    tracing: Tracing,
}

impl Runtime {
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime {
            forest: RegionForest::new(),
            redops: RedOpRegistry::new(),
            machine: Machine::with_cost(config.nodes, config.cost),
            engine: config.engine.build(),
            shards: ShardMap::new(config.nodes, config.dcr),
            launches: Vec::new(),
            bodies: Vec::new(),
            results: Vec::new(),
            analysis_done: Vec::new(),
            dag: TaskDag::new(),
            initial: FxHashMap::default(),
            validate_launches: config.validate_launches,
            analysis_threads: config.analysis_threads,
            tracing: Tracing::new(
                config
                    .auto_trace
                    .enabled
                    .then(|| AutoTracer::new(&config.auto_trace)),
            ),
        }
    }

    /// Shorthand: single node, no DCR.
    pub fn single_node(engine: EngineKind) -> Self {
        Self::new(RuntimeConfig::new(engine))
    }

    /// A runtime with a custom engine instance (used by the ablation
    /// benches for engine variants like `Warnock::without_memoization`).
    pub fn with_engine(config: RuntimeConfig, engine: Box<dyn CoherenceEngine>) -> Self {
        let mut rt = Self::new(config);
        rt.engine = engine;
        rt
    }

    // ------------------------------------------------------------------
    // Region model access
    // ------------------------------------------------------------------

    pub fn forest(&self) -> &RegionForest {
        &self.forest
    }

    /// Region trees may be extended at any point between launches — the
    /// analyses are fully dynamic.
    pub fn forest_mut(&mut self) -> &mut RegionForest {
        &mut self.forest
    }

    pub fn redops(&self) -> &RedOpRegistry {
        &self.redops
    }

    pub fn redops_mut(&mut self) -> &mut RedOpRegistry {
        &mut self.redops
    }

    /// Provide initial contents for a root region's field (defaults to 0.0
    /// everywhere). Corresponds to the `[⟨read-write, A⟩]` initial history
    /// entry of §5.
    pub fn set_initial(
        &mut self,
        root: RegionId,
        field: FieldId,
        f: impl Fn(Point) -> Value + Send + Sync + 'static,
    ) {
        self.initial.insert((root, field), Arc::new(f));
    }

    // ------------------------------------------------------------------
    // Launching
    // ------------------------------------------------------------------

    /// Launch a task: privileges + regions in, dependences + plan out.
    /// Analysis happens *now* (this is the operation the paper measures);
    /// the body runs later under [`Runtime::execute_values`].
    pub fn launch(
        &mut self,
        name: impl Into<String>,
        node: NodeId,
        reqs: Vec<RegionRequirement>,
        duration_ns: u64,
        body: Option<TaskBody>,
    ) -> TaskId {
        let id = TaskId(self.launches.len() as u32);
        if self.validate_launches {
            self.validate_reqs(&reqs);
        }
        let launch = TaskLaunch {
            id,
            name: name.into(),
            node: node % self.shards.nodes(),
            reqs,
            duration_ns,
        };
        let origin = self.shards.origin(launch.node);
        let mut action = self.tracing.on_launch(launch.node, &launch.reqs, id.0);
        if let TraceAction::Violation(v) = action {
            // The prediction diverged: demote (annotated traces fall back
            // to normal analysis and recapture; auto traces return to
            // observation) — never abort.
            self.tracing.demote(v);
            action = self.tracing.on_launch(launch.node, &launch.reqs, id.0);
        }
        let stored = match action {
            TraceAction::Replay { result, shift } => {
                // Dynamic tracing [15]: the recorded analysis is reused —
                // only a template lookup is paid, not the visibility
                // algorithm. The shared result is *not* cloned; the
                // instance's shift is applied lazily by readers.
                self.machine.op(origin, viz_sim::Op::Memo);
                self.analysis_done.push(self.machine.now(origin));
                self.dag
                    .push(result.deps.iter().map(|d| shift.apply(*d)).collect());
                StoredResult::Shared { result, shift }
            }
            TraceAction::Analyze { record } => {
                // First-touch ownership of analysis state.
                for req in &launch.reqs {
                    self.shards.touch(req.region, launch.node, id.0);
                }
                let engine_name = self.engine.name();
                let host_span = viz_profile::span(engine_name);
                let sim_start = self.machine.now(origin);
                let mut ctx = AnalysisCtx {
                    forest: &self.forest,
                    machine: &mut self.machine,
                    shards: &self.shards,
                };
                let mut result = self.engine.analyze(&launch, &mut ctx);
                drop(host_span);
                if viz_profile::enabled() {
                    let sim_end = self.machine.now(origin);
                    viz_profile::sim_event(
                        sim_start,
                        sim_end.saturating_sub(sim_start),
                        viz_profile::Track::SimProgram {
                            node: origin as u32,
                        },
                        viz_profile::EventKind::LaunchAnalyzed {
                            engine: engine_name,
                            task: id.0 as u64,
                        },
                    );
                }
                // Stale references into a recorded-and-replayed instance
                // move onto its latest replay.
                self.tracing.rebase_result(&mut result);
                self.analysis_done.push(self.machine.now(origin));
                self.dag.push(result.deps.clone());
                if record {
                    // Capturing: the template shares the result with the
                    // runtime's own storage (identity shift) — no clone.
                    let result = Arc::new(result);
                    self.tracing.record(
                        launch.node,
                        launch.reqs.clone(),
                        Arc::clone(&result),
                        &self.forest,
                    );
                    StoredResult::Shared {
                        result,
                        shift: TaskShift::IDENTITY,
                    }
                } else {
                    self.tracing.advance();
                    StoredResult::Owned(result)
                }
            }
            TraceAction::Violation(_) => unreachable!("demotion resolves violations"),
        };
        self.results.push(stored);
        self.launches.push(launch);
        self.bodies.push(body);
        id
    }

    /// Launch a *batch* of independent-or-not tasks through the sharded
    /// analysis driver. Semantically identical to calling
    /// [`Runtime::launch`] for each item in order — dependences, plans,
    /// simulated clocks, and counters come out byte-for-byte the same — but
    /// with `analysis_threads > 1` the per-`(root, field)` visibility scans
    /// of the batch run concurrently on a scoped worker pool, with a
    /// pipelined commit stage retiring launches in order.
    ///
    /// Falls back to the serial path when `analysis_threads <= 1` or for
    /// batches of one. Traces no longer force the whole batch serial:
    /// the batch is *segmented* — launches inside a warm-up/capture
    /// instance run through [`Runtime::launch`] in order (engine scans are
    /// per-launch-in-order there), a **replaying** segment synthesizes its
    /// results in bulk with no engine scan at all (each launch is just a
    /// validation + an `Arc` handoff to the in-order retire sequence), and
    /// the remaining untraced prefix goes through the sharded scan
    /// pipeline, feeding the auto-trace detector in batch order so
    /// detection fires at the same launch as the serial driver.
    pub fn run_batch(&mut self, items: Vec<LaunchSpec>) -> Vec<TaskId> {
        let mut ids = Vec::with_capacity(items.len());
        let mut items: std::collections::VecDeque<LaunchSpec> = items.into();
        while !items.is_empty() {
            if self.analysis_threads <= 1 || items.len() == 1 {
                for s in items.drain(..) {
                    ids.push(self.launch(s.name, s.node, s.reqs, s.duration_ns, s.body));
                }
                break;
            }
            if self.tracing.pending_or_active() {
                // Trace segment: replay drains launches in bulk (O(1)
                // each: validate, charge the memo op, retire the shared
                // result); warm-up/capture launches analyze in order. A
                // demotion mid-segment drops back out and re-shards the
                // remainder of the batch.
                while !items.is_empty() && self.tracing.pending_or_active() {
                    let s = items.pop_front().unwrap();
                    ids.push(self.launch(s.name, s.node, s.reqs, s.duration_ns, s.body));
                }
                continue;
            }
            ids.extend(self.run_batch_sharded(&mut items));
        }
        ids
    }

    /// The sharded scan pipeline over the untraced prefix of `items`:
    /// stops early (after the detection point) when the auto-tracer
    /// promotes a repeat, leaving the rest for the caller to re-dispatch.
    fn run_batch_sharded(
        &mut self,
        items: &mut std::collections::VecDeque<LaunchSpec>,
    ) -> Vec<TaskId> {
        let base = self.launches.len() as u32;
        let mut batch: Vec<TaskLaunch> = Vec::with_capacity(items.len());
        let mut batch_bodies: Vec<Option<TaskBody>> = Vec::with_capacity(items.len());
        let mut groups: Vec<Vec<(crate::analysis::ShardKey, Vec<u32>)>> =
            Vec::with_capacity(items.len());
        // Phase A (driver thread): validate, assign ids, feed the
        // auto-trace detector, first-touch the shard map, and let the
        // engine create missing shard state. The grouping depends only on
        // the region forest, so the whole segment can be prepared before
        // any scan runs.
        while let Some(spec) = items.pop_front() {
            if self.validate_launches {
                self.validate_reqs(&spec.reqs);
            }
            let launch = TaskLaunch {
                id: TaskId(base + batch.len() as u32),
                name: spec.name,
                node: spec.node % self.shards.nodes(),
                reqs: spec.reqs,
                duration_ns: spec.duration_ns,
            };
            // Outside traces this only updates detector state and returns
            // `Analyze { record: false }` — the same call the serial
            // driver makes, at the same position in the launch stream.
            match self
                .tracing
                .on_launch(launch.node, &launch.reqs, launch.id.0)
            {
                TraceAction::Analyze { record: false } => {}
                _ => unreachable!("untraced segment launches analyze without recording"),
            }
            for req in &launch.reqs {
                self.shards.touch(req.region, launch.node, launch.id.0);
            }
            groups.push(self.engine.prepare(
                &launch,
                &crate::engine::ShardCtx {
                    forest: &self.forest,
                    shards: &self.shards,
                },
            ));
            batch.push(launch);
            batch_bodies.push(spec.body);
            if self.tracing.capture_pending() {
                // A repeat was just detected: capture starts with the next
                // launch, which must go through the trace machinery.
                break;
            }
        }
        let count = batch.len();
        // Phase B (workers) + C (pipelined commit on this thread). Borrows
        // split per field: workers read the engine/forest/shard map; the
        // retire closure replays charges and grows the bookkeeping.
        {
            let engine: &dyn CoherenceEngine = &*self.engine;
            let forest = &self.forest;
            let shards = &self.shards;
            let machine = &mut self.machine;
            let results = &mut self.results;
            let analysis_done = &mut self.analysis_done;
            let dag = &mut self.dag;
            let tracing = &self.tracing;
            let batch_ref = &batch;
            crate::exec::scan_batch(
                engine,
                forest,
                shards,
                batch_ref,
                &groups,
                self.analysis_threads,
                |i, outcomes| {
                    // Exactly the serial per-launch charge sequence:
                    // overhead at the origin, then every scan log in
                    // requirement order, then every commit log.
                    let launch = &batch_ref[i];
                    let origin = shards.origin(launch.node);
                    let sim_start = machine.now(origin);
                    machine.op(origin, viz_sim::Op::LaunchOverhead);
                    let mut result = crate::engine::assemble_outcomes(launch, outcomes, machine);
                    if viz_profile::enabled() {
                        let sim_end = machine.now(origin);
                        viz_profile::sim_event(
                            sim_start,
                            sim_end.saturating_sub(sim_start),
                            viz_profile::Track::SimProgram {
                                node: origin as u32,
                            },
                            viz_profile::EventKind::LaunchAnalyzed {
                                engine: engine.name(),
                                task: launch.id.0 as u64,
                            },
                        );
                    }
                    tracing.rebase_result(&mut result);
                    analysis_done.push(machine.now(origin));
                    dag.push(result.deps.clone());
                    results.push(StoredResult::Owned(result));
                },
            );
        }
        self.launches.append(&mut batch);
        self.bodies.append(&mut batch_bodies);
        (0..count as u32).map(|k| TaskId(base + k)).collect()
    }

    /// Begin a trace (dynamic tracing, \[15\]): the launches up to the
    /// matching [`Runtime::end_trace`] form one instance of a repetitive
    /// sequence. The first instance warms the analysis up, the second is
    /// recorded, and identical contiguous instances from the third onward
    /// are *replayed* without running the visibility engine.
    pub fn begin_trace(&mut self, id: u32) {
        self.tracing.begin(TraceId(id), self.launches.len() as u32);
    }

    /// End the current trace instance. A replay that ran short of the
    /// recorded instance is reported (and the trace recaptures); it is not
    /// an abort.
    pub fn end_trace(&mut self, id: u32) -> Option<TraceViolation> {
        self.tracing.end(TraceId(id), self.launches.len() as u32)
    }

    /// Is the runtime currently replaying a recorded trace?
    pub fn is_replaying(&self) -> bool {
        self.tracing.is_replaying()
    }

    /// Inside a trace (manual or auto, any phase: warming, capturing, or
    /// replaying)?
    pub fn in_trace(&self) -> bool {
        self.tracing.in_trace()
    }

    /// Launches whose analysis was synthesized from a trace template.
    pub fn replayed_launches(&self) -> u64 {
        self.tracing.replayed_launches
    }

    /// The address of the shared template result backing task `t`, if `t`
    /// was captured into or replayed from a trace (`None` for ordinary
    /// analyzed launches). Benchmarks use pointer identity to prove the
    /// replay path shares one allocation per template entry instead of
    /// deep-cloning the `AnalysisResult`.
    pub fn shared_result_addr(&self, t: TaskId) -> Option<usize> {
        match &self.results[t.index()] {
            StoredResult::Shared { result, .. } => Some(Arc::as_ptr(result) as usize),
            StoredResult::Owned(_) => None,
        }
    }

    /// Repeats promoted by the auto-tracer so far.
    pub fn auto_traces_detected(&self) -> u64 {
        self.tracing.auto_promotions
    }

    /// Auto traces demoted back to normal analysis (failed speculation).
    pub fn auto_traces_demoted(&self) -> u64 {
        self.tracing.auto_demotions
    }

    /// Every trace violation observed, in program order. Violations demote
    /// the offending trace; execution continues with normal analysis.
    pub fn trace_violations(&self) -> &[TraceViolation] {
        self.tracing.violations()
    }

    /// Current size of the trace rebase interval map (stays O(active
    /// templates) — see `trace.rs`).
    pub fn trace_rebase_ranges(&self) -> usize {
        self.tracing.rebase_ranges()
    }

    /// §4: two region arguments of one task must have disjoint domains
    /// unless both are read-only or both reduce with the same operator.
    fn validate_reqs(&self, reqs: &[RegionRequirement]) {
        for (i, a) in reqs.iter().enumerate() {
            for b in &reqs[i + 1..] {
                if a.field != b.field
                    || self.forest.root_of(a.region) != self.forest.root_of(b.region)
                {
                    continue;
                }
                let compatible = matches!(
                    (a.privilege, b.privilege),
                    (Privilege::Read, Privilege::Read)
                ) || matches!(
                    (a.privilege, b.privilege),
                    (Privilege::Reduce(f), Privilege::Reduce(g)) if f == g
                );
                if !compatible
                    && self
                        .forest
                        .domain(a.region)
                        .overlaps(self.forest.domain(b.region))
                {
                    panic!(
                        "task region arguments {:?} and {:?} alias with interfering \
                         privileges {:?}/{:?} (intra-task coherence is out of scope, §4)",
                        a.region, b.region, a.privilege, b.privilege
                    );
                }
            }
        }
    }

    /// An execution fence: a no-op task ordered after *every* task launched
    /// so far (and, transitively, before everything launched later that
    /// depends on it — callers typically route post-fence work through the
    /// returned id). Legion uses fences to delimit phases that the
    /// dependence analysis should not reorder across; trace replay also
    /// relies on the same all-predecessor construction.
    pub fn fence(&mut self) -> TaskId {
        // Fences are not analyzed launches: they interrupt any in-flight
        // trace instance and break detected periodicity.
        self.tracing.barrier();
        let deps: Vec<TaskId> = (0..self.launches.len() as u32).map(TaskId).collect();
        let id = TaskId(self.launches.len() as u32);
        let origin = self.shards.origin(0);
        self.machine.op(origin, viz_sim::Op::LaunchOverhead);
        self.analysis_done.push(self.machine.now(origin));
        self.dag.push(deps.clone());
        self.results.push(StoredResult::Owned(AnalysisResult {
            deps,
            plans: Vec::new(),
        }));
        self.launches.push(TaskLaunch {
            id,
            name: "fence".into(),
            node: 0,
            reqs: Vec::new(),
            duration_ns: 0,
        });
        self.bodies.push(None);
        id
    }

    /// An inline read of a region's current values: recorded as a read-only
    /// launch with no body; after [`Runtime::execute_values`], the
    /// materialized values are available from the store under the returned
    /// id. (Legion calls these inline mappings.)
    pub fn inline_read(&mut self, region: RegionId, field: FieldId) -> TaskId {
        self.launch(
            "inline-read",
            0,
            vec![RegionRequirement::read(region, field)],
            0,
            None,
        )
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Execute all recorded launches with real values on worker threads,
    /// honoring the dependence DAG. Returns the store of every task's
    /// committed outputs.
    pub fn execute_values(&self) -> ValueStore {
        crate::exec::execute_values(
            &self.forest,
            &self.redops,
            &self.launches,
            &self.bodies,
            &self.results,
            &self.dag,
            &self.initial,
        )
    }

    /// Replay the DAG on the simulated machine: GPU execution, inter-node
    /// copies, and the coupling of execution to analysis completion times.
    pub fn timed_schedule(&mut self) -> TimedReport {
        TimedSchedule::run(
            &self.forest,
            &self.launches,
            &self.results,
            &self.dag,
            &self.analysis_done,
            &mut self.machine,
        )
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    pub fn dag(&self) -> &TaskDag {
        &self.dag
    }

    pub fn launches(&self) -> &[TaskLaunch] {
        &self.launches
    }

    /// Every launch's analysis result, fully materialized (replayed
    /// launches get their template result with the instance shift applied).
    pub fn results(&self) -> Vec<AnalysisResult> {
        self.results.iter().map(StoredResult::resolve).collect()
    }

    /// One launch's analysis result, materialized.
    pub fn result(&self, t: TaskId) -> AnalysisResult {
        self.results[t.index()].resolve()
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    pub fn state_size(&self) -> StateSize {
        self.engine.state_size()
    }

    pub fn num_tasks(&self) -> usize {
        self.launches.len()
    }

    /// Simulated time at which the analysis of task `t` completed.
    pub fn analysis_done(&self, t: TaskId) -> SimTime {
        self.analysis_done[t.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_records_analysis_and_dag() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        let t0 = rt.launch(
            "w",
            0,
            vec![RegionRequirement::read_write(root, f)],
            100,
            None,
        );
        let t1 = rt.launch("r", 0, vec![RegionRequirement::read(root, f)], 100, None);
        assert_eq!(rt.num_tasks(), 2);
        assert_eq!(rt.dag().preds(t1), &[t0]);
        assert!(rt.analysis_done(t1) >= rt.analysis_done(t0));
    }

    #[test]
    #[should_panic(expected = "alias with interfering")]
    fn aliasing_requirements_with_interference_panic() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        rt.launch(
            "bad",
            0,
            vec![
                RegionRequirement::read_write(root, f),
                RegionRequirement::read(root, f),
            ],
            0,
            None,
        );
    }

    #[test]
    fn aliasing_reads_are_allowed() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        rt.launch(
            "ok",
            0,
            vec![
                RegionRequirement::read(root, f),
                RegionRequirement::read(root, f),
            ],
            0,
            None,
        );
    }

    #[test]
    fn aliasing_same_op_reductions_are_allowed() {
        let mut rt = Runtime::single_node(EngineKind::PaintNaive);
        let root = rt.forest_mut().create_root_1d("A", 10);
        let f = rt.forest_mut().add_field(root, "v");
        rt.launch(
            "ok",
            0,
            vec![
                RegionRequirement::reduce(root, f, RedOpRegistry::SUM),
                RegionRequirement::reduce(root, f, RedOpRegistry::SUM),
            ],
            0,
            None,
        );
    }
}
