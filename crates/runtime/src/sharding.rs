//! Analysis sharding and state ownership — dynamic control replication \[4\].
//!
//! The paper evaluates each engine with and without **DCR** (§8). DCR does
//! not change analysis *results*; it changes *where the analysis runs*:
//!
//! * **Without DCR** the top-level task runs on node 0 and every launch is
//!   analyzed there — a sequential bottleneck at scale, exactly the effect
//!   dominating the no-DCR curves in Figs 12–17.
//! * **With DCR** the top-level task is sharded: the launch for piece `i` is
//!   analyzed by the shard on the node where piece `i` lives, distributing
//!   the source of the analysis across the machine.
//!
//! Analysis *state* (histories, composite views, equivalence sets) is owned
//! by nodes on a first-touch basis, mirroring Legion's migration of
//! equivalence sets to their first user.
//!
//! Ownership versioning is keyed by the **global launch id**, which the
//! combining dispatcher assigns at commit time (PR 7). A combined batch
//! that interleaves several producer contexts therefore needs no special
//! handling here: whatever order the rings were drained in, each launch's
//! view of the shard map is determined solely by its committed id, exactly
//! as if the interleaved stream had been submitted by one producer.

use viz_geometry::FxHashMap;
use viz_region::RegionId;
use viz_sim::NodeId;

/// Maps analysis work and state to machine nodes.
///
/// Ownership entries are **versioned by the launch that created them**: a
/// lookup on behalf of launch `t` sees exactly the touches of launches
/// `<= t`. The serial driver gets the behavior it always had (each launch
/// touches, then analyzes); the batched driver can touch a whole batch up
/// front and still hand every concurrent scan the view its launch would
/// have seen serially.
#[derive(Clone, Debug)]
pub struct ShardMap {
    nodes: usize,
    dcr: bool,
    owners: FxHashMap<RegionId, (NodeId, u32)>,
}

impl ShardMap {
    pub fn new(nodes: usize, dcr: bool) -> Self {
        ShardMap {
            nodes,
            dcr,
            owners: FxHashMap::default(),
        }
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn dcr(&self) -> bool {
        self.dcr
    }

    /// The node that analyzes a launch mapped to `task_node`.
    pub fn origin(&self, task_node: NodeId) -> NodeId {
        if self.dcr {
            task_node % self.nodes
        } else {
            0
        }
    }

    /// Record the first-touch owner for a region's analysis state (no-op if
    /// already owned), on behalf of launch `task`.
    pub fn touch(&mut self, region: RegionId, node: NodeId, task: u32) {
        self.owners
            .entry(region)
            .or_insert((node % self.nodes, task));
    }

    /// The owner of analysis state keyed by `region`, as visible to launch
    /// `task`; regions not yet touched by then default to node 0 (the
    /// root's home, where the initial state lives).
    pub fn owner(&self, region: RegionId, task: u32) -> NodeId {
        match self.owners.get(&region) {
            Some((node, touched)) if *touched <= task => *node,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_dcr_everything_originates_on_node_zero() {
        let s = ShardMap::new(8, false);
        for n in 0..8 {
            assert_eq!(s.origin(n), 0);
        }
    }

    #[test]
    fn with_dcr_origin_follows_task_mapping() {
        let s = ShardMap::new(8, true);
        assert_eq!(s.origin(3), 3);
        assert_eq!(s.origin(11), 3, "wraps into the machine");
    }

    #[test]
    fn first_touch_ownership_sticks() {
        let mut s = ShardMap::new(4, true);
        let r = RegionId(7);
        assert_eq!(s.owner(r, 0), 0, "untouched state lives at the root's home");
        s.touch(r, 2, 0);
        s.touch(r, 3, 1);
        assert_eq!(s.owner(r, 1), 2, "first touch wins");
    }

    #[test]
    fn touches_by_later_launches_are_invisible_to_earlier_ones() {
        let mut s = ShardMap::new(4, true);
        let r = RegionId(7);
        // A batch touches regions for every launch before any scan runs;
        // launch 3's touch must not leak into launch 2's view.
        s.touch(r, 1, 3);
        assert_eq!(s.owner(r, 2), 0, "launch 2 predates the touch");
        assert_eq!(s.owner(r, 3), 1, "the toucher itself sees it");
        assert_eq!(s.owner(r, 9), 1, "so does everyone after");
    }

    #[test]
    fn combined_multi_context_batches_version_by_commit_order() {
        // PR 7: a combined sweep interleaves launches from several rings;
        // ids are assigned at commit, so the touch order below is exactly
        // the dispatcher's commit order regardless of the source ring.
        // Context A committed ids {0, 2}, context B ids {1, 3}.
        let mut s = ShardMap::new(4, true);
        let ra = RegionId(1);
        let rb = RegionId(2);
        s.touch(ra, 3, 0); // A's first launch claims its region on node 3
        s.touch(rb, 2, 1); // B's first launch claims its region on node 2
        s.touch(ra, 1, 2); // A's second launch: already owned, no-op
        s.touch(rb, 1, 3); // B's second launch: already owned, no-op
        assert_eq!(s.owner(ra, 2), 3, "A's state stays where A first put it");
        assert_eq!(s.owner(rb, 3), 2, "B's state stays where B first put it");
        // A launch committed before a region's first touch never sees it,
        // even when the touch came from another context's ring.
        assert_eq!(s.owner(rb, 0), 0);
    }
}
