//! Executable paper semantics — the pseudocode of Figures 6, 7, 9 and 11
//! implemented *literally*, at the value level.
//!
//! These are deliberately naive: regions are maps from points to values
//! (`{⟨i, v⟩}` exactly as §4 defines them), state is manipulated with the
//! paper's `X/Y`, `X\Y`, `X ⊕ Y` operators, and `run_task` follows Fig 6
//! line by line. They serve as the **test oracles** for the optimized
//! engines: all three spec algorithms must compute identical values to a
//! direct sequential interpretation of the program, and the engines'
//! parallel execution must match in turn.

pub mod painter;
pub mod program;
pub mod raycast;
pub mod seqref;
pub mod vregion;
pub mod warnock;

pub use program::{SpecAlgorithm, SpecProgram, SpecTask};
pub use vregion::VRegion;
