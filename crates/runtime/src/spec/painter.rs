//! Figure 7, verbatim: the painter's algorithm at the value level.

use crate::spec::program::{SpecAlgorithm, SpecProgram};
use crate::spec::vregion::VRegion;
use viz_geometry::IndexSpace;
use viz_region::{Privilege, RedOpRegistry};

/// `S` is a history: a list of `(privilege, region)` pairs, traversed from
/// oldest to newest by `paint`.
#[derive(Default)]
pub struct SpecPainter {
    hist: Vec<(Privilege, VRegion)>,
}

impl SpecPainter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fig 7's `paint`: replay the history onto an initially-undefined
    /// region over `dom`.
    fn paint(&self, dom: &IndexSpace, redops: &RedOpRegistry) -> VRegion {
        // R[i] is initially undefined for all i in dom(R).
        let mut r = VRegion::new();
        for (p, r_prime) in &self.hist {
            match p {
                // R := (R ⊕ R')/R — take R''s values on our domain.
                Privilege::ReadWrite => {
                    r = r.oplus(&r_prime.restrict_dom(dom));
                }
                // R := R ⊕ f(R/R', R'/R) — fold where both are defined.
                Privilege::Reduce(op) => {
                    let folded = r.lift(r_prime, redops.get(*op).fold);
                    r = r.oplus(&folded);
                }
                // do nothing if P' = read
                Privilege::Read => {}
            }
        }
        r
    }

    pub fn history_len(&self) -> usize {
        self.hist.len()
    }
}

impl SpecAlgorithm for SpecPainter {
    fn name(&self) -> &'static str {
        "spec-painter"
    }

    fn init(&mut self, program: &SpecProgram) {
        // The initial state is [⟨read-write, A⟩].
        self.hist = vec![(Privilege::ReadWrite, program.initial.clone())];
    }

    fn materialize(
        &mut self,
        privilege: Privilege,
        dom: &IndexSpace,
        redops: &RedOpRegistry,
    ) -> VRegion {
        match privilege {
            // return {⟨i, 0_f⟩ | i ∈ dom(R)}
            Privilege::Reduce(op) => VRegion::fill(dom, redops.identity(op)),
            _ => self.paint(dom, redops),
        }
    }

    fn commit(&mut self, privilege: Privilege, region: VRegion, _redops: &RedOpRegistry) {
        // return S ++ ⟨P, R⟩
        self.hist.push((privilege, region));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::program::{run_program, SpecTask};
    use viz_geometry::Point;

    fn dom(lo: i64, hi: i64) -> IndexSpace {
        IndexSpace::span(lo, hi)
    }

    #[test]
    fn write_then_read_sees_the_write() {
        let redops = RedOpRegistry::new();
        let d = dom(0, 9);
        let mut prog = SpecProgram::new(d.clone(), VRegion::fill(&d, 1.0));
        prog.push(SpecTask::new(
            "w",
            vec![(Privilege::ReadWrite, dom(2, 5))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    rs[0].set(p, 42.0);
                }
            },
        ));
        let final_a = run_program(&mut SpecPainter::new(), &prog, &redops);
        assert_eq!(final_a.get(Point::p1(0)), Some(1.0));
        assert_eq!(final_a.get(Point::p1(3)), Some(42.0));
        assert_eq!(final_a.get(Point::p1(9)), Some(1.0));
    }

    #[test]
    fn reductions_accumulate_lazily() {
        let redops = RedOpRegistry::new();
        let d = dom(0, 3);
        let mut prog = SpecProgram::new(d.clone(), VRegion::fill(&d, 10.0));
        for k in 1..=3 {
            prog.push(SpecTask::new(
                format!("r{k}"),
                vec![(Privilege::Reduce(RedOpRegistry::SUM), dom(0, 3))],
                move |rs| {
                    let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                    for p in pts {
                        let cur = rs[0].get(p).unwrap();
                        rs[0].set(p, cur + k as f64);
                    }
                },
            ));
        }
        let final_a = run_program(&mut SpecPainter::new(), &prog, &redops);
        assert_eq!(final_a.get(Point::p1(0)), Some(16.0), "10 + 1 + 2 + 3");
    }

    #[test]
    fn write_occludes_reductions() {
        let redops = RedOpRegistry::new();
        let d = dom(0, 3);
        let mut prog = SpecProgram::new(d.clone(), VRegion::fill(&d, 0.0));
        prog.push(SpecTask::new(
            "r",
            vec![(Privilege::Reduce(RedOpRegistry::SUM), dom(0, 3))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    rs[0].set(p, 100.0);
                }
            },
        ));
        prog.push(SpecTask::new(
            "w",
            vec![(Privilege::ReadWrite, dom(0, 1))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    rs[0].set(p, -1.0);
                }
            },
        ));
        let final_a = run_program(&mut SpecPainter::new(), &prog, &redops);
        assert_eq!(final_a.get(Point::p1(0)), Some(-1.0), "write wins");
        assert_eq!(final_a.get(Point::p1(2)), Some(100.0), "reduction survives");
    }

    #[test]
    fn history_grows_monotonically() {
        // The unoptimized painter never prunes: the state is a full history.
        let redops = RedOpRegistry::new();
        let d = dom(0, 3);
        let mut prog = SpecProgram::new(d.clone(), VRegion::fill(&d, 0.0));
        for _ in 0..5 {
            prog.push(SpecTask::new(
                "w",
                vec![(Privilege::ReadWrite, dom(0, 3))],
                |_| {},
            ));
        }
        let mut alg = SpecPainter::new();
        run_program(&mut alg, &prog, &redops);
        assert_eq!(alg.history_len(), 6, "initial entry + five commits");
    }
}
