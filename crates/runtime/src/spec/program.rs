//! The Fig 6 execution framework: `run_task` over a whole program.

use crate::spec::vregion::VRegion;
use std::sync::Arc;
use viz_geometry::IndexSpace;
use viz_region::{Privilege, RedOpRegistry};

/// A spec task body: transforms the materialized region arguments in place.
pub type SpecBody = Arc<dyn Fn(&mut [VRegion]) + Send + Sync>;

/// A task in the spec setting: privileges + domains + a body transforming
/// the materialized region arguments in place (Fig 6 line 5:
/// `R1,…,Rn := T(R1,…,Rn)`).
#[derive(Clone)]
pub struct SpecTask {
    pub name: String,
    pub reqs: Vec<(Privilege, IndexSpace)>,
    pub body: SpecBody,
}

impl SpecTask {
    pub fn new(
        name: impl Into<String>,
        reqs: Vec<(Privilege, IndexSpace)>,
        body: impl Fn(&mut [VRegion]) + Send + Sync + 'static,
    ) -> Self {
        SpecTask {
            name: name.into(),
            reqs,
            body: Arc::new(body),
        }
    }
}

/// A program in the §4 setting: a single collection `A` with initial
/// contents, and a sequence of task calls.
#[derive(Clone)]
pub struct SpecProgram {
    pub domain: IndexSpace,
    pub initial: VRegion,
    pub tasks: Vec<SpecTask>,
}

impl SpecProgram {
    pub fn new(domain: IndexSpace, initial: VRegion) -> Self {
        assert!(initial.domain().same_points(&domain));
        SpecProgram {
            domain,
            initial,
            tasks: Vec::new(),
        }
    }

    pub fn push(&mut self, task: SpecTask) {
        for (_, d) in &task.reqs {
            assert!(
                self.domain.contains(d),
                "task domain escapes the collection"
            );
        }
        self.tasks.push(task);
    }
}

/// A visibility algorithm in the paper's framework: `materialize` and
/// `commit` plus an implementation of the state `S` (Fig 6).
pub trait SpecAlgorithm {
    fn name(&self) -> &'static str;

    /// Reset the state to `[⟨read-write, A⟩]` for the program's collection.
    fn init(&mut self, program: &SpecProgram);

    /// Fill in current values for a region argument (may update the state).
    fn materialize(
        &mut self,
        privilege: Privilege,
        dom: &IndexSpace,
        redops: &RedOpRegistry,
    ) -> VRegion;

    /// Record a task's result region.
    fn commit(&mut self, privilege: Privilege, region: VRegion, redops: &RedOpRegistry);
}

/// Fig 6's `run_task`, looped over the whole program; returns the final
/// contents of `A` (materialized by a trailing read of the full domain).
pub fn run_program(
    alg: &mut dyn SpecAlgorithm,
    program: &SpecProgram,
    redops: &RedOpRegistry,
) -> VRegion {
    let _prog_span = viz_profile::span(alg.name());
    alg.init(program);
    for task in &program.tasks {
        // foreach Pi Ri: Ri, S := materialize(Pi, Ri, S)
        let mat_span = viz_profile::span("spec:materialize");
        let mut regions: Vec<VRegion> = task
            .reqs
            .iter()
            .map(|(p, d)| alg.materialize(*p, d, redops))
            .collect();
        drop(mat_span);
        // R1,…,Rn := T(R1,…,Rn)
        (task.body)(&mut regions);
        // foreach Pi Ri: S := commit(Pi, Ri, S)
        let commit_span = viz_profile::span("spec:commit");
        for ((p, _), r) in task.reqs.iter().zip(regions) {
            alg.commit(*p, r, redops);
        }
        drop(commit_span);
    }
    alg.materialize(Privilege::Read, &program.domain, redops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use viz_geometry::Point;

    #[test]
    #[should_panic(expected = "escapes the collection")]
    fn task_outside_collection_panics() {
        let dom = IndexSpace::span(0, 9);
        let mut prog = SpecProgram::new(dom.clone(), VRegion::fill(&dom, 0.0));
        prog.push(SpecTask::new(
            "bad",
            vec![(Privilege::Read, IndexSpace::span(5, 15))],
            |_| {},
        ));
    }

    #[test]
    fn program_accumulates_tasks() {
        let dom = IndexSpace::span(0, 9);
        let mut prog = SpecProgram::new(dom.clone(), VRegion::tabulate(&dom, |p| p.x as f64));
        prog.push(SpecTask::new(
            "t",
            vec![(Privilege::Read, IndexSpace::span(0, 4))],
            |_| {},
        ));
        assert_eq!(prog.tasks.len(), 1);
        assert_eq!(prog.initial.get(Point::p1(3)), Some(3.0));
    }
}
