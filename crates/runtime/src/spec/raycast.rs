//! Figure 11, verbatim: ray casting at the value level.
//!
//! Ray casting reuses `warnock::materialize` and `warnock::commit`; the only
//! change is `dominating_write`: a `read-write` materialization replaces
//! every equivalence set covered by the region with a single fresh set whose
//! history is just the write.

use crate::spec::program::{SpecAlgorithm, SpecProgram};
use crate::spec::vregion::VRegion;
use crate::spec::warnock::{EqSet, SpecWarnock};
use viz_geometry::IndexSpace;
use viz_region::{Privilege, RedOpRegistry};

#[derive(Default)]
pub struct SpecRayCast {
    inner: SpecWarnock,
}

impl SpecRayCast {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_sets(&self) -> usize {
        self.inner.num_sets()
    }

    /// Fig 11's `dominating_write`:
    /// `S' := {⟨R, [⟨read-write, R⟩]⟩} ∪ {⟨R', H⟩ ∈ S | dom(R)∩dom(R') = ∅}`.
    fn dominating_write(&mut self, region: VRegion) {
        let rdom = region.domain();
        self.inner.sets.retain(|es| !es.dom.overlaps(&rdom));
        self.inner.sets.push(EqSet {
            dom: rdom,
            hist: vec![(Privilege::ReadWrite, region)],
        });
    }
}

impl SpecAlgorithm for SpecRayCast {
    fn name(&self) -> &'static str {
        "spec-raycast"
    }

    fn init(&mut self, program: &SpecProgram) {
        self.inner.init(program);
    }

    fn materialize(
        &mut self,
        privilege: Privilege,
        dom: &IndexSpace,
        redops: &RedOpRegistry,
    ) -> VRegion {
        // R', S' := warnock::materialize(P, R, S)
        let r = self.inner.materialize_impl(privilege, dom, redops);
        // if P = read-write then S' := dominating_write(R', S')
        if privilege.is_write() {
            self.dominating_write(r.clone());
        }
        r
    }

    fn commit(&mut self, privilege: Privilege, region: VRegion, _redops: &RedOpRegistry) {
        // return warnock::commit(P, R, S)
        self.inner.commit_impl(privilege, region);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::program::{run_program, SpecTask};
    use viz_geometry::Point;

    fn dom(lo: i64, hi: i64) -> IndexSpace {
        IndexSpace::span(lo, hi)
    }

    /// §7: writes coalesce equivalence sets, where Warnock only refines.
    #[test]
    fn dominating_writes_coalesce() {
        let redops = RedOpRegistry::new();
        let d = dom(0, 11);
        let mut prog = SpecProgram::new(d.clone(), VRegion::fill(&d, 0.0));
        // Fragment the collection with three overlapping reads…
        for (lo, hi) in [(0, 5), (3, 8), (6, 11)] {
            prog.push(SpecTask::new(
                "read",
                vec![(Privilege::Read, dom(lo, hi))],
                |_| {},
            ));
        }
        // …then write the whole thing.
        prog.push(SpecTask::new(
            "w",
            vec![(Privilege::ReadWrite, dom(0, 11))],
            |_| {},
        ));
        let mut warnock = SpecWarnock::new();
        run_program(&mut warnock, &prog, &redops);
        let mut ray = SpecRayCast::new();
        run_program(&mut ray, &prog, &redops);
        assert!(warnock.num_sets() > 1, "Warnock keeps the fragments");
        assert_eq!(ray.num_sets(), 1, "the dominating write coalesced them");
    }

    #[test]
    fn values_match_warnock_and_painter() {
        use crate::spec::painter::SpecPainter;
        let redops = RedOpRegistry::new();
        let d = dom(0, 19);
        let mut prog = SpecProgram::new(d.clone(), VRegion::tabulate(&d, |p| p.x as f64));
        prog.push(SpecTask::new(
            "scale",
            vec![(Privilege::ReadWrite, dom(0, 12))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    let v = rs[0].get(p).unwrap();
                    rs[0].set(p, v + 100.0);
                }
            },
        ));
        prog.push(SpecTask::new(
            "acc",
            vec![(Privilege::Reduce(RedOpRegistry::SUM), dom(8, 19))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    let v = rs[0].get(p).unwrap();
                    rs[0].set(p, v + 1.0);
                }
            },
        ));
        prog.push(SpecTask::new(
            "over",
            vec![(Privilege::ReadWrite, dom(10, 15))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    rs[0].set(p, 7.0);
                }
            },
        ));
        let a = run_program(&mut SpecPainter::new(), &prog, &redops);
        let b = run_program(&mut SpecWarnock::new(), &prog, &redops);
        let c = run_program(&mut SpecRayCast::new(), &prog, &redops);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(c.get(Point::p1(12)), Some(7.0));
        assert_eq!(c.get(Point::p1(9)), Some(110.0), "9 + 100 + 1");
        assert_eq!(c.get(Point::p1(19)), Some(20.0), "19 + 1");
    }
}
