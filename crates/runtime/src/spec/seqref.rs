//! The ground truth: direct sequential interpretation of a program.
//!
//! No histories, no visibility — just "apparently-sequential semantics"
//! applied literally: each task sees the current contents of `A`, and its
//! results are applied before the next task runs. Reductions keep the lazy
//! accumulator convention (tasks reduce into identity-filled buffers that
//! are folded into `A` when the task commits), matching both the spec
//! algorithms and the production engines; for exactly-representable values
//! the results are bit-identical.

use crate::spec::program::SpecProgram;
use crate::spec::vregion::VRegion;
use viz_region::{Privilege, RedOpRegistry};

/// Run the program sequentially; returns the final contents of `A`.
pub fn run_sequential(program: &SpecProgram, redops: &RedOpRegistry) -> VRegion {
    let mut a = program.initial.clone();
    for task in &program.tasks {
        let mut regions: Vec<VRegion> = task
            .reqs
            .iter()
            .map(|(p, d)| match p {
                Privilege::Reduce(op) => VRegion::fill(d, redops.identity(*op)),
                _ => a.restrict_dom(d),
            })
            .collect();
        (task.body)(&mut regions);
        for ((p, d), r) in task.reqs.iter().zip(regions) {
            match p {
                Privilege::Read => {}
                Privilege::ReadWrite => {
                    a = a.oplus(&r.restrict_dom(d));
                }
                Privilege::Reduce(op) => {
                    let fold = redops.get(*op).fold;
                    for (pt, contribution) in r.iter() {
                        if d.contains_point(pt) {
                            let cur = a.get(pt).expect("reduction outside collection");
                            a.set(pt, fold(cur, contribution));
                        }
                    }
                }
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::program::SpecTask;
    use viz_geometry::{IndexSpace, Point};

    #[test]
    fn sequential_write_and_reduce() {
        let redops = RedOpRegistry::new();
        let d = IndexSpace::span(0, 4);
        let mut prog = SpecProgram::new(d.clone(), VRegion::fill(&d, 1.0));
        prog.push(SpecTask::new(
            "w",
            vec![(Privilege::ReadWrite, IndexSpace::span(0, 2))],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    let v = rs[0].get(p).unwrap();
                    rs[0].set(p, v * 10.0);
                }
            },
        ));
        prog.push(SpecTask::new(
            "acc",
            vec![(
                Privilege::Reduce(RedOpRegistry::SUM),
                IndexSpace::span(1, 4),
            )],
            |rs| {
                let pts: Vec<_> = rs[0].iter().map(|(p, _)| p).collect();
                for p in pts {
                    let v = rs[0].get(p).unwrap();
                    rs[0].set(p, v + 5.0);
                }
            },
        ));
        let a = run_sequential(&prog, &redops);
        assert_eq!(a.get(Point::p1(0)), Some(10.0));
        assert_eq!(a.get(Point::p1(1)), Some(15.0));
        assert_eq!(a.get(Point::p1(4)), Some(6.0));
    }

    #[test]
    fn tasks_see_prior_results() {
        let redops = RedOpRegistry::new();
        let d = IndexSpace::span(0, 0);
        let mut prog = SpecProgram::new(d.clone(), VRegion::fill(&d, 3.0));
        for _ in 0..3 {
            prog.push(SpecTask::new(
                "double",
                vec![(Privilege::ReadWrite, d.clone())],
                |rs| {
                    let v = rs[0].get(Point::p1(0)).unwrap();
                    rs[0].set(Point::p1(0), v * 2.0);
                },
            ));
        }
        let a = run_sequential(&prog, &redops);
        assert_eq!(a.get(Point::p1(0)), Some(24.0));
    }
}
